//! Integration tests: the paper's workload and architecture findings must
//! emerge from the full pipeline (catalog -> simulator -> sensing rig ->
//! statistics -> aggregation), not from any single crate.

use lhr::core::{Harness, Runner};
use lhr::uarch::{ChipConfig, ProcessorId};
use lhr::units::TechNode;
use lhr::workloads::{by_name, catalog, Group, Language};

fn quick() -> Harness {
    Harness::quick()
}

/// TDP is strictly above measured power and a poor predictor of it
/// (Section 2.5, Figure 2).
#[test]
fn tdp_never_predicts_measured_power() {
    let harness = quick();
    for id in [
        ProcessorId::Atom230,
        ProcessorId::Core2DuoE6600,
        ProcessorId::CoreI7_920,
    ] {
        let config = ChipConfig::stock(id.spec());
        let tdp = id.spec().power.tdp_w;
        let mut max_power: f64 = 0.0;
        for w in harness.workloads() {
            let p = harness.measure(&config, w).watts().value();
            assert!(p < tdp, "{:?}: {} drew {p} W >= TDP {tdp}", id, w.name());
            max_power = max_power.max(p);
        }
        assert!(
            max_power < 0.9 * tdp,
            "{id:?}: even the hungriest benchmark ({max_power} W) sits well under TDP {tdp}"
        );
    }
}

/// Workload Finding 3: Native Non-scalable draws the least power of the
/// four groups on the Nehalems.
#[test]
fn native_non_scalable_is_the_power_outlier_on_nehalem() {
    let harness = quick();
    for id in [ProcessorId::CoreI7_920, ProcessorId::CoreI5_670] {
        let m = harness.group_metrics(&ChipConfig::stock(id.spec()));
        let nn = m.power[&Group::NativeNonScalable];
        for g in [Group::NativeScalable, Group::JavaScalable] {
            assert!(
                nn < m.power[&g],
                "{id:?}: NN power {nn} must undercut {g} ({})",
                m.power[&g]
            );
        }
    }
}

/// The managed runtime injects parallelism; natives are inert
/// (Workload Finding 1, end to end through the rig).
#[test]
fn jvm_parallelism_is_a_managed_language_phenomenon() {
    let runner = Runner::fast();
    let spec = ProcessorId::CoreI7_920.spec();
    let one = ChipConfig::stock(spec)
        .with_cores(1)
        .unwrap()
        .with_smt(false)
        .unwrap()
        .with_turbo(false)
        .unwrap();
    let two = ChipConfig::stock(spec)
        .with_cores(2)
        .unwrap()
        .with_smt(false)
        .unwrap()
        .with_turbo(false)
        .unwrap();
    let speedup = |name: &str| {
        let w = by_name(name).unwrap();
        runner.measure(&one, w).seconds().value() / runner.measure(&two, w).seconds().value()
    };
    // Every single-threaded Java benchmark gains; no native one does.
    for name in ["antlr", "db", "luindex", "fop"] {
        let s = speedup(name);
        assert!(s > 1.05, "{name}: Java ST speedup {s}");
    }
    for name in ["hmmer", "mcf", "povray"] {
        let s = speedup(name);
        assert!(
            (s - 1.0).abs() < 0.03,
            "{name}: native ST must be flat, got {s}"
        );
    }
}

/// Both die shrinks (65->45 and 45->32) cut energy heavily at matched
/// clocks (Architecture Findings 4 and 5).
#[test]
fn die_shrinks_cut_energy_across_both_generations() {
    let harness = quick();
    let results = lhr::core::experiments::figure8_dieshrink::run(&harness);
    for r in &results {
        assert!(
            r.matched.energy < 0.8,
            "{}: matched-clock energy ratio {}",
            r.family,
            r.matched.energy
        );
        // Both generations deliver the same class of savings.
        assert!(r.matched.power < 0.75, "{}: power {}", r.family, r.matched.power);
    }
    let spread = (results[0].matched.energy - results[1].matched.energy).abs();
    assert!(
        spread < 0.35,
        "the two generations' savings are of the same order (spread {spread})"
    );
}

/// The four groups are populated exactly as in Table 1 and the language
/// classes carry the right runtime structure.
#[test]
fn catalog_structure_is_table1() {
    assert_eq!(catalog().len(), 61);
    let count = |g| catalog().iter().filter(|w| w.group() == g).count();
    assert_eq!(count(Group::NativeNonScalable), 27);
    assert_eq!(count(Group::NativeScalable), 11);
    assert_eq!(count(Group::JavaNonScalable), 18);
    assert_eq!(count(Group::JavaScalable), 5);
    for w in catalog() {
        match w.language() {
            Language::Java => assert!(w.managed().is_some()),
            Language::Native => assert!(w.managed().is_none()),
        }
    }
}

/// The study's four technology nodes are all represented by the stock
/// machines, and the 45nm node has the four chips of the Pareto study.
#[test]
fn technology_coverage() {
    let nodes: Vec<TechNode> = ProcessorId::ALL.iter().map(|id| id.spec().node).collect();
    for node in [TechNode::Nm130, TechNode::Nm65, TechNode::Nm45, TechNode::Nm32] {
        assert!(nodes.contains(&node), "{node} missing");
    }
    assert_eq!(nodes.iter().filter(|&&n| n == TechNode::Nm45).count(), 4);
}

/// Energy accounting is conserved end to end: the per-structure meters,
/// the waveform integral, and average-power x time all agree.
#[test]
fn energy_accounting_is_conserved() {
    let sim = lhr::uarch::ChipSimulator::new().with_target_slices(64);
    let mut w = by_name("jess").unwrap().clone();
    w.scale_trace(0.05);
    for id in [ProcessorId::Atom230, ProcessorId::CoreI7_920] {
        let run = sim.run(&ChipConfig::stock(id.spec()), &w, 3);
        let metered = run.meters.total_energy().value();
        let integral = run.waveform.energy().value();
        let avg_times_t = run.energy().value();
        let rel1 = (metered - integral).abs() / integral;
        let rel2 = (avg_times_t - integral).abs() / integral;
        assert!(rel1 < 0.02, "{id:?}: meters vs integral {rel1}");
        assert!(rel2 < 0.05, "{id:?}: avg x t vs integral {rel2}");
    }
}

/// The whole pipeline is deterministic: two freshly constructed harnesses
/// produce bit-identical measurements.
#[test]
fn full_pipeline_determinism() {
    let spec = ProcessorId::Core2DuoE7600.spec();
    let config = ChipConfig::stock(spec);
    let w = by_name("xalan").unwrap();
    let a = Runner::fast().measure(&config, w);
    let b = Runner::fast().measure(&config, w);
    assert_eq!(a, b);
}
