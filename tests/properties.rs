//! Property-based tests on the core data structures and invariants,
//! spanning crates.

use proptest::prelude::*;

use lhr::stats::{pareto_frontier, Dominance, ParetoPoint, Summary};
use lhr::trace::{InstructionMix, LocalityProfile, Rng64, SplitMix64};
use lhr::uarch::{Cache, CacheGeometry, MissRateEstimator, Tlb};
use lhr::units::{Joules, Seconds, Watts};

proptest! {
    /// Power x time = energy, and energy / time = power, for any values.
    #[test]
    fn units_power_energy_algebra(p in 0.01f64..1e4, t in 0.01f64..1e6) {
        let e: Joules = Watts::new(p) * Seconds::new(t);
        let back = e / Seconds::new(t);
        prop_assert!((back.value() - p).abs() / p < 1e-12);
        let t_back = e / Watts::new(p);
        prop_assert!((t_back.value() - t).abs() / t < 1e-12);
    }

    /// Summaries bound their mean by their extremes and keep CI >= 0.
    #[test]
    fn summary_bounds(xs in proptest::collection::vec(-1e6f64..1e6, 1..64)) {
        let s = Summary::from_slice(&xs);
        prop_assert!(s.mean() >= s.min() - 1e-9);
        prop_assert!(s.mean() <= s.max() + 1e-9);
        prop_assert!(s.ci95_halfwidth() >= 0.0);
        prop_assert!(s.stddev() >= 0.0);
    }

    /// No Pareto frontier member is dominated by any point in the set.
    #[test]
    fn pareto_frontier_members_are_undominated(
        pts in proptest::collection::vec((0.01f64..100.0, 0.01f64..100.0), 1..64)
    ) {
        let points: Vec<ParetoPoint> =
            pts.iter().map(|&(p, c)| ParetoPoint::new(p, c)).collect();
        let frontier = pareto_frontier(&points);
        prop_assert!(!frontier.is_empty());
        for &i in &frontier {
            for p in &points {
                prop_assert_ne!(
                    p.dominance(&points[i]),
                    Dominance::Dominates,
                    "frontier member {} is dominated", i
                );
            }
        }
    }

    /// Instruction-mix class counts always sum exactly to n.
    #[test]
    fn mix_counts_partition(n in 0u64..10_000_000) {
        for mix in [InstructionMix::typical_int(), InstructionMix::typical_fp()] {
            let total: u64 = mix.counts_for(n).iter().map(|&(_, k)| k).sum();
            prop_assert_eq!(total, n);
        }
    }

    /// Address streams never escape the declared footprint and are always
    /// word-aligned, for arbitrary tier structures.
    #[test]
    fn address_streams_stay_in_bounds(
        hot_kb in 1u64..128,
        warm_kb in 0u64..1024,
        extra_kb in 1u64..4096,
        hf in 0.0f64..0.9,
        wf in 0.0f64..0.1,
        pc in 0.0f64..1.0,
        seed in any::<u64>(),
    ) {
        let hot = hot_kb << 10;
        let warm = warm_kb << 10;
        let total = hot + warm + (extra_kb << 10);
        let profile = LocalityProfile::hierarchical(hot, warm, total, hf, wf)
            .with_pointer_chase(pc);
        let mut rng = SplitMix64::new(seed);
        for addr in profile.address_stream(&mut rng).take(2_000) {
            prop_assert!(addr < total);
            prop_assert_eq!(addr % 8, 0);
        }
    }

    /// Cache miss rates are probabilities, and a cache twice the size never
    /// misses (meaningfully) more.
    #[test]
    fn cache_miss_rates_are_sane(
        ws_kb in 4u64..2048,
        cap_kb in 4u64..512,
        pc in 0.0f64..1.0,
    ) {
        let profile = LocalityProfile::hierarchical(
            (ws_kb << 10) / 4, 0, ws_kb << 10, 0.5, 0.0,
        ).with_pointer_chase(pc);
        let est = MissRateEstimator::new();
        let small = est.global_miss_rate(&profile, cap_kb << 10);
        let big = est.global_miss_rate(&profile, (cap_kb << 10) * 2);
        prop_assert!((0.0..=1.0).contains(&small));
        prop_assert!((0.0..=1.0).contains(&big));
        // Sampling noise allowance.
        prop_assert!(big <= small + 0.05, "big {} vs small {}", big, small);
    }

    /// A concrete LRU cache conserves accesses: hits + misses = accesses,
    /// and re-running the same short stream entirely hits.
    #[test]
    fn cache_access_accounting(seed in any::<u64>()) {
        let mut cache = Cache::new(CacheGeometry::new(16 << 10, 4, 64));
        let mut rng = SplitMix64::new(seed);
        // A stream small enough to be fully resident (32 lines).
        let addrs: Vec<u64> = (0..32).map(|_| rng.next_below(32) * 64).collect();
        for &a in &addrs {
            cache.access(a);
        }
        prop_assert_eq!(cache.hits() + cache.misses(), addrs.len() as u64);
        cache.reset_stats();
        for &a in &addrs {
            prop_assert!(cache.access(a), "resident line missed");
        }
    }

    /// TLB miss rates are probabilities and shrink with reach.
    #[test]
    fn tlb_rates_are_probabilities(
        footprint_mb in 1u64..512,
        entries in 8usize..1024,
    ) {
        let profile = LocalityProfile::pointer_chasing(footprint_mb << 20);
        let small = Tlb::new(entries, 4096).miss_rate(&profile);
        let big = Tlb::new(entries * 2, 4096).miss_rate(&profile);
        prop_assert!((0.0..=1.0).contains(&small));
        prop_assert!(big <= small + 1e-9);
    }
}

proptest! {
    /// A channel clipped to the paper's analog band can only ever produce
    /// ADC codes inside the paper's observed 400..=503 window, no matter
    /// what voltage the sensor asks for, how far the channel has drifted,
    /// or which per-run transients fire.
    #[test]
    fn saturated_channel_codes_stay_in_the_paper_band(
        v in -1.0f64..6.0,
        uptime in 0.0f64..5_000.0,
        gain in -0.01f64..0.01,
        offset in -0.005f64..0.005,
        plan_seed in any::<u64>(),
        run_seed in any::<u64>(),
    ) {
        use lhr::sensors::faults::{Drift, FaultInjector, FaultPlan, Saturation};
        use lhr::sensors::Adc;
        use lhr::units::Volts;

        let plan = FaultPlan::new(plan_seed)
            .with_saturation(Saturation::paper_band())
            .with_drift(Drift::new(gain, offset));
        let mut injector = FaultInjector::new(plan);
        injector.advance(uptime);
        let adc = Adc::avr_10bit();
        // The settled (drift + clip) transfer...
        let settled = adc.quantize(injector.settled_volts(Volts::new(v)));
        prop_assert!((400..=503).contains(&settled), "settled code {}", settled);
        // ...and a full per-run session on top of it.
        let session = injector.session(run_seed);
        let code = session.code(adc.quantize(session.volts(Volts::new(v))));
        prop_assert!((400..=503).contains(&code), "session code {}", code);
    }

    /// Quality accounting is consistent for any log the rig could emit:
    /// yield is a probability, logged + gaps partition the slots, and the
    /// saturation fraction is a probability.
    #[test]
    fn quality_report_invariants(
        slots in proptest::collection::vec((0u16..1024, any::<bool>()), 1..400),
        drift in 0.0f64..10.0,
    ) {
        use lhr::sensors::QualityReport;
        let log: Vec<Option<u16>> =
            slots.iter().map(|&(c, keep)| keep.then_some(c)).collect();
        let q = QualityReport::from_log(&log, drift);
        let dropped = log.iter().filter(|s| s.is_none()).count();
        prop_assert_eq!(q.expected_samples, log.len());
        prop_assert!(q.sample_yield >= 0.0 && q.sample_yield <= 1.0);
        prop_assert_eq!(q.logged_samples, log.len() - dropped);
        // Gaps are contiguous runs of drops: at least one gap iff any
        // sample dropped, and never more gaps than dropped samples.
        prop_assert_eq!(q.gap_count > 0, dropped > 0);
        prop_assert!(q.gap_count <= dropped);
        prop_assert!((0.0..=1.0).contains(&q.saturated_fraction));
        prop_assert!((q.drift_codes - drift).abs() < 1e-12);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// An armed-but-empty fault plan is the identity: for any device and
    /// plan seed, the validating path reproduces the legacy measurement
    /// bit for bit.
    #[test]
    fn no_fault_plan_reproduces_the_baseline_exactly(
        device_seed in any::<u64>(),
        plan_seed in any::<u64>(),
        run_seed in any::<u64>(),
        power in 5.0f64..45.0,
    ) {
        use lhr::power::PowerWaveform;
        use lhr::sensors::faults::FaultPlan;
        use lhr::sensors::MeasurementRig;

        let mut w = PowerWaveform::new(Seconds::from_ms(20.0));
        for _ in 0..200 {
            w.push(Watts::new(power));
        }
        let rig = MeasurementRig::for_max_power(Watts::new(50.0), device_seed)
            .expect("calibration converges");
        let baseline = rig.measure(&w, run_seed);
        let mut armed = rig.with_fault_plan(FaultPlan::new(plan_seed));
        let validated = armed.try_measure(&w, run_seed).expect("clean channel accepts");
        prop_assert_eq!(baseline, validated);
    }

    /// The runner's fence and retry machinery respects its budget: a
    /// measurement either converges with at most `budget` retries or
    /// fails with a typed budget/sensor error -- never a panic.
    #[test]
    fn retries_never_exceed_the_budget(
        plan_seed in any::<u64>(),
        spike_p in 0.05f64..0.6,
        budget in 1usize..6,
    ) {
        use lhr::core::{MeasureErrorKind, Runner};
        use lhr::sensors::faults::{FaultPlan, Spikes};
        use lhr::uarch::{ChipConfig, ProcessorId};

        let plan = FaultPlan::new(plan_seed).with_spikes(Spikes {
            per_run_probability: spike_p,
            magnitude_v: -0.15,
        });
        let runner = Runner::fast()
            .with_invocations(3)
            .with_retry_budget(budget)
            .with_fault_plan(ProcessorId::Core2DuoE6600, plan);
        let config = ChipConfig::stock(ProcessorId::Core2DuoE6600.spec());
        let w = lhr::workloads::by_name("hmmer").expect("catalog benchmark");
        match runner.try_measure(&config, w) {
            Ok((_, health)) => {
                prop_assert!(health.retries <= budget, "retries {} > budget {}", health.retries, budget);
                prop_assert!(health.rejected_outliers <= health.retries);
            }
            Err(e) => prop_assert!(
                matches!(
                    e.kind,
                    MeasureErrorKind::RetryBudgetExhausted { .. } | MeasureErrorKind::Sensor(_)
                ),
                "unexpected failure kind: {}", e
            ),
        }
    }

    /// For any benchmark, energy is conserved through the whole simulator
    /// and scaling a trace down never changes measured power by much
    /// (power is rate-based; time scales instead).
    #[test]
    fn simulation_scaling_invariant(idx in 0usize..61) {
        use lhr::uarch::{ChipConfig, ChipSimulator, ProcessorId};
        let w = &lhr::workloads::catalog()[idx];
        let config = ChipConfig::stock(ProcessorId::Core2DuoE6600.spec());
        let sim = ChipSimulator::new().with_target_slices(48);
        let mut short = w.clone();
        short.scale_trace(0.002);
        let mut longer = w.clone();
        longer.scale_trace(0.004);
        let a = sim.run(&config, &short, 9);
        let b = sim.run(&config, &longer, 9);
        // Time roughly doubles...
        let ratio = b.time.value() / a.time.value();
        prop_assert!((1.6..=2.4).contains(&ratio), "time ratio {}", ratio);
        // ...while average power stays put.
        let p_ratio = b.average_power().value() / a.average_power().value();
        prop_assert!((0.9..=1.1).contains(&p_ratio), "power ratio {}", p_ratio);
    }

    /// The log-bucketed quantile sketch behind the observability layer
    /// (48 buckets per decade) keeps every quantile within one bucket
    /// width of the exact order statistic: relative error under
    /// 10^(1/48) - 1 (about 4.9%), with the extremes exact.
    #[test]
    fn histogram_sketch_quantile_error_is_bounded(
        values in proptest::collection::vec(1e-6f64..1e6, 1..256),
        q in 0.0f64..1.0,
    ) {
        use lhr_obs::{MemoryRecorder, Obs};
        use std::sync::Arc;

        let recorder = Arc::new(MemoryRecorder::default());
        let obs = Obs::recording(recorder.clone());
        for &v in &values {
            obs.histogram("sketch.probe", v);
        }
        let snap = recorder.snapshot();
        let hist = &snap.histograms["sketch.probe"];

        // The exact order statistic under the sketch's own rank rule.
        let mut sorted = values.clone();
        sorted.sort_by(f64::total_cmp);
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        let exact = sorted[rank - 1];

        let bound = 10f64.powf(1.0 / 48.0) - 1.0; // one bucket width
        for (q, exact) in [(q, exact), (0.0, sorted[0]), (1.0, sorted[sorted.len() - 1])] {
            let estimate = hist.quantile(q);
            let rel = (estimate - exact).abs() / exact;
            prop_assert!(
                rel <= bound + 1e-12,
                "q={} exact={} estimate={} rel={} > bound={}",
                q, exact, estimate, rel, bound
            );
        }
        // The extremes are exact, not just bounded.
        prop_assert_eq!(hist.quantile(0.0), sorted[0]);
        prop_assert_eq!(hist.quantile(1.0), sorted[sorted.len() - 1]);
    }
}
