//! Property-based tests on the core data structures and invariants,
//! spanning crates.

use proptest::prelude::*;

use lhr::stats::{pareto_frontier, Dominance, ParetoPoint, Summary};
use lhr::trace::{InstructionMix, LocalityProfile, Rng64, SplitMix64};
use lhr::uarch::{Cache, CacheGeometry, MissRateEstimator, Tlb};
use lhr::units::{Joules, Seconds, Watts};

proptest! {
    /// Power x time = energy, and energy / time = power, for any values.
    #[test]
    fn units_power_energy_algebra(p in 0.01f64..1e4, t in 0.01f64..1e6) {
        let e: Joules = Watts::new(p) * Seconds::new(t);
        let back = e / Seconds::new(t);
        prop_assert!((back.value() - p).abs() / p < 1e-12);
        let t_back = e / Watts::new(p);
        prop_assert!((t_back.value() - t).abs() / t < 1e-12);
    }

    /// Summaries bound their mean by their extremes and keep CI >= 0.
    #[test]
    fn summary_bounds(xs in proptest::collection::vec(-1e6f64..1e6, 1..64)) {
        let s = Summary::from_slice(&xs);
        prop_assert!(s.mean() >= s.min() - 1e-9);
        prop_assert!(s.mean() <= s.max() + 1e-9);
        prop_assert!(s.ci95_halfwidth() >= 0.0);
        prop_assert!(s.stddev() >= 0.0);
    }

    /// No Pareto frontier member is dominated by any point in the set.
    #[test]
    fn pareto_frontier_members_are_undominated(
        pts in proptest::collection::vec((0.01f64..100.0, 0.01f64..100.0), 1..64)
    ) {
        let points: Vec<ParetoPoint> =
            pts.iter().map(|&(p, c)| ParetoPoint::new(p, c)).collect();
        let frontier = pareto_frontier(&points);
        prop_assert!(!frontier.is_empty());
        for &i in &frontier {
            for p in &points {
                prop_assert_ne!(
                    p.dominance(&points[i]),
                    Dominance::Dominates,
                    "frontier member {} is dominated", i
                );
            }
        }
    }

    /// Instruction-mix class counts always sum exactly to n.
    #[test]
    fn mix_counts_partition(n in 0u64..10_000_000) {
        for mix in [InstructionMix::typical_int(), InstructionMix::typical_fp()] {
            let total: u64 = mix.counts_for(n).iter().map(|&(_, k)| k).sum();
            prop_assert_eq!(total, n);
        }
    }

    /// Address streams never escape the declared footprint and are always
    /// word-aligned, for arbitrary tier structures.
    #[test]
    fn address_streams_stay_in_bounds(
        hot_kb in 1u64..128,
        warm_kb in 0u64..1024,
        extra_kb in 1u64..4096,
        hf in 0.0f64..0.9,
        wf in 0.0f64..0.1,
        pc in 0.0f64..1.0,
        seed in any::<u64>(),
    ) {
        let hot = hot_kb << 10;
        let warm = warm_kb << 10;
        let total = hot + warm + (extra_kb << 10);
        let profile = LocalityProfile::hierarchical(hot, warm, total, hf, wf)
            .with_pointer_chase(pc);
        let mut rng = SplitMix64::new(seed);
        for addr in profile.address_stream(&mut rng).take(2_000) {
            prop_assert!(addr < total);
            prop_assert_eq!(addr % 8, 0);
        }
    }

    /// Cache miss rates are probabilities, and a cache twice the size never
    /// misses (meaningfully) more.
    #[test]
    fn cache_miss_rates_are_sane(
        ws_kb in 4u64..2048,
        cap_kb in 4u64..512,
        pc in 0.0f64..1.0,
    ) {
        let profile = LocalityProfile::hierarchical(
            (ws_kb << 10) / 4, 0, ws_kb << 10, 0.5, 0.0,
        ).with_pointer_chase(pc);
        let est = MissRateEstimator::new();
        let small = est.global_miss_rate(&profile, cap_kb << 10);
        let big = est.global_miss_rate(&profile, (cap_kb << 10) * 2);
        prop_assert!((0.0..=1.0).contains(&small));
        prop_assert!((0.0..=1.0).contains(&big));
        // Sampling noise allowance.
        prop_assert!(big <= small + 0.05, "big {} vs small {}", big, small);
    }

    /// A concrete LRU cache conserves accesses: hits + misses = accesses,
    /// and re-running the same short stream entirely hits.
    #[test]
    fn cache_access_accounting(seed in any::<u64>()) {
        let mut cache = Cache::new(CacheGeometry::new(16 << 10, 4, 64));
        let mut rng = SplitMix64::new(seed);
        // A stream small enough to be fully resident (32 lines).
        let addrs: Vec<u64> = (0..32).map(|_| rng.next_below(32) * 64).collect();
        for &a in &addrs {
            cache.access(a);
        }
        prop_assert_eq!(cache.hits() + cache.misses(), addrs.len() as u64);
        cache.reset_stats();
        for &a in &addrs {
            prop_assert!(cache.access(a), "resident line missed");
        }
    }

    /// TLB miss rates are probabilities and shrink with reach.
    #[test]
    fn tlb_rates_are_probabilities(
        footprint_mb in 1u64..512,
        entries in 8usize..1024,
    ) {
        let profile = LocalityProfile::pointer_chasing(footprint_mb << 20);
        let small = Tlb::new(entries, 4096).miss_rate(&profile);
        let big = Tlb::new(entries * 2, 4096).miss_rate(&profile);
        prop_assert!((0.0..=1.0).contains(&small));
        prop_assert!(big <= small + 1e-9);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// For any benchmark, energy is conserved through the whole simulator
    /// and scaling a trace down never changes measured power by much
    /// (power is rate-based; time scales instead).
    #[test]
    fn simulation_scaling_invariant(idx in 0usize..61) {
        use lhr::uarch::{ChipConfig, ChipSimulator, ProcessorId};
        let w = &lhr::workloads::catalog()[idx];
        let config = ChipConfig::stock(ProcessorId::Core2DuoE6600.spec());
        let sim = ChipSimulator::new().with_target_slices(48);
        let mut short = w.clone();
        short.scale_trace(0.002);
        let mut longer = w.clone();
        longer.scale_trace(0.004);
        let a = sim.run(&config, &short, 9);
        let b = sim.run(&config, &longer, 9);
        // Time roughly doubles...
        let ratio = b.time.value() / a.time.value();
        prop_assert!((1.6..=2.4).contains(&ratio), "time ratio {}", ratio);
        // ...while average power stays put.
        let p_ratio = b.average_power().value() / a.average_power().value();
        prop_assert!((0.9..=1.1).contains(&p_ratio), "power ratio {}", p_ratio);
    }
}
