//! The 61-benchmark workload suite of the ASPLOS 2011 study.
//!
//! The paper draws 61 benchmarks from six suites -- SPEC CINT2006, SPEC
//! CFP2006, PARSEC, SPECjvm, DaCapo (06-10-MR2 and 9.12), and pjbb2005 --
//! and groups them into the cross product of (native | Java) x (scalable |
//! non-scalable), weighting the four groups equally (Table 1, Section 2.1).
//!
//! The original binaries are proprietary or unbuildable here, so each
//! benchmark is re-expressed as a [`Workload`]: its Table 1 identity
//! (name, suite, group, reference time) plus a resource-usage signature
//! (instruction mix, ILP, memory locality, branch behaviour, thread
//! scalability) drawn from the published characterization literature for
//! that benchmark, feeding the `lhr-trace` generators. Managed (Java)
//! workloads additionally carry a [`ManagedProfile`] describing the JVM
//! runtime services -- garbage collection and JIT compilation -- that run
//! *concurrently* with the application; Workload Finding 1 of the paper
//! (single-threaded Java speeds up on a second core) is a direct
//! consequence of those services, so they are modelled as real extra
//! software threads, not as a fudge factor.
//!
//! # Example
//!
//! ```
//! use lhr_workloads::{catalog, Group};
//!
//! let all = catalog();
//! assert_eq!(all.len(), 61);
//! let mcf = lhr_workloads::by_name("mcf").unwrap();
//! assert_eq!(mcf.group(), Group::NativeNonScalable);
//! // Non-scalable natives spawn exactly one application thread.
//! assert_eq!(mcf.software_threads(8).len(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod catalog;
mod types;
mod workload;

pub use catalog::{by_name, catalog, group_members, SIM_INSTRUCTIONS_PER_REFERENCE_SECOND};
pub use types::{Group, Language, ManagedProfile, Suite, ThreadModel, ThreadRole};
pub use workload::{SoftwareThread, Workload};
