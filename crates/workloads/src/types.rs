//! Classification types for the benchmark suite.

use std::fmt;

use serde::{Deserialize, Serialize};

/// The benchmark suite a workload originates from (Table 1 "Src" column).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Suite {
    /// SPEC CINT2006 ("SI").
    SpecInt2006,
    /// SPEC CFP2006 ("SF").
    SpecFp2006,
    /// PARSEC ("PA").
    Parsec,
    /// SPECjvm98 ("SJ").
    SpecJvm,
    /// DaCapo 06-10-MR2 ("D6").
    DaCapo06,
    /// DaCapo 9.12 ("D9").
    DaCapo9,
    /// pjbb2005, the fixed-workload SPECjbb2005 variant ("JB").
    Pjbb2005,
}

impl fmt::Display for Suite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Suite::SpecInt2006 => "SPEC CINT2006",
            Suite::SpecFp2006 => "SPEC CFP2006",
            Suite::Parsec => "PARSEC",
            Suite::SpecJvm => "SPECjvm",
            Suite::DaCapo06 => "DaCapo 06-10-MR2",
            Suite::DaCapo9 => "DaCapo 9.12",
            Suite::Pjbb2005 => "pjbb2005",
        };
        f.write_str(s)
    }
}

/// The four equally weighted workload groups (Section 2.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Group {
    /// Single-threaded C/C++/Fortran from SPEC CPU2006.
    NativeNonScalable,
    /// Multithreaded C/C++ from PARSEC.
    NativeScalable,
    /// Java benchmarks that do not scale well (single- and multithreaded).
    JavaNonScalable,
    /// Multithreaded Java that scales like the native scalables.
    JavaScalable,
}

impl Group {
    /// All four groups, in the paper's presentation order.
    pub const ALL: [Group; 4] = [
        Group::NativeNonScalable,
        Group::NativeScalable,
        Group::JavaNonScalable,
        Group::JavaScalable,
    ];

    /// The implementation language class of the group.
    #[must_use]
    pub fn language(self) -> Language {
        match self {
            Group::NativeNonScalable | Group::NativeScalable => Language::Native,
            Group::JavaNonScalable | Group::JavaScalable => Language::Java,
        }
    }

    /// Whether the group's benchmarks speed up with added hardware contexts.
    #[must_use]
    pub fn is_scalable(self) -> bool {
        matches!(self, Group::NativeScalable | Group::JavaScalable)
    }
}

impl fmt::Display for Group {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Group::NativeNonScalable => "Native Non-scalable",
            Group::NativeScalable => "Native Scalable",
            Group::JavaNonScalable => "Java Non-scalable",
            Group::JavaScalable => "Java Scalable",
        };
        f.write_str(s)
    }
}

/// Native (compiled ahead of time) versus managed (JIT + GC) languages.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Language {
    /// C, C++, Fortran: compiled ahead of time, no runtime services.
    Native,
    /// Java: dynamic compilation, garbage collection, runtime services.
    Java,
}

impl fmt::Display for Language {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Language::Native => "native",
            Language::Java => "Java",
        })
    }
}

/// How a workload's application threads scale across hardware contexts.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ThreadModel {
    /// One application thread, always.
    Single,
    /// `n = min(max_threads, contexts)` application threads.
    Parallel {
        /// Upper bound on spawned threads; `usize::MAX` means "as many as
        /// there are hardware contexts" (the PARSEC convention).
        max_threads: usize,
        /// Amdahl parallel fraction of the total work.
        parallel_fraction: f64,
        /// Extra work per thread per additional peer (synchronization,
        /// communication, redundant computation), as a fraction.
        sync_overhead_per_thread: f64,
    },
}

impl ThreadModel {
    /// A fully-scalable parallel model with the given Amdahl fraction and
    /// per-peer sync overhead.
    #[must_use]
    pub fn parallel(parallel_fraction: f64, sync_overhead_per_thread: f64) -> Self {
        ThreadModel::Parallel {
            max_threads: usize::MAX,
            parallel_fraction,
            sync_overhead_per_thread,
        }
    }

    /// A parallel model capped at `max_threads` application threads.
    #[must_use]
    pub fn parallel_capped(
        max_threads: usize,
        parallel_fraction: f64,
        sync_overhead_per_thread: f64,
    ) -> Self {
        ThreadModel::Parallel {
            max_threads,
            parallel_fraction,
            sync_overhead_per_thread,
        }
    }

    /// Number of application threads spawned given available contexts.
    ///
    /// # Panics
    ///
    /// Panics if `contexts` is zero.
    #[must_use]
    pub fn app_threads(&self, contexts: usize) -> usize {
        assert!(contexts > 0, "need at least one hardware context");
        match *self {
            ThreadModel::Single => 1,
            ThreadModel::Parallel { max_threads, .. } => contexts.min(max_threads).max(1),
        }
    }
}

/// JVM runtime-service profile attached to managed workloads.
///
/// The JVM's services -- GC, JIT compilation, profiling -- are concurrent
/// and parallel (Section 3.1 of the paper), so they appear in the simulation
/// as additional software threads plus a cache/TLB *displacement* penalty
/// when they are co-scheduled onto the application's hardware context.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ManagedProfile {
    /// GC work as a fraction of application work.
    pub gc_work_fraction: f64,
    /// JIT compilation work as a fraction of application work (mostly
    /// front-loaded; the methodology measures the fifth steady-state
    /// iteration, so this is the residual recompilation activity).
    pub jit_work_fraction: f64,
    /// Multiplier on the application's cache/TLB miss rates when a service
    /// thread shares its hardware context (the displacement effect the
    /// paper diagnoses via DTLB counters for `db`).
    pub displacement_miss_factor: f64,
    /// Number of parallel GC threads.
    pub gc_threads: usize,
    /// Run-to-run coefficient of variation induced by adaptive JIT and GC
    /// timing (why the methodology needs 20 invocations).
    pub nondeterminism_cv: f64,
}

impl ManagedProfile {
    /// A typical steady-state HotSpot profile for a medium-heap benchmark.
    #[must_use]
    pub fn typical() -> Self {
        Self {
            gc_work_fraction: 0.08,
            jit_work_fraction: 0.03,
            displacement_miss_factor: 1.35,
            gc_threads: 1,
            nondeterminism_cv: 0.015,
        }
    }

    /// A JRockit-like runtime: a heavier optimizing compiler that runs
    /// longer (JRockit compiles everything, having no interpreter) and a
    /// somewhat larger collector footprint. The paper measured aggregate
    /// power differences of up to 10% between JVMs (Section 2.2).
    #[must_use]
    pub fn jrockit_like() -> Self {
        Self {
            gc_work_fraction: 0.09,
            jit_work_fraction: 0.07,
            displacement_miss_factor: 1.40,
            gc_threads: 1,
            nondeterminism_cv: 0.018,
        }
    }

    /// A J9-like runtime: leaner compilation, slightly lighter GC, tighter
    /// run-to-run variation.
    #[must_use]
    pub fn j9_like() -> Self {
        Self {
            gc_work_fraction: 0.07,
            jit_work_fraction: 0.02,
            displacement_miss_factor: 1.30,
            gc_threads: 1,
            nondeterminism_cv: 0.012,
        }
    }

    /// Sets the GC work fraction.
    #[must_use]
    pub fn with_gc(mut self, fraction: f64) -> Self {
        self.gc_work_fraction = fraction;
        self
    }

    /// Sets the JIT work fraction.
    #[must_use]
    pub fn with_jit(mut self, fraction: f64) -> Self {
        self.jit_work_fraction = fraction;
        self
    }

    /// Sets the displacement miss factor.
    #[must_use]
    pub fn with_displacement(mut self, factor: f64) -> Self {
        self.displacement_miss_factor = factor;
        self
    }

    /// Sets the GC thread count.
    #[must_use]
    pub fn with_gc_threads(mut self, n: usize) -> Self {
        self.gc_threads = n;
        self
    }
}

/// The role of a software thread within a workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ThreadRole {
    /// Application (mutator) work.
    Application,
    /// Garbage-collection service work.
    GcService,
    /// JIT-compilation service work.
    JitService,
}

impl ThreadRole {
    /// Whether this is a VM service rather than application work.
    #[must_use]
    pub fn is_service(self) -> bool {
        !matches!(self, ThreadRole::Application)
    }
}

impl fmt::Display for ThreadRole {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ThreadRole::Application => "app",
            ThreadRole::GcService => "gc",
            ThreadRole::JitService => "jit",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_language_and_scalability() {
        assert_eq!(Group::NativeNonScalable.language(), Language::Native);
        assert_eq!(Group::JavaScalable.language(), Language::Java);
        assert!(Group::NativeScalable.is_scalable());
        assert!(Group::JavaScalable.is_scalable());
        assert!(!Group::NativeNonScalable.is_scalable());
        assert!(!Group::JavaNonScalable.is_scalable());
        assert_eq!(Group::ALL.len(), 4);
    }

    #[test]
    fn thread_model_counts() {
        assert_eq!(ThreadModel::Single.app_threads(8), 1);
        assert_eq!(ThreadModel::parallel(0.9, 0.01).app_threads(8), 8);
        assert_eq!(
            ThreadModel::parallel_capped(2, 0.9, 0.01).app_threads(8),
            2
        );
        assert_eq!(ThreadModel::parallel(0.9, 0.01).app_threads(1), 1);
    }

    #[test]
    #[should_panic(expected = "at least one hardware context")]
    fn zero_contexts_panics() {
        let _ = ThreadModel::Single.app_threads(0);
    }

    #[test]
    fn managed_profile_builders() {
        let p = ManagedProfile::typical()
            .with_gc(0.12)
            .with_jit(0.05)
            .with_displacement(1.8)
            .with_gc_threads(2);
        assert_eq!(p.gc_work_fraction, 0.12);
        assert_eq!(p.jit_work_fraction, 0.05);
        assert_eq!(p.displacement_miss_factor, 1.8);
        assert_eq!(p.gc_threads, 2);
    }

    #[test]
    fn role_predicates() {
        assert!(!ThreadRole::Application.is_service());
        assert!(ThreadRole::GcService.is_service());
        assert!(ThreadRole::JitService.is_service());
    }

    #[test]
    fn displays() {
        assert_eq!(Suite::Parsec.to_string(), "PARSEC");
        assert_eq!(Group::JavaNonScalable.to_string(), "Java Non-scalable");
        assert_eq!(Language::Java.to_string(), "Java");
        assert_eq!(ThreadRole::GcService.to_string(), "gc");
    }
}
