//! The benchmark catalog: all 61 workloads of Table 1.
//!
//! Each entry records the benchmark's Table 1 identity (name, suite, group,
//! reference running time in seconds) and a resource-usage *signature* --
//! instruction mix, ILP/MLP, branch behaviour, working-set structure, thread
//! scalability, and (for Java) the JVM service profile. Signatures follow
//! the published characterization literature for each benchmark: `mcf` and
//! `omnetpp` are pointer-chasing and memory-bound, `hmmer` and `namd` are
//! ILP-rich and cache-resident, `lbm` and `libquantum` are bandwidth
//! streamers, `fluidanimate` is the hot vectorized outlier, DaCapo heaps are
//! large and pointer-rich, and so on. Absolute values are first-order; what
//! the reproduction relies on is the *relative* structure.

// Every signature literal ends in `..Sig::default()` so entries stay
// uniform as fields are added, even where all current fields are spelled
// out.
#![allow(clippy::needless_update)]

use std::collections::HashMap;
use std::sync::OnceLock;

use lhr_trace::{InstructionMix, LocalityProfile, Phase, ThreadTrace};

use crate::types::{Group, ManagedProfile, Suite, ThreadModel};
use crate::workload::Workload;

/// Abstract instructions simulated per second of Table 1 reference time.
///
/// The trace generator sizes each benchmark's dynamic instruction count as
/// `reference_seconds x` this rate, so a machine sustaining ~3 G abstract
/// ops/s reproduces the reference time scale. Normalized results are
/// independent of this constant (it cancels in every ratio); it only sets
/// the absolute time axis.
pub const SIM_INSTRUCTIONS_PER_REFERENCE_SECOND: f64 = 3.0e9;

/// Workload signature: the knobs that differ per benchmark.
#[derive(Clone, Copy)]
struct Sig {
    ilp: f64,
    mlp: f64,
    /// Baseline fraction of branches mispredicted.
    mp: f64,
    /// `[int, fp, load, store, branch]` fractions.
    mix: [f64; 5],
    hot_kb: u64,
    warm_kb: u64,
    total_mb: f64,
    /// Fraction of accesses to the hot tier.
    hf: f64,
    /// Fraction of accesses to the warm tier.
    wf: f64,
    /// Pointer-chase fraction of cold accesses.
    pc: f64,
    /// Switching-activity factor.
    act: f64,
}

impl Default for Sig {
    fn default() -> Self {
        Self {
            ilp: 2.0,
            mlp: 1.8,
            mp: 0.04,
            mix: MIX_INT,
            hot_kb: 64,
            warm_kb: 512,
            total_mb: 32.0,
            hf: 0.80,
            wf: 0.12,
            pc: 0.1,
            act: 1.0,
        }
    }
}

const MIX_INT: [f64; 5] = [0.45, 0.02, 0.25, 0.10, 0.18];
const MIX_INT_MEM: [f64; 5] = [0.38, 0.01, 0.33, 0.11, 0.17];
const MIX_FP: [f64; 5] = [0.25, 0.33, 0.26, 0.09, 0.07];
const MIX_FP_MEM: [f64; 5] = [0.22, 0.28, 0.31, 0.12, 0.07];
const MIX_JAVA: [f64; 5] = [0.40, 0.02, 0.28, 0.12, 0.18];
const MIX_JAVA_FP: [f64; 5] = [0.30, 0.20, 0.26, 0.10, 0.14];

fn mix_of(parts: [f64; 5]) -> InstructionMix {
    InstructionMix::builder()
        .int_alu(parts[0])
        .fp(parts[1])
        .load(parts[2])
        .store(parts[3])
        .branch(parts[4])
        .build()
        .expect("catalog mixes are valid by construction")
}

fn locality_of(s: &Sig) -> LocalityProfile {
    let total = ((s.total_mb * 1024.0 * 1024.0) as u64).max(8);
    let hot = (s.hot_kb * 1024).min(total);
    let warm = (s.warm_kb * 1024).min(total - hot);
    LocalityProfile::hierarchical(hot, warm, total, s.hf, s.wf).with_pointer_chase(s.pc)
}

/// A native benchmark's trace: one steady phase.
fn native_trace(s: &Sig, ref_seconds: f64) -> ThreadTrace {
    let n = (ref_seconds * SIM_INSTRUCTIONS_PER_REFERENCE_SECOND) as u64;
    let phase = Phase::new("steady", 1.0, mix_of(s.mix), s.ilp, locality_of(s))
        .with_branch_mispredict_rate(s.mp)
        .with_mlp(s.mlp)
        .with_activity(s.act);
    ThreadTrace::uniform(phase, n)
}

/// A Java benchmark's trace: a short warmup phase (residual compilation,
/// cold caches; lower ILP, worse prediction) followed by steady state.
fn java_trace(s: &Sig, ref_seconds: f64) -> ThreadTrace {
    let n = (ref_seconds * SIM_INSTRUCTIONS_PER_REFERENCE_SECOND) as u64;
    let warm = Phase::new("warmup", 0.08, mix_of(s.mix), (s.ilp * 0.75).max(1.0), locality_of(s))
        .with_branch_mispredict_rate((s.mp * 1.5).min(1.0))
        .with_mlp(s.mlp)
        .with_activity(s.act * 0.95);
    let steady = Phase::new("steady", 0.92, mix_of(s.mix), s.ilp, locality_of(s))
        .with_branch_mispredict_rate(s.mp)
        .with_mlp(s.mlp)
        .with_activity(s.act);
    ThreadTrace::new(vec![warm, steady], n).expect("weights sum to one")
}

/// Native non-scalable (SPEC CPU2006) entry.
fn nn(name: &'static str, desc: &'static str, suite: Suite, ref_s: f64, s: Sig) -> Workload {
    Workload::new(
        name,
        desc,
        suite,
        Group::NativeNonScalable,
        ref_s,
        native_trace(&s, ref_s),
        ThreadModel::Single,
        None,
    )
}

/// Native scalable (PARSEC) entry.
fn ns(
    name: &'static str,
    desc: &'static str,
    ref_s: f64,
    s: Sig,
    parallel_fraction: f64,
    sync: f64,
) -> Workload {
    Workload::new(
        name,
        desc,
        Suite::Parsec,
        Group::NativeScalable,
        ref_s,
        native_trace(&s, ref_s),
        ThreadModel::parallel(parallel_fraction, sync),
        None,
    )
}

/// Java entry (group chosen by caller), with explicit thread model.
#[allow(clippy::too_many_arguments)]
fn java(
    name: &'static str,
    desc: &'static str,
    suite: Suite,
    group: Group,
    ref_s: f64,
    s: Sig,
    threads: ThreadModel,
    managed: ManagedProfile,
) -> Workload {
    Workload::new(
        name,
        desc,
        suite,
        group,
        ref_s,
        java_trace(&s, ref_s),
        threads,
        Some(managed),
    )
}

fn build_catalog() -> Vec<Workload> {
    use Suite::*;
    let mut v = Vec::with_capacity(61);

    // ---- Native Non-scalable: SPEC CINT2006 (12) --------------------------
    v.push(nn("perlbench", "Perl programming language", SpecInt2006, 1037.0, Sig {
        ilp: 2.1, mp: 0.055, hot_kb: 32, warm_kb: 512, total_mb: 50.0,
        hf: 0.80, wf: 0.15, pc: 0.2, ..Sig::default()
    }));
    v.push(nn("bzip2", "bzip2 Compression", SpecInt2006, 1563.0, Sig {
        ilp: 1.9, mp: 0.045, hot_kb: 256, warm_kb: 2048, total_mb: 8.0,
        hf: 0.70, wf: 0.20, pc: 0.1, ..Sig::default()
    }));
    v.push(nn("gcc", "C optimizing compiler", SpecInt2006, 851.0, Sig {
        ilp: 1.8, mp: 0.060, hot_kb: 64, warm_kb: 2048, total_mb: 90.0,
        hf: 0.60, wf: 0.25, pc: 0.3, act: 0.95, ..Sig::default()
    }));
    v.push(nn("mcf", "Combinatorial opt/single-depot vehicle scheduling", SpecInt2006, 894.0, Sig {
        ilp: 1.15, mlp: 2.8, mp: 0.050, mix: MIX_INT_MEM, hot_kb: 32, warm_kb: 4096,
        total_mb: 680.0, hf: 0.35, wf: 0.20, pc: 0.85, act: 0.70, ..Sig::default()
    }));
    v.push(nn("gobmk", "AI: Go game", SpecInt2006, 1113.0, Sig {
        ilp: 1.8, mp: 0.085, hot_kb: 64, warm_kb: 512, total_mb: 28.0,
        hf: 0.80, wf: 0.15, pc: 0.1, ..Sig::default()
    }));
    v.push(nn("hmmer", "Search a gene sequence database", SpecInt2006, 1024.0, Sig {
        ilp: 3.1, mp: 0.015, hot_kb: 32, warm_kb: 128, total_mb: 16.0,
        hf: 0.92, wf: 0.06, pc: 0.0, act: 1.15, ..Sig::default()
    }));
    v.push(nn("sjeng", "AI: tree search & pattern recognition", SpecInt2006, 1315.0, Sig {
        ilp: 1.9, mp: 0.080, hot_kb: 64, warm_kb: 512, total_mb: 170.0,
        hf: 0.82, wf: 0.12, pc: 0.2, ..Sig::default()
    }));
    v.push(nn("libquantum", "Physics / Quantum Computing", SpecInt2006, 629.0, Sig {
        ilp: 1.6, mlp: 3.5, mp: 0.010, mix: MIX_INT_MEM, hot_kb: 16, warm_kb: 64,
        total_mb: 64.0, hf: 0.30, wf: 0.05, pc: 0.0, act: 0.85, ..Sig::default()
    }));
    v.push(nn("h264ref", "H.264/AVC video compression", SpecInt2006, 1533.0, Sig {
        ilp: 2.9, mp: 0.030, hot_kb: 128, warm_kb: 1024, total_mb: 30.0,
        hf: 0.85, wf: 0.12, pc: 0.0, act: 1.25, ..Sig::default()
    }));
    v.push(nn("omnetpp", "Ethernet network simulation based on OMNeT++", SpecInt2006, 905.0, Sig {
        ilp: 1.3, mlp: 2.0, mp: 0.055, mix: MIX_INT_MEM, hot_kb: 64, warm_kb: 2048,
        total_mb: 160.0, hf: 0.45, wf: 0.20, pc: 0.7, act: 0.70, ..Sig::default()
    }));
    v.push(nn("astar", "Portable 2D path-finding library", SpecInt2006, 1154.0, Sig {
        ilp: 1.4, mlp: 2.0, mp: 0.050, mix: MIX_INT_MEM, hot_kb: 64, warm_kb: 1024,
        total_mb: 200.0, hf: 0.55, wf: 0.20, pc: 0.6, act: 0.80, ..Sig::default()
    }));
    v.push(nn("xalancbmk", "XSLT processor for transforming XML", SpecInt2006, 787.0, Sig {
        ilp: 1.7, mp: 0.060, hot_kb: 64, warm_kb: 1024, total_mb: 200.0,
        hf: 0.60, wf: 0.20, pc: 0.5, act: 0.90, ..Sig::default()
    }));

    // ---- Native Non-scalable: SPEC CFP2006 (15) ---------------------------
    v.push(nn("gamess", "Quantum chemical computations", SpecFp2006, 3505.0, Sig {
        ilp: 3.2, mp: 0.012, mix: MIX_FP, hot_kb: 128, warm_kb: 1024, total_mb: 20.0,
        hf: 0.90, wf: 0.08, pc: 0.0, act: 1.30, ..Sig::default()
    }));
    v.push(nn("milc", "Physics/quantum chromodynamics (QCD)", SpecFp2006, 640.0, Sig {
        ilp: 1.5, mlp: 3.0, mp: 0.010, mix: MIX_FP_MEM, hot_kb: 32, warm_kb: 256,
        total_mb: 680.0, hf: 0.30, wf: 0.10, pc: 0.05, act: 0.90, ..Sig::default()
    }));
    v.push(nn("zeusmp", "Physics/Magnetohydrodynamics based on ZEUS-MP", SpecFp2006, 1541.0, Sig {
        ilp: 2.3, mlp: 2.5, mp: 0.015, mix: MIX_FP, hot_kb: 128, warm_kb: 2048,
        total_mb: 500.0, hf: 0.55, wf: 0.20, pc: 0.0, act: 1.10, ..Sig::default()
    }));
    v.push(nn("gromacs", "Molecular dynamics simulation", SpecFp2006, 983.0, Sig {
        ilp: 2.9, mp: 0.020, mix: MIX_FP, hot_kb: 128, warm_kb: 512, total_mb: 14.0,
        hf: 0.88, wf: 0.10, pc: 0.0, act: 1.30, ..Sig::default()
    }));
    v.push(nn("cactusADM", "Cactus and BenchADM physics/relativity kernels", SpecFp2006, 1994.0, Sig {
        ilp: 2.0, mlp: 3.2, mp: 0.008, mix: MIX_FP_MEM, hot_kb: 64, warm_kb: 1024,
        total_mb: 700.0, hf: 0.40, wf: 0.15, pc: 0.0, act: 1.00, ..Sig::default()
    }));
    v.push(nn("leslie3d", "Linear-Eddy Model in 3D computational fluid dynamics", SpecFp2006, 1512.0, Sig {
        ilp: 2.1, mlp: 3.0, mp: 0.010, mix: MIX_FP_MEM, hot_kb: 64, warm_kb: 1024,
        total_mb: 130.0, hf: 0.45, wf: 0.18, pc: 0.0, act: 1.10, ..Sig::default()
    }));
    v.push(nn("namd", "Parallel simulation of large biomolecular systems", SpecFp2006, 1225.0, Sig {
        ilp: 3.0, mp: 0.015, mix: MIX_FP, hot_kb: 256, warm_kb: 1024, total_mb: 50.0,
        hf: 0.90, wf: 0.08, pc: 0.0, act: 1.35, ..Sig::default()
    }));
    v.push(nn("dealII", "PDEs with adaptive finite element method", SpecFp2006, 832.0, Sig {
        ilp: 2.4, mp: 0.030, mix: MIX_FP, hot_kb: 128, warm_kb: 2048, total_mb: 800.0,
        hf: 0.75, wf: 0.15, pc: 0.2, act: 1.10, ..Sig::default()
    }));
    v.push(nn("soplex", "Simplex linear program solver", SpecFp2006, 1024.0, Sig {
        ilp: 1.6, mlp: 2.5, mp: 0.040, mix: MIX_FP_MEM, hot_kb: 64, warm_kb: 1024,
        total_mb: 440.0, hf: 0.50, wf: 0.20, pc: 0.4, act: 0.85, ..Sig::default()
    }));
    v.push(nn("povray", "Ray-tracer", SpecFp2006, 636.0, Sig {
        ilp: 2.7, mp: 0.045, mix: MIX_FP, hot_kb: 64, warm_kb: 512, total_mb: 6.0,
        hf: 0.92, wf: 0.06, pc: 0.1, act: 1.30, ..Sig::default()
    }));
    v.push(nn("calculix", "Finite element code for linear and nonlinear 3D structural applications", SpecFp2006, 1130.0, Sig {
        ilp: 2.8, mp: 0.020, mix: MIX_FP, hot_kb: 128, warm_kb: 1024, total_mb: 180.0,
        hf: 0.80, wf: 0.12, pc: 0.0, act: 1.25, ..Sig::default()
    }));
    v.push(nn("GemsFDTD", "Solves the Maxwell equations in 3D in the time domain", SpecFp2006, 1648.0, Sig {
        ilp: 1.9, mlp: 3.2, mp: 0.008, mix: MIX_FP_MEM, hot_kb: 64, warm_kb: 1024,
        total_mb: 850.0, hf: 0.40, wf: 0.15, pc: 0.0, act: 1.00, ..Sig::default()
    }));
    v.push(nn("tonto", "Quantum crystallography", SpecFp2006, 1439.0, Sig {
        ilp: 2.5, mp: 0.020, mix: MIX_FP, hot_kb: 128, warm_kb: 1024, total_mb: 45.0,
        hf: 0.85, wf: 0.10, pc: 0.0, act: 1.20, ..Sig::default()
    }));
    v.push(nn("lbm", "Lattice Boltzmann Method for incompressible fluids", SpecFp2006, 1298.0, Sig {
        ilp: 2.0, mlp: 3.5, mp: 0.005, mix: MIX_FP_MEM, hot_kb: 32, warm_kb: 256,
        total_mb: 410.0, hf: 0.25, wf: 0.08, pc: 0.0, act: 1.05, ..Sig::default()
    }));
    v.push(nn("sphinx3", "Speech recognition", SpecFp2006, 2007.0, Sig {
        ilp: 2.0, mlp: 2.2, mp: 0.030, mix: MIX_FP, hot_kb: 64, warm_kb: 1024,
        total_mb: 45.0, hf: 0.70, wf: 0.20, pc: 0.1, act: 1.00, ..Sig::default()
    }));

    // ---- Native Scalable: PARSEC (11) -------------------------------------
    v.push(ns("blackscholes", "Prices options with Black-Scholes PDE", 482.0, Sig {
        ilp: 2.8, mp: 0.010, mix: MIX_FP, hot_kb: 128, warm_kb: 512, total_mb: 4.0,
        hf: 0.90, wf: 0.08, pc: 0.0, act: 1.30, ..Sig::default()
    }, 0.950, 0.005));
    v.push(ns("bodytrack", "Tracks a markerless human body", 471.0, Sig {
        ilp: 2.2, mp: 0.035, mix: MIX_FP, hot_kb: 128, warm_kb: 1024, total_mb: 32.0,
        hf: 0.80, wf: 0.14, pc: 0.1, act: 1.10, ..Sig::default()
    }, 0.900, 0.025));
    v.push(ns("canneal", "Minimizes the routing cost of a chip design with cache-aware simulated annealing", 301.0, Sig {
        ilp: 1.3, mlp: 2.5, mp: 0.040, mix: MIX_INT_MEM, hot_kb: 64, warm_kb: 2048,
        total_mb: 900.0, hf: 0.35, wf: 0.15, pc: 0.85, act: 0.75, ..Sig::default()
    }, 0.860, 0.025));
    v.push(ns("facesim", "Simulates human face motions", 1230.0, Sig {
        ilp: 2.2, mlp: 2.5, mp: 0.015, mix: MIX_FP, hot_kb: 128, warm_kb: 2048,
        total_mb: 300.0, hf: 0.60, wf: 0.20, pc: 0.0, act: 1.15, ..Sig::default()
    }, 0.880, 0.020));
    v.push(ns("ferret", "Image search", 738.0, Sig {
        ilp: 2.0, mp: 0.035, hot_kb: 128, warm_kb: 1024, total_mb: 60.0,
        hf: 0.72, wf: 0.18, pc: 0.2, act: 1.05, ..Sig::default()
    }, 0.910, 0.015));
    v.push(ns("fluidanimate", "Fluid motion physics for realtime animation with SPH algorithm", 812.0, Sig {
        ilp: 2.4, mp: 0.015, mix: MIX_FP, hot_kb: 256, warm_kb: 2048, total_mb: 120.0,
        hf: 0.70, wf: 0.20, pc: 0.05, act: 1.50, ..Sig::default()
    }, 0.930, 0.010));
    v.push(ns("raytrace", "Uses physical simulation for visualization", 1970.0, Sig {
        ilp: 2.3, mp: 0.030, mix: MIX_FP, hot_kb: 128, warm_kb: 2048, total_mb: 100.0,
        hf: 0.80, wf: 0.14, pc: 0.2, act: 1.20, ..Sig::default()
    }, 0.880, 0.020));
    v.push(ns("streamcluster", "Computes an approximation for the optimal clustering of a stream of data points", 629.0, Sig {
        ilp: 1.7, mlp: 3.0, mp: 0.010, mix: MIX_FP_MEM, hot_kb: 32, warm_kb: 256,
        total_mb: 110.0, hf: 0.30, wf: 0.10, pc: 0.0, act: 0.95, ..Sig::default()
    }, 0.910, 0.020));
    v.push(ns("swaptions", "Prices a portfolio of swaptions with the Heath-Jarrow-Morton framework", 612.0, Sig {
        ilp: 3.0, mp: 0.010, mix: MIX_FP, hot_kb: 64, warm_kb: 256, total_mb: 3.0,
        hf: 0.93, wf: 0.05, pc: 0.0, act: 1.35, ..Sig::default()
    }, 0.950, 0.005));
    v.push(ns("vips", "Applies transformations to an image", 297.0, Sig {
        ilp: 2.3, mp: 0.025, hot_kb: 128, warm_kb: 1024, total_mb: 50.0,
        hf: 0.75, wf: 0.15, pc: 0.0, act: 1.10, ..Sig::default()
    }, 0.920, 0.015));
    v.push(ns("x264", "MPEG-4 AVC / H.264 video encoder", 265.0, Sig {
        ilp: 2.7, mp: 0.030, hot_kb: 256, warm_kb: 1024, total_mb: 30.0,
        hf: 0.82, wf: 0.14, pc: 0.0, act: 1.30, ..Sig::default()
    }, 0.880, 0.025));

    // ---- Java Non-scalable: SPECjvm (7) ------------------------------------
    let jn = Group::JavaNonScalable;
    v.push(java("compress", "Lempel-Ziv compression", SpecJvm, jn, 5.3, Sig {
        ilp: 1.9, mp: 0.040, mix: MIX_JAVA, hot_kb: 128, warm_kb: 1024, total_mb: 30.0,
        hf: 0.75, wf: 0.15, pc: 0.1, ..Sig::default()
    }, ThreadModel::Single,
        ManagedProfile::typical().with_gc(0.04).with_jit(0.02).with_displacement(1.25)));
    v.push(java("jess", "Java expert system shell", SpecJvm, jn, 1.4, Sig {
        ilp: 1.7, mp: 0.055, mix: MIX_JAVA, hot_kb: 64, warm_kb: 512, total_mb: 8.0,
        hf: 0.80, wf: 0.12, pc: 0.2, ..Sig::default()
    }, ThreadModel::Single,
        ManagedProfile::typical().with_gc(0.06).with_jit(0.05).with_displacement(1.30)));
    v.push(java("db", "Small data management program", SpecJvm, jn, 6.8, Sig {
        ilp: 1.4, mlp: 2.0, mp: 0.050, mix: MIX_JAVA, hot_kb: 32, warm_kb: 2048,
        total_mb: 40.0, hf: 0.45, wf: 0.25, pc: 0.6, act: 0.85, ..Sig::default()
    }, ThreadModel::Single,
        ManagedProfile::typical().with_gc(0.10).with_jit(0.02).with_displacement(2.60)));
    v.push(java("javac", "The JDK 1.0.2 Java compiler", SpecJvm, jn, 3.0, Sig {
        ilp: 1.7, mp: 0.060, mix: MIX_JAVA, hot_kb: 64, warm_kb: 1024, total_mb: 20.0,
        hf: 0.70, wf: 0.18, pc: 0.3, ..Sig::default()
    }, ThreadModel::Single,
        ManagedProfile::typical().with_gc(0.10).with_jit(0.06).with_displacement(1.40)));
    v.push(java("mpegaudio", "MPEG-3 audio stream decoder", SpecJvm, jn, 3.1, Sig {
        ilp: 2.4, mp: 0.025, mix: MIX_JAVA_FP, hot_kb: 64, warm_kb: 256, total_mb: 4.0,
        hf: 0.90, wf: 0.07, pc: 0.0, act: 1.15, ..Sig::default()
    }, ThreadModel::Single,
        ManagedProfile::typical().with_gc(0.02).with_jit(0.03).with_displacement(1.10)));
    v.push(java("mtrt", "Dual-threaded raytracer", SpecJvm, jn, 0.8, Sig {
        ilp: 2.0, mp: 0.035, mix: MIX_JAVA_FP, hot_kb: 64, warm_kb: 512, total_mb: 16.0,
        hf: 0.82, wf: 0.12, pc: 0.1, act: 1.10, ..Sig::default()
    }, ThreadModel::parallel_capped(2, 0.85, 0.010),
        ManagedProfile::typical().with_gc(0.08).with_jit(0.05).with_displacement(1.30)));
    v.push(java("jack", "Parser generator with lexical analysis", SpecJvm, jn, 2.4, Sig {
        ilp: 1.6, mp: 0.070, mix: MIX_JAVA, hot_kb: 64, warm_kb: 512, total_mb: 12.0,
        hf: 0.78, wf: 0.14, pc: 0.2, ..Sig::default()
    }, ThreadModel::Single,
        ManagedProfile::typical().with_gc(0.07).with_jit(0.05).with_displacement(1.35)));

    // ---- Java Non-scalable: DaCapo 06-10-MR2 (2) ---------------------------
    v.push(java("antlr", "Parser and translator generator", DaCapo06, jn, 2.9, Sig {
        ilp: 1.7, mp: 0.060, mix: MIX_JAVA, hot_kb: 64, warm_kb: 1024, total_mb: 25.0,
        hf: 0.72, wf: 0.16, pc: 0.3, ..Sig::default()
    }, ThreadModel::Single,
        // antlr spends ~50% of its time in the JVM (Section 3.1).
        ManagedProfile::typical().with_gc(0.12).with_jit(0.25).with_displacement(1.50)));
    v.push(java("bloat", "Java bytecode optimization and analysis tool", DaCapo06, jn, 7.6, Sig {
        ilp: 1.6, mp: 0.055, mix: MIX_JAVA, hot_kb: 64, warm_kb: 1024, total_mb: 50.0,
        hf: 0.68, wf: 0.18, pc: 0.35, ..Sig::default()
    }, ThreadModel::Single,
        ManagedProfile::typical().with_gc(0.09).with_jit(0.05).with_displacement(1.35)));

    // ---- Java Non-scalable: DaCapo 9.12 (8) --------------------------------
    v.push(java("avrora", "Simulates the AVR microcontroller", DaCapo9, jn, 11.3, Sig {
        ilp: 1.5, mp: 0.050, mix: MIX_JAVA, hot_kb: 64, warm_kb: 256, total_mb: 16.0,
        hf: 0.85, wf: 0.10, pc: 0.1, act: 0.90, ..Sig::default()
    }, ThreadModel::parallel(0.28, 0.090),
        ManagedProfile::typical().with_gc(0.05).with_jit(0.03).with_displacement(1.25)));
    v.push(java("batik", "Scalable Vector Graphics (SVG) toolkit", DaCapo9, jn, 4.0, Sig {
        ilp: 1.9, mp: 0.040, mix: MIX_JAVA_FP, hot_kb: 128, warm_kb: 1024, total_mb: 60.0,
        hf: 0.75, wf: 0.15, pc: 0.2, act: 1.05, ..Sig::default()
    }, ThreadModel::parallel_capped(2, 0.15, 0.030),
        ManagedProfile::typical().with_gc(0.07).with_jit(0.05).with_displacement(1.30)));
    v.push(java("fop", "Output-independent print formatter", DaCapo9, jn, 1.8, Sig {
        ilp: 1.6, mp: 0.055, mix: MIX_JAVA, hot_kb: 64, warm_kb: 1024, total_mb: 40.0,
        hf: 0.70, wf: 0.18, pc: 0.3, ..Sig::default()
    }, ThreadModel::Single,
        ManagedProfile::typical().with_gc(0.09).with_jit(0.08).with_displacement(1.40)));
    v.push(java("h2", "An SQL relational database engine in Java", DaCapo9, jn, 14.4, Sig {
        ilp: 1.4, mlp: 2.2, mp: 0.050, mix: MIX_JAVA, hot_kb: 64, warm_kb: 4096,
        total_mb: 400.0, hf: 0.50, wf: 0.22, pc: 0.5, act: 0.85, ..Sig::default()
    }, ThreadModel::parallel_capped(2, 0.02, 0.100),
        ManagedProfile::typical().with_gc(0.12).with_jit(0.03).with_displacement(1.60)));
    v.push(java("jython", "Python interpreter in Java", DaCapo9, jn, 8.5, Sig {
        ilp: 1.6, mp: 0.065, mix: MIX_JAVA, hot_kb: 64, warm_kb: 1024, total_mb: 60.0,
        hf: 0.72, wf: 0.16, pc: 0.3, ..Sig::default()
    }, ThreadModel::parallel_capped(4, 0.35, 0.030),
        ManagedProfile::typical().with_gc(0.08).with_jit(0.07).with_displacement(1.40)));
    v.push(java("pmd", "Source code analyzer for Java", DaCapo9, jn, 6.9, Sig {
        ilp: 1.6, mp: 0.055, mix: MIX_JAVA, hot_kb: 64, warm_kb: 1024, total_mb: 80.0,
        hf: 0.68, wf: 0.18, pc: 0.4, ..Sig::default()
    }, ThreadModel::parallel_capped(4, 0.06, 0.060),
        ManagedProfile::typical().with_gc(0.08).with_jit(0.05).with_displacement(1.35)));
    v.push(java("tradebeans", "Tradebeans Daytrader benchmark", DaCapo9, jn, 18.4, Sig {
        ilp: 1.5, mp: 0.050, mix: MIX_JAVA, hot_kb: 64, warm_kb: 2048, total_mb: 200.0,
        hf: 0.60, wf: 0.20, pc: 0.4, act: 0.90, ..Sig::default()
    }, ThreadModel::parallel(0.48, 0.030),
        ManagedProfile::typical().with_gc(0.12).with_jit(0.04).with_displacement(1.45)));
    v.push(java("luindex", "A text indexing tool", DaCapo9, jn, 2.4, Sig {
        ilp: 1.8, mp: 0.045, mix: MIX_JAVA, hot_kb: 128, warm_kb: 1024, total_mb: 20.0,
        hf: 0.78, wf: 0.15, pc: 0.15, ..Sig::default()
    }, ThreadModel::Single,
        ManagedProfile::typical().with_gc(0.10).with_jit(0.06).with_displacement(1.40)));

    // ---- Java Non-scalable: pjbb2005 (1) -----------------------------------
    v.push(java("pjbb2005", "Transaction processing, based on SPECjbb2005", Pjbb2005, jn, 10.6, Sig {
        ilp: 1.6, mp: 0.050, mix: MIX_JAVA, hot_kb: 64, warm_kb: 2048, total_mb: 300.0,
        hf: 0.58, wf: 0.22, pc: 0.4, act: 0.95, ..Sig::default()
    }, ThreadModel::parallel(0.78, 0.025),
        ManagedProfile::typical().with_gc(0.12).with_jit(0.03).with_displacement(1.45)
            .with_gc_threads(2)));

    // ---- Java Scalable: DaCapo 9.12 (5) ------------------------------------
    let js = Group::JavaScalable;
    v.push(java("eclipse", "Integrated development environment", DaCapo9, js, 50.5, Sig {
        ilp: 1.8, mp: 0.055, mix: MIX_JAVA, hot_kb: 128, warm_kb: 2048, total_mb: 350.0,
        hf: 0.65, wf: 0.20, pc: 0.35, ..Sig::default()
    }, ThreadModel::parallel(0.82, 0.015),
        ManagedProfile::typical().with_gc(0.10).with_jit(0.08).with_displacement(1.40)));
    v.push(java("lusearch", "Text search tool", DaCapo9, js, 7.9, Sig {
        ilp: 1.8, mp: 0.045, mix: MIX_JAVA, hot_kb: 64, warm_kb: 1024, total_mb: 60.0,
        hf: 0.70, wf: 0.18, pc: 0.25, ..Sig::default()
    }, ThreadModel::parallel(0.86, 0.012),
        ManagedProfile::typical().with_gc(0.12).with_jit(0.03).with_displacement(1.40)));
    v.push(java("sunflow", "Photo-realistic rendering system", DaCapo9, js, 19.4, Sig {
        ilp: 2.5, mp: 0.030, mix: MIX_JAVA_FP, hot_kb: 128, warm_kb: 1024, total_mb: 30.0,
        hf: 0.82, wf: 0.12, pc: 0.1, act: 1.25, ..Sig::default()
    }, ThreadModel::parallel(0.975, 0.002),
        ManagedProfile::typical().with_gc(0.08).with_jit(0.04).with_displacement(1.30)));
    v.push(java("tomcat", "Tomcat servlet container", DaCapo9, js, 8.6, Sig {
        ilp: 1.7, mp: 0.050, mix: MIX_JAVA, hot_kb: 64, warm_kb: 1024, total_mb: 80.0,
        hf: 0.70, wf: 0.18, pc: 0.3, ..Sig::default()
    }, ThreadModel::parallel(0.93, 0.008),
        ManagedProfile::typical().with_gc(0.08).with_jit(0.05).with_displacement(1.35)));
    v.push(java("xalan", "XSLT processor for XML documents", DaCapo9, js, 6.9, Sig {
        ilp: 1.7, mp: 0.050, mix: MIX_JAVA, hot_kb: 64, warm_kb: 1024, total_mb: 60.0,
        hf: 0.68, wf: 0.18, pc: 0.3, ..Sig::default()
    }, ThreadModel::parallel(0.96, 0.005),
        ManagedProfile::typical().with_gc(0.10).with_jit(0.03).with_displacement(1.40)));

    v
}

/// The full 61-benchmark catalog, in Table 1 order.
#[must_use]
pub fn catalog() -> &'static [Workload] {
    static CATALOG: OnceLock<Vec<Workload>> = OnceLock::new();
    CATALOG.get_or_init(build_catalog)
}

/// Looks a benchmark up by its Table 1 name.
#[must_use]
pub fn by_name(name: &str) -> Option<&'static Workload> {
    static INDEX: OnceLock<HashMap<&'static str, usize>> = OnceLock::new();
    let index = INDEX.get_or_init(|| {
        catalog()
            .iter()
            .enumerate()
            .map(|(i, w)| (w.name(), i))
            .collect()
    });
    index.get(name).map(|&i| &catalog()[i])
}

/// All members of one workload group, in catalog order.
#[must_use]
pub fn group_members(group: Group) -> Vec<&'static Workload> {
    catalog().iter().filter(|w| w.group() == group).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{Language, ThreadRole};

    #[test]
    fn sixty_one_benchmarks() {
        assert_eq!(catalog().len(), 61);
    }

    #[test]
    fn group_sizes_match_table1() {
        assert_eq!(group_members(Group::NativeNonScalable).len(), 27);
        assert_eq!(group_members(Group::NativeScalable).len(), 11);
        assert_eq!(group_members(Group::JavaNonScalable).len(), 18);
        assert_eq!(group_members(Group::JavaScalable).len(), 5);
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<&str> = catalog().iter().map(|w| w.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 61);
    }

    #[test]
    fn lookup_by_name() {
        assert_eq!(by_name("mcf").unwrap().reference_seconds(), 894.0);
        assert_eq!(by_name("pjbb2005").unwrap().suite(), Suite::Pjbb2005);
        assert!(by_name("no-such-benchmark").is_none());
    }

    #[test]
    fn reference_times_match_table1_spot_checks() {
        for (name, t) in [
            ("perlbench", 1037.0),
            ("gamess", 3505.0),
            ("x264", 265.0),
            ("compress", 5.3),
            ("eclipse", 50.5),
            ("tradebeans", 18.4),
            ("mtrt", 0.8),
        ] {
            assert_eq!(by_name(name).unwrap().reference_seconds(), t, "{name}");
        }
    }

    #[test]
    fn language_profiles_are_consistent() {
        for w in catalog() {
            match w.language() {
                Language::Java => assert!(w.managed().is_some(), "{}", w.name()),
                Language::Native => assert!(w.managed().is_none(), "{}", w.name()),
            }
        }
    }

    #[test]
    fn java_scalables_are_the_five_most_scalable() {
        let names: Vec<&str> = group_members(Group::JavaScalable)
            .iter()
            .map(|w| w.name())
            .collect();
        for n in ["sunflow", "xalan", "tomcat", "lusearch", "eclipse"] {
            assert!(names.contains(&n), "{n} missing from Java Scalable");
        }
    }

    #[test]
    fn natives_are_single_or_parallel_as_prescribed() {
        for w in group_members(Group::NativeNonScalable) {
            assert!(matches!(w.thread_model(), ThreadModel::Single), "{}", w.name());
        }
        for w in group_members(Group::NativeScalable) {
            assert!(
                matches!(w.thread_model(), ThreadModel::Parallel { .. }),
                "{}",
                w.name()
            );
        }
    }

    #[test]
    fn memory_bound_benchmarks_have_big_footprints() {
        for n in ["mcf", "milc", "cactusADM", "GemsFDTD", "lbm", "canneal"] {
            let w = by_name(n).unwrap();
            let fp = w.trace().phases().last().unwrap().locality().footprint_bytes();
            assert!(fp > 100 << 20, "{n} footprint {fp}");
        }
        // And the cache-friendly ones stay small.
        for n in ["povray", "swaptions", "blackscholes", "mpegaudio"] {
            let w = by_name(n).unwrap();
            let fp = w.trace().phases().last().unwrap().locality().footprint_bytes();
            assert!(fp < 10 << 20, "{n} footprint {fp}");
        }
    }

    #[test]
    fn every_java_workload_spawns_services() {
        for w in catalog().iter().filter(|w| w.language() == Language::Java) {
            let threads = w.software_threads(8);
            assert!(
                threads.iter().any(|t| t.role == ThreadRole::GcService),
                "{} lacks a GC thread",
                w.name()
            );
            assert!(
                threads.iter().any(|t| t.role == ThreadRole::JitService),
                "{} lacks a JIT thread",
                w.name()
            );
        }
    }

    #[test]
    fn instruction_counts_scale_with_reference_time() {
        let mcf = by_name("mcf").unwrap();
        let expected = (894.0 * SIM_INSTRUCTIONS_PER_REFERENCE_SECOND) as u64;
        assert_eq!(mcf.trace().total_instructions(), expected);
    }

    #[test]
    fn antlr_is_jvm_heavy() {
        let m = by_name("antlr").unwrap().managed().unwrap();
        assert!(m.gc_work_fraction + m.jit_work_fraction > 0.3);
    }

    #[test]
    fn db_has_the_largest_displacement() {
        let db = by_name("db").unwrap().managed().unwrap().displacement_miss_factor;
        for w in catalog().iter().filter(|w| w.language() == Language::Java) {
            assert!(
                w.managed().unwrap().displacement_miss_factor <= db,
                "{} displaces more than db",
                w.name()
            );
        }
    }

    #[test]
    fn fluidanimate_is_the_activity_outlier() {
        let f = by_name("fluidanimate").unwrap();
        let act = f.trace().phases()[0].activity();
        assert!(act >= 1.5);
        for w in catalog() {
            assert!(
                w.trace().phases().last().unwrap().activity() <= act,
                "{} is hotter than fluidanimate",
                w.name()
            );
        }
    }
}
