//! The [`Workload`] descriptor and its expansion into software threads.

use lhr_trace::{InstructionMix, Phase, ThreadTrace};

use crate::types::{Group, Language, ManagedProfile, Suite, ThreadModel, ThreadRole};

/// One runnable software thread of a workload: a role plus a trace.
#[derive(Debug, Clone, PartialEq)]
pub struct SoftwareThread {
    /// Human-readable thread name, e.g. `app0` or `gc1`.
    pub name: String,
    /// Application versus VM-service role (drives displacement modelling).
    pub role: ThreadRole,
    /// The thread's execution trace.
    pub trace: ThreadTrace,
}

/// A benchmark of the study: Table 1 identity plus resource signature.
#[derive(Debug, Clone, PartialEq)]
pub struct Workload {
    name: &'static str,
    description: &'static str,
    suite: Suite,
    group: Group,
    reference_seconds: f64,
    trace: ThreadTrace,
    threads: ThreadModel,
    managed: Option<ManagedProfile>,
    native_noise_cv: f64,
}

impl Workload {
    /// Assembles a workload descriptor.
    ///
    /// # Panics
    ///
    /// Panics if a Java-group workload lacks a [`ManagedProfile`] or a
    /// native-group workload carries one, or if the reference time is not
    /// positive -- the catalog is static data, so these are programming
    /// errors, not runtime conditions.
    #[must_use]
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        name: &'static str,
        description: &'static str,
        suite: Suite,
        group: Group,
        reference_seconds: f64,
        trace: ThreadTrace,
        threads: ThreadModel,
        managed: Option<ManagedProfile>,
    ) -> Self {
        assert!(
            reference_seconds > 0.0,
            "{name}: reference time must be positive"
        );
        match group.language() {
            Language::Java => assert!(
                managed.is_some(),
                "{name}: Java workloads need a ManagedProfile"
            ),
            Language::Native => assert!(
                managed.is_none(),
                "{name}: native workloads must not have a ManagedProfile"
            ),
        }
        Self {
            name,
            description,
            suite,
            group,
            reference_seconds,
            trace,
            threads,
            managed,
            native_noise_cv: 0.006,
        }
    }

    /// The benchmark's name as printed in Table 1.
    #[must_use]
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// One-line description (Table 1's "Description" column).
    #[must_use]
    pub fn description(&self) -> &'static str {
        self.description
    }

    /// The suite of origin.
    #[must_use]
    pub fn suite(&self) -> Suite {
        self.suite
    }

    /// The workload group.
    #[must_use]
    pub fn group(&self) -> Group {
        self.group
    }

    /// The implementation-language class.
    #[must_use]
    pub fn language(&self) -> Language {
        self.group.language()
    }

    /// The Table 1 reference running time in seconds.
    #[must_use]
    pub fn reference_seconds(&self) -> f64 {
        self.reference_seconds
    }

    /// The application's complete-trace description.
    #[must_use]
    pub fn trace(&self) -> &ThreadTrace {
        &self.trace
    }

    /// The thread-scaling model.
    #[must_use]
    pub fn thread_model(&self) -> ThreadModel {
        self.threads
    }

    /// The managed-runtime profile, for Java workloads.
    #[must_use]
    pub fn managed(&self) -> Option<&ManagedProfile> {
        self.managed.as_ref()
    }

    /// Run-to-run coefficient of variation (JIT/GC nondeterminism for Java,
    /// small system noise for natives). This is why the methodology runs
    /// Java twenty times but natives only three to five.
    #[must_use]
    pub fn nondeterminism_cv(&self) -> f64 {
        self.managed
            .map_or(self.native_noise_cv, |m| m.nondeterminism_cv)
    }

    /// The number of measurement invocations the paper's methodology
    /// prescribes for this workload: 3 for SPEC CPU2006, 5 for PARSEC, and
    /// 20 for Java (Section 2).
    #[must_use]
    pub fn prescribed_invocations(&self) -> usize {
        match self.suite {
            Suite::SpecInt2006 | Suite::SpecFp2006 => 3,
            Suite::Parsec => 5,
            _ => 20,
        }
    }

    /// Expands the workload into software threads for a machine exposing
    /// `contexts` hardware contexts.
    ///
    /// Application work is split per the [`ThreadModel`] (Amdahl serial
    /// portion on thread 0, per-peer sync overhead inflating parallel
    /// shares). Managed workloads add GC and JIT service threads whose work
    /// scales with application work.
    ///
    /// # Panics
    ///
    /// Panics if `contexts` is zero.
    #[must_use]
    pub fn software_threads(&self, contexts: usize) -> Vec<SoftwareThread> {
        assert!(contexts > 0, "need at least one hardware context");
        let n = self.threads.app_threads(contexts);
        let total = self.trace.total_instructions() as f64;
        let mut out = Vec::with_capacity(n + 2);
        match self.threads {
            ThreadModel::Single => out.push(SoftwareThread {
                name: "app0".to_owned(),
                role: ThreadRole::Application,
                trace: self.trace.clone(),
            }),
            ThreadModel::Parallel {
                parallel_fraction,
                sync_overhead_per_thread,
                ..
            } => {
                let serial = total * (1.0 - parallel_fraction);
                let sync_inflation = 1.0 + sync_overhead_per_thread * (n as f64 - 1.0);
                let parallel_share = total * parallel_fraction / n as f64 * sync_inflation;
                for i in 0..n {
                    let share = if i == 0 {
                        serial + parallel_share
                    } else {
                        parallel_share
                    };
                    out.push(SoftwareThread {
                        name: format!("app{i}"),
                        role: ThreadRole::Application,
                        trace: self.trace.scaled_instructions((share / total).max(1e-12)),
                    });
                }
            }
        }
        if let Some(m) = self.managed {
            let app_total: u64 = out.iter().map(|t| t.trace.total_instructions()).sum();
            let gc_each = (app_total as f64 * m.gc_work_fraction / m.gc_threads as f64)
                .max(1.0) as u64;
            for g in 0..m.gc_threads {
                out.push(SoftwareThread {
                    name: format!("gc{g}"),
                    role: ThreadRole::GcService,
                    trace: self.gc_trace(gc_each),
                });
            }
            let jit = (app_total as f64 * m.jit_work_fraction).max(1.0) as u64;
            out.push(SoftwareThread {
                name: "jit0".to_owned(),
                role: ThreadRole::JitService,
                trace: Self::jit_trace(jit),
            });
        }
        out
    }

    /// Returns a clone with the VM services *ablated*: GC/JIT work and the
    /// displacement effect are zeroed while the managed identity is kept.
    ///
    /// This is the control condition for Workload Finding 1 -- with the
    /// services removed, a single-threaded Java benchmark should behave
    /// like a native one and gain nothing from a second core. The paper
    /// established the same attribution by instrumenting HotSpot to count
    /// VM versus application cycles (Section 3.1).
    ///
    /// Returns the workload unchanged for native workloads.
    #[must_use]
    pub fn with_services_ablated(&self) -> Workload {
        let mut out = self.clone();
        if let Some(m) = out.managed.as_mut() {
            m.gc_work_fraction = 0.0;
            m.jit_work_fraction = 0.0;
            m.displacement_miss_factor = 1.0;
        }
        out
    }

    /// Returns a clone with a different managed-runtime profile, keeping
    /// the application signature. Models switching JVMs: the paper
    /// observed aggregate power differences of up to 10% between HotSpot,
    /// JRockit, and J9.
    ///
    /// # Panics
    ///
    /// Panics on native workloads, which have no runtime to swap.
    #[must_use]
    pub fn with_managed_profile(&self, profile: ManagedProfile) -> Workload {
        assert!(
            self.managed.is_some(),
            "{}: cannot swap the JVM under a native workload",
            self.name
        );
        let mut out = self.clone();
        out.managed = Some(profile);
        out
    }

    /// Scales the application trace's instruction budget in place,
    /// preserving phase structure and all other characteristics. Used by
    /// fast harness modes; normalized results are invariant to it.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not positive and finite.
    pub fn scale_trace(&mut self, factor: f64) {
        self.trace = self.trace.scaled_instructions(factor);
    }

    /// The GC service trace: load/store-heavy sweeps over a region somewhat
    /// larger than the application's steady-state footprint (the collector
    /// walks the whole heap), with substantial pointer chasing.
    fn gc_trace(&self, instructions: u64) -> ThreadTrace {
        let steady = self
            .trace
            .phases()
            .last()
            .expect("traces are validated non-empty");
        let heap = steady.locality().scaled(1.3).with_pointer_chase(0.55);
        let mix = InstructionMix::builder()
            .int_alu(0.34)
            .fp(0.0)
            .load(0.40)
            .store(0.16)
            .branch(0.10)
            .build()
            .expect("static gc mix is valid");
        let phase = Phase::new("gc-sweep", 1.0, mix, 1.7, heap)
            .with_branch_mispredict_rate(0.04)
            .with_mlp(2.5)
            .with_activity(0.9);
        ThreadTrace::uniform(phase, instructions)
    }

    /// The JIT service trace: compiler-like integer code over a small,
    /// cache-resident working set.
    fn jit_trace(instructions: u64) -> ThreadTrace {
        let mix = InstructionMix::builder()
            .int_alu(0.47)
            .fp(0.0)
            .load(0.27)
            .store(0.11)
            .branch(0.15)
            .build()
            .expect("static jit mix is valid");
        let phase = Phase::new(
            "jit-compile",
            1.0,
            mix,
            2.0,
            lhr_trace::LocalityProfile::hierarchical(
                96 << 10,
                512 << 10,
                2 << 20,
                0.75,
                0.18,
            ),
        )
        .with_branch_mispredict_rate(0.06);
        ThreadTrace::uniform(phase, instructions)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lhr_trace::LocalityProfile;

    fn app_trace(n: u64) -> ThreadTrace {
        ThreadTrace::uniform(
            Phase::new(
                "steady",
                1.0,
                InstructionMix::typical_int(),
                2.0,
                LocalityProfile::cache_resident(1 << 16),
            ),
            n,
        )
    }

    fn native_single() -> Workload {
        Workload::new(
            "toy",
            "a toy",
            Suite::SpecInt2006,
            Group::NativeNonScalable,
            100.0,
            app_trace(1_000_000),
            ThreadModel::Single,
            None,
        )
    }

    #[test]
    fn single_thread_expansion() {
        let w = native_single();
        let ts = w.software_threads(8);
        assert_eq!(ts.len(), 1);
        assert_eq!(ts[0].role, ThreadRole::Application);
        assert_eq!(ts[0].trace.total_instructions(), 1_000_000);
        assert_eq!(w.prescribed_invocations(), 3);
        assert_eq!(w.language(), Language::Native);
        assert!(w.nondeterminism_cv() < 0.01);
    }

    #[test]
    fn parallel_expansion_conserves_work_modulo_overheads() {
        let w = Workload::new(
            "ptoy",
            "parallel toy",
            Suite::Parsec,
            Group::NativeScalable,
            100.0,
            app_trace(8_000_000),
            ThreadModel::parallel(0.9, 0.0),
            None,
        );
        let ts = w.software_threads(4);
        assert_eq!(ts.len(), 4);
        let total: u64 = ts.iter().map(|t| t.trace.total_instructions()).sum();
        // With zero sync overhead the split conserves total work.
        let err = (total as f64 - 8_000_000.0).abs() / 8_000_000.0;
        assert!(err < 1e-3, "total = {total}");
        // Thread 0 carries the serial portion.
        assert!(ts[0].trace.total_instructions() > ts[1].trace.total_instructions());
        assert_eq!(w.prescribed_invocations(), 5);
    }

    #[test]
    fn sync_overhead_inflates_parallel_work() {
        let mk = |s| {
            Workload::new(
                "ptoy",
                "parallel toy",
                Suite::Parsec,
                Group::NativeScalable,
                100.0,
                app_trace(8_000_000),
                ThreadModel::parallel(1.0, s),
                None,
            )
        };
        let lean: u64 = mk(0.0)
            .software_threads(8)
            .iter()
            .map(|t| t.trace.total_instructions())
            .sum();
        let heavy: u64 = mk(0.05)
            .software_threads(8)
            .iter()
            .map(|t| t.trace.total_instructions())
            .sum();
        assert!(heavy > lean, "{heavy} vs {lean}");
        // 7 peers at 5% each = 35% inflation.
        assert!((heavy as f64 / lean as f64 - 1.35).abs() < 0.01);
    }

    #[test]
    fn managed_workloads_spawn_services() {
        let w = Workload::new(
            "jtoy",
            "java toy",
            Suite::DaCapo9,
            Group::JavaNonScalable,
            10.0,
            app_trace(10_000_000),
            ThreadModel::Single,
            Some(ManagedProfile::typical().with_gc(0.10).with_jit(0.02)),
        );
        let ts = w.software_threads(8);
        assert_eq!(ts.len(), 3); // app + gc + jit
        let gc = ts.iter().find(|t| t.role == ThreadRole::GcService).unwrap();
        let jit = ts.iter().find(|t| t.role == ThreadRole::JitService).unwrap();
        assert_eq!(gc.trace.total_instructions(), 1_000_000);
        assert_eq!(jit.trace.total_instructions(), 200_000);
        // GC walks a larger footprint than the app.
        let app_fp = w.trace().phases()[0].locality().footprint_bytes();
        assert!(gc.trace.phases()[0].locality().footprint_bytes() > app_fp);
        assert_eq!(w.prescribed_invocations(), 20);
    }

    #[test]
    fn gc_threads_split_gc_work() {
        let w = Workload::new(
            "jtoy2",
            "java toy",
            Suite::Pjbb2005,
            Group::JavaNonScalable,
            10.0,
            app_trace(10_000_000),
            ThreadModel::Single,
            Some(ManagedProfile::typical().with_gc(0.10).with_gc_threads(2)),
        );
        let ts = w.software_threads(8);
        let gcs: Vec<_> = ts.iter().filter(|t| t.role == ThreadRole::GcService).collect();
        assert_eq!(gcs.len(), 2);
        assert_eq!(gcs[0].trace.total_instructions(), 500_000);
    }

    #[test]
    #[should_panic(expected = "need a ManagedProfile")]
    fn java_without_profile_panics() {
        let _ = Workload::new(
            "bad",
            "bad",
            Suite::DaCapo9,
            Group::JavaScalable,
            1.0,
            app_trace(1),
            ThreadModel::Single,
            None,
        );
    }

    #[test]
    #[should_panic(expected = "must not have a ManagedProfile")]
    fn native_with_profile_panics() {
        let _ = Workload::new(
            "bad",
            "bad",
            Suite::Parsec,
            Group::NativeScalable,
            1.0,
            app_trace(1),
            ThreadModel::Single,
            Some(ManagedProfile::typical()),
        );
    }

    #[test]
    fn parallel_capped_by_contexts() {
        let w = Workload::new(
            "ptoy",
            "parallel toy",
            Suite::Parsec,
            Group::NativeScalable,
            100.0,
            app_trace(1_000_000),
            ThreadModel::parallel(0.95, 0.01),
            None,
        );
        assert_eq!(w.software_threads(2).len(), 2);
        assert_eq!(w.software_threads(1).len(), 1);
    }
}
