//! Typed errors for the measurement path.
//!
//! The rig's validating path ([`crate::MeasurementRig::try_measure`])
//! never panics on bad data: every way a channel can go wrong in the lab
//! -- a pegged sensor, a thermally drifted fit, a logger dropping frames
//! -- maps to a [`SensorError`] variant the caller can retry, recalibrate
//! around, or record as a failure.

use std::error::Error;
use std::fmt;

use crate::calibration::CalibrationError;

/// Why a measurement attempt was rejected by the rig.
#[derive(Debug, Clone, PartialEq)]
pub enum SensorError {
    /// Too many samples flatlined at the edge of the log: the sensor (or
    /// the ADC) spent part of the run pegged rather than tracking current.
    Saturated {
        /// Fraction of logged samples in a flatlined run.
        fraction: f64,
        /// The policy limit that was exceeded.
        limit: f64,
    },
    /// The channel's self-check disagrees with the calibration fit by more
    /// than the policy allows: the transfer function has drifted since
    /// calibration (thermal gain/offset walk).
    ExcessiveDrift {
        /// Self-check residual against the fit, in ADC codes.
        codes: f64,
        /// The policy limit that was exceeded.
        limit: f64,
    },
    /// The logger delivered too few of the samples the run should have
    /// produced (dropped frames on the USB link).
    LowYield {
        /// Fraction of expected samples actually logged.
        achieved: f64,
        /// The policy minimum.
        required: f64,
    },
    /// Every sample of the run was dropped; there is nothing to average.
    NoSamples,
    /// A logged code fell where the calibration fit cannot be inverted
    /// (zero-slope fit; only reachable with a corrupted calibration).
    Uninvertible {
        /// The offending code.
        code: u16,
    },
    /// A recalibration attempt itself failed its acceptance test.
    Recalibration(CalibrationError),
}

impl fmt::Display for SensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SensorError::Saturated { fraction, limit } => write!(
                f,
                "sensor saturated: {:.1}% of samples flatlined (limit {:.1}%)",
                fraction * 100.0,
                limit * 100.0
            ),
            SensorError::ExcessiveDrift { codes, limit } => write!(
                f,
                "channel drifted {codes:.2} codes from its calibration (limit {limit:.2})"
            ),
            SensorError::LowYield { achieved, required } => write!(
                f,
                "logger yield {:.1}% below required {:.1}%",
                achieved * 100.0,
                required * 100.0
            ),
            SensorError::NoSamples => write!(f, "logger delivered no samples"),
            SensorError::Uninvertible { code } => {
                write!(f, "code {code} not invertible under the calibration fit")
            }
            SensorError::Recalibration(e) => write!(f, "recalibration failed: {e}"),
        }
    }
}

impl Error for SensorError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SensorError::Recalibration(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CalibrationError> for SensorError {
    fn from(e: CalibrationError) -> Self {
        SensorError::Recalibration(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_carry_the_numbers() {
        let e = SensorError::Saturated {
            fraction: 0.25,
            limit: 0.05,
        };
        assert!(format!("{e}").contains("25.0%"));
        let e = SensorError::ExcessiveDrift {
            codes: 4.2,
            limit: 3.0,
        };
        assert!(format!("{e}").contains("4.20"));
        let e = SensorError::LowYield {
            achieved: 0.4,
            required: 0.5,
        };
        assert!(format!("{e}").contains("40.0%"));
    }

    #[test]
    fn recalibration_wraps_calibration_error() {
        let cal = CalibrationError::PoorFit {
            r_squared: 0.9,
            threshold: 0.999,
        };
        let e = SensorError::from(cal.clone());
        assert_eq!(e, SensorError::Recalibration(cal));
        assert!(Error::source(&e).is_some());
    }
}
