//! Sensor calibration: reference currents, least squares, R-squared check.
//!
//! "To calibrate the meters, we use a current source to provide 28
//! reference currents between 300mA and 3A, and for each meter record the
//! output value ... We compute linear fits for each of the sensors. Each
//! sensor has an R^2 value of 0.999 or better." -- Section 2.5.

use std::error::Error;
use std::fmt;

use lhr_stats::LinearFit;
use lhr_units::Amperes;

use crate::adc::Adc;
use crate::hall::HallSensor;

/// Error from a failed calibration.
#[derive(Debug, Clone, PartialEq)]
pub enum CalibrationError {
    /// The linear fit's R-squared fell below the acceptance threshold --
    /// a broken sensor (in the paper: re-solder and recalibrate).
    PoorFit {
        /// The R-squared achieved.
        r_squared: f64,
        /// The threshold demanded.
        threshold: f64,
    },
    /// The fit could not be computed at all.
    Degenerate(String),
}

impl fmt::Display for CalibrationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CalibrationError::PoorFit {
                r_squared,
                threshold,
            } => write!(
                f,
                "calibration fit R^2 = {r_squared:.6} below threshold {threshold}"
            ),
            CalibrationError::Degenerate(msg) => write!(f, "degenerate calibration: {msg}"),
        }
    }
}

impl Error for CalibrationError {}

/// A calibrated sensor+ADC channel: codes to amperes.
#[derive(Debug, Clone, PartialEq)]
pub struct Calibration {
    fit: LinearFit,
    points: Vec<(f64, f64)>,
}

impl Calibration {
    /// The paper's acceptance threshold.
    pub const R_SQUARED_THRESHOLD: f64 = 0.999;

    /// Calibrates a channel with `n` reference currents spanning
    /// `lo..=hi`, fitting `code = a x amps + b`.
    ///
    /// # Errors
    ///
    /// [`CalibrationError::PoorFit`] if R-squared is below 0.999;
    /// [`CalibrationError::Degenerate`] if the fit cannot be computed.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2` or the current range is empty.
    pub fn calibrate(
        sensor: &mut HallSensor,
        adc: &Adc,
        n: usize,
        lo: Amperes,
        hi: Amperes,
    ) -> Result<Self, CalibrationError> {
        Self::calibrate_channel(|amps| adc.quantize(sensor.output(amps)), n, lo, hi)
    }

    /// Calibrates an arbitrary amps-to-code channel: the same reference
    /// currents and per-point averaging as [`Calibration::calibrate`],
    /// but reading codes through `read_code`. This is how a rig
    /// recalibrates a channel whose faults (drift, clipping) sit between
    /// the sensor and the ADC: the fit absorbs whatever the channel has
    /// become, exactly as a bench recalibration would.
    ///
    /// # Errors
    ///
    /// As for [`Calibration::calibrate`].
    ///
    /// # Panics
    ///
    /// Panics if `n < 2` or the current range is empty.
    pub fn calibrate_channel(
        mut read_code: impl FnMut(Amperes) -> u16,
        n: usize,
        lo: Amperes,
        hi: Amperes,
    ) -> Result<Self, CalibrationError> {
        assert!(n >= 2, "need at least two reference currents");
        assert!(hi.value() > lo.value(), "empty calibration range");
        let points: Vec<(f64, f64)> = (0..n)
            .map(|i| {
                let amps = lo.value() + (hi.value() - lo.value()) * i as f64 / (n - 1) as f64;
                // Average a few samples per reference point, as a bench
                // calibration would, to suppress output noise.
                let mean_code = (0..16)
                    .map(|_| f64::from(read_code(Amperes::new(amps))))
                    .sum::<f64>()
                    / 16.0;
                (amps, mean_code)
            })
            .collect();
        let fit = LinearFit::fit(&points)
            .map_err(|e| CalibrationError::Degenerate(e.to_string()))?;
        if fit.r_squared() < Self::R_SQUARED_THRESHOLD {
            return Err(CalibrationError::PoorFit {
                r_squared: fit.r_squared(),
                threshold: Self::R_SQUARED_THRESHOLD,
            });
        }
        Ok(Self { fit, points })
    }

    /// The paper's exact procedure: 28 points, 300 mA to 3 A.
    ///
    /// # Errors
    ///
    /// As for [`Calibration::calibrate`].
    pub fn paper_procedure(
        sensor: &mut HallSensor,
        adc: &Adc,
    ) -> Result<Self, CalibrationError> {
        Self::calibrate(sensor, adc, 28, Amperes::from_ma(300.0), Amperes::new(3.0))
    }

    /// The underlying linear fit.
    #[must_use]
    pub fn fit(&self) -> &LinearFit {
        &self.fit
    }

    /// The recorded `(amps, code)` calibration points.
    #[must_use]
    pub fn points(&self) -> &[(f64, f64)] {
        &self.points
    }

    /// Converts a logged code back to a rail current.
    ///
    /// Returns `None` only for a pathological zero-slope fit, which the
    /// R-squared gate already rejects in practice.
    #[must_use]
    pub fn amps_from_code(&self, code: u16) -> Option<Amperes> {
        self.fit.invert(f64::from(code)).map(Amperes::new)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_procedure_meets_r_squared() {
        for seed in 0..20 {
            let mut sensor = HallSensor::acs714_5a(seed);
            let adc = Adc::avr_10bit();
            let cal = Calibration::paper_procedure(&mut sensor, &adc)
                .expect("healthy sensors calibrate");
            assert!(cal.fit().r_squared() >= 0.999, "seed {seed}");
            assert_eq!(cal.points().len(), 28);
        }
    }

    #[test]
    fn calibration_inverts_the_channel() {
        let mut sensor = HallSensor::acs714_5a(7);
        let adc = Adc::avr_10bit();
        let cal = Calibration::paper_procedure(&mut sensor, &adc).unwrap();
        for ma in [400.0, 1_000.0, 1_700.0, 2_600.0] {
            let truth = Amperes::from_ma(ma);
            let code = adc.quantize(sensor.output(truth));
            let recovered = cal.amps_from_code(code).unwrap();
            let err = (recovered.value() - truth.value()).abs() / truth.value();
            assert!(err < 0.03, "{ma} mA: err {err}");
        }
    }

    #[test]
    fn calibration_removes_gain_and_offset_error() {
        // Two different physical devices measure the same current the same
        // way after calibration.
        let adc = Adc::avr_10bit();
        let mut s1 = HallSensor::acs714_5a(100);
        let mut s2 = HallSensor::acs714_5a(200);
        let c1 = Calibration::paper_procedure(&mut s1, &adc).unwrap();
        let c2 = Calibration::paper_procedure(&mut s2, &adc).unwrap();
        let truth = Amperes::new(2.0);
        // Average several samples, as the per-benchmark measurement does,
        // so sensor noise does not mask the calibration comparison.
        let mean = |s: &mut HallSensor, c: &Calibration| -> f64 {
            (0..32)
                .map(|_| c.amps_from_code(adc.quantize(s.output(truth))).unwrap().value())
                .sum::<f64>()
                / 32.0
        };
        let m1 = mean(&mut s1, &c1);
        let m2 = mean(&mut s2, &c2);
        assert!((m1 - m2).abs() < 0.03, "{m1} vs {m2}");
    }

    #[test]
    fn slope_is_negative_as_wired() {
        let mut sensor = HallSensor::acs714_5a(3);
        let adc = Adc::avr_10bit();
        let cal = Calibration::paper_procedure(&mut sensor, &adc).unwrap();
        assert!(cal.fit().slope() < 0.0, "codes descend with current");
    }

    #[test]
    fn code_range_matches_paper() {
        let mut sensor = HallSensor::acs714_5a(11);
        let adc = Adc::avr_10bit();
        let cal = Calibration::paper_procedure(&mut sensor, &adc).unwrap();
        let codes: Vec<f64> = cal.points().iter().map(|&(_, c)| c).collect();
        let min = codes.iter().copied().fold(f64::INFINITY, f64::min);
        let max = codes.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        assert!((385.0..=415.0).contains(&min), "min code {min}");
        assert!((490.0..=515.0).contains(&max), "max code {max}");
    }

    #[test]
    fn calibrate_channel_matches_sensor_calibration_exactly() {
        // The closure form draws the same samples in the same order, so
        // the resulting fit is bit-for-bit the direct sensor fit.
        let adc = Adc::avr_10bit();
        let mut direct = HallSensor::acs714_5a(33);
        let a = Calibration::paper_procedure(&mut direct, &adc).unwrap();
        let mut via_channel = HallSensor::acs714_5a(33);
        let b = Calibration::calibrate_channel(
            |amps| adc.quantize(via_channel.output(amps)),
            28,
            Amperes::from_ma(300.0),
            Amperes::new(3.0),
        )
        .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn error_display() {
        let e = CalibrationError::PoorFit {
            r_squared: 0.95,
            threshold: 0.999,
        };
        assert!(format!("{e}").contains("0.95"));
    }
}
