//! The data logger's analog-to-digital converter.

use lhr_units::Volts;

/// An ideal mid-rise quantizer over a reference voltage.
///
/// Ten bits over 5 V gives 4.88 mV per code -- matching the paper's
/// observed fidelity of "about 1%" per sample with 103 quantization points
/// across the calibration range.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Adc {
    bits: u32,
    v_ref_mv: u32,
}

impl Adc {
    /// Creates an ADC with the given resolution and reference voltage.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is 0 or greater than 16, or `v_ref` is not positive.
    #[must_use]
    pub fn new(bits: u32, v_ref: Volts) -> Self {
        assert!((1..=16).contains(&bits), "bits must be in 1..=16");
        assert!(v_ref.value() > 0.0, "reference voltage must be positive");
        Self {
            bits,
            v_ref_mv: (v_ref.value() * 1000.0).round() as u32,
        }
    }

    /// The 10-bit, 5 V converter of the AVR logger.
    #[must_use]
    pub fn avr_10bit() -> Self {
        Self::new(10, Volts::new(5.0))
    }

    /// The resolution in bits.
    #[must_use]
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// The highest representable code.
    #[must_use]
    pub fn max_code(&self) -> u16 {
        ((1u32 << self.bits) - 1) as u16
    }

    /// The voltage width of one code step.
    #[must_use]
    pub fn lsb(&self) -> Volts {
        Volts::new(self.v_ref_mv as f64 / 1000.0 / f64::from(1u32 << self.bits))
    }

    /// Quantizes a voltage to a code, clamping to the input range.
    #[must_use]
    pub fn quantize(&self, v: Volts) -> u16 {
        let v_ref = self.v_ref_mv as f64 / 1000.0;
        let norm = (v.value() / v_ref).clamp(0.0, 1.0);
        let code = (norm * f64::from(1u32 << self.bits)).floor();
        (code as u32).min(u32::from(self.max_code())) as u16
    }

    /// The center voltage a code represents (for reconstruction).
    #[must_use]
    pub fn voltage_of(&self, code: u16) -> Volts {
        let v_ref = self.v_ref_mv as f64 / 1000.0;
        Volts::new((f64::from(code) + 0.5) / f64::from(1u32 << self.bits) * v_ref)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn avr_defaults() {
        let adc = Adc::avr_10bit();
        assert_eq!(adc.bits(), 10);
        assert_eq!(adc.max_code(), 1023);
        assert!((adc.lsb().value() - 5.0 / 1024.0).abs() < 1e-12);
    }

    #[test]
    fn quantization_round_trip_error_is_below_one_lsb() {
        let adc = Adc::avr_10bit();
        for mv in (0..5000).step_by(37) {
            let v = Volts::from_mv(f64::from(mv));
            let code = adc.quantize(v);
            let back = adc.voltage_of(code);
            assert!(
                (back.value() - v.value()).abs() <= adc.lsb().value(),
                "{mv} mV"
            );
        }
    }

    #[test]
    fn clamps_out_of_range() {
        let adc = Adc::avr_10bit();
        assert_eq!(adc.quantize(Volts::new(-1.0)), 0);
        assert_eq!(adc.quantize(Volts::new(9.0)), 1023);
    }

    #[test]
    fn codes_are_monotone_in_voltage() {
        let adc = Adc::avr_10bit();
        let mut prev = 0u16;
        for mv in (0..5000).step_by(10) {
            let code = adc.quantize(Volts::from_mv(f64::from(mv)));
            assert!(code >= prev);
            prev = code;
        }
    }

    #[test]
    fn paper_code_range_reproduced() {
        // The sensor maps 0.3 A -> ~2.44 V -> code ~500 and 3 A -> ~1.95 V
        // -> code ~398: the paper's observed 400-503 integer range.
        let adc = Adc::avr_10bit();
        let lo = adc.quantize(Volts::new(2.5 - 0.185 * 0.3));
        let hi = adc.quantize(Volts::new(2.5 - 0.185 * 3.0));
        assert!((495..=505).contains(&lo), "lo = {lo}");
        assert!((393..=403).contains(&hi), "hi = {hi}");
    }

    #[test]
    #[should_panic(expected = "bits must be in")]
    fn zero_bits_panics() {
        let _ = Adc::new(0, Volts::new(5.0));
    }
}
