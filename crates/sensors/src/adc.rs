//! The data logger's analog-to-digital converter.

use lhr_units::Volts;

/// An ideal mid-rise quantizer over a reference voltage.
///
/// Ten bits over 5 V gives 4.88 mV per code -- matching the paper's
/// observed fidelity of "about 1%" per sample with 103 quantization points
/// across the calibration range.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Adc {
    bits: u32,
    v_ref_mv: u32,
}

impl Adc {
    /// Creates an ADC with the given resolution and reference voltage.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is 0 or greater than 16, or `v_ref` is not positive.
    #[must_use]
    pub fn new(bits: u32, v_ref: Volts) -> Self {
        assert!((1..=16).contains(&bits), "bits must be in 1..=16");
        assert!(v_ref.value() > 0.0, "reference voltage must be positive");
        Self {
            bits,
            v_ref_mv: (v_ref.value() * 1000.0).round() as u32,
        }
    }

    /// The 10-bit, 5 V converter of the AVR logger.
    #[must_use]
    pub fn avr_10bit() -> Self {
        Self::new(10, Volts::new(5.0))
    }

    /// The resolution in bits.
    #[must_use]
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// The highest representable code.
    #[must_use]
    pub fn max_code(&self) -> u16 {
        ((1u32 << self.bits) - 1) as u16
    }

    /// The voltage width of one code step.
    #[must_use]
    pub fn lsb(&self) -> Volts {
        Volts::new(self.v_ref_mv as f64 / 1000.0 / f64::from(1u32 << self.bits))
    }

    /// Quantizes a voltage to a code, clamping to the input range.
    ///
    /// This stays floating-point deliberately. A fixed-point formulation
    /// (round the voltage to integer microvolts, then take
    /// `uv * 2^bits / v_ref_uv` in u64 arithmetic) was evaluated for the
    /// hot logging path and rejected: the microvolt rounding moves
    /// voltages that sit within half a microvolt of a code boundary onto
    /// the other side of it, so the two formulations disagree by one code
    /// on such inputs (demonstrated in this module's
    /// `fixed_point_quantizer_is_not_bit_identical` test). Bit-identical
    /// reproduction output is this project's hard rail, so the float path
    /// stays.
    #[must_use]
    pub fn quantize(&self, v: Volts) -> u16 {
        let v_ref = self.v_ref_mv as f64 / 1000.0;
        let norm = (v.value() / v_ref).clamp(0.0, 1.0);
        let code = (norm * f64::from(1u32 << self.bits)).floor();
        (code as u32).min(u32::from(self.max_code())) as u16
    }

    /// The center voltage a code represents (for reconstruction).
    #[must_use]
    pub fn voltage_of(&self, code: u16) -> Volts {
        let v_ref = self.v_ref_mv as f64 / 1000.0;
        Volts::new((f64::from(code) + 0.5) / f64::from(1u32 << self.bits) * v_ref)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn avr_defaults() {
        let adc = Adc::avr_10bit();
        assert_eq!(adc.bits(), 10);
        assert_eq!(adc.max_code(), 1023);
        assert!((adc.lsb().value() - 5.0 / 1024.0).abs() < 1e-12);
    }

    #[test]
    fn quantization_round_trip_error_is_below_one_lsb() {
        let adc = Adc::avr_10bit();
        for mv in (0..5000).step_by(37) {
            let v = Volts::from_mv(f64::from(mv));
            let code = adc.quantize(v);
            let back = adc.voltage_of(code);
            assert!(
                (back.value() - v.value()).abs() <= adc.lsb().value(),
                "{mv} mV"
            );
        }
    }

    #[test]
    fn clamps_out_of_range() {
        let adc = Adc::avr_10bit();
        assert_eq!(adc.quantize(Volts::new(-1.0)), 0);
        assert_eq!(adc.quantize(Volts::new(9.0)), 1023);
    }

    #[test]
    fn codes_are_monotone_in_voltage() {
        let adc = Adc::avr_10bit();
        let mut prev = 0u16;
        for mv in (0..5000).step_by(10) {
            let code = adc.quantize(Volts::from_mv(f64::from(mv)));
            assert!(code >= prev);
            prev = code;
        }
    }

    #[test]
    fn paper_code_range_reproduced() {
        // The sensor maps 0.3 A -> ~2.44 V -> code ~500 and 3 A -> ~1.95 V
        // -> code ~398: the paper's observed 400-503 integer range.
        let adc = Adc::avr_10bit();
        let lo = adc.quantize(Volts::new(2.5 - 0.185 * 0.3));
        let hi = adc.quantize(Volts::new(2.5 - 0.185 * 3.0));
        assert!((495..=505).contains(&lo), "lo = {lo}");
        assert!((393..=403).contains(&hi), "hi = {hi}");
    }

    #[test]
    #[should_panic(expected = "bits must be in")]
    fn zero_bits_panics() {
        let _ = Adc::new(0, Volts::new(5.0));
    }

    /// The fixed-point quantizer candidate: integer microvolts through
    /// u64 arithmetic. Clamping and the final code cap mirror `quantize`.
    fn quantize_fixed(adc: &Adc, v: Volts) -> u16 {
        let v_ref_uv = u64::from(adc.v_ref_mv) * 1000;
        let uv = (v.value() * 1e6).round().clamp(0.0, v_ref_uv as f64) as u64;
        let code = uv * u64::from(1u32 << adc.bits) / v_ref_uv;
        (code as u32).min(u32::from(adc.max_code())) as u16
    }

    /// The evaluation behind keeping `quantize` in floating point: the
    /// fixed-point candidate agrees almost everywhere, but rounding the
    /// input to integer microvolts moves voltages within half a microvolt
    /// of a code boundary across it, flipping the code by one. Not
    /// bit-identical means not usable here, however fast.
    #[test]
    fn fixed_point_quantizer_is_not_bit_identical() {
        let adc = Adc::avr_10bit();

        // 2.4414063 V sits just above the code-500 boundary
        // (500 * 5 V / 1024 = 2.44140625 V), but rounds down to
        // 2441406 uV -- below it. Float says 500, fixed-point says 499.
        let v = Volts::new(2.441_406_3);
        assert_eq!(adc.quantize(v), 500);
        assert_eq!(quantize_fixed(&adc, v), 499);

        // A fine scan confirms the disagreement is systematic (every
        // half-microvolt straddle of a boundary), not a one-off.
        let mut divergences = 0usize;
        let mut agreements = 0usize;
        for i in 0..200_000u32 {
            let v = Volts::new(2.4 + f64::from(i) * 1e-6 * 0.5);
            if adc.quantize(v) == quantize_fixed(&adc, v) {
                agreements += 1;
            } else {
                divergences += 1;
            }
        }
        assert!(divergences > 0, "candidate diverges on boundary straddles");
        assert!(
            agreements > 100 * divergences,
            "divergence is confined to boundary neighborhoods"
        );
    }
}
