//! Per-measurement data-quality accounting.
//!
//! Every validated measurement carries a [`QualityReport`]: how many
//! samples the logger delivered versus owed, how much of the log
//! flatlined at its extremes (saturation or a stuck code), and how far
//! the channel's self-check sits from its calibration fit. A
//! [`QualityPolicy`] turns a report into an accept/reject decision.

use crate::error::SensorError;

/// Minimum length of a constant-code run at the log's extreme value for
/// it to count as flatlined. Healthy channels carry ~0.8 LSB of sensor
/// noise, so eight identical consecutive codes pinned at the log's own
/// minimum or maximum essentially never happen by chance.
pub const FLATLINE_RUN: usize = 8;

/// Data-quality facts about one logged run.
#[derive(Debug, Clone, PartialEq)]
pub struct QualityReport {
    /// Samples the run duration and sample rate owed us.
    pub expected_samples: usize,
    /// Samples the logger actually delivered.
    pub logged_samples: usize,
    /// `logged / expected` (1.0 for a lossless log).
    pub sample_yield: f64,
    /// Number of contiguous gaps (dropped-sample runs) in the log.
    pub gap_count: usize,
    /// Fraction of logged samples inside a flatlined run at the log's
    /// extreme code (saturated sensor or stuck ADC).
    pub saturated_fraction: f64,
    /// Self-check residual against the calibration fit, in ADC codes
    /// (an estimate of channel drift since calibration).
    pub drift_codes: f64,
}

impl QualityReport {
    /// Builds a report from the raw log: `Some(code)` for a delivered
    /// sample, `None` for a dropped one. `drift_codes` comes from the
    /// rig's separate self-check.
    #[must_use]
    pub fn from_log(log: &[Option<u16>], drift_codes: f64) -> Self {
        let expected = log.len();
        let codes: Vec<u16> = log.iter().flatten().copied().collect();
        let logged = codes.len();
        let mut gaps = 0usize;
        let mut in_gap = false;
        for s in log {
            match s {
                None if !in_gap => {
                    gaps += 1;
                    in_gap = true;
                }
                None => {}
                Some(_) => in_gap = false,
            }
        }
        Self {
            expected_samples: expected,
            logged_samples: logged,
            sample_yield: if expected == 0 {
                0.0
            } else {
                logged as f64 / expected as f64
            },
            gap_count: gaps,
            saturated_fraction: flatlined_fraction(&codes),
            drift_codes,
        }
    }

    /// Builds a report for a lossless log, straight from the delivered
    /// codes. This is [`QualityReport::from_log`] specialized to a log
    /// with no dropped samples: same expressions, same results, without
    /// materializing a `Vec<Option<u16>>` copy of the log first -- the
    /// fault-free measure path calls this once per run.
    ///
    /// ```
    /// use lhr_sensors::QualityReport;
    ///
    /// let codes = [470u16, 471, 470, 472];
    /// let log: Vec<Option<u16>> = codes.iter().map(|&c| Some(c)).collect();
    /// assert_eq!(
    ///     QualityReport::from_codes(&codes, 0.4),
    ///     QualityReport::from_log(&log, 0.4),
    /// );
    /// ```
    #[must_use]
    pub fn from_codes(codes: &[u16], drift_codes: f64) -> Self {
        let expected = codes.len();
        Self {
            expected_samples: expected,
            logged_samples: expected,
            // `from_log` computes logged / expected, which for a
            // lossless log is x / x = exactly 1.0 in IEEE 754, so the
            // two constructors agree bit-for-bit on every input.
            sample_yield: if expected == 0 { 0.0 } else { 1.0 },
            gap_count: 0,
            saturated_fraction: flatlined_fraction(codes),
            drift_codes,
        }
    }

    /// Checks the report against a policy.
    ///
    /// # Errors
    ///
    /// The first violated bound, as a typed [`SensorError`].
    pub fn check(&self, policy: &QualityPolicy) -> Result<(), SensorError> {
        if self.logged_samples == 0 {
            return Err(SensorError::NoSamples);
        }
        if self.sample_yield < policy.min_yield {
            return Err(SensorError::LowYield {
                achieved: self.sample_yield,
                required: policy.min_yield,
            });
        }
        if self.saturated_fraction > policy.max_saturated_fraction {
            return Err(SensorError::Saturated {
                fraction: self.saturated_fraction,
                limit: policy.max_saturated_fraction,
            });
        }
        if self.drift_codes > policy.max_drift_codes {
            return Err(SensorError::ExcessiveDrift {
                codes: self.drift_codes,
                limit: policy.max_drift_codes,
            });
        }
        Ok(())
    }
}

/// Acceptance bounds on a [`QualityReport`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QualityPolicy {
    /// Maximum tolerated flatlined fraction.
    pub max_saturated_fraction: f64,
    /// Maximum tolerated self-check residual, in ADC codes. The default
    /// (3.0) sits well above a healthy channel's quantization floor
    /// (under ~1.5 codes) and well below any drift that would have
    /// failed the paper's R-squared >= 0.999 calibration gate.
    pub max_drift_codes: f64,
    /// Minimum tolerated sample yield.
    pub min_yield: f64,
}

impl Default for QualityPolicy {
    fn default() -> Self {
        Self {
            max_saturated_fraction: 0.05,
            max_drift_codes: 3.0,
            min_yield: 0.5,
        }
    }
}

/// Fraction of samples inside a run of at least [`FLATLINE_RUN`]
/// identical codes pinned at the log's minimum or maximum code.
fn flatlined_fraction(codes: &[u16]) -> f64 {
    if codes.len() < FLATLINE_RUN {
        return 0.0;
    }
    let lo = *codes.iter().min().expect("non-empty");
    let hi = *codes.iter().max().expect("non-empty");
    let mut flat = 0usize;
    let mut i = 0;
    while i < codes.len() {
        let mut j = i + 1;
        while j < codes.len() && codes[j] == codes[i] {
            j += 1;
        }
        let run = j - i;
        if run >= FLATLINE_RUN && (codes[i] == lo || codes[i] == hi) {
            flat += run;
        }
        i = j;
    }
    flat as f64 / codes.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn log_of(codes: &[u16]) -> Vec<Option<u16>> {
        codes.iter().map(|&c| Some(c)).collect()
    }

    #[test]
    fn clean_log_reports_full_yield_and_no_flatline() {
        let codes: Vec<u16> = (0..100).map(|i| 470 + (i % 5) as u16).collect();
        let q = QualityReport::from_log(&log_of(&codes), 0.4);
        assert_eq!(q.logged_samples, 100);
        assert_eq!(q.gap_count, 0);
        assert!((q.sample_yield - 1.0).abs() < 1e-12);
        assert_eq!(q.saturated_fraction, 0.0);
        assert!(q.check(&QualityPolicy::default()).is_ok());
    }

    #[test]
    fn pegged_log_is_flagged_saturated() {
        // Half the run pinned at the minimum code.
        let mut codes = vec![400u16; 50];
        codes.extend((0..50).map(|i| 470 + (i % 4) as u16));
        let q = QualityReport::from_log(&log_of(&codes), 0.0);
        assert!((q.saturated_fraction - 0.5).abs() < 1e-12);
        let err = q.check(&QualityPolicy::default()).unwrap_err();
        assert!(matches!(err, SensorError::Saturated { .. }));
    }

    #[test]
    fn interior_flat_runs_are_not_saturation() {
        // A long constant run that is neither the min nor the max code:
        // steady power, not a pegged channel.
        let mut codes = vec![470u16; 60];
        codes.push(469);
        codes.push(471);
        let q = QualityReport::from_log(&log_of(&codes), 0.0);
        assert_eq!(q.saturated_fraction, 0.0);
    }

    #[test]
    fn gaps_and_yield_are_counted() {
        let log = vec![
            Some(470),
            None,
            None,
            Some(471),
            Some(470),
            None,
            Some(472),
            Some(470),
        ];
        let q = QualityReport::from_log(&log, 0.0);
        assert_eq!(q.expected_samples, 8);
        assert_eq!(q.logged_samples, 5);
        assert_eq!(q.gap_count, 2);
        assert!((q.sample_yield - 5.0 / 8.0).abs() < 1e-12);
    }

    #[test]
    fn drift_beyond_policy_is_rejected() {
        let codes: Vec<u16> = (0..40).map(|i| 450 + (i % 3) as u16).collect();
        let q = QualityReport::from_log(&log_of(&codes), 4.5);
        let err = q.check(&QualityPolicy::default()).unwrap_err();
        assert_eq!(
            err,
            SensorError::ExcessiveDrift {
                codes: 4.5,
                limit: 3.0
            }
        );
    }

    #[test]
    fn from_codes_matches_from_log_on_lossless_logs() {
        let cases: [&[u16]; 4] = [
            &[],
            &[470, 471, 470, 472],
            &[400; 50],
            &[470, 469, 471, 470, 470, 470, 470, 470, 470, 470, 470, 470],
        ];
        for codes in cases {
            let log = log_of(codes);
            assert_eq!(
                QualityReport::from_codes(codes, 0.7),
                QualityReport::from_log(&log, 0.7),
            );
        }
    }

    #[test]
    fn empty_log_is_no_samples() {
        let q = QualityReport::from_log(&[None, None], 0.0);
        assert_eq!(q.check(&QualityPolicy::default()), Err(SensorError::NoSamples));
    }
}
