//! The simulated power-measurement rig.
//!
//! Section 2.5 of the paper: each machine's processor has an isolated 12V
//! supply on the motherboard; a Pololu ACS714 Hall-effect current sensor on
//! that rail feeds an AVR data logger sampling at 50 Hz; the meters are
//! calibrated with 28 reference currents between 300 mA and 3 A, each
//! producing a quantized integer output (range 400-503), fit with a line at
//! R-squared 0.999 or better; per-sample error is about 1%.
//!
//! This crate rebuilds that rig against the simulated chip's power
//! waveform: a [`HallSensor`] with gain/offset imperfection and noise, an
//! [`Adc`] quantizing to the same integer scale, a [`DataLogger`] sampling
//! at 50 Hz, [`Calibration`] reproducing the reference-current procedure,
//! and a [`MeasurementRig`] tying them together so every wattage the
//! harness reports has passed through the same pipeline the paper's did.
//!
//! The rig also carries a deterministic fault-injection layer
//! ([`faults`]): seeded saturation, thermal drift, stuck ADC codes,
//! transient spikes, and dropped logger samples, with a validating
//! [`MeasurementRig::try_measure`] path that audits every run
//! ([`QualityReport`] / [`QualityPolicy`]) and returns typed
//! [`SensorError`]s instead of panicking. A rig with no fault plan
//! measures bit-for-bit identically to one without the layer at all.
//!
//! The rig keeps a lab notebook too: arm an `lhr-obs` observer
//! ([`MeasurementRig::with_observer`]) and it reports per-run sample
//! yield and drift codes, fault activations, rejections, and
//! recalibration outcomes as structured events. The default observer
//! drops everything for free, and an armed one never changes a measured
//! number.
//!
//! # Example
//!
//! ```
//! use lhr_sensors::MeasurementRig;
//! use lhr_power::PowerWaveform;
//! use lhr_units::{Seconds, Watts};
//!
//! let mut w = PowerWaveform::new(Seconds::from_ms(20.0));
//! for _ in 0..200 {
//!     w.push(Watts::new(26.0)); // a steady 26 W chip
//! }
//! let rig = MeasurementRig::for_max_power(Watts::new(60.0), 42)?;
//! let m = rig.measure(&w, 7);
//! let err = (m.average_power.value() - 26.0).abs() / 26.0;
//! assert!(err < 0.02, "measured within ~1-2%");
//! # Ok::<(), lhr_sensors::CalibrationError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod adc;
mod calibration;
mod error;
pub mod faults;
mod hall;
mod logger;
mod quality;
mod rig;

pub use adc::Adc;
pub use calibration::{Calibration, CalibrationError};
pub use error::SensorError;
pub use faults::{FaultInjector, FaultPlan, FaultSession, Stall};
pub use hall::HallSensor;
pub use logger::DataLogger;
pub use quality::{QualityPolicy, QualityReport};
pub use rig::{Measurement, MeasurementRig};
