//! The complete measurement rig: calibrated sensor + logger on one rail.

use lhr_power::PowerWaveform;
use lhr_stats::Summary;
use lhr_units::{Seconds, Watts};

use crate::adc::Adc;
use crate::calibration::{Calibration, CalibrationError};
use crate::hall::HallSensor;
use crate::logger::DataLogger;

/// One benchmark run as seen through the rig.
#[derive(Debug, Clone, PartialEq)]
pub struct Measurement {
    /// Average power over the run, reconstructed from the code log via
    /// the calibration fit -- the paper's per-benchmark power number.
    pub average_power: Watts,
    /// Per-sample reconstructed power values.
    pub samples: Vec<Watts>,
    /// The run duration (from the waveform; timing used a separate clock).
    pub duration: Seconds,
}

impl Measurement {
    /// Summary statistics over the reconstructed samples.
    #[must_use]
    pub fn sample_summary(&self) -> Summary {
        Summary::from_slice(
            &self
                .samples
                .iter()
                .map(|w| w.value())
                .collect::<Vec<f64>>(),
        )
    }
}

/// A calibrated power-measurement channel for one machine.
#[derive(Debug, Clone, PartialEq)]
pub struct MeasurementRig {
    sensor: HallSensor,
    adc: Adc,
    logger: DataLogger,
    calibration: Calibration,
}

impl MeasurementRig {
    /// Builds and calibrates a rig whose sensor range suits the chip's
    /// maximum power draw on the 12 V rail, as the paper did (a +/-5 A
    /// ACS714 normally; +/-30 A for the i7-920).
    ///
    /// # Errors
    ///
    /// Propagates [`CalibrationError`] if the freshly built channel fails
    /// the R-squared acceptance test.
    pub fn for_max_power(max_power: Watts, device_seed: u64) -> Result<Self, CalibrationError> {
        let max_current = max_power.value() / 12.0;
        let mut sensor = if max_current > 4.5 {
            HallSensor::acs714_30a(device_seed)
        } else {
            HallSensor::acs714_5a(device_seed)
        };
        let adc = Adc::avr_10bit();
        let calibration = Calibration::paper_procedure(&mut sensor, &adc)?;
        Ok(Self {
            sensor,
            adc,
            logger: DataLogger::paper_rig(),
            calibration,
        })
    }

    /// The rig's calibration record.
    #[must_use]
    pub fn calibration(&self) -> &Calibration {
        &self.calibration
    }

    /// Measures one run: logs the waveform at 50 Hz, inverts the codes to
    /// currents via the calibration fit, multiplies by the rail voltage,
    /// and averages over the run (Section 2.5's procedure exactly).
    ///
    /// The `_seed` parameter is reserved for future per-run rig noise; the
    /// sensor already carries its own deterministic noise stream.
    #[must_use]
    pub fn measure(&self, waveform: &PowerWaveform, _seed: u64) -> Measurement {
        let mut sensor = self.sensor.clone();
        let codes = self.logger.log_run(waveform, &mut sensor, &self.adc);
        let supply = self.logger.supply();
        let samples: Vec<Watts> = codes
            .iter()
            .map(|&code| {
                let amps = self
                    .calibration
                    .amps_from_code(code)
                    .expect("calibrated fits are invertible");
                supply * amps
            })
            .collect();
        let avg = samples.iter().map(|w| w.value()).sum::<f64>() / samples.len() as f64;
        Measurement {
            average_power: Watts::new(avg),
            samples,
            duration: waveform.duration(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn waveform(powers: &[f64]) -> PowerWaveform {
        let mut w = PowerWaveform::new(Seconds::from_ms(20.0));
        for &p in powers {
            w.push(Watts::new(p));
        }
        w
    }

    #[test]
    fn measures_steady_power_within_two_percent() {
        let rig = MeasurementRig::for_max_power(Watts::new(50.0), 42).unwrap();
        let truth = 26.4;
        let w = waveform(&vec![truth; 500]);
        let m = rig.measure(&w, 1);
        let err = (m.average_power.value() - truth).abs() / truth;
        assert!(err < 0.02, "err = {err}");
        assert_eq!(m.samples.len(), 500);
    }

    #[test]
    fn tracks_varying_power() {
        let rig = MeasurementRig::for_max_power(Watts::new(50.0), 42).unwrap();
        // Square wave between 20 and 40 W: mean 30.
        let powers: Vec<f64> = (0..1000).map(|i| if i % 2 == 0 { 20.0 } else { 40.0 }).collect();
        let m = rig.measure(&waveform(&powers), 1);
        let err = (m.average_power.value() - 30.0).abs() / 30.0;
        assert!(err < 0.03, "err = {err}");
        let s = m.sample_summary();
        assert!(s.stddev() > 5.0, "square wave must show spread");
    }

    #[test]
    fn high_power_chip_gets_the_thirty_amp_sensor() {
        // An i7-class chip peaking near 90 W needs more than 5 A at 12 V.
        let rig = MeasurementRig::for_max_power(Watts::new(130.0), 7).unwrap();
        let truth = 89.0;
        let m = rig.measure(&waveform(&vec![truth; 500]), 1);
        let err = (m.average_power.value() - truth).abs() / truth;
        assert!(err < 0.03, "err = {err}");
    }

    #[test]
    fn low_power_chip_stays_measurable() {
        // The Atom draws ~2.4 W: ~200 mA. Near the bottom of the
        // calibration range but still within ~5%.
        let rig = MeasurementRig::for_max_power(Watts::new(4.0), 9).unwrap();
        let truth = 2.4;
        let m = rig.measure(&waveform(&vec![truth; 500]), 1);
        let err = (m.average_power.value() - truth).abs() / truth;
        assert!(err < 0.06, "err = {err}");
    }

    #[test]
    fn measurement_is_deterministic() {
        let rig = MeasurementRig::for_max_power(Watts::new(50.0), 42).unwrap();
        let w = waveform(&vec![25.0; 200]);
        assert_eq!(rig.measure(&w, 1), rig.measure(&w, 1));
    }

    #[test]
    fn different_rigs_agree_after_calibration() {
        let w = waveform(&vec![30.0; 400]);
        let a = MeasurementRig::for_max_power(Watts::new(50.0), 1)
            .unwrap()
            .measure(&w, 1);
        let b = MeasurementRig::for_max_power(Watts::new(50.0), 2)
            .unwrap()
            .measure(&w, 1);
        let diff = (a.average_power.value() - b.average_power.value()).abs() / 30.0;
        assert!(diff < 0.02, "rig disagreement {diff}");
    }
}
