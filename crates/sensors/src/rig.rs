//! The complete measurement rig: calibrated sensor + logger on one rail.

use std::collections::HashMap;
use std::sync::{Mutex, OnceLock, PoisonError};

use lhr_obs::Obs;
use lhr_power::PowerWaveform;
use lhr_stats::Summary;
use lhr_units::{Amperes, Seconds, Watts};

use crate::adc::Adc;
use crate::calibration::{Calibration, CalibrationError};
use crate::error::SensorError;
use crate::faults::{FaultInjector, FaultPlan};
use crate::hall::HallSensor;
use crate::logger::DataLogger;
use crate::quality::{QualityPolicy, QualityReport};

/// The mid-band reference current (amperes) the drift self-check drives
/// through the channel: the center of the paper's 0.3-3 A calibration
/// range.
const SELF_CHECK_AMPS: f64 = 1.65;

/// The factory calibration bench's memo. [`MeasurementRig::for_max_power`]
/// is a pure function of `(max_power, device_seed)` -- the sensor's noise
/// stream, the ADC, and the calibration sweep are all seeded -- so each
/// distinct channel is built and calibrated once per process and cloned
/// out afterwards. A clone is field-for-field identical to a fresh build,
/// so memoization never changes a measured byte; it only skips repeating
/// the least-squares fit (~10 us per fresh runner in the fast-cell path).
static CALIBRATION_BENCH: OnceLock<Mutex<HashMap<(u64, u64), MeasurementRig>>> = OnceLock::new();

/// One benchmark run as seen through the rig.
#[derive(Debug, Clone, PartialEq)]
pub struct Measurement {
    /// Average power over the run, reconstructed from the code log via
    /// the calibration fit -- the paper's per-benchmark power number.
    pub average_power: Watts,
    /// Per-sample reconstructed power values.
    pub samples: Vec<Watts>,
    /// The run duration (from the waveform; timing used a separate clock).
    pub duration: Seconds,
    /// Data-quality accounting for the run: yield, gaps, flatlining, and
    /// the channel's drift self-check.
    pub quality: QualityReport,
}

impl Measurement {
    /// Summary statistics over the reconstructed samples.
    #[must_use]
    pub fn sample_summary(&self) -> Summary {
        Summary::from_slice(
            &self
                .samples
                .iter()
                .map(|w| w.value())
                .collect::<Vec<f64>>(),
        )
    }
}

/// A calibrated power-measurement channel for one machine.
#[derive(Debug, Clone, PartialEq)]
pub struct MeasurementRig {
    sensor: HallSensor,
    adc: Adc,
    logger: DataLogger,
    calibration: Calibration,
    injector: Option<FaultInjector>,
    policy: QualityPolicy,
    obs: Obs,
}

impl MeasurementRig {
    /// Builds and calibrates a rig whose sensor range suits the chip's
    /// maximum power draw on the 12 V rail, as the paper did (a +/-5 A
    /// ACS714 normally; +/-30 A for the i7-920). The factory calibration
    /// always runs fault-free: faults afflict a rig in service, not on
    /// the calibration bench.
    ///
    /// Calibration is deterministic in `(max_power, device_seed)`, so the
    /// bench memoizes it: the first request for a channel pays for the
    /// least-squares fit, repeats clone the calibrated rig bit-for-bit.
    ///
    /// # Errors
    ///
    /// Propagates [`CalibrationError`] if the freshly built channel fails
    /// the R-squared acceptance test.
    pub fn for_max_power(max_power: Watts, device_seed: u64) -> Result<Self, CalibrationError> {
        let key = (max_power.value().to_bits(), device_seed);
        let bench = CALIBRATION_BENCH.get_or_init(|| Mutex::new(HashMap::new()));
        if let Some(rig) = bench
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .get(&key)
        {
            return Ok(rig.clone());
        }
        let max_current = max_power.value() / 12.0;
        let mut sensor = if max_current > 4.5 {
            HallSensor::acs714_30a(device_seed)
        } else {
            HallSensor::acs714_5a(device_seed)
        };
        let adc = Adc::avr_10bit();
        let calibration = Calibration::paper_procedure(&mut sensor, &adc)?;
        let rig = Self {
            sensor,
            adc,
            logger: DataLogger::paper_rig(),
            calibration,
            injector: None,
            policy: QualityPolicy::default(),
            obs: Obs::none(),
        };
        bench
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .insert(key, rig.clone());
        Ok(rig)
    }

    /// Arms the rig with a fault plan. An all-default plan is discarded
    /// (the rig stays on the exact fault-free code path).
    #[must_use]
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.injector = if plan.is_none() {
            None
        } else {
            Some(FaultInjector::new(plan))
        };
        self
    }

    /// Overrides the acceptance policy used by [`MeasurementRig::try_measure`].
    #[must_use]
    pub fn with_quality_policy(mut self, policy: QualityPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Arms an observer: [`MeasurementRig::try_measure`] and
    /// [`MeasurementRig::recalibrate`] report per-run sample yield,
    /// fault activity, rejections, and recalibration events through it.
    /// The default ([`Obs::none`]) records nothing and costs nothing;
    /// an armed observer never changes a measured value.
    #[must_use]
    pub fn with_observer(mut self, obs: Obs) -> Self {
        self.obs = obs;
        self
    }

    /// The rig's calibration record.
    #[must_use]
    pub fn calibration(&self) -> &Calibration {
        &self.calibration
    }

    /// The rig's fault injector, if armed.
    #[must_use]
    pub fn fault_injector(&self) -> Option<&FaultInjector> {
        self.injector.as_ref()
    }

    /// The acceptance policy in force.
    #[must_use]
    pub fn quality_policy(&self) -> &QualityPolicy {
        &self.policy
    }

    /// Measures one run: logs the waveform at 50 Hz, inverts the codes to
    /// currents via the calibration fit, multiplies by the rail voltage,
    /// and averages over the run (Section 2.5's procedure exactly).
    ///
    /// This is the raw legacy path: it ignores any armed fault plan and
    /// panics rather than reporting errors. [`MeasurementRig::try_measure`]
    /// is the validating equivalent.
    ///
    /// The `_seed` parameter is reserved for future per-run rig noise; the
    /// sensor already carries its own deterministic noise stream.
    #[must_use]
    pub fn measure(&self, waveform: &PowerWaveform, _seed: u64) -> Measurement {
        let mut sensor = self.sensor.clone();
        let codes = self.logger.log_run(waveform, &mut sensor, &self.adc);
        let quality = QualityReport::from_codes(&codes, self.drift_residual_codes(false));
        let supply = self.logger.supply();
        let samples: Vec<Watts> = codes
            .iter()
            .map(|&code| {
                let amps = self
                    .calibration
                    .amps_from_code(code)
                    .expect("calibrated fits are invertible");
                supply * amps
            })
            .collect();
        let avg = samples.iter().map(|w| w.value()).sum::<f64>() / samples.len() as f64;
        Measurement {
            average_power: Watts::new(avg),
            samples,
            duration: waveform.duration(),
            quality,
        }
    }

    /// The validating measurement path: applies the armed fault plan (if
    /// any), audits the log against the rig's [`QualityPolicy`], and
    /// returns a typed error instead of panicking.
    ///
    /// With no fault plan armed this delegates to the exact code path of
    /// [`MeasurementRig::measure`]: same sensor draws, same codes, same
    /// floating-point operations -- bit-for-bit identical results.
    ///
    /// # Errors
    ///
    /// Any [`SensorError`] the policy audit raises, or
    /// [`SensorError::Uninvertible`] for a corrupt calibration.
    ///
    /// # Example
    ///
    /// ```
    /// use lhr_power::PowerWaveform;
    /// use lhr_sensors::MeasurementRig;
    /// use lhr_units::{Seconds, Watts};
    ///
    /// // A steady 26 W chip sampled for 4 s at 50 Hz.
    /// let mut w = PowerWaveform::new(Seconds::from_ms(20.0));
    /// for _ in 0..200 {
    ///     w.push(Watts::new(26.0));
    /// }
    /// let mut rig = MeasurementRig::for_max_power(Watts::new(60.0), 42)?;
    /// let m = rig.try_measure(&w, 7)?;
    /// let err = (m.average_power.value() - 26.0).abs() / 26.0;
    /// assert!(err < 0.02, "calibrated rig reads within ~1-2%");
    /// assert_eq!(m.quality.gap_count, 0); // no faults armed, no gaps
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    pub fn try_measure(
        &mut self,
        waveform: &PowerWaveform,
        seed: u64,
    ) -> Result<Measurement, SensorError> {
        if self.injector.is_none() {
            let m = self.measure(waveform, seed);
            self.note_run(&m.quality);
            if let Err(e) = m.quality.check(&self.policy) {
                self.note_rejection(&e);
                return Err(e);
            }
            return Ok(m);
        }
        // A wedged logger hangs before any data moves: wall-clock time
        // only, never the measured values.
        if let Some(stall_s) = self.injector.as_mut().expect("checked above").next_stall() {
            self.obs.counter("rig.stalled_runs", 1);
            std::thread::sleep(std::time::Duration::from_secs_f64(stall_s));
        }
        let injector = self.injector.as_ref().expect("checked above");
        let mut session = injector.session(seed);
        let drift = self.drift_residual_codes(true);
        let mut sensor = self.sensor.clone();
        let log = self
            .logger
            .log_run_faulted(waveform, &mut sensor, &self.adc, &mut session);
        // The thermal clock runs whether or not the run is accepted.
        self.injector
            .as_mut()
            .expect("checked above")
            .advance(waveform.duration().value());
        let quality = QualityReport::from_log(&log, drift);
        self.note_run(&quality);
        self.obs.counter("rig.faulted_runs", 1);
        if let Err(e) = quality.check(&self.policy) {
            self.note_rejection(&e);
            return Err(e);
        }
        let supply = self.logger.supply();
        let mut samples = Vec::with_capacity(quality.logged_samples);
        for code in log.iter().flatten() {
            let amps = self
                .calibration
                .amps_from_code(*code)
                .ok_or(SensorError::Uninvertible { code: *code })?;
            samples.push(supply * amps);
        }
        let avg = samples.iter().map(|w| w.value()).sum::<f64>() / samples.len() as f64;
        Ok(Measurement {
            average_power: Watts::new(avg),
            samples,
            duration: waveform.duration(),
            quality,
        })
    }

    /// Recalibrates the channel in place, as the paper's lab would after
    /// a sensor went bad ("re-solder and recalibrate"): the reference
    /// currents are driven through the channel *as it now is* -- thermal
    /// drift and clipping included -- so the new fit absorbs them.
    /// Transient faults (spikes, stuck codes, drops) do not afflict the
    /// quiet calibration bench.
    ///
    /// # Errors
    ///
    /// [`SensorError::Recalibration`] if the refit fails the R-squared
    /// acceptance test (a channel too broken to recalibrate around).
    pub fn recalibrate(&mut self) -> Result<(), SensorError> {
        let mut sensor = self.sensor.clone();
        let injector = self.injector.clone();
        let adc = self.adc;
        let calibration = Calibration::calibrate_channel(
            |amps| {
                let v = sensor.output(amps);
                let v = match &injector {
                    Some(inj) => inj.settled_volts(v),
                    None => v,
                };
                adc.quantize(v)
            },
            28,
            Amperes::from_ma(300.0),
            Amperes::new(3.0),
        )
        .map_err(SensorError::Recalibration);
        match calibration {
            Ok(calibration) => {
                self.obs.counter("rig.recalibrations", 1);
                self.calibration = calibration;
                Ok(())
            }
            Err(e) => {
                self.obs.counter("rig.recalibration_failures", 1);
                Err(e)
            }
        }
    }

    /// Reports one validated run's data quality to the observer.
    fn note_run(&self, quality: &QualityReport) {
        if !self.obs.enabled() {
            return;
        }
        self.obs.counter("rig.runs", 1);
        self.obs
            .counter("rig.samples_logged", quality.logged_samples as u64);
        self.obs.histogram("rig.sample_yield", quality.sample_yield);
        self.obs
            .histogram("rig.drift_codes", quality.drift_codes);
    }

    /// Reports a policy rejection to the observer.
    fn note_rejection(&self, e: &SensorError) {
        if !self.obs.enabled() {
            return;
        }
        self.obs.counter("rig.rejected_runs", 1);
        self.obs.mark("rig.rejected", &e.to_string());
    }

    /// The drift self-check: drives the mid-band reference current
    /// through the channel's noiseless transfer (drifted if `faulted`),
    /// quantizes it, and returns the absolute residual against the
    /// calibration fit's prediction, in ADC codes. RNG-free, so the
    /// check never perturbs any noise stream.
    fn drift_residual_codes(&self, faulted: bool) -> f64 {
        let amps = Amperes::new(SELF_CHECK_AMPS);
        let ideal = self.sensor.ideal_output(amps);
        let v = match (&self.injector, faulted) {
            (Some(inj), true) => inj.settled_volts(ideal),
            _ => ideal,
        };
        let code = f64::from(self.adc.quantize(v));
        (code - self.calibration.fit().predict(amps.value())).abs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::{Drift, Drops, FaultPlan, Saturation, Spikes, StuckCode};

    fn waveform(powers: &[f64]) -> PowerWaveform {
        let mut w = PowerWaveform::new(Seconds::from_ms(20.0));
        for &p in powers {
            w.push(Watts::new(p));
        }
        w
    }

    #[test]
    fn measures_steady_power_within_two_percent() {
        let rig = MeasurementRig::for_max_power(Watts::new(50.0), 42).unwrap();
        let truth = 26.4;
        let w = waveform(&vec![truth; 500]);
        let m = rig.measure(&w, 1);
        let err = (m.average_power.value() - truth).abs() / truth;
        assert!(err < 0.02, "err = {err}");
        assert_eq!(m.samples.len(), 500);
        assert_eq!(m.quality.logged_samples, 500);
        assert!((m.quality.sample_yield - 1.0).abs() < 1e-12);
        assert_eq!(m.quality.gap_count, 0);
        assert!(m.quality.drift_codes < 2.0, "clean rig near its fit");
    }

    #[test]
    fn tracks_varying_power() {
        let rig = MeasurementRig::for_max_power(Watts::new(50.0), 42).unwrap();
        // Square wave between 20 and 40 W: mean 30.
        let powers: Vec<f64> = (0..1000).map(|i| if i % 2 == 0 { 20.0 } else { 40.0 }).collect();
        let m = rig.measure(&waveform(&powers), 1);
        let err = (m.average_power.value() - 30.0).abs() / 30.0;
        assert!(err < 0.03, "err = {err}");
        let s = m.sample_summary();
        assert!(s.stddev() > 5.0, "square wave must show spread");
    }

    #[test]
    fn high_power_chip_gets_the_thirty_amp_sensor() {
        // An i7-class chip peaking near 90 W needs more than 5 A at 12 V.
        let rig = MeasurementRig::for_max_power(Watts::new(130.0), 7).unwrap();
        let truth = 89.0;
        let m = rig.measure(&waveform(&vec![truth; 500]), 1);
        let err = (m.average_power.value() - truth).abs() / truth;
        assert!(err < 0.03, "err = {err}");
    }

    #[test]
    fn low_power_chip_stays_measurable() {
        // The Atom draws ~2.4 W: ~200 mA. Near the bottom of the
        // calibration range but still within ~5%.
        let rig = MeasurementRig::for_max_power(Watts::new(4.0), 9).unwrap();
        let truth = 2.4;
        let m = rig.measure(&waveform(&vec![truth; 500]), 1);
        let err = (m.average_power.value() - truth).abs() / truth;
        assert!(err < 0.06, "err = {err}");
    }

    #[test]
    fn measurement_is_deterministic() {
        let rig = MeasurementRig::for_max_power(Watts::new(50.0), 42).unwrap();
        let w = waveform(&vec![25.0; 200]);
        assert_eq!(rig.measure(&w, 1), rig.measure(&w, 1));
    }

    #[test]
    fn different_rigs_agree_after_calibration() {
        let w = waveform(&vec![30.0; 400]);
        let a = MeasurementRig::for_max_power(Watts::new(50.0), 1)
            .unwrap()
            .measure(&w, 1);
        let b = MeasurementRig::for_max_power(Watts::new(50.0), 2)
            .unwrap()
            .measure(&w, 1);
        let diff = (a.average_power.value() - b.average_power.value()).abs() / 30.0;
        assert!(diff < 0.02, "rig disagreement {diff}");
    }

    #[test]
    fn try_measure_without_faults_is_bit_identical_to_measure() {
        let rig = MeasurementRig::for_max_power(Watts::new(50.0), 42).unwrap();
        let w = waveform(&vec![26.4; 500]);
        let legacy = rig.measure(&w, 17);
        let mut validating = rig.clone();
        let m = validating.try_measure(&w, 17).expect("clean rig accepts");
        assert_eq!(legacy, m);
        // An explicit all-default plan is also the identity.
        let mut none_plan = rig.clone().with_fault_plan(FaultPlan::none());
        assert!(none_plan.fault_injector().is_none());
        assert_eq!(legacy, none_plan.try_measure(&w, 17).unwrap());
    }

    #[test]
    fn heavy_saturation_is_rejected_with_a_typed_error() {
        // Clip the channel so hard that a 40 W run pegs at the low limit.
        let plan = FaultPlan::new(3).with_saturation(Saturation::new(2.2, 2.48));
        let mut rig = MeasurementRig::for_max_power(Watts::new(50.0), 42)
            .unwrap()
            .with_fault_plan(plan);
        let w = waveform(&vec![40.0; 500]);
        match rig.try_measure(&w, 1) {
            Err(SensorError::Saturated { fraction, .. }) => {
                assert!(fraction > 0.5, "pegged run, got {fraction}");
            }
            other => panic!("expected saturation rejection, got {other:?}"),
        }
    }

    #[test]
    fn paper_band_saturation_keeps_codes_in_band_and_measures_midrange() {
        let plan = FaultPlan::new(3).with_saturation(Saturation::paper_band());
        let mut rig = MeasurementRig::for_max_power(Watts::new(50.0), 42)
            .unwrap()
            .with_fault_plan(plan);
        // 20 W = 1.67 A: mid-band, unaffected by the band clip.
        let w = waveform(&vec![20.0; 500]);
        let m = rig.try_measure(&w, 1).expect("mid-band run passes");
        let err = (m.average_power.value() - 20.0).abs() / 20.0;
        assert!(err < 0.02, "err = {err}");
    }

    #[test]
    fn drift_is_detected_and_recalibration_recovers() {
        // Aggressive thermal drift: ~0.5% gain and 2 mV of offset per
        // second of uptime.
        let plan = FaultPlan::new(11).with_drift(Drift::new(0.005, 0.002));
        let mut rig = MeasurementRig::for_max_power(Watts::new(50.0), 42)
            .unwrap()
            .with_fault_plan(plan);
        let truth = 26.4;
        let w = waveform(&vec![truth; 500]); // 10 s per run
        // Run the rig until the self-check trips the policy.
        let mut tripped = false;
        for seed in 0..12 {
            match rig.try_measure(&w, seed) {
                Ok(_) => {}
                Err(SensorError::ExcessiveDrift { codes, limit }) => {
                    assert!(codes > limit);
                    tripped = true;
                    break;
                }
                Err(other) => panic!("unexpected error {other}"),
            }
        }
        assert!(tripped, "drift must eventually trip the self-check");
        rig.recalibrate().expect("drifted channel refits");
        let m = rig.try_measure(&w, 99).expect("recalibrated rig accepts");
        let err = (m.average_power.value() - truth).abs() / truth;
        assert!(err < 0.03, "post-recalibration err = {err}");
    }

    #[test]
    fn stuck_code_reads_as_saturation() {
        let plan = FaultPlan::new(2).with_stuck_code(StuckCode {
            code: 430,
            per_run_probability: 1.0,
        });
        let mut rig = MeasurementRig::for_max_power(Watts::new(50.0), 42)
            .unwrap()
            .with_fault_plan(plan);
        let w = waveform(&vec![26.4; 500]);
        assert!(matches!(
            rig.try_measure(&w, 1),
            Err(SensorError::Saturated { .. })
        ));
    }

    #[test]
    fn spiked_run_is_accepted_but_biased() {
        let plan = FaultPlan::new(6).with_spikes(Spikes {
            per_run_probability: 1.0,
            magnitude_v: -0.15,
        });
        let mut rig = MeasurementRig::for_max_power(Watts::new(50.0), 42)
            .unwrap()
            .with_fault_plan(plan);
        let truth = 26.4;
        let w = waveform(&vec![truth; 500]);
        let m = rig.try_measure(&w, 1).expect("a spike is not a flatline");
        // -150 mV reads as roughly +0.8 A = ~10 W of phantom power.
        assert!(
            m.average_power.value() > truth + 5.0,
            "spike must bias the run, got {}",
            m.average_power.value()
        );
    }

    #[test]
    fn observer_sees_runs_rejections_and_recalibrations() {
        use lhr_obs::{MemoryRecorder, Obs};
        use std::sync::Arc;

        let memory = Arc::new(MemoryRecorder::default());
        let plan = FaultPlan::new(11).with_drift(Drift::new(0.005, 0.002));
        let mut rig = MeasurementRig::for_max_power(Watts::new(50.0), 42)
            .unwrap()
            .with_fault_plan(plan)
            .with_observer(Obs::recording(memory.clone()));
        let w = waveform(&vec![26.4; 500]);
        let mut rejections = 0;
        for seed in 0..12 {
            match rig.try_measure(&w, seed) {
                Ok(_) => {}
                Err(SensorError::ExcessiveDrift { .. }) => {
                    rejections += 1;
                    rig.recalibrate().expect("drifted channel refits");
                }
                Err(other) => panic!("unexpected error {other}"),
            }
        }
        let snap = memory.snapshot();
        assert_eq!(snap.counter("rig.runs"), 12);
        assert_eq!(snap.counter("rig.faulted_runs"), 12);
        assert_eq!(snap.counter("rig.rejected_runs"), rejections);
        assert_eq!(snap.counter("rig.recalibrations"), rejections);
        assert!(rejections > 0, "drift must trip at least once");
        let yields = &snap.histograms["rig.sample_yield"];
        assert_eq!(yields.count, 12);
        assert!((yields.mean() - 1.0).abs() < 1e-9, "drift drops no samples");
        assert_eq!(snap.marks.len(), rejections as usize);
        assert!(snap.marks.iter().all(|(name, _)| name == "rig.rejected"));
    }

    #[test]
    fn observer_is_transparent_to_rig_equality_and_results() {
        use lhr_obs::{MemoryRecorder, Obs};
        use std::sync::Arc;

        let silent = MeasurementRig::for_max_power(Watts::new(50.0), 42).unwrap();
        let observed = silent
            .clone()
            .with_observer(Obs::recording(Arc::new(MemoryRecorder::default())));
        assert_eq!(silent, observed);
        let w = waveform(&vec![26.4; 300]);
        let a = silent.clone().try_measure(&w, 5).unwrap();
        let b = observed.clone().try_measure(&w, 5).unwrap();
        assert_eq!(a, b, "observation must not perturb the measurement");
    }

    #[test]
    fn stall_burns_wall_clock_but_not_data() {
        use crate::faults::Stall;

        let clean = MeasurementRig::for_max_power(Watts::new(50.0), 42).unwrap();
        let w = waveform(&vec![26.4; 300]);
        let reference = clean.measure(&w, 5);
        let mut wedged = clean.with_fault_plan(FaultPlan::new(4).with_stall(Stall::transient(1, 0.05)));
        let t0 = std::time::Instant::now();
        let stalled = wedged.try_measure(&w, 5).expect("a stall is not a data fault");
        assert!(
            t0.elapsed() >= std::time::Duration::from_millis(50),
            "first run must hang for the stall duration"
        );
        assert_eq!(reference.average_power, stalled.average_power);
        assert_eq!(reference.samples, stalled.samples);
        // The wedge has cleared: the second run is fast.
        let t1 = std::time::Instant::now();
        let healed = wedged.try_measure(&w, 5).expect("recovered logger accepts");
        assert!(t1.elapsed() < std::time::Duration::from_millis(50));
        assert_eq!(reference.samples, healed.samples);
    }

    #[test]
    fn drops_reduce_yield_and_count_gaps() {
        let plan = FaultPlan::new(8).with_drops(Drops { probability: 0.2 });
        let mut rig = MeasurementRig::for_max_power(Watts::new(50.0), 42)
            .unwrap()
            .with_fault_plan(plan);
        let w = waveform(&vec![26.4; 1000]);
        let m = rig.try_measure(&w, 1).expect("20% drops pass a 50% floor");
        assert!(m.quality.sample_yield < 1.0);
        assert!(m.quality.sample_yield > 0.6);
        assert!(m.quality.gap_count > 0);
        assert_eq!(m.samples.len(), m.quality.logged_samples);
    }
}
