//! Deterministic fault injection for the sensing rig.
//!
//! Real rigs misbehave: sensors peg at the edge of their range, gain and
//! offset walk with temperature, ADC channels latch a stuck code, rails
//! pick up transient spikes, and USB loggers drop frames. A [`FaultPlan`]
//! describes which of those afflictions a rig suffers; a [`FaultInjector`]
//! owns the slow state (the thermal clock) across measurements; a
//! [`FaultSession`] applies the plan to one run.
//!
//! Everything is seeded and reproducible: the fault stream is derived
//! from `plan seed ^ run seed` with [`SplitMix64`], entirely separate
//! from the sensor's own noise stream, so an all-default ("no-fault")
//! plan leaves every measurement bit-for-bit identical to a rig without
//! an injector at all.

use lhr_trace::{Rng64, SplitMix64};
use lhr_units::Volts;

/// Clipping limits on the sensor's analog output, modelling a channel
/// that saturates before the ADC's full range.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Saturation {
    low_v: f64,
    high_v: f64,
}

impl Saturation {
    /// Clipping at the given analog limits.
    ///
    /// # Panics
    ///
    /// Panics unless `0 <= low < high`.
    #[must_use]
    pub fn new(low_v: f64, high_v: f64) -> Self {
        assert!(low_v >= 0.0 && low_v < high_v, "need 0 <= low < high");
        Self { low_v, high_v }
    }

    /// Clipping that confines the channel to the paper's observed
    /// calibration code band (400-503 on the 10-bit/5 V ADC): the output
    /// can never quantize outside the codes a healthy channel produces,
    /// but any current past the band pegs.
    #[must_use]
    pub fn paper_band() -> Self {
        // 400 * 5/1024 = 1.953 V and 504 * 5/1024 = 2.461 V; stay a few
        // millivolts inside so quantization lands strictly in 400..=503.
        Self::new(1.955, 2.455)
    }

    /// The lower clip limit in volts.
    #[must_use]
    pub fn low(&self) -> f64 {
        self.low_v
    }

    /// The upper clip limit in volts.
    #[must_use]
    pub fn high(&self) -> f64 {
        self.high_v
    }

    fn clamp(&self, v: f64) -> f64 {
        v.clamp(self.low_v, self.high_v)
    }
}

/// Slow thermal drift of the sensor transfer function: gain and offset
/// walk linearly with powered-on time, exactly the failure mode the
/// paper's R-squared >= 0.999 calibration gate exists to catch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Drift {
    /// Fractional gain change per second of rig uptime.
    pub gain_per_s: f64,
    /// Output offset change per second of rig uptime, in volts.
    pub offset_v_per_s: f64,
}

impl Drift {
    /// Drift with the given per-second rates.
    #[must_use]
    pub fn new(gain_per_s: f64, offset_v_per_s: f64) -> Self {
        Self {
            gain_per_s,
            offset_v_per_s,
        }
    }
}

/// An ADC channel that latches one fixed code for a whole invocation,
/// with the given per-invocation probability.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StuckCode {
    /// The code the channel latches to.
    pub code: u16,
    /// Probability that any given invocation is affected.
    pub per_run_probability: f64,
}

/// A transient electrical excursion on the sensed rail: with the given
/// per-invocation probability, the whole invocation's analog output is
/// shifted by `magnitude_v` (negative shifts read as *higher* power on
/// this rig's wiring), turning that invocation into an outlier.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Spikes {
    /// Probability that any given invocation is affected.
    pub per_run_probability: f64,
    /// The voltage excursion applied while the spike is active.
    pub magnitude_v: f64,
}

/// The logger dropping samples (lost frames on the USB link), each
/// sample independently with the given probability.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Drops {
    /// Per-sample drop probability.
    pub probability: f64,
}

/// A wedged logger: affected runs hang for a fixed wall-clock delay
/// before any data moves. The stall perturbs *time only* -- the codes,
/// samples, and quality report of a stalled run are identical to the
/// un-stalled run -- which is exactly the failure mode a supervising
/// watchdog has to catch, since no data-quality gate ever will.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Stall {
    /// Runs affected: `Some(n)` stalls only the first `n` measured runs
    /// (a transient wedge that clears, e.g. after a bus reset); `None`
    /// wedges the logger permanently, stalling every run.
    pub first_runs: Option<u32>,
    /// Wall-clock seconds each affected run hangs for.
    pub seconds: f64,
}

impl Stall {
    /// A transient wedge: the first `n` runs hang for `seconds` each,
    /// after which the logger recovers.
    #[must_use]
    pub fn transient(n: u32, seconds: f64) -> Self {
        Self {
            first_runs: Some(n),
            seconds,
        }
    }

    /// A permanent wedge: every run hangs for `seconds`.
    #[must_use]
    pub fn permanent(seconds: f64) -> Self {
        Self {
            first_runs: None,
            seconds,
        }
    }
}

/// A seeded, deterministic description of everything wrong with a rig.
///
/// The default plan ([`FaultPlan::none`]) injects nothing and is the
/// identity on every measurement.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    seed: u64,
    saturation: Option<Saturation>,
    drift: Option<Drift>,
    stuck: Option<StuckCode>,
    spikes: Option<Spikes>,
    drops: Option<Drops>,
    stall: Option<Stall>,
}

impl FaultPlan {
    /// The empty plan: no faults, bit-for-bit identical measurements.
    #[must_use]
    pub fn none() -> Self {
        Self::default()
    }

    /// An empty plan carrying a seed for its (future) fault streams.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            ..Self::default()
        }
    }

    /// Adds output saturation.
    #[must_use]
    pub fn with_saturation(mut self, s: Saturation) -> Self {
        self.saturation = Some(s);
        self
    }

    /// Adds thermal gain/offset drift.
    #[must_use]
    pub fn with_drift(mut self, d: Drift) -> Self {
        self.drift = Some(d);
        self
    }

    /// Adds a probabilistically stuck ADC code.
    #[must_use]
    pub fn with_stuck_code(mut self, s: StuckCode) -> Self {
        self.stuck = Some(s);
        self
    }

    /// Adds transient rail spikes.
    #[must_use]
    pub fn with_spikes(mut self, s: Spikes) -> Self {
        self.spikes = Some(s);
        self
    }

    /// Adds logger sample drops.
    #[must_use]
    pub fn with_drops(mut self, d: Drops) -> Self {
        self.drops = Some(d);
        self
    }

    /// Adds a logger stall (see [`Stall`]).
    #[must_use]
    pub fn with_stall(mut self, s: Stall) -> Self {
        self.stall = Some(s);
        self
    }

    /// The configured logger stall, if any.
    #[must_use]
    pub fn stall(&self) -> Option<Stall> {
        self.stall
    }

    /// Whether the plan injects nothing at all.
    #[must_use]
    pub fn is_none(&self) -> bool {
        self.saturation.is_none()
            && self.drift.is_none()
            && self.stuck.is_none()
            && self.spikes.is_none()
            && self.drops.is_none()
            && self.stall.is_none()
    }

    /// The plan's fault-stream seed.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }
}

/// Owns a plan plus the slow state that persists across measurements:
/// the rig's powered-on clock, which thermal drift accumulates against.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultInjector {
    plan: FaultPlan,
    clock_s: f64,
    runs_started: u64,
}

impl FaultInjector {
    /// An injector at power-on (clock zero).
    #[must_use]
    pub fn new(plan: FaultPlan) -> Self {
        Self {
            plan,
            clock_s: 0.0,
            runs_started: 0,
        }
    }

    /// The plan being injected.
    #[must_use]
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Seconds of rig uptime accumulated so far.
    #[must_use]
    pub fn clock(&self) -> f64 {
        self.clock_s
    }

    /// Advances the uptime clock (called once per measured run).
    pub fn advance(&mut self, seconds: f64) {
        self.clock_s += seconds.max(0.0);
    }

    /// Measured runs started so far (the stall budget's counter).
    #[must_use]
    pub fn runs_started(&self) -> u64 {
        self.runs_started
    }

    /// Counts the next measured run against the stall budget and returns
    /// how long it hangs: `Some(seconds)` while the wedge is active,
    /// `None` once a transient wedge has cleared (or no stall is
    /// configured). The caller sleeps; the injector only decides.
    pub fn next_stall(&mut self) -> Option<f64> {
        let stall = self.plan.stall?;
        let run = self.runs_started;
        self.runs_started += 1;
        match stall.first_runs {
            Some(n) if run >= u64::from(n) => None,
            _ => Some(stall.seconds.max(0.0)),
        }
    }

    /// The deterministic (RNG-free) part of the analog transform at the
    /// current clock: drift about the ACS714's 2.5 V center, then
    /// saturation clipping. Used both per-sample and by the rig's drift
    /// self-check, so the check sees exactly what measurements see.
    #[must_use]
    pub fn settled_volts(&self, v: Volts) -> Volts {
        let mut x = v.value();
        if let Some(d) = self.plan.drift {
            let gain = 1.0 + d.gain_per_s * self.clock_s;
            x = 2.5 + (x - 2.5) * gain + d.offset_v_per_s * self.clock_s;
        }
        if let Some(s) = self.plan.saturation {
            x = s.clamp(x);
        }
        Volts::new(x.clamp(0.0, 5.0))
    }

    /// Starts a per-run fault session. The session's stream is
    /// `plan seed ^ run seed`, so it is reproducible per invocation and
    /// independent of the sensor's own noise stream.
    #[must_use]
    pub fn session(&self, run_seed: u64) -> FaultSession {
        let mut rng = SplitMix64::new(self.plan.seed ^ run_seed ^ 0xfa17_5eed);
        let spike_v = match self.plan.spikes {
            Some(s) if rng.next_bool(s.per_run_probability) => Some(s.magnitude_v),
            _ => None,
        };
        let stuck_code = match self.plan.stuck {
            Some(s) if rng.next_bool(s.per_run_probability) => Some(s.code),
            _ => None,
        };
        FaultSession {
            injector: self.clone(),
            rng,
            spike_v,
            stuck_code,
            drop_p: self.plan.drops.map_or(0.0, |d| d.probability),
        }
    }
}

/// One run's worth of fault application.
///
/// Per-run events (spike, stuck code) are decided at session start; the
/// only per-sample random draw is the drop decision, taken *after* the
/// sensor has produced its sample so the sensor noise stream is
/// unaffected by whether drops are configured.
#[derive(Debug, Clone)]
pub struct FaultSession {
    injector: FaultInjector,
    rng: SplitMix64,
    spike_v: Option<f64>,
    stuck_code: Option<u16>,
    drop_p: f64,
}

impl FaultSession {
    /// Applies the analog-side faults to one sensor output sample.
    #[must_use]
    pub fn volts(&self, v: Volts) -> Volts {
        let mut x = v.value();
        if let Some(d) = self.injector.plan.drift {
            let gain = 1.0 + d.gain_per_s * self.injector.clock_s;
            x = 2.5 + (x - 2.5) * gain + d.offset_v_per_s * self.injector.clock_s;
        }
        if let Some(s) = self.spike_v {
            x += s;
        }
        if let Some(s) = self.injector.plan.saturation {
            x = s.clamp(x);
        }
        Volts::new(x.clamp(0.0, 5.0))
    }

    /// Applies the digital-side faults to one quantized code.
    #[must_use]
    pub fn code(&self, code: u16) -> u16 {
        self.stuck_code.unwrap_or(code)
    }

    /// Whether the logger keeps the next sample (draws the per-sample
    /// drop decision; always `true` when no drops are configured).
    pub fn keep(&mut self) -> bool {
        self.drop_p <= 0.0 || !self.rng.next_bool(self.drop_p)
    }

    /// Whether this run drew a transient spike.
    #[must_use]
    pub fn spiked(&self) -> bool {
        self.spike_v.is_some()
    }

    /// Whether this run drew a stuck ADC code.
    #[must_use]
    pub fn stuck(&self) -> bool {
        self.stuck_code.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_plan_is_the_identity() {
        let inj = FaultInjector::new(FaultPlan::none());
        assert!(inj.plan().is_none());
        let mut s = inj.session(42);
        let v = Volts::new(2.31);
        assert_eq!(s.volts(v), v);
        assert_eq!(s.code(477), 477);
        for _ in 0..100 {
            assert!(s.keep());
        }
    }

    #[test]
    fn sessions_are_deterministic_per_run_seed() {
        let plan = FaultPlan::new(9)
            .with_spikes(Spikes {
                per_run_probability: 0.5,
                magnitude_v: -0.2,
            })
            .with_drops(Drops { probability: 0.3 });
        let inj = FaultInjector::new(plan);
        let mut a = inj.session(7);
        let mut b = inj.session(7);
        assert_eq!(a.spiked(), b.spiked());
        for _ in 0..50 {
            assert_eq!(a.keep(), b.keep());
        }
    }

    #[test]
    fn saturation_clamps_to_band() {
        let s = Saturation::paper_band();
        assert!(s.low() < s.high());
        let plan = FaultPlan::new(1).with_saturation(s);
        let sess = FaultInjector::new(plan).session(0);
        assert_eq!(sess.volts(Volts::new(0.4)).value(), s.low());
        assert_eq!(sess.volts(Volts::new(4.9)).value(), s.high());
        let inside = Volts::new(2.2);
        assert_eq!(sess.volts(inside), inside);
    }

    #[test]
    fn drift_accumulates_with_the_clock() {
        let plan = FaultPlan::new(1).with_drift(Drift::new(0.0, 0.001));
        let mut inj = FaultInjector::new(plan);
        let v = Volts::new(2.3);
        assert_eq!(inj.settled_volts(v), v); // no uptime, no drift
        inj.advance(10.0);
        let drifted = inj.settled_volts(v).value();
        assert!((drifted - 2.31).abs() < 1e-12, "got {drifted}");
        assert_eq!(inj.session(3).volts(v).value(), drifted);
    }

    #[test]
    fn spike_probability_one_always_fires() {
        let plan = FaultPlan::new(5).with_spikes(Spikes {
            per_run_probability: 1.0,
            magnitude_v: -0.1,
        });
        let inj = FaultInjector::new(plan);
        for seed in 0..20 {
            let s = inj.session(seed);
            assert!(s.spiked());
            assert!((s.volts(Volts::new(2.4)).value() - 2.3).abs() < 1e-12);
        }
    }

    #[test]
    fn stuck_code_overrides_every_sample() {
        let plan = FaultPlan::new(5).with_stuck_code(StuckCode {
            code: 441,
            per_run_probability: 1.0,
        });
        let s = FaultInjector::new(plan).session(0);
        assert!(s.stuck());
        assert_eq!(s.code(500), 441);
        assert_eq!(s.code(400), 441);
    }

    #[test]
    #[should_panic(expected = "need 0 <= low < high")]
    fn inverted_saturation_band_panics() {
        let _ = Saturation::new(3.0, 2.0);
    }

    #[test]
    fn transient_stall_clears_after_its_budget() {
        let plan = FaultPlan::new(1).with_stall(Stall::transient(2, 0.5));
        assert!(!plan.is_none());
        assert_eq!(plan.stall(), Some(Stall::transient(2, 0.5)));
        let mut inj = FaultInjector::new(plan);
        assert_eq!(inj.next_stall(), Some(0.5));
        assert_eq!(inj.next_stall(), Some(0.5));
        assert_eq!(inj.next_stall(), None);
        assert_eq!(inj.next_stall(), None);
        assert_eq!(inj.runs_started(), 4);
    }

    #[test]
    fn permanent_stall_never_clears() {
        let mut inj = FaultInjector::new(FaultPlan::new(1).with_stall(Stall::permanent(0.25)));
        for _ in 0..10 {
            assert_eq!(inj.next_stall(), Some(0.25));
        }
    }

    #[test]
    fn no_stall_configured_never_counts_runs() {
        let mut inj = FaultInjector::new(FaultPlan::new(1).with_drops(Drops { probability: 0.1 }));
        assert_eq!(inj.next_stall(), None);
        assert_eq!(inj.runs_started(), 0);
    }
}
