//! The Allegro ACS714 Hall-effect linear current sensor.

use lhr_trace::{Rng64, SplitMix64, Xoshiro256StarStar};
use lhr_units::{Amperes, Volts};

/// A Hall-effect current sensor with realistic imperfections.
///
/// The ACS714 outputs an analog voltage centered at 2.5 V that moves
/// linearly with current. The studied rigs wired the sensor so increasing
/// current *lowers* the output (the board's current direction), which is
/// why the paper's calibration codes run 503 down to 400 over 0.3-3 A.
/// Each physical device has a gain error (typically under 1.5%), an offset
/// error, and output noise; calibration exists precisely to remove the
/// first two.
#[derive(Debug, Clone, PartialEq)]
pub struct HallSensor {
    sensitivity_v_per_a: f64,
    center_v: f64,
    gain_error: f64,
    offset_error_v: f64,
    noise_sd_v: f64,
    range_a: f64,
    noise: Xoshiro256StarStar,
}

impl HallSensor {
    /// A +/-5 A ACS714 (185 mV/A), with device imperfections drawn
    /// deterministically from `device_seed`.
    #[must_use]
    pub fn acs714_5a(device_seed: u64) -> Self {
        Self::with_sensitivity(0.185, 5.0, device_seed)
    }

    /// A +/-30 A ACS714 (66 mV/A), used on the highest-power chip (the
    /// i7-920 draws up to ~7.5 A on its 12 V rail).
    #[must_use]
    pub fn acs714_30a(device_seed: u64) -> Self {
        Self::with_sensitivity(0.066, 30.0, device_seed)
    }

    fn with_sensitivity(v_per_a: f64, range_a: f64, device_seed: u64) -> Self {
        let mut dev = SplitMix64::new(device_seed ^ 0x00ac_5714_u64);
        // Datasheet-scale imperfections: +/-1.5% gain, +/-15 mV offset.
        let gain_error = dev.next_normal(0.0, 0.007).clamp(-0.015, 0.015);
        let offset_error_v = dev.next_normal(0.0, 0.007).clamp(-0.015, 0.015);
        Self {
            sensitivity_v_per_a: v_per_a,
            center_v: 2.5,
            gain_error,
            offset_error_v,
            noise_sd_v: 0.004,
            range_a,
            noise: Xoshiro256StarStar::new(device_seed ^ 0x0a11),
        }
    }

    /// The sensor's full-scale current range in amperes.
    #[must_use]
    pub fn range(&self) -> Amperes {
        Amperes::new(self.range_a)
    }

    /// The nominal sensitivity in volts per ampere.
    #[must_use]
    pub fn sensitivity(&self) -> f64 {
        self.sensitivity_v_per_a
    }

    /// The analog output for a given rail current, including this device's
    /// gain/offset imperfections and fresh output noise.
    ///
    /// Currents beyond the sensor's range saturate, as in hardware.
    pub fn output(&mut self, current: Amperes) -> Volts {
        let i = current.value().clamp(-self.range_a, self.range_a);
        let ideal = self.center_v - self.sensitivity_v_per_a * (1.0 + self.gain_error) * i;
        let noisy = ideal + self.offset_error_v + self.noise.next_normal(0.0, self.noise_sd_v);
        Volts::new(noisy.clamp(0.0, 5.0))
    }

    /// The noiseless transfer function (used in tests and documentation).
    #[must_use]
    pub fn ideal_output(&self, current: Amperes) -> Volts {
        let i = current.value().clamp(-self.range_a, self.range_a);
        Volts::new(
            (self.center_v - self.sensitivity_v_per_a * (1.0 + self.gain_error) * i
                + self.offset_error_v)
                .clamp(0.0, 5.0),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn output_decreases_with_current() {
        let s = HallSensor::acs714_5a(1);
        let at_0 = s.ideal_output(Amperes::new(0.0)).value();
        let at_1 = s.ideal_output(Amperes::new(1.0)).value();
        let at_3 = s.ideal_output(Amperes::new(3.0)).value();
        assert!(at_0 > at_1 && at_1 > at_3);
        // ~185 mV per ampere.
        assert!((at_0 - at_1 - 0.185).abs() < 0.02);
    }

    #[test]
    fn thirty_amp_variant_is_less_sensitive() {
        let five = HallSensor::acs714_5a(1);
        let thirty = HallSensor::acs714_30a(1);
        assert!(five.sensitivity() > thirty.sensitivity() * 2.0);
        assert_eq!(thirty.range(), Amperes::new(30.0));
        assert_eq!(five.range(), Amperes::new(5.0));
    }

    #[test]
    fn saturates_at_range() {
        let s = HallSensor::acs714_5a(1);
        let at_range = s.ideal_output(Amperes::new(5.0));
        let beyond = s.ideal_output(Amperes::new(50.0));
        assert_eq!(at_range, beyond);
    }

    #[test]
    fn devices_differ_but_each_is_deterministic() {
        let a1 = HallSensor::acs714_5a(1);
        let a2 = HallSensor::acs714_5a(1);
        let b = HallSensor::acs714_5a(2);
        assert_eq!(a1, a2);
        assert_ne!(
            a1.ideal_output(Amperes::new(2.0)),
            b.ideal_output(Amperes::new(2.0))
        );
    }

    #[test]
    fn noise_is_small_and_zero_mean() {
        let mut s = HallSensor::acs714_5a(3);
        let ideal = s.ideal_output(Amperes::new(1.0)).value();
        let n = 10_000;
        let mean: f64 = (0..n)
            .map(|_| s.output(Amperes::new(1.0)).value())
            .sum::<f64>()
            / f64::from(n);
        assert!((mean - ideal).abs() < 0.001, "noise must be zero-mean");
    }

    #[test]
    fn error_stays_within_datasheet_bounds() {
        for seed in 0..50 {
            let s = HallSensor::acs714_5a(seed);
            // Compare the device transfer to the perfect nominal one.
            let i = Amperes::new(2.0);
            let nominal = 2.5 - 0.185 * 2.0;
            let actual = s.ideal_output(i).value();
            let err = (actual - nominal).abs();
            // Gain error at 2 A (<= 1.5% of 0.37 V) plus 15 mV offset.
            assert!(err < 0.021, "seed {seed}: error {err}");
        }
    }
}
