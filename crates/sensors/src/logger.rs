//! The 50 Hz USB data logger (Sparkfun AVR Stick in the paper's rig).

use lhr_power::PowerWaveform;
use lhr_units::{Seconds, Volts};

use crate::adc::Adc;
use crate::faults::FaultSession;
use crate::hall::HallSensor;

/// Samples a sensor watching a supply rail at a fixed rate.
#[derive(Debug, Clone, PartialEq)]
pub struct DataLogger {
    sample_hz: f64,
    supply: Volts,
}

impl DataLogger {
    /// The paper's logger: 50 Hz on the 12 V processor rail.
    #[must_use]
    pub fn paper_rig() -> Self {
        Self::new(50.0, Volts::new(12.0))
    }

    /// Creates a logger with a custom rate and rail voltage.
    ///
    /// # Panics
    ///
    /// Panics unless both arguments are positive.
    #[must_use]
    pub fn new(sample_hz: f64, supply: Volts) -> Self {
        assert!(sample_hz > 0.0, "sample rate must be positive");
        assert!(supply.value() > 0.0, "supply voltage must be positive");
        Self { sample_hz, supply }
    }

    /// The sampling rate in hertz.
    #[must_use]
    pub fn sample_hz(&self) -> f64 {
        self.sample_hz
    }

    /// The monitored rail voltage.
    #[must_use]
    pub fn supply(&self) -> Volts {
        self.supply
    }

    /// Logs a full benchmark run: samples the chip's power waveform at the
    /// logger rate, converts power to rail current, passes it through the
    /// sensor, and quantizes with the ADC. Returns the raw code log.
    ///
    /// Runs shorter than one sample period still produce one sample (taken
    /// at t = 0), as a real logger triggered at benchmark start would.
    #[must_use]
    pub fn log_run(
        &self,
        waveform: &PowerWaveform,
        sensor: &mut HallSensor,
        adc: &Adc,
    ) -> Vec<u16> {
        let duration = waveform.duration().value();
        let period = 1.0 / self.sample_hz;
        let n = ((duration / period).floor() as usize).max(1);
        (0..n)
            .map(|k| {
                let t = Seconds::new(k as f64 * period);
                let current = waveform.power_at(t) / self.supply;
                adc.quantize(sensor.output(current))
            })
            .collect()
    }

    /// Logs a run through a fault session: each sensor output passes
    /// through the session's analog faults before quantization, each
    /// quantized code through its digital faults, and each sample may be
    /// dropped (`None`). The sensor is sampled for every slot -- dropped
    /// or not -- so the sensor's noise stream advances exactly as in
    /// [`DataLogger::log_run`] and drop decisions cannot perturb the
    /// values of surviving samples.
    #[must_use]
    pub fn log_run_faulted(
        &self,
        waveform: &PowerWaveform,
        sensor: &mut HallSensor,
        adc: &Adc,
        session: &mut FaultSession,
    ) -> Vec<Option<u16>> {
        let duration = waveform.duration().value();
        let period = 1.0 / self.sample_hz;
        let n = ((duration / period).floor() as usize).max(1);
        (0..n)
            .map(|k| {
                let t = Seconds::new(k as f64 * period);
                let current = waveform.power_at(t) / self.supply;
                let volts = session.volts(sensor.output(current));
                let code = session.code(adc.quantize(volts));
                session.keep().then_some(code)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lhr_units::Watts;

    fn steady_waveform(watts: f64, slices: usize) -> PowerWaveform {
        let mut w = PowerWaveform::new(Seconds::from_ms(10.0));
        for _ in 0..slices {
            w.push(Watts::new(watts));
        }
        w
    }

    #[test]
    fn sample_count_matches_rate() {
        let logger = DataLogger::paper_rig();
        let w = steady_waveform(24.0, 500); // 5 s
        let mut sensor = HallSensor::acs714_5a(1);
        let log = logger.log_run(&w, &mut sensor, &Adc::avr_10bit());
        assert_eq!(log.len(), 250); // 5 s x 50 Hz
    }

    #[test]
    fn short_runs_still_sample_once() {
        let logger = DataLogger::paper_rig();
        let w = steady_waveform(24.0, 1); // 10 ms < 20 ms period
        let mut sensor = HallSensor::acs714_5a(1);
        let log = logger.log_run(&w, &mut sensor, &Adc::avr_10bit());
        assert_eq!(log.len(), 1);
    }

    #[test]
    fn steady_power_gives_tight_code_spread() {
        let logger = DataLogger::paper_rig();
        let w = steady_waveform(24.0, 1000);
        let mut sensor = HallSensor::acs714_5a(1);
        let log = logger.log_run(&w, &mut sensor, &Adc::avr_10bit());
        let min = *log.iter().min().unwrap();
        let max = *log.iter().max().unwrap();
        assert!(max - min <= 6, "codes {min}..{max} spread too far");
    }

    #[test]
    fn higher_power_means_lower_codes() {
        // The wiring direction: more power, more current, lower code.
        let logger = DataLogger::paper_rig();
        let mut sensor = HallSensor::acs714_5a(1);
        let adc = Adc::avr_10bit();
        let low = logger.log_run(&steady_waveform(10.0, 100), &mut sensor, &adc);
        let high = logger.log_run(&steady_waveform(40.0, 100), &mut sensor, &adc);
        let avg = |v: &[u16]| v.iter().map(|&c| f64::from(c)).sum::<f64>() / v.len() as f64;
        assert!(avg(&high) < avg(&low));
    }

    #[test]
    #[should_panic(expected = "sample rate must be positive")]
    fn zero_rate_panics() {
        let _ = DataLogger::new(0.0, Volts::new(12.0));
    }

    #[test]
    fn faulted_log_with_no_faults_matches_plain_log() {
        use crate::faults::{FaultInjector, FaultPlan};
        let logger = DataLogger::paper_rig();
        let w = steady_waveform(24.0, 500);
        let adc = Adc::avr_10bit();
        let mut plain_sensor = HallSensor::acs714_5a(1);
        let plain = logger.log_run(&w, &mut plain_sensor, &adc);
        let mut faulted_sensor = HallSensor::acs714_5a(1);
        let mut session = FaultInjector::new(FaultPlan::none()).session(99);
        let faulted = logger.log_run_faulted(&w, &mut faulted_sensor, &adc, &mut session);
        assert_eq!(
            plain,
            faulted.into_iter().map(Option::unwrap).collect::<Vec<_>>()
        );
    }

    #[test]
    fn drops_thin_the_log_without_changing_surviving_codes() {
        use crate::faults::{Drops, FaultInjector, FaultPlan};
        let logger = DataLogger::paper_rig();
        let w = steady_waveform(24.0, 1000);
        let adc = Adc::avr_10bit();
        let mut plain_sensor = HallSensor::acs714_5a(1);
        let plain = logger.log_run(&w, &mut plain_sensor, &adc);
        let plan = FaultPlan::new(4).with_drops(Drops { probability: 0.2 });
        let mut faulted_sensor = HallSensor::acs714_5a(1);
        let mut session = FaultInjector::new(plan).session(5);
        let faulted = logger.log_run_faulted(&w, &mut faulted_sensor, &adc, &mut session);
        assert_eq!(faulted.len(), plain.len());
        let kept = faulted.iter().flatten().count();
        assert!(kept < plain.len(), "some samples must drop");
        assert!(kept > plain.len() / 2, "most samples must survive");
        for (p, f) in plain.iter().zip(&faulted) {
            if let Some(code) = f {
                assert_eq!(code, p, "surviving samples are byte-identical");
            }
        }
    }
}
