//! Voltage/frequency operating curves.
//!
//! Each processor exposes a VID range (Table 3 of the paper) over which its
//! voltage regulator moves as the clock scales. The *shape* of V(f) is the
//! single most important determinant of how energy responds to clock
//! scaling (Section 3.3): a chip whose voltage climbs steeply toward its top
//! bin pays a quadratic dynamic-energy price for frequency (the i7-920 and
//! Core 2 E7600 behaviour), while a chip that reaches near-peak frequency on
//! a shallow upper slope is nearly energy-neutral to clock up (the i5-670).

use std::error::Error;
use std::fmt;

use serde::{Deserialize, Serialize};

use lhr_units::{Hertz, Volts};

/// Error constructing a [`VfCurve`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum VfError {
    /// The frequency range was empty or inverted.
    BadFrequencyRange {
        /// Minimum supplied.
        min_hz: f64,
        /// Maximum supplied.
        max_hz: f64,
    },
    /// The voltage range was inverted or non-positive.
    BadVoltageRange {
        /// Minimum supplied.
        min_v: f64,
        /// Maximum supplied.
        max_v: f64,
    },
    /// The curvature exponent was not positive.
    BadExponent {
        /// The exponent supplied.
        exponent: f64,
    },
}

impl fmt::Display for VfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VfError::BadFrequencyRange { min_hz, max_hz } => {
                write!(f, "invalid frequency range {min_hz}..{max_hz} Hz")
            }
            VfError::BadVoltageRange { min_v, max_v } => {
                write!(f, "invalid voltage range {min_v}..{max_v} V")
            }
            VfError::BadExponent { exponent } => {
                write!(f, "V(f) curvature exponent must be positive, got {exponent}")
            }
        }
    }
}

impl Error for VfError {}

/// A monotone V(f) curve over a chip's DVFS range.
///
/// `V(f) = Vmin + (Vmax - Vmin) x u^gamma` where `u` is the normalized
/// position of `f` in `[f_min, f_max]`. `gamma < 1` front-loads the voltage
/// climb (steep low-end, shallow top -- energy-friendly at peak clock);
/// `gamma > 1` back-loads it (the classic steep top bin).
///
/// ```
/// use lhr_power::VfCurve;
/// use lhr_units::{Hertz, Volts};
///
/// let curve = VfCurve::new(
///     Hertz::from_ghz(1.6), Hertz::from_ghz(2.66),
///     Volts::new(0.80), Volts::new(1.38),
///     1.6,
/// )?;
/// assert_eq!(curve.voltage_at(Hertz::from_ghz(1.6)), Volts::new(0.80));
/// assert_eq!(curve.voltage_at(Hertz::from_ghz(2.66)), Volts::new(1.38));
/// # Ok::<(), lhr_power::VfError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VfCurve {
    f_min_hz: f64,
    f_max_hz: f64,
    v_min: f64,
    v_max: f64,
    gamma: f64,
}

impl VfCurve {
    /// Builds a curve.
    ///
    /// # Errors
    ///
    /// Returns a [`VfError`] if the frequency range is empty/inverted, the
    /// voltage range is non-positive/inverted, or `gamma <= 0`.
    pub fn new(
        f_min: Hertz,
        f_max: Hertz,
        v_min: Volts,
        v_max: Volts,
        gamma: f64,
    ) -> Result<Self, VfError> {
        if !(f_min.value() > 0.0 && f_max.value() > f_min.value()) {
            return Err(VfError::BadFrequencyRange {
                min_hz: f_min.value(),
                max_hz: f_max.value(),
            });
        }
        if !(v_min.value() > 0.0 && v_max.value() >= v_min.value()) {
            return Err(VfError::BadVoltageRange {
                min_v: v_min.value(),
                max_v: v_max.value(),
            });
        }
        if !(gamma > 0.0 && gamma.is_finite()) {
            return Err(VfError::BadExponent { exponent: gamma });
        }
        Ok(Self {
            f_min_hz: f_min.value(),
            f_max_hz: f_max.value(),
            v_min: v_min.value(),
            v_max: v_max.value(),
            gamma,
        })
    }

    /// A flat curve pinned at one voltage (fixed-voltage parts like the
    /// Pentium 4, whose VID is not software-visible in Table 3).
    #[must_use]
    pub fn fixed(f_min: Hertz, f_max: Hertz, v: Volts) -> Self {
        Self {
            f_min_hz: f_min.value(),
            f_max_hz: f_max.value().max(f_min.value() * (1.0 + 1e-9)),
            v_min: v.value(),
            v_max: v.value(),
            gamma: 1.0,
        }
    }

    /// The minimum supported clock.
    #[must_use]
    pub fn f_min(&self) -> Hertz {
        Hertz::new(self.f_min_hz)
    }

    /// The maximum supported clock (without Turbo).
    #[must_use]
    pub fn f_max(&self) -> Hertz {
        Hertz::new(self.f_max_hz)
    }

    /// The supply voltage at clock `f`, clamped to the supported range.
    #[must_use]
    pub fn voltage_at(&self, f: Hertz) -> Volts {
        let u = ((f.value() - self.f_min_hz) / (self.f_max_hz - self.f_min_hz))
            .clamp(0.0, 1.0);
        Volts::new(self.v_min + (self.v_max - self.v_min) * u.powf(self.gamma))
    }

    /// Evenly spaced operating points across the DVFS range, minimum and
    /// maximum inclusive. Used by the harness's clock-scaling sweeps.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    #[must_use]
    pub fn operating_points(&self, n: usize) -> Vec<(Hertz, Volts)> {
        assert!(n >= 2, "need at least the two endpoints");
        (0..n)
            .map(|i| {
                let u = i as f64 / (n - 1) as f64;
                let f = Hertz::new(self.f_min_hz + u * (self.f_max_hz - self.f_min_hz));
                (f, self.voltage_at(f))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn curve(gamma: f64) -> VfCurve {
        VfCurve::new(
            Hertz::from_ghz(1.0),
            Hertz::from_ghz(3.0),
            Volts::new(0.8),
            Volts::new(1.4),
            gamma,
        )
        .unwrap()
    }

    #[test]
    fn endpoints_hit_vid_range() {
        let c = curve(1.0);
        assert_eq!(c.voltage_at(Hertz::from_ghz(1.0)), Volts::new(0.8));
        assert_eq!(c.voltage_at(Hertz::from_ghz(3.0)), Volts::new(1.4));
        assert_eq!(c.f_min(), Hertz::from_ghz(1.0));
        assert_eq!(c.f_max(), Hertz::from_ghz(3.0));
    }

    #[test]
    fn clamps_out_of_range_frequencies() {
        let c = curve(1.0);
        assert_eq!(c.voltage_at(Hertz::from_ghz(0.5)), Volts::new(0.8));
        assert_eq!(c.voltage_at(Hertz::from_ghz(9.9)), Volts::new(1.4));
    }

    #[test]
    fn monotone_nondecreasing() {
        for gamma in [0.5, 1.0, 2.0] {
            let c = curve(gamma);
            let pts = c.operating_points(16);
            for w in pts.windows(2) {
                assert!(w[1].1.value() >= w[0].1.value(), "gamma {gamma}");
            }
        }
    }

    #[test]
    fn gamma_shapes_the_curve() {
        let mid = Hertz::from_ghz(2.0);
        let front_loaded = curve(0.5).voltage_at(mid);
        let linear = curve(1.0).voltage_at(mid);
        let back_loaded = curve(2.0).voltage_at(mid);
        assert!(front_loaded.value() > linear.value());
        assert!(back_loaded.value() < linear.value());
        // Linear mid-point is the average of the endpoints.
        assert!((linear.value() - 1.1).abs() < 1e-12);
    }

    #[test]
    fn operating_points_cover_range() {
        let pts = curve(1.3).operating_points(7);
        assert_eq!(pts.len(), 7);
        assert_eq!(pts[0].0, Hertz::from_ghz(1.0));
        assert_eq!(pts[6].0, Hertz::from_ghz(3.0));
    }

    #[test]
    fn fixed_curve_is_flat() {
        let c = VfCurve::fixed(Hertz::from_ghz(2.4), Hertz::from_ghz(2.4), Volts::new(1.5));
        assert_eq!(c.voltage_at(Hertz::from_ghz(2.4)), Volts::new(1.5));
        assert_eq!(c.voltage_at(Hertz::from_ghz(1.0)), Volts::new(1.5));
    }

    #[test]
    fn validation_errors() {
        let e = VfCurve::new(
            Hertz::from_ghz(2.0),
            Hertz::from_ghz(1.0),
            Volts::new(0.8),
            Volts::new(1.4),
            1.0,
        )
        .unwrap_err();
        assert!(matches!(e, VfError::BadFrequencyRange { .. }));
        let e = VfCurve::new(
            Hertz::from_ghz(1.0),
            Hertz::from_ghz(2.0),
            Volts::new(1.4),
            Volts::new(0.8),
            1.0,
        )
        .unwrap_err();
        assert!(matches!(e, VfError::BadVoltageRange { .. }));
        let e = VfCurve::new(
            Hertz::from_ghz(1.0),
            Hertz::from_ghz(2.0),
            Volts::new(0.8),
            Volts::new(1.4),
            0.0,
        )
        .unwrap_err();
        assert!(matches!(e, VfError::BadExponent { .. }));
        assert!(format!("{e}").contains("exponent"));
    }

    #[test]
    #[should_panic(expected = "at least the two endpoints")]
    fn one_point_sweep_panics() {
        let _ = curve(1.0).operating_points(1);
    }
}
