//! Per-interval activity counters: the interface between the performance
//! simulation (`lhr-uarch`) and the power model.

use serde::{Deserialize, Serialize};

/// Counts of energy-bearing events in one simulation interval on one
/// hardware context (or aggregated across contexts).
///
/// All counts are raw event totals for the interval; the [`crate::EnergyModel`]
/// assigns each a per-event energy.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ActivityCounters {
    /// Retired instructions in total (drives fetch/decode/retire energy).
    pub instructions: u64,
    /// Integer ALU operations.
    pub int_ops: u64,
    /// Floating-point operations.
    pub fp_ops: u64,
    /// L1 data-cache accesses (loads + stores).
    pub l1_accesses: u64,
    /// L1 misses that hit in L2.
    pub l2_accesses: u64,
    /// L2 misses that hit in the last-level cache.
    pub llc_accesses: u64,
    /// LLC misses that go to DRAM.
    pub dram_accesses: u64,
    /// Branch instructions executed.
    pub branches: u64,
    /// Branch mispredictions (each costs a pipeline refill of wrong-path work).
    pub branch_flushes: u64,
    /// TLB misses (page-walk energy).
    pub tlb_misses: u64,
    /// Cycles any instruction issue was attempted on an active context.
    pub active_cycles: u64,
    /// Cycles an enabled core spent with no thread to run.
    pub idle_cycles: u64,
}

impl ActivityCounters {
    /// Elementwise sum of two counter sets.
    #[must_use]
    pub fn merged(&self, other: &ActivityCounters) -> ActivityCounters {
        ActivityCounters {
            instructions: self.instructions + other.instructions,
            int_ops: self.int_ops + other.int_ops,
            fp_ops: self.fp_ops + other.fp_ops,
            l1_accesses: self.l1_accesses + other.l1_accesses,
            l2_accesses: self.l2_accesses + other.l2_accesses,
            llc_accesses: self.llc_accesses + other.llc_accesses,
            dram_accesses: self.dram_accesses + other.dram_accesses,
            branches: self.branches + other.branches,
            branch_flushes: self.branch_flushes + other.branch_flushes,
            tlb_misses: self.tlb_misses + other.tlb_misses,
            active_cycles: self.active_cycles + other.active_cycles,
            idle_cycles: self.idle_cycles + other.idle_cycles,
        }
    }

    /// Adds `other` into `self`.
    pub fn merge(&mut self, other: &ActivityCounters) {
        *self = self.merged(other);
    }

    /// True when no events at all were recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        *self == ActivityCounters::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_empty() {
        assert!(ActivityCounters::default().is_empty());
    }

    #[test]
    fn merge_sums_every_field() {
        let a = ActivityCounters {
            instructions: 1,
            int_ops: 2,
            fp_ops: 3,
            l1_accesses: 4,
            l2_accesses: 5,
            llc_accesses: 6,
            dram_accesses: 7,
            branches: 8,
            branch_flushes: 9,
            tlb_misses: 10,
            active_cycles: 11,
            idle_cycles: 12,
        };
        let b = a;
        let m = a.merged(&b);
        assert_eq!(m.instructions, 2);
        assert_eq!(m.int_ops, 4);
        assert_eq!(m.fp_ops, 6);
        assert_eq!(m.l1_accesses, 8);
        assert_eq!(m.l2_accesses, 10);
        assert_eq!(m.llc_accesses, 12);
        assert_eq!(m.dram_accesses, 14);
        assert_eq!(m.branches, 16);
        assert_eq!(m.branch_flushes, 18);
        assert_eq!(m.tlb_misses, 20);
        assert_eq!(m.active_cycles, 22);
        assert_eq!(m.idle_cycles, 24);
        assert!(!m.is_empty());
        let mut c = a;
        c.merge(&b);
        assert_eq!(c, m);
    }
}
