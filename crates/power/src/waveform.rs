//! Chip power as a function of time.
//!
//! The simulated chip emits one average-power sample per simulation slice;
//! the waveform is what the sensing rig (in `lhr-sensors`) attaches to, just
//! as the paper's Hall-effect sensor attached to the physical 12V rail.

use lhr_units::{Joules, Seconds, Watts};

/// A uniformly sampled power-versus-time record for one benchmark run.
#[derive(Debug, Clone, PartialEq)]
pub struct PowerWaveform {
    slice: Seconds,
    samples: Vec<f64>,
}

impl PowerWaveform {
    /// Creates an empty waveform with the given slice duration.
    ///
    /// # Panics
    ///
    /// Panics if the slice duration is not positive.
    #[must_use]
    pub fn new(slice: Seconds) -> Self {
        assert!(slice.value() > 0.0, "slice duration must be positive");
        Self {
            slice,
            samples: Vec::new(),
        }
    }

    /// Creates an empty waveform with room for `capacity` slices before
    /// the first reallocation. Capacity is invisible to every observer
    /// (equality, length, samples), so a caller that knows its slice
    /// count -- the simulator targets a fixed number per run -- can skip
    /// the growth reallocations without changing any result.
    ///
    /// ```
    /// use lhr_power::PowerWaveform;
    /// use lhr_units::{Seconds, Watts};
    ///
    /// let mut a = PowerWaveform::with_capacity(Seconds::new(1e-3), 64);
    /// let mut b = PowerWaveform::new(Seconds::new(1e-3));
    /// a.push(Watts::new(20.0));
    /// b.push(Watts::new(20.0));
    /// assert_eq!(a, b);
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if the slice duration is not positive.
    #[must_use]
    pub fn with_capacity(slice: Seconds, capacity: usize) -> Self {
        assert!(slice.value() > 0.0, "slice duration must be positive");
        Self {
            slice,
            samples: Vec::with_capacity(capacity),
        }
    }

    /// Appends one slice's average power.
    pub fn push(&mut self, power: Watts) {
        self.samples.push(power.value());
    }

    /// The slice duration.
    #[must_use]
    pub fn slice(&self) -> Seconds {
        self.slice
    }

    /// Number of slices recorded.
    #[must_use]
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the waveform is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Total duration covered.
    #[must_use]
    pub fn duration(&self) -> Seconds {
        self.slice * self.samples.len() as f64
    }

    /// The instantaneous power at time `t` (zero-order hold; `t` past the
    /// end returns the final slice, and an empty waveform reads 0 W).
    #[must_use]
    pub fn power_at(&self, t: Seconds) -> Watts {
        if self.samples.is_empty() {
            return Watts::ZERO;
        }
        let idx = (t.value() / self.slice.value()).floor() as usize;
        Watts::new(self.samples[idx.min(self.samples.len() - 1)])
    }

    /// Total energy: the integral of power over the run.
    #[must_use]
    pub fn energy(&self) -> Joules {
        Joules::new(self.samples.iter().sum::<f64>() * self.slice.value())
    }

    /// True average power over the run (what an ideal meter would report).
    ///
    /// Returns 0 W for an empty waveform.
    #[must_use]
    pub fn average_power(&self) -> Watts {
        if self.samples.is_empty() {
            Watts::ZERO
        } else {
            Watts::new(self.samples.iter().sum::<f64>() / self.samples.len() as f64)
        }
    }

    /// Summary statistics of the waveform.
    #[must_use]
    pub fn stats(&self) -> WaveformStats {
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for &s in &self.samples {
            min = min.min(s);
            max = max.max(s);
        }
        WaveformStats {
            average: self.average_power(),
            min: if self.samples.is_empty() { Watts::ZERO } else { Watts::new(min) },
            max: if self.samples.is_empty() { Watts::ZERO } else { Watts::new(max) },
            duration: self.duration(),
            energy: self.energy(),
        }
    }

    /// Iterates `(slice start time, average power)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (Seconds, Watts)> + '_ {
        self.samples
            .iter()
            .enumerate()
            .map(move |(i, &p)| (self.slice * i as f64, Watts::new(p)))
    }
}

/// Summary statistics of a [`PowerWaveform`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WaveformStats {
    /// Mean power over the run.
    pub average: Watts,
    /// Minimum slice power.
    pub min: Watts,
    /// Maximum slice power.
    pub max: Watts,
    /// Run duration.
    pub duration: Seconds,
    /// Total energy.
    pub energy: Joules,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wf(powers: &[f64]) -> PowerWaveform {
        let mut w = PowerWaveform::new(Seconds::from_ms(10.0));
        for &p in powers {
            w.push(Watts::new(p));
        }
        w
    }

    #[test]
    fn empty_waveform() {
        let w = PowerWaveform::new(Seconds::from_ms(10.0));
        assert!(w.is_empty());
        assert_eq!(w.len(), 0);
        assert_eq!(w.average_power(), Watts::ZERO);
        assert_eq!(w.energy(), Joules::ZERO);
        assert_eq!(w.power_at(Seconds::new(1.0)), Watts::ZERO);
        let s = w.stats();
        assert_eq!(s.min, Watts::ZERO);
        assert_eq!(s.max, Watts::ZERO);
    }

    #[test]
    fn energy_is_power_times_time() {
        let w = wf(&[10.0, 20.0, 30.0]);
        // 3 slices of 10ms: (10+20+30) * 0.01 = 0.6 J
        assert!((w.energy().value() - 0.6).abs() < 1e-12);
        assert!((w.average_power().value() - 20.0).abs() < 1e-12);
        assert!((w.duration().value() - 0.03).abs() < 1e-12);
    }

    #[test]
    fn power_at_uses_zero_order_hold() {
        let w = wf(&[10.0, 20.0, 30.0]);
        assert_eq!(w.power_at(Seconds::from_ms(0.0)), Watts::new(10.0));
        assert_eq!(w.power_at(Seconds::from_ms(9.9)), Watts::new(10.0));
        assert_eq!(w.power_at(Seconds::from_ms(10.0)), Watts::new(20.0));
        assert_eq!(w.power_at(Seconds::from_ms(25.0)), Watts::new(30.0));
        // Past the end: final value.
        assert_eq!(w.power_at(Seconds::new(99.0)), Watts::new(30.0));
    }

    #[test]
    fn stats_track_extremes() {
        let w = wf(&[23.0, 89.0, 45.0]);
        let s = w.stats();
        assert_eq!(s.min, Watts::new(23.0));
        assert_eq!(s.max, Watts::new(89.0));
        assert!((s.average.value() - (23.0 + 89.0 + 45.0) / 3.0).abs() < 1e-12);
        assert_eq!(s.energy, w.energy());
        assert_eq!(s.duration, w.duration());
    }

    #[test]
    fn iter_yields_time_stamps() {
        let w = wf(&[1.0, 2.0]);
        let pts: Vec<(Seconds, Watts)> = w.iter().collect();
        assert_eq!(pts.len(), 2);
        assert_eq!(pts[0], (Seconds::ZERO, Watts::new(1.0)));
        assert!((pts[1].0.value() - 0.01).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "slice duration must be positive")]
    fn zero_slice_panics() {
        let _ = PowerWaveform::new(Seconds::ZERO);
    }
}
