//! Technology-node scaling of dynamic capacitance and leakage.
//!
//! Between 130nm and 32nm Dennard scaling slowed (Bohr's retrospective,
//! cited by the paper): capacitance per structure kept falling with feature
//! size, but threshold/supply voltages stopped falling proportionally and
//! leakage grew until high-k metal-gate processes (45nm) pulled it back.
//! These per-node factors encode that history for the power model.

use serde::{Deserialize, Serialize};

use lhr_units::{TechNode, Volts};

/// Per-node scaling factors, normalized to the 65nm generation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NodeScaling {
    /// Dynamic-energy (effective switched capacitance) multiplier per node.
    cap_scale: [f64; 5],
    /// Leakage multiplier per node (same area, nominal voltage).
    leak_scale: [f64; 5],
    /// Nominal supply voltage per node.
    v_nominal: [f64; 5],
}

impl NodeScaling {
    fn index(node: TechNode) -> usize {
        match node {
            TechNode::Nm32 => 0,
            TechNode::Nm45 => 1,
            TechNode::Nm65 => 2,
            TechNode::Nm90 => 3,
            TechNode::Nm130 => 4,
        }
    }

    /// The effective-capacitance multiplier for a node (65nm = 1.0).
    #[must_use]
    pub fn cap_scale(&self, node: TechNode) -> f64 {
        self.cap_scale[Self::index(node)]
    }

    /// The leakage multiplier for a node (65nm = 1.0).
    #[must_use]
    pub fn leak_scale(&self, node: TechNode) -> f64 {
        self.leak_scale[Self::index(node)]
    }

    /// The nominal supply voltage of the node, used to normalize the
    /// `(V / V_nom)^2` dynamic-energy dependence.
    #[must_use]
    pub fn nominal_voltage(&self, node: TechNode) -> Volts {
        Volts::new(self.v_nominal[Self::index(node)])
    }

    /// Builds a scaling table from explicit per-node entries ordered
    /// `[32nm, 45nm, 65nm, 90nm, 130nm]`.
    ///
    /// # Panics
    ///
    /// Panics if any entry is non-positive or non-finite.
    #[must_use]
    pub fn from_tables(cap_scale: [f64; 5], leak_scale: [f64; 5], v_nominal: [f64; 5]) -> Self {
        for table in [&cap_scale, &leak_scale, &v_nominal] {
            for &v in table {
                assert!(v.is_finite() && v > 0.0, "scaling entries must be positive");
            }
        }
        Self {
            cap_scale,
            leak_scale,
            v_nominal,
        }
    }
}

impl Default for NodeScaling {
    /// Calibrated defaults.
    ///
    /// Capacitance roughly halves per two-node step (ideal scaling would be
    /// ~0.7x linear per step; real designs spent some of it on complexity).
    /// Leakage: rising sharply from 130nm to 65nm (classic oxide-scaling
    /// leakage growth), then held roughly flat by strain/high-k at 45nm and
    /// improved integration at 32nm. Nominal voltage drifts down slowly --
    /// the post-Dennard regime the paper describes.
    fn default() -> Self {
        Self {
            //           32nm  45nm  65nm  90nm  130nm
            cap_scale: [0.42, 0.62, 1.00, 1.45, 2.10],
            leak_scale: [0.80, 0.95, 1.00, 0.80, 0.55],
            v_nominal: [1.10, 1.15, 1.25, 1.35, 1.50],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_monotone_in_capacitance() {
        let s = NodeScaling::default();
        assert!(s.cap_scale(TechNode::Nm32) < s.cap_scale(TechNode::Nm45));
        assert!(s.cap_scale(TechNode::Nm45) < s.cap_scale(TechNode::Nm65));
        assert!(s.cap_scale(TechNode::Nm65) < s.cap_scale(TechNode::Nm90));
        assert!(s.cap_scale(TechNode::Nm90) < s.cap_scale(TechNode::Nm130));
    }

    #[test]
    fn leakage_peaks_mid_history() {
        let s = NodeScaling::default();
        // 130nm leaks least; 65nm is the local peak before high-k.
        assert!(s.leak_scale(TechNode::Nm130) < s.leak_scale(TechNode::Nm65));
        assert!(s.leak_scale(TechNode::Nm45) <= s.leak_scale(TechNode::Nm65));
    }

    #[test]
    fn nominal_voltage_decreases_with_node() {
        let s = NodeScaling::default();
        assert!(
            s.nominal_voltage(TechNode::Nm32).value()
                < s.nominal_voltage(TechNode::Nm130).value()
        );
    }

    #[test]
    fn custom_tables_round_trip() {
        let s = NodeScaling::from_tables(
            [1.0, 2.0, 3.0, 4.0, 5.0],
            [5.0, 4.0, 3.0, 2.0, 1.0],
            [1.0, 1.1, 1.2, 1.3, 1.4],
        );
        assert_eq!(s.cap_scale(TechNode::Nm32), 1.0);
        assert_eq!(s.cap_scale(TechNode::Nm130), 5.0);
        assert_eq!(s.leak_scale(TechNode::Nm45), 4.0);
        assert_eq!(s.nominal_voltage(TechNode::Nm65).value(), 1.2);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_entry_rejected() {
        let _ = NodeScaling::from_tables(
            [0.0; 5],
            [1.0; 5],
            [1.0; 5],
        );
    }
}
