//! Per-structure power meters.
//!
//! The paper's second hardware recommendation: "expose on-chip power meters
//! and when possible structure-specific power meters for cores, caches, and
//! other structures." The simulated chip does exactly that -- every joule
//! the energy model accounts is attributed to a [`Structure`], and the
//! meters can be read at any time, giving the per-structure breakdown the
//! authors wished real 2011 hardware had offered.

use std::collections::BTreeMap;
use std::fmt;

use lhr_units::{Joules, Seconds, Watts};

/// An energy-metered on-chip structure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Structure {
    /// One core, by physical index (execution + private caches + clock).
    Core(usize),
    /// The shared last-level cache.
    Llc,
    /// Uncore: interconnect, integrated memory controller, I/O, PLLs.
    Uncore,
    /// Chip-side cost of DRAM traffic.
    MemoryInterface,
}

impl fmt::Display for Structure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Structure::Core(i) => write!(f, "core{i}"),
            Structure::Llc => write!(f, "llc"),
            Structure::Uncore => write!(f, "uncore"),
            Structure::MemoryInterface => write!(f, "mem-if"),
        }
    }
}

/// Accumulating per-structure energy meters.
#[derive(Debug, Default, Clone, PartialEq)]
pub struct PowerMeters {
    energy: BTreeMap<Structure, f64>,
}

impl PowerMeters {
    /// Creates a set of zeroed meters.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds energy to a structure's meter.
    pub fn add(&mut self, structure: Structure, energy: Joules) {
        *self.energy.entry(structure).or_insert(0.0) += energy.value();
    }

    /// Reads one structure's accumulated energy.
    #[must_use]
    pub fn energy(&self, structure: Structure) -> Joules {
        Joules::new(self.energy.get(&structure).copied().unwrap_or(0.0))
    }

    /// Total energy across all structures.
    #[must_use]
    pub fn total_energy(&self) -> Joules {
        Joules::new(self.energy.values().sum())
    }

    /// Average power of one structure over an elapsed duration.
    #[must_use]
    pub fn average_power(&self, structure: Structure, elapsed: Seconds) -> Watts {
        self.energy(structure).over(elapsed)
    }

    /// Iterates `(structure, energy)` in a stable order.
    pub fn iter(&self) -> impl Iterator<Item = (Structure, Joules)> + '_ {
        self.energy.iter().map(|(&s, &e)| (s, Joules::new(e)))
    }

    /// The fraction of total energy attributed to each structure, in a
    /// stable order. Empty if no energy has been metered.
    #[must_use]
    pub fn breakdown(&self) -> Vec<(Structure, f64)> {
        let total = self.total_energy().value();
        if total == 0.0 {
            return Vec::new();
        }
        self.energy
            .iter()
            .map(|(&s, &e)| (s, e / total))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn meters_accumulate_and_attribute() {
        let mut m = PowerMeters::new();
        m.add(Structure::Core(0), Joules::new(2.0));
        m.add(Structure::Core(0), Joules::new(1.0));
        m.add(Structure::Llc, Joules::new(1.0));
        assert_eq!(m.energy(Structure::Core(0)), Joules::new(3.0));
        assert_eq!(m.energy(Structure::Llc), Joules::new(1.0));
        assert_eq!(m.energy(Structure::Uncore), Joules::ZERO);
        assert_eq!(m.total_energy(), Joules::new(4.0));
    }

    #[test]
    fn average_power_over_elapsed() {
        let mut m = PowerMeters::new();
        m.add(Structure::Uncore, Joules::new(10.0));
        let p = m.average_power(Structure::Uncore, Seconds::new(5.0));
        assert_eq!(p, Watts::new(2.0));
    }

    #[test]
    fn breakdown_sums_to_one() {
        let mut m = PowerMeters::new();
        m.add(Structure::Core(0), Joules::new(6.0));
        m.add(Structure::Core(1), Joules::new(2.0));
        m.add(Structure::MemoryInterface, Joules::new(2.0));
        let b = m.breakdown();
        assert_eq!(b.len(), 3);
        let sum: f64 = b.iter().map(|&(_, f)| f).sum();
        assert!((sum - 1.0).abs() < 1e-12);
        assert_eq!(b[0], (Structure::Core(0), 0.6));
    }

    #[test]
    fn empty_breakdown() {
        assert!(PowerMeters::new().breakdown().is_empty());
    }

    #[test]
    fn display_names() {
        assert_eq!(Structure::Core(3).to_string(), "core3");
        assert_eq!(Structure::Llc.to_string(), "llc");
        assert_eq!(Structure::Uncore.to_string(), "uncore");
        assert_eq!(Structure::MemoryInterface.to_string(), "mem-if");
    }

    #[test]
    fn iteration_is_stably_ordered() {
        let mut m = PowerMeters::new();
        m.add(Structure::Uncore, Joules::new(1.0));
        m.add(Structure::Core(1), Joules::new(1.0));
        m.add(Structure::Core(0), Joules::new(1.0));
        let order: Vec<Structure> = m.iter().map(|(s, _)| s).collect();
        assert_eq!(
            order,
            vec![Structure::Core(0), Structure::Core(1), Structure::Uncore]
        );
    }
}
