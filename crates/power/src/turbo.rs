//! Turbo Boost stepping parameters.
//!
//! Intel Turbo Boost (Nehalem) over-clocks cores in 133 MHz "steps" while
//! temperature, power, and current stay below thresholds: one step with all
//! cores active, two when only one core is active, and only when the chip is
//! already at its highest clock setting (Section 3.6 of the paper). The
//! controller itself lives in `lhr-uarch`; these are the per-chip constants.

use serde::{Deserialize, Serialize};

use lhr_units::{Hertz, Volts};

/// Per-chip Turbo Boost stepping constants.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TurboParams {
    /// The frequency increment of one step (133 MHz on Nehalem).
    pub step_hz: f64,
    /// Steps available when more than one core is active.
    pub max_steps_all_cores: u32,
    /// Steps available when a single core is active.
    pub max_steps_single_core: u32,
    /// Extra supply voltage per step. This is the electrical reason Turbo
    /// is cheap on some chips and costly on others: the i7-920 needs a big
    /// voltage kick at its top bins, the i5-670 barely any.
    pub voltage_per_step: f64,
}

impl TurboParams {
    /// The steps granted for a given number of busy cores.
    #[must_use]
    pub fn steps_for(&self, busy_cores: usize) -> u32 {
        if busy_cores <= 1 {
            self.max_steps_single_core
        } else {
            self.max_steps_all_cores
        }
    }

    /// The boosted clock after `steps` steps above `base`.
    #[must_use]
    pub fn boosted_clock(&self, base: Hertz, steps: u32) -> Hertz {
        Hertz::new(base.value() + self.step_hz * f64::from(steps))
    }

    /// The boosted voltage after `steps` steps above `base`.
    #[must_use]
    pub fn boosted_voltage(&self, base: Volts, steps: u32) -> Volts {
        Volts::new(base.value() + self.voltage_per_step * f64::from(steps))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn turbo() -> TurboParams {
        TurboParams {
            step_hz: 133.0e6,
            max_steps_all_cores: 1,
            max_steps_single_core: 2,
            voltage_per_step: 0.05,
        }
    }

    #[test]
    fn steps_depend_on_busy_cores() {
        let t = turbo();
        assert_eq!(t.steps_for(0), 2);
        assert_eq!(t.steps_for(1), 2);
        assert_eq!(t.steps_for(2), 1);
        assert_eq!(t.steps_for(4), 1);
    }

    #[test]
    fn boost_arithmetic() {
        let t = turbo();
        let f = t.boosted_clock(Hertz::from_ghz(2.66), 2);
        assert!((f.value() - 2.926e9).abs() < 1.0);
        let v = t.boosted_voltage(Volts::new(1.38), 2);
        assert!((v.value() - 1.48).abs() < 1e-12);
        // Zero steps is the identity.
        assert_eq!(t.boosted_clock(Hertz::from_ghz(2.66), 0), Hertz::from_ghz(2.66));
    }
}
