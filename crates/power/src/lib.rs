//! Event-energy and leakage power modelling.
//!
//! The study measures *chip* power on the isolated 12V supply rail while
//! benchmarks run. This crate is the simulated chip's power plane: it turns
//! per-interval activity counts (instructions by class, cache misses, branch
//! flushes) into dynamic energy, adds voltage- and node-dependent static
//! leakage, tracks per-structure meters (the paper's headline hardware
//! recommendation is "expose on-chip power meters"), and produces the
//! [`PowerWaveform`] that the simulated Hall-effect sensing rig in
//! `lhr-sensors` samples.
//!
//! The model is first-order but physically structured:
//!
//! * dynamic energy per event `e = e_nom x cap_scale(node) x (V / V_nom)^2`
//! * static power `P = P_nom x leak_scale(node) x (V / V_nom)^2`, scaled by
//!   each chip's idle power-gating efficiency for idle-but-enabled cores
//! * voltage follows a per-chip [`VfCurve`] over its VID range (Table 3)
//!
//! # Example
//!
//! ```
//! use lhr_power::{ActivityCounters, EnergyModel, EventEnergies, NodeScaling};
//! use lhr_units::{TechNode, Volts};
//!
//! let model = EnergyModel::new(EventEnergies::default(), NodeScaling::default());
//! let mut act = ActivityCounters::default();
//! act.int_ops = 1_000_000;
//! act.l1_accesses = 300_000;
//! let e = model.dynamic_energy(&act, TechNode::Nm45, Volts::new(1.2), Volts::new(1.2));
//! assert!(e.value() > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod activity;
mod energy;
mod meter;
mod node;
mod turbo;
mod vf;
mod waveform;

pub use activity::ActivityCounters;
pub use energy::{EnergyModel, EventEnergies, StaticPowerParams};
pub use meter::{PowerMeters, Structure};
pub use node::NodeScaling;
pub use turbo::TurboParams;
pub use vf::{VfCurve, VfError};
pub use waveform::{PowerWaveform, WaveformStats};
