//! The event-energy model: activity counts in, joules out.

use serde::{Deserialize, Serialize};

use lhr_units::{Joules, TechNode, Volts, Watts};

use crate::activity::ActivityCounters;
use crate::node::NodeScaling;

/// Nominal per-event energies, in picojoules, at the 65nm node's nominal
/// voltage. Passive data in the C spirit: the processor catalog constructs
/// one per chip family (a NetBurst instruction costs several times a Core
/// instruction at the same node).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EventEnergies {
    /// Fetch/decode/rename/retire cost charged to every instruction.
    pub per_instruction_pj: f64,
    /// Integer ALU execution.
    pub int_op_pj: f64,
    /// Floating-point execution.
    pub fp_op_pj: f64,
    /// L1 data access.
    pub l1_access_pj: f64,
    /// L2 access.
    pub l2_access_pj: f64,
    /// Last-level-cache access.
    pub llc_access_pj: f64,
    /// DRAM access (chip-side share: controller/bus; DIMM power is outside
    /// the measured rail on most of the studied boards).
    pub dram_access_pj: f64,
    /// Branch resolution.
    pub branch_pj: f64,
    /// Pipeline flush: wrong-path fetch/execute discarded per mispredict.
    /// The catalog scales this with pipeline depth.
    pub flush_pj: f64,
    /// TLB miss (page walk).
    pub tlb_miss_pj: f64,
    /// Clock tree and always-toggling structures, charged per active-core
    /// cycle regardless of issue.
    pub clock_per_cycle_pj: f64,
}

impl Default for EventEnergies {
    /// Ballpark 65nm-class desktop-core energies; each chip in the catalog
    /// scales these by family factors during calibration.
    fn default() -> Self {
        Self {
            per_instruction_pj: 950.0,
            int_op_pj: 250.0,
            fp_op_pj: 1_300.0,
            l1_access_pj: 180.0,
            l2_access_pj: 900.0,
            llc_access_pj: 2_400.0,
            dram_access_pj: 9_000.0,
            branch_pj: 120.0,
            flush_pj: 3_000.0,
            tlb_miss_pj: 4_000.0,
            clock_per_cycle_pj: 650.0,
        }
    }
}

impl EventEnergies {
    /// Returns a copy with every per-event energy multiplied by `factor`
    /// (used for family-level scaling, e.g. NetBurst's hungry pipeline).
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not positive and finite.
    #[must_use]
    pub fn scaled(&self, factor: f64) -> Self {
        assert!(factor > 0.0 && factor.is_finite(), "invalid energy scale");
        Self {
            per_instruction_pj: self.per_instruction_pj * factor,
            int_op_pj: self.int_op_pj * factor,
            fp_op_pj: self.fp_op_pj * factor,
            l1_access_pj: self.l1_access_pj * factor,
            l2_access_pj: self.l2_access_pj * factor,
            llc_access_pj: self.llc_access_pj * factor,
            dram_access_pj: self.dram_access_pj * factor,
            branch_pj: self.branch_pj * factor,
            flush_pj: self.flush_pj * factor,
            tlb_miss_pj: self.tlb_miss_pj * factor,
            clock_per_cycle_pj: self.clock_per_cycle_pj * factor,
        }
    }
}

/// Static (leakage + always-on) power parameters for one chip.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StaticPowerParams {
    /// Leakage of one powered core at the node's nominal voltage.
    pub core_leak_w: f64,
    /// Always-on uncore (interconnect, memory controller, I/O, PLLs).
    pub uncore_w: f64,
    /// LLC leakage per megabyte.
    pub llc_leak_w_per_mb: f64,
    /// Fraction of a core's static+clock power still drawn when the core is
    /// enabled but idle. Near 1.0 for chips without power gating (i7-920's
    /// C-states were conservative on desktop boards); low for chips with
    /// aggressive gating (i5-670 / Westmere).
    pub idle_core_fraction: f64,
    /// Fraction of a core's static power drawn when BIOS-disabled.
    pub disabled_core_fraction: f64,
}

impl Default for StaticPowerParams {
    fn default() -> Self {
        Self {
            core_leak_w: 2.0,
            uncore_w: 4.0,
            llc_leak_w_per_mb: 0.25,
            idle_core_fraction: 0.7,
            disabled_core_fraction: 0.05,
        }
    }
}

/// The chip-level energy model: per-event energies plus node scaling.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyModel {
    events: EventEnergies,
    nodes: NodeScaling,
}

impl EnergyModel {
    /// Creates a model from event energies and node-scaling tables.
    #[must_use]
    pub fn new(events: EventEnergies, nodes: NodeScaling) -> Self {
        Self { events, nodes }
    }

    /// The event-energy table.
    #[must_use]
    pub fn events(&self) -> &EventEnergies {
        &self.events
    }

    /// The node-scaling table.
    #[must_use]
    pub fn nodes(&self) -> &NodeScaling {
        &self.nodes
    }

    /// The voltage-squared scaling factor for dynamic energy at `v` on
    /// `node`, relative to the node's nominal voltage.
    #[must_use]
    pub fn voltage_factor(&self, node: TechNode, v: Volts) -> f64 {
        let vn = self.nodes.nominal_voltage(node).value();
        let r = v.value() / vn;
        r * r
    }

    /// Dynamic energy of an activity interval on `node` at voltage `v`,
    /// with `activity` applying the workload's switching-activity factor
    /// to the execution events.
    #[must_use]
    pub fn dynamic_energy_with_activity(
        &self,
        act: &ActivityCounters,
        node: TechNode,
        v: Volts,
        activity: f64,
    ) -> Joules {
        let e = &self.events;
        let pj_exec = act.instructions as f64 * e.per_instruction_pj
            + act.int_ops as f64 * e.int_op_pj
            + act.fp_ops as f64 * e.fp_op_pj
            + act.l1_accesses as f64 * e.l1_access_pj
            + act.l2_accesses as f64 * e.l2_access_pj
            + act.llc_accesses as f64 * e.llc_access_pj
            + act.dram_accesses as f64 * e.dram_access_pj
            + act.branches as f64 * e.branch_pj
            + act.branch_flushes as f64 * e.flush_pj
            + act.tlb_misses as f64 * e.tlb_miss_pj;
        let pj_clock = act.active_cycles as f64 * e.clock_per_cycle_pj;
        let pj = pj_exec * activity + pj_clock;
        let scale = self.nodes.cap_scale(node) * self.voltage_factor(node, v);
        Joules::new(pj * 1e-12 * scale)
    }

    /// Dynamic energy with a neutral activity factor of 1.
    #[must_use]
    pub fn dynamic_energy(
        &self,
        act: &ActivityCounters,
        node: TechNode,
        v: Volts,
        _v_nom_unused: Volts,
    ) -> Joules {
        self.dynamic_energy_with_activity(act, node, v, 1.0)
    }

    /// Static power of the whole chip given its population of cores.
    ///
    /// * `busy_cores` draw full static power;
    /// * `idle_cores` (enabled, no work) draw `idle_core_fraction` of it;
    /// * `disabled_cores` draw `disabled_core_fraction`;
    /// * the uncore and LLC are always on.
    #[must_use]
    #[allow(clippy::too_many_arguments)]
    pub fn static_power(
        &self,
        p: &StaticPowerParams,
        node: TechNode,
        v: Volts,
        busy_cores: usize,
        idle_cores: usize,
        disabled_cores: usize,
        llc_mb: f64,
    ) -> Watts {
        let (core, llc, uncore) =
            self.static_power_parts(p, node, v, busy_cores, idle_cores, disabled_cores, llc_mb);
        core + llc + uncore
    }

    /// [`EnergyModel::static_power`], broken down by structure for the
    /// per-structure power meters: `(all cores, LLC, uncore)`.
    #[must_use]
    #[allow(clippy::too_many_arguments)]
    pub fn static_power_parts(
        &self,
        p: &StaticPowerParams,
        node: TechNode,
        v: Volts,
        busy_cores: usize,
        idle_cores: usize,
        disabled_cores: usize,
        llc_mb: f64,
    ) -> (Watts, Watts, Watts) {
        let vf = self.voltage_factor(node, v);
        let leak = self.nodes.leak_scale(node);
        let core = p.core_leak_w
            * (busy_cores as f64
                + idle_cores as f64 * p.idle_core_fraction
                + disabled_cores as f64 * p.disabled_core_fraction);
        let llc = p.llc_leak_w_per_mb * llc_mb;
        (
            Watts::new(core * leak * vf),
            Watts::new(llc * leak * vf),
            Watts::new(p.uncore_w * leak),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> EnergyModel {
        EnergyModel::new(EventEnergies::default(), NodeScaling::default())
    }

    fn act(instructions: u64) -> ActivityCounters {
        ActivityCounters {
            instructions,
            int_ops: instructions / 2,
            l1_accesses: instructions / 3,
            active_cycles: instructions / 2,
            ..ActivityCounters::default()
        }
    }

    #[test]
    fn energy_scales_linearly_with_activity_counts() {
        let m = model();
        let v = Volts::new(1.25);
        let e1 = m.dynamic_energy(&act(1_000_000), TechNode::Nm65, v, v);
        let e2 = m.dynamic_energy(&act(2_000_000), TechNode::Nm65, v, v);
        assert!((e2.value() / e1.value() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn energy_scales_with_voltage_squared() {
        let m = model();
        let a = act(1_000_000);
        let e_lo = m.dynamic_energy(&a, TechNode::Nm65, Volts::new(1.0), Volts::new(1.0));
        let e_hi = m.dynamic_energy(&a, TechNode::Nm65, Volts::new(2.0), Volts::new(2.0));
        assert!((e_hi.value() / e_lo.value() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn newer_node_uses_less_energy() {
        let m = model();
        let a = act(1_000_000);
        let v65 = m.nodes().nominal_voltage(TechNode::Nm65);
        let v32 = m.nodes().nominal_voltage(TechNode::Nm32);
        let e65 = m.dynamic_energy(&a, TechNode::Nm65, v65, v65);
        let e32 = m.dynamic_energy(&a, TechNode::Nm32, v32, v32);
        assert!(e32.value() < e65.value() * 0.6);
    }

    #[test]
    fn activity_factor_scales_execution_not_clock() {
        let m = model();
        let mut a = ActivityCounters {
            active_cycles: 1_000_000,
            ..ActivityCounters::default()
        };
        let v = Volts::new(1.25);
        // Pure clock activity is unaffected by the workload activity factor.
        let e1 = m.dynamic_energy_with_activity(&a, TechNode::Nm65, v, 1.0);
        let e2 = m.dynamic_energy_with_activity(&a, TechNode::Nm65, v, 2.0);
        assert_eq!(e1, e2);
        // Execution activity is scaled.
        a.fp_ops = 1_000_000;
        let e3 = m.dynamic_energy_with_activity(&a, TechNode::Nm65, v, 1.0);
        let e4 = m.dynamic_energy_with_activity(&a, TechNode::Nm65, v, 2.0);
        assert!(e4.value() > e3.value());
    }

    #[test]
    fn static_power_population_accounting() {
        let m = model();
        let p = StaticPowerParams {
            core_leak_w: 2.0,
            uncore_w: 4.0,
            llc_leak_w_per_mb: 0.5,
            idle_core_fraction: 0.5,
            disabled_core_fraction: 0.0,
        };
        let v = m.nodes().nominal_voltage(TechNode::Nm65);
        let all_busy = m.static_power(&p, TechNode::Nm65, v, 4, 0, 0, 8.0);
        let half_idle = m.static_power(&p, TechNode::Nm65, v, 2, 2, 0, 8.0);
        let half_disabled = m.static_power(&p, TechNode::Nm65, v, 2, 0, 2, 8.0);
        assert!(all_busy.value() > half_idle.value());
        assert!(half_idle.value() > half_disabled.value());
        // At nominal voltage and 65nm all scale factors are 1.
        assert!((all_busy.value() - (2.0 * 4.0 + 0.5 * 8.0 + 4.0)).abs() < 1e-9);
    }

    #[test]
    fn scaled_event_energies() {
        let e = EventEnergies::default().scaled(2.0);
        assert_eq!(e.per_instruction_pj, EventEnergies::default().per_instruction_pj * 2.0);
        assert_eq!(e.dram_access_pj, EventEnergies::default().dram_access_pj * 2.0);
    }

    #[test]
    #[should_panic(expected = "invalid energy scale")]
    fn bad_scale_panics() {
        let _ = EventEnergies::default().scaled(0.0);
    }

    #[test]
    fn empty_activity_costs_nothing() {
        let m = model();
        let v = Volts::new(1.2);
        let e = m.dynamic_energy(&ActivityCounters::default(), TechNode::Nm45, v, v);
        assert_eq!(e, Joules::ZERO);
    }
}
