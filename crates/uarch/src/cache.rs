//! Set-associative LRU cache simulation and sampled miss-rate estimation.
//!
//! The interval performance model needs, for every (workload phase, cache
//! capacity) pair, the *global* miss rate -- the fraction of all memory
//! accesses that miss a cache of that capacity. For LRU, the inclusion
//! property lets each level of a hierarchy be estimated independently: the
//! global miss rate at level `i` equals the miss rate of a single cache of
//! capacity `C_i` running the same stream.
//!
//! Estimation runs a sampled synthetic address stream from the phase's
//! [`LocalityProfile`] through a *real* set-associative LRU array. Large
//! caches are scaled down together with the footprint (miss rates depend on
//! the capacity/working-set ratio, not absolute sizes), which keeps warmup
//! and sample cost bounded; results are memoized.

use std::collections::HashMap;
use std::sync::Mutex;

use lhr_trace::{LocalityProfile, SplitMix64};

/// Geometry of one cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheGeometry {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Associativity.
    pub ways: usize,
    /// Line size in bytes (must be a power of two).
    pub line_bytes: u64,
}

impl CacheGeometry {
    /// Creates a geometry.
    ///
    /// # Panics
    ///
    /// Panics unless the line size is a power of two, the capacity is a
    /// multiple of `ways x line`, and all quantities are positive.
    #[must_use]
    pub fn new(size_bytes: u64, ways: usize, line_bytes: u64) -> Self {
        assert!(line_bytes.is_power_of_two(), "line size must be a power of two");
        assert!(ways > 0, "associativity must be positive");
        assert!(
            size_bytes >= ways as u64 * line_bytes,
            "capacity {size_bytes} smaller than one set ({ways} x {line_bytes})"
        );
        assert_eq!(
            size_bytes % (ways as u64 * line_bytes),
            0,
            "capacity must be a whole number of sets"
        );
        Self {
            size_bytes,
            ways,
            line_bytes,
        }
    }

    /// Number of sets.
    #[must_use]
    pub fn sets(&self) -> u64 {
        self.size_bytes / (self.ways as u64 * self.line_bytes)
    }
}

/// A concrete set-associative LRU cache.
#[derive(Debug, Clone)]
pub struct Cache {
    geometry: CacheGeometry,
    /// `tags[set * ways + way]`; `u64::MAX` marks invalid.
    tags: Vec<u64>,
    /// Per-entry last-use stamps for LRU replacement.
    stamps: Vec<u64>,
    clock: u64,
    hits: u64,
    misses: u64,
}

impl Cache {
    /// Creates an empty cache.
    #[must_use]
    pub fn new(geometry: CacheGeometry) -> Self {
        let entries = (geometry.sets() as usize) * geometry.ways;
        Self {
            geometry,
            tags: vec![u64::MAX; entries],
            stamps: vec![0; entries],
            clock: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// The cache geometry.
    #[must_use]
    pub fn geometry(&self) -> CacheGeometry {
        self.geometry
    }

    /// Performs one access; returns `true` on hit. Misses allocate (the
    /// model is write-allocate for both loads and stores).
    pub fn access(&mut self, addr: u64) -> bool {
        self.clock += 1;
        let line = addr / self.geometry.line_bytes;
        let sets = self.geometry.sets();
        let set = (line % sets) as usize;
        let ways = self.geometry.ways;
        let base = set * ways;
        let tag = line / sets;

        let mut victim = base;
        let mut victim_stamp = u64::MAX;
        for i in base..base + ways {
            if self.tags[i] == tag {
                self.stamps[i] = self.clock;
                self.hits += 1;
                return true;
            }
            if self.stamps[i] < victim_stamp {
                victim_stamp = self.stamps[i];
                victim = i;
            }
        }
        self.tags[victim] = tag;
        self.stamps[victim] = self.clock;
        self.misses += 1;
        false
    }

    /// Hits observed so far.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Misses observed so far.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Resets the statistics (contents are retained).
    pub fn reset_stats(&mut self) {
        self.hits = 0;
        self.misses = 0;
    }

    /// The observed miss rate; 0 if no accesses have occurred.
    #[must_use]
    pub fn miss_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.misses as f64 / total as f64
        }
    }
}

/// Sampling parameters for miss-rate estimation.
const TARGET_MAX_LINES: u64 = 4096;
const WARMUP_FACTOR: u64 = 4;
const SAMPLE_ACCESSES: u64 = 24_576;

/// Memoized sampled-simulation miss-rate estimator.
///
/// Shared across the whole process: miss rates are pure functions of
/// (locality profile, capacity, line size), so a global memo is sound and
/// keeps full 61-benchmark x 45-configuration sweeps fast.
#[derive(Debug, Default)]
pub struct MissRateEstimator {
    memo: Mutex<HashMap<(u64, u64, u64), f64>>,
}

impl MissRateEstimator {
    /// Creates an empty estimator.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The process-wide shared estimator.
    #[must_use]
    pub fn global() -> &'static MissRateEstimator {
        static GLOBAL: std::sync::OnceLock<MissRateEstimator> = std::sync::OnceLock::new();
        GLOBAL.get_or_init(MissRateEstimator::new)
    }

    /// Estimates the global miss rate of a cache with `capacity_bytes` and
    /// 64-byte lines running the given locality profile.
    ///
    /// # Panics
    ///
    /// Panics if `capacity_bytes` is zero.
    pub fn global_miss_rate(&self, locality: &LocalityProfile, capacity_bytes: u64) -> f64 {
        assert!(capacity_bytes > 0, "capacity must be positive");
        let key = (locality_key(locality), capacity_bytes, 64);
        if let Some(&rate) = self.memo.lock().expect("estimator lock").get(&key) {
            return rate;
        }
        let rate = simulate_miss_rate(locality, capacity_bytes);
        self.memo
            .lock()
            .expect("estimator lock")
            .insert(key, rate);
        rate
    }
}

/// A stable hash of the locality profile's defining fields.
fn locality_key(l: &LocalityProfile) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |v: u64| {
        h ^= v;
        h = h.wrapping_mul(0x1000_0000_01b3);
    };
    mix(l.hot_bytes());
    mix(l.warm_bytes());
    mix(l.footprint_bytes());
    mix(l.hot_fraction().to_bits());
    mix(l.warm_fraction().to_bits());
    mix(l.pointer_chase().to_bits());
    h
}

/// Runs the sampled simulation, scaling big caches (and the footprint with
/// them) down so the array stays small and warmup stays cheap.
fn simulate_miss_rate(locality: &LocalityProfile, capacity_bytes: u64) -> f64 {
    const LINE: u64 = 64;
    let lines = capacity_bytes / LINE;
    let (capacity, profile) = if lines > TARGET_MAX_LINES {
        let factor = TARGET_MAX_LINES as f64 / lines as f64;
        (TARGET_MAX_LINES * LINE, locality.scaled(factor))
    } else {
        (capacity_bytes.max(LINE * 8), *locality)
    };
    // Keep at least direct-mapped-8 geometry; use 8-way like real L2/LLCs.
    let ways = 8usize;
    let size = capacity.max(LINE * ways as u64);
    let size = size - size % (LINE * ways as u64);
    let mut cache = Cache::new(CacheGeometry::new(size.max(LINE * ways as u64), ways, LINE));

    let mut rng = SplitMix64::new(0x5eed_cafe ^ locality_key(&profile));
    let warm_accesses = (size / LINE) * WARMUP_FACTOR;
    {
        let mut stream = profile.address_stream(&mut rng);
        for _ in 0..warm_accesses {
            let a = stream.next().expect("address streams are infinite");
            cache.access(a);
        }
    }
    cache.reset_stats();
    let mut rng2 = rng.split(1);
    let mut stream = profile.address_stream(&mut rng2);
    for _ in 0..SAMPLE_ACCESSES {
        let a = stream.next().expect("address streams are infinite");
        cache.access(a);
    }
    cache.miss_rate()
}

/// A TLB model: a fully-associative LRU array of page translations.
///
/// Estimation reuses the cache machinery with "lines" of one page.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Tlb {
    /// Number of entries.
    pub entries: usize,
    /// Page size in bytes.
    pub page_bytes: u64,
}

impl Tlb {
    /// Creates a TLB descriptor.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is zero or the page size is not a power of two.
    #[must_use]
    pub fn new(entries: usize, page_bytes: u64) -> Self {
        assert!(entries > 0, "TLB needs at least one entry");
        assert!(page_bytes.is_power_of_two(), "page size must be a power of two");
        Self {
            entries,
            page_bytes,
        }
    }

    /// Estimates the TLB miss rate (per memory access) for a profile.
    ///
    /// Approximated analytically from page-granular reach: accesses to a
    /// tier whose page span fits in the TLB's reach hit; accesses to larger
    /// tiers miss in proportion to how much of the tier the reach covers.
    #[must_use]
    pub fn miss_rate(&self, locality: &LocalityProfile) -> f64 {
        let reach = self.entries as u64 * self.page_bytes;
        let tier_miss = |bytes: u64, available: u64| -> f64 {
            if bytes <= available {
                0.0
            } else {
                1.0 - available as f64 / bytes as f64
            }
        };
        // Hot tier gets first claim on the reach, then warm, then cold.
        let hot = locality.hot_bytes();
        let warm = locality.warm_bytes();
        let cold = locality.footprint_bytes().saturating_sub(hot + warm);
        let hot_miss = tier_miss(hot.max(1), reach);
        let after_hot = reach.saturating_sub(hot);
        let warm_miss = tier_miss(warm.max(1), after_hot);
        let after_warm = after_hot.saturating_sub(warm);
        let cold_miss = tier_miss(cold.max(1), after_warm);
        let cold_fraction = 1.0 - locality.hot_fraction() - locality.warm_fraction();
        (locality.hot_fraction() * hot_miss
            + locality.warm_fraction() * warm_miss
            + cold_fraction.max(0.0) * cold_miss)
            .clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry_sets() {
        let g = CacheGeometry::new(32 << 10, 8, 64);
        assert_eq!(g.sets(), 64);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_line_size() {
        let _ = CacheGeometry::new(32 << 10, 8, 48);
    }

    #[test]
    #[should_panic(expected = "whole number of sets")]
    fn ragged_capacity() {
        let _ = CacheGeometry::new((32 << 10) + 64, 8, 64);
    }

    #[test]
    fn repeated_access_hits() {
        let mut c = Cache::new(CacheGeometry::new(4096, 4, 64));
        assert!(!c.access(0)); // cold miss
        assert!(c.access(0));
        assert!(c.access(8)); // same line
        assert!(!c.access(64)); // next line
        assert_eq!(c.hits(), 2);
        assert_eq!(c.misses(), 2);
        assert!((c.miss_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn lru_evicts_least_recent() {
        // Direct associativity test: 2-way, single set (128 B cache).
        let mut c = Cache::new(CacheGeometry::new(128, 2, 64));
        c.access(0); // A
        c.access(1024); // B (same set)
        c.access(0); // touch A; B is now LRU
        c.access(2048); // C evicts B
        assert!(c.access(0), "A must still be resident");
        assert!(!c.access(1024), "B must have been evicted");
    }

    #[test]
    fn working_set_within_capacity_has_near_zero_misses() {
        let loc = LocalityProfile::cache_resident(16 << 10);
        let rate = MissRateEstimator::new().global_miss_rate(&loc, 64 << 10);
        assert!(rate < 0.01, "rate = {rate}");
    }

    #[test]
    fn working_set_far_beyond_capacity_mostly_misses() {
        let loc = LocalityProfile::pointer_chasing(64 << 20);
        let rate = MissRateEstimator::new().global_miss_rate(&loc, 32 << 10);
        assert!(rate > 0.9, "rate = {rate}");
    }

    #[test]
    fn miss_rate_monotone_in_capacity() {
        let loc = LocalityProfile::hierarchical(32 << 10, 512 << 10, 16 << 20, 0.6, 0.25)
            .with_pointer_chase(0.5);
        let est = MissRateEstimator::new();
        let small = est.global_miss_rate(&loc, 16 << 10);
        let med = est.global_miss_rate(&loc, 256 << 10);
        let big = est.global_miss_rate(&loc, 8 << 20);
        assert!(small >= med - 0.02, "{small} vs {med}");
        assert!(med >= big - 0.02, "{med} vs {big}");
        assert!(small > big, "{small} vs {big}");
    }

    #[test]
    fn streaming_misses_at_line_granularity() {
        // Unit-stride streaming over a huge footprint: every line is new,
        // so with 64B lines and 64B stride every access misses.
        let loc = LocalityProfile::streaming(256 << 20);
        let rate = MissRateEstimator::new().global_miss_rate(&loc, 32 << 10);
        assert!(rate > 0.9, "rate = {rate}");
    }

    #[test]
    fn memoization_is_consistent() {
        let loc = LocalityProfile::cache_resident(128 << 10);
        let est = MissRateEstimator::new();
        let a = est.global_miss_rate(&loc, 32 << 10);
        let b = est.global_miss_rate(&loc, 32 << 10);
        assert_eq!(a, b);
    }

    #[test]
    fn scaled_estimation_tracks_capacity_ratio() {
        // A working set at 2x capacity should see similar miss rates whether
        // the cache is 256 KiB or 8 MiB (the estimator scales the big one).
        let small_ws = LocalityProfile::hierarchical(512 << 10, 0, 512 << 10, 1.0, 0.0);
        let big_ws = small_ws.scaled(32.0);
        let est = MissRateEstimator::new();
        let small = est.global_miss_rate(&small_ws, 256 << 10);
        let big = est.global_miss_rate(&big_ws, 8 << 20);
        assert!((small - big).abs() < 0.08, "{small} vs {big}");
    }

    #[test]
    fn tlb_reach_covers_small_footprints() {
        let tlb = Tlb::new(64, 4096); // 256 KiB reach
        let resident = LocalityProfile::cache_resident(128 << 10);
        assert_eq!(tlb.miss_rate(&resident), 0.0);
        let huge = LocalityProfile::pointer_chasing(1 << 30);
        assert!(tlb.miss_rate(&huge) > 0.99);
    }

    #[test]
    fn tlb_miss_rate_monotone_in_entries() {
        let loc = LocalityProfile::hierarchical(64 << 10, 1 << 20, 64 << 20, 0.5, 0.3);
        let small = Tlb::new(32, 4096).miss_rate(&loc);
        let big = Tlb::new(512, 4096).miss_rate(&loc);
        assert!(small >= big);
    }

    #[test]
    #[should_panic(expected = "at least one entry")]
    fn empty_tlb_panics() {
        let _ = Tlb::new(0, 4096);
    }
}
