//! Abstract-workload interval simulator for the eight Intel IA32 processors
//! of the ASPLOS 2011 study.
//!
//! This crate is the hardware substrate of the reproduction: the processors
//! the paper *measured*, rebuilt as models. It provides
//!
//! * [`catalog`]: the eight chips of Table 3 (NetBurst, Core, Bonnell,
//!   Nehalem; 130nm to 32nm) with microarchitectural and electrical model
//!   parameters ([`ProcessorSpec`]),
//! * [`cache`]: real set-associative LRU cache simulation with sampled,
//!   memoized miss-rate estimation, plus a TLB model,
//! * [`interval`]: the per-phase interval performance model,
//! * [`config`]: typed BIOS-style configuration (core count, SMT, clock,
//!   Turbo) validated per chip ([`ChipConfig`]),
//! * [`chip`]: the time-sliced chip simulator ([`ChipSimulator`]) that runs
//!   a workload's threads, meters energy per structure, reacts to Turbo
//!   Boost, and emits the power waveform the sensing rig samples.
//!
//! # Example
//!
//! ```
//! use lhr_uarch::{ChipConfig, ChipSimulator, ProcessorId};
//!
//! let spec = ProcessorId::Atom230.spec();
//! let cfg = ChipConfig::stock(spec);
//! let jess = lhr_workloads::by_name("jess").unwrap();
//! let result = ChipSimulator::new().with_target_slices(60).run(&cfg, jess, 1);
//! assert!(result.time.value() > 0.0);
//! assert!(result.average_power().value() < spec.power.tdp_w);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod catalog;
pub mod chip;
pub mod config;
pub mod interval;
pub mod predictor;

pub use cache::{Cache, CacheGeometry, MissRateEstimator, Tlb};
pub use catalog::{processors, processors_45nm, CoreParams, MemorySystem, Microarch, PowerParams, ProcessorId, ProcessorSpec};
pub use chip::{ChipSimulator, RunResult, SimScratch};
pub use config::{ChipConfig, ConfigError};
pub use interval::{phase_performance, Environment, EventRates, PhasePerf};
pub use predictor::{Bimodal, BranchPredictor, BranchWorkload, Gshare};
