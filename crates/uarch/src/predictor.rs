//! Branch-predictor simulation.
//!
//! The interval model charges each workload's branches a mispredict rate
//! equal to its baseline rate times the chip's `predictor_factor` (< 1 for
//! better-than-baseline predictors). This module grounds those factors in
//! real predictor structures: a bimodal table of 2-bit counters and a
//! gshare predictor (global history XOR PC), driven by synthetic branch
//! streams with controllable bias and history correlation. The catalog's
//! factors (NetBurst/Bonnell above 1, Core below, Nehalem lowest) are
//! validated against these structures in the test suite: bigger tables and
//! longer history reproduce exactly that ordering.

use lhr_trace::{Rng64, SplitMix64};

/// A two-bit saturating counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Counter2(u8);

impl Counter2 {
    const WEAKLY_TAKEN: Counter2 = Counter2(2);

    fn predict(self) -> bool {
        self.0 >= 2
    }

    fn update(&mut self, taken: bool) {
        if taken {
            self.0 = (self.0 + 1).min(3);
        } else {
            self.0 = self.0.saturating_sub(1);
        }
    }
}

/// A dynamic branch predictor.
pub trait BranchPredictor {
    /// Predicts the outcome of the branch at `pc`.
    fn predict(&self, pc: u64) -> bool;

    /// Trains the predictor with the actual outcome.
    fn update(&mut self, pc: u64, taken: bool);
}

/// A bimodal predictor: per-PC 2-bit counters, no history
/// (the classic baseline; what a deep-pipeline front end without a global
/// history register effectively behaves like on correlated branches).
#[derive(Debug, Clone)]
pub struct Bimodal {
    table: Vec<Counter2>,
    mask: u64,
}

impl Bimodal {
    /// Creates a bimodal predictor with `entries` counters.
    ///
    /// # Panics
    ///
    /// Panics unless `entries` is a power of two.
    #[must_use]
    pub fn new(entries: usize) -> Self {
        assert!(entries.is_power_of_two(), "table size must be a power of two");
        Self {
            table: vec![Counter2::WEAKLY_TAKEN; entries],
            mask: entries as u64 - 1,
        }
    }
}

impl BranchPredictor for Bimodal {
    fn predict(&self, pc: u64) -> bool {
        self.table[((pc >> 2) & self.mask) as usize].predict()
    }

    fn update(&mut self, pc: u64, taken: bool) {
        self.table[((pc >> 2) & self.mask) as usize].update(taken);
    }
}

/// A gshare predictor: global branch history XOR PC indexes the counters.
#[derive(Debug, Clone)]
pub struct Gshare {
    table: Vec<Counter2>,
    mask: u64,
    history: u64,
    history_bits: u32,
}

impl Gshare {
    /// Creates a gshare predictor with `entries` counters and
    /// `history_bits` of global history.
    ///
    /// # Panics
    ///
    /// Panics unless `entries` is a power of two and `history_bits <= 32`.
    #[must_use]
    pub fn new(entries: usize, history_bits: u32) -> Self {
        assert!(entries.is_power_of_two(), "table size must be a power of two");
        assert!(history_bits <= 32, "history register is at most 32 bits");
        Self {
            table: vec![Counter2::WEAKLY_TAKEN; entries],
            mask: entries as u64 - 1,
            history: 0,
            history_bits,
        }
    }

    fn index(&self, pc: u64) -> usize {
        (((pc >> 2) ^ self.history) & self.mask) as usize
    }
}

impl BranchPredictor for Gshare {
    fn predict(&self, pc: u64) -> bool {
        self.table[self.index(pc)].predict()
    }

    fn update(&mut self, pc: u64, taken: bool) {
        let idx = self.index(pc);
        self.table[idx].update(taken);
        let mask = (1u64 << self.history_bits) - 1;
        self.history = ((self.history << 1) | u64::from(taken)) & mask;
    }
}

/// A synthetic branch workload: a population of static branches, each with
/// a bias, a fraction of which are *history-correlated* (their outcome is a
/// deterministic function of recent global history -- loop exits, mutually
/// guarded conditionals), the rest biased-random.
#[derive(Debug, Clone, Copy)]
pub struct BranchWorkload {
    /// Number of static branch sites.
    pub static_branches: usize,
    /// Mean taken-bias of the random branches.
    pub bias: f64,
    /// Fraction of dynamic branches whose outcome is history-correlated
    /// (predictable given enough history).
    pub correlated_fraction: f64,
}

impl BranchWorkload {
    /// A typical integer-code profile.
    #[must_use]
    pub fn typical_int() -> Self {
        Self {
            static_branches: 512,
            bias: 0.7,
            correlated_fraction: 0.6,
        }
    }

    /// Measures a predictor's mispredict rate over `n` dynamic branches.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn mispredict_rate<P: BranchPredictor>(&self, predictor: &mut P, n: u64, seed: u64) -> f64 {
        assert!(n > 0, "need at least one dynamic branch");
        let mut rng = SplitMix64::new(seed);
        // Per-site bias and correlation assignment, fixed for the run.
        let mut site_rng = SplitMix64::new(seed ^ 0xb1a5);
        let sites: Vec<(u64, f64, bool)> = (0..self.static_branches)
            .map(|i| {
                let pc = 0x40_0000 + (i as u64) * 12;
                let bias = (self.bias + site_rng.next_normal(0.0, 0.15)).clamp(0.02, 0.98);
                let correlated = site_rng.next_bool(self.correlated_fraction);
                (pc, bias, correlated)
            })
            .collect();
        let mut history: u64 = 0;
        let mut miss = 0u64;
        // Sites are visited in bursts (loops revisit the same branches),
        // which is what makes history correlation learnable in practice.
        let mut current = 0usize;
        for _ in 0..n {
            if rng.next_bool(0.15) {
                current = rng.next_below(sites.len() as u64) as usize;
            }
            let (pc, bias, correlated) = sites[current];
            // Correlated branches: outcome is a parity function of recent
            // history plus the site -- learnable with history, coin-flip-ish
            // without it.
            let taken = if correlated {
                ((history ^ (pc >> 2)) & 0b111).count_ones().is_multiple_of(2)
            } else {
                rng.next_bool(bias)
            };
            if predictor.predict(pc) != taken {
                miss += 1;
            }
            predictor.update(pc, taken);
            history = (history << 1) | u64::from(taken);
        }
        miss as f64 / n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::ProcessorId;

    const N: u64 = 200_000;

    #[test]
    fn counters_saturate() {
        let mut c = Counter2::WEAKLY_TAKEN;
        assert!(c.predict());
        c.update(false);
        assert!(!c.predict());
        c.update(false);
        c.update(false);
        assert_eq!(c.0, 0);
        c.update(true);
        assert!(!c.predict(), "one taken from strongly-not-taken stays not-taken");
    }

    #[test]
    fn predictors_learn_strongly_biased_branches() {
        let w = BranchWorkload {
            static_branches: 64,
            bias: 0.98,
            correlated_fraction: 0.0,
        };
        let rate = w.mispredict_rate(&mut Bimodal::new(4096), N, 1);
        assert!(rate < 0.12, "bimodal on 98%-biased branches: {rate}");
    }

    #[test]
    fn history_beats_bimodal_on_correlated_branches() {
        let w = BranchWorkload {
            static_branches: 256,
            bias: 0.6,
            correlated_fraction: 1.0,
        };
        let bimodal = w.mispredict_rate(&mut Bimodal::new(4096), N, 2);
        let gshare = w.mispredict_rate(&mut Gshare::new(4096, 12), N, 2);
        assert!(
            gshare < bimodal * 0.5,
            "gshare {gshare} must crush bimodal {bimodal} on correlated branches"
        );
    }

    #[test]
    fn bigger_tables_reduce_aliasing() {
        // Two opposite always/never-taken branches that collide in a tiny
        // table but get private counters in a big one.
        let train = |predictor: &mut dyn FnMut(u64, bool) -> bool| -> u64 {
            let mut miss = 0;
            for i in 0..10_000u64 {
                // Same index modulo 16 entries: pcs differ by 16 * 4 bytes.
                let (pc, taken) = if i % 2 == 0 { (0x1000, true) } else { (0x1100, false) };
                if predictor(pc, taken) {
                    miss += 1;
                }
            }
            miss
        };
        let mut small = Bimodal::new(16);
        let mut small_fn = |pc: u64, taken: bool| {
            let wrong = small.predict(pc) != taken;
            small.update(pc, taken);
            wrong
        };
        let small_miss = train(&mut small_fn);
        let mut big = Bimodal::new(4096);
        let mut big_fn = |pc: u64, taken: bool| {
            let wrong = big.predict(pc) != taken;
            big.update(pc, taken);
            wrong
        };
        let big_miss = train(&mut big_fn);
        assert!(
            big_miss * 10 < small_miss,
            "aliased {small_miss} vs private {big_miss}"
        );
    }

    /// The catalog's predictor factors are grounded: simulating each
    /// family's predictor class on the same workload reproduces the
    /// factor *ordering* (Nehalem < Core < NetBurst-class baseline).
    #[test]
    fn catalog_predictor_factors_match_structure_simulation() {
        let w = BranchWorkload::typical_int();
        // NetBurst/Bonnell-class: modest bimodal-dominated prediction.
        let netburst = w.mispredict_rate(&mut Bimodal::new(2048), N, 4);
        // Core-class: mid-size gshare.
        let core = w.mispredict_rate(&mut Gshare::new(8192, 10), N, 4);
        // Nehalem-class: large gshare with long history.
        let nehalem = w.mispredict_rate(&mut Gshare::new(32_768, 14), N, 4);
        assert!(
            netburst > core * 1.1 && netburst > nehalem * 1.1 && nehalem < core * 1.1,
            "structure sim: netburst {netburst}, core {core}, nehalem {nehalem}"
        );
        // And the catalog's scalar factors preserve the same ordering.
        let f = |id: ProcessorId| id.spec().core.predictor_factor;
        assert!(f(ProcessorId::Pentium4_130) > f(ProcessorId::Core2DuoE6600));
        assert!(f(ProcessorId::Core2DuoE6600) > f(ProcessorId::CoreI7_920) - 1e-9);
        // The simulated improvement ratios are of the same order as the
        // catalog's factor ratios (within a factor of ~2).
        let sim_ratio = netburst / nehalem;
        let catalog_ratio = f(ProcessorId::Pentium4_130) / f(ProcessorId::CoreI7_920);
        assert!(
            sim_ratio > catalog_ratio * 0.5,
            "sim ratio {sim_ratio} vs catalog {catalog_ratio}"
        );
    }

    #[test]
    fn determinism() {
        let w = BranchWorkload::typical_int();
        let a = w.mispredict_rate(&mut Gshare::new(4096, 12), 50_000, 7);
        let b = w.mispredict_rate(&mut Gshare::new(4096, 12), 50_000, 7);
        assert_eq!(a, b);
    }
}
