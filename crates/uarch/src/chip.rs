//! The time-sliced chip simulator.
//!
//! A run places a workload's software threads (application + VM services)
//! onto a configured chip's hardware contexts and advances time in slices.
//! Each slice recomputes every runnable thread's interval performance in its
//! current environment -- SMT sibling pressure, shared-LLC partitioning,
//! memory-bandwidth saturation, VM-service displacement -- executes the
//! resulting instructions, meters the energy per structure, lets the Turbo
//! controller react to the measured power, and appends one sample to the
//! chip's power waveform. The waveform is what the sensing rig in
//! `lhr-sensors` later samples at 50 Hz, mirroring the paper's rig.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};
use std::sync::{Mutex, OnceLock, PoisonError};

use lhr_power::{
    ActivityCounters, EnergyModel, EventEnergies, NodeScaling, PowerMeters, PowerWaveform,
    Structure,
};
use lhr_trace::{Rng64, SplitMix64};
use lhr_units::{Joules, Seconds, Volts, Watts};
use lhr_workloads::{SoftwareThread, ThreadRole, Workload};

use crate::cache::MissRateEstimator;
use crate::config::ChipConfig;
use crate::interval::{phase_performance, Environment, PhasePerf};

/// The outcome of one benchmark run on one configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct RunResult {
    /// Wall-clock execution time.
    pub time: Seconds,
    /// The chip power waveform (one sample per simulation slice).
    pub waveform: PowerWaveform,
    /// Per-structure energy meters.
    pub meters: PowerMeters,
    /// Total instructions retired across all threads.
    pub instructions: u64,
}

impl RunResult {
    /// True average chip power over the run.
    #[must_use]
    pub fn average_power(&self) -> Watts {
        self.waveform.average_power()
    }

    /// Total energy, consistent with `average_power x time`.
    #[must_use]
    pub fn energy(&self) -> Joules {
        self.average_power() * self.time
    }
}

/// The chip simulator. Stateless across runs apart from the shared
/// miss-rate memo; cheap to clone or share.
#[derive(Debug)]
pub struct ChipSimulator {
    energy_model: EnergyModel,
    estimator: &'static MissRateEstimator,
    target_slices: usize,
}

impl Default for ChipSimulator {
    fn default() -> Self {
        Self::new()
    }
}

/// Memo key for interval-model results within a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct PerfKey {
    thread: usize,
    phase: usize,
    clock_bits: u64,
    share_bits: u64,
    llc_eff: u64,
    disp_bits: u64,
    bw_bucket: u32,
}

struct ThreadState {
    thread: SoftwareThread,
    /// Cumulative instruction count at the end of each phase.
    boundaries: Vec<u64>,
    done: u64,
    finished: bool,
    jitter: f64,
    context: usize,
}

impl ThreadState {
    fn total(&self) -> u64 {
        *self.boundaries.last().expect("traces have phases")
    }

    fn remaining(&self) -> u64 {
        self.total() - self.done
    }

    fn phase_index(&self) -> usize {
        self.boundaries
            .iter()
            .position(|&b| self.done < b)
            .unwrap_or(self.boundaries.len() - 1)
    }
}

/// Memo key for the flattened loop's per-thread interval-model cache:
/// `(phase, clock bits, cache-share bits, effective LLC bytes,
/// displacement bits, bandwidth bucket)` -- the same dimensions as
/// [`PerfKey`] minus the thread (the cache itself is per thread).
type PerfMemoKey = (usize, u64, u64, u64, u64, u32);

/// Exact-input key for the process-global interval-model memo: the raw
/// bits of every value [`phase_performance`] reads from the spec, the
/// phase, and the environment. Keying on the full input set (rather than
/// a processor id) keeps the memo sound for hand-built specs and
/// synthetic phases: two keys are equal exactly when the interval model
/// is handed bit-identical inputs. `stream_stride` is deliberately
/// absent -- neither the analytic TLB model nor the miss-rate
/// estimator's memo key distinguishes it, so it cannot change the
/// result the estimator-backed computation returns within a process.
type GlobalPerfKey = [u64; 32];

fn global_perf_key(
    spec: &crate::catalog::ProcessorSpec,
    phase: &lhr_trace::Phase,
    env: &Environment,
) -> GlobalPerfKey {
    let core = &spec.core;
    let mem = &spec.mem;
    let mix = phase.mix();
    let loc = phase.locality();
    let (l2_present, l2_bytes) = match mem.l2 {
        Some(l2) => (1u64, l2.size_bytes),
        None => (0u64, 0u64),
    };
    [
        core.issue_width.to_bits(),
        core.pipeline_depth.to_bits(),
        u64::from(core.out_of_order),
        core.ooo_overlap.to_bits(),
        core.mlp_cap.to_bits(),
        core.predictor_factor.to_bits(),
        mem.l1d.size_bytes,
        l2_present,
        l2_bytes,
        u64::from(mem.llc.is_some()),
        mem.l2_hit_cycles.to_bits(),
        mem.llc_hit_cycles.to_bits(),
        mem.tlb_miss_cycles.to_bits(),
        mem.mem_latency_ns.to_bits(),
        mem.dtlb_entries as u64,
        phase.ilp().to_bits(),
        phase.mlp().to_bits(),
        phase.branch_mispredict_rate().to_bits(),
        mix.memory_fraction().to_bits(),
        mix.branch_fraction().to_bits(),
        mix.fraction(lhr_trace::InstructionClass::IntAlu).to_bits(),
        mix.fp_fraction().to_bits(),
        loc.hot_bytes(),
        loc.warm_bytes(),
        loc.footprint_bytes(),
        loc.hot_fraction().to_bits(),
        loc.warm_fraction().to_bits(),
        loc.pointer_chase().to_bits(),
        env.clock.value().to_bits(),
        env.private_cache_share.to_bits(),
        env.llc_bytes_eff,
        env.displacement.to_bits(),
    ]
}

/// Multiply-xor folding hasher for the fixed-width [`GlobalPerfKey`]:
/// the default SipHash costs more than the interval-model arithmetic it
/// would be saving. Collisions only cost a probe -- the map stores full
/// keys -- so a weak-but-fast hash is safe here.
#[derive(Default)]
struct KeyHasher(u64);

impl Hasher for KeyHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        // Integer-slice hashing funnels the whole key through one `write`
        // call, so fold eight bytes per multiply, not one.
        for chunk in bytes.chunks(8) {
            let mut word = [0u8; 8];
            word[..chunk.len()].copy_from_slice(chunk);
            self.0 = (self.0 ^ u64::from_le_bytes(word)).wrapping_mul(0x100_0000_01b3);
        }
    }

    fn write_u64(&mut self, v: u64) {
        self.0 = (self.0 ^ v).wrapping_mul(0x100_0000_01b3);
    }

    fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }
}

/// Process-global memo over [`phase_performance`].
///
/// The interval model is a pure function of the inputs captured by
/// [`GlobalPerfKey`]: the miss-rate estimator it consults is the single
/// process-global instance and its entries never change once written, so
/// a warm hit returns exactly -- bit for bit -- the value a fresh
/// evaluation would produce at this point in the process. Only
/// steady-bandwidth environments (`bw_dilation == 1.0`) are cached: a
/// dilated environment embeds a feedback-evolved `f64` that rarely
/// recurs, so caching those would grow the table without earning hits.
fn cached_phase_performance(
    spec: &crate::catalog::ProcessorSpec,
    phase: &lhr_trace::Phase,
    env: &Environment,
    estimator: &MissRateEstimator,
) -> PhasePerf {
    if env.bw_dilation.to_bits() != 1.0f64.to_bits() {
        return phase_performance(spec, phase, env, estimator);
    }
    static MEMO: OnceLock<Mutex<HashMap<GlobalPerfKey, PhasePerf, BuildHasherDefault<KeyHasher>>>> =
        OnceLock::new();
    let memo = MEMO.get_or_init(|| Mutex::new(HashMap::default()));
    let key = global_perf_key(spec, phase, env);
    if let Some(&p) = memo
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .get(&key)
    {
        return p;
    }
    let p = phase_performance(spec, phase, env, estimator);
    memo.lock()
        .unwrap_or_else(PoisonError::into_inner)
        .insert(key, p);
    p
}

/// Energy-meter lane indices used by the flattened loop: lanes
/// `0..cores` are `Structure::Core(c)`, then [`Structure::Llc`],
/// [`Structure::Uncore`], [`Structure::MemoryInterface`].
fn lane_structure(lane: usize, cores: usize) -> Structure {
    if lane < cores {
        Structure::Core(lane)
    } else if lane == cores {
        Structure::Llc
    } else if lane == cores + 1 {
        Structure::Uncore
    } else {
        Structure::MemoryInterface
    }
}

/// Reusable working memory for [`ChipSimulator::run_with_scratch`].
///
/// A run needs per-thread, per-context, and per-core vectors plus a
/// slice-replay cache; owning them here lets a caller (the measurement
/// runner, a sweep harness) amortize the allocations across thousands of
/// runs. The scratch carries no results between runs -- every run clears
/// it first, so reuse can never change a measured value. The equivalence
/// proptest in this module pins `run_with_scratch` (fresh or reused
/// scratch) to [`ChipSimulator::run_reference`] bit for bit.
///
/// ```
/// use lhr_uarch::{ChipConfig, ChipSimulator, ProcessorId, SimScratch};
/// use lhr_workloads::by_name;
///
/// let sim = ChipSimulator::new().with_target_slices(30);
/// let cfg = ChipConfig::stock(ProcessorId::Core2DuoE6600.spec());
/// let w = by_name("jess").unwrap();
/// let mut scratch = SimScratch::new();
/// let a = sim.run_with_scratch(&cfg, w, 7, &mut scratch);
/// let b = sim.run_with_scratch(&cfg, w, 7, &mut scratch); // reused
/// assert_eq!(a, b);
/// ```
#[derive(Debug, Default)]
pub struct SimScratch {
    // Fixed for the duration of one run.
    ctx_of: Vec<usize>,
    core_of: Vec<usize>,
    exec_order: Vec<usize>,
    cursor: Vec<usize>,
    // Occupancy counts, rebuilt only when a thread finishes.
    n_runnable: Vec<u32>,
    services_on_ctx: Vec<u32>,
    ctxs_busy_on_core: Vec<u32>,
    services_on_core: Vec<u32>,
    threads_on_core: Vec<u32>,
    core_busy: Vec<bool>,
    // Per-slice working state.
    core_pressure: Vec<f64>,
    perfs: Vec<Option<(PhasePerf, f64)>>,
    memo: Vec<Vec<(PerfMemoKey, PhasePerf)>>,
    // Energy lanes (see `lane_structure`), accumulated across the run.
    lanes: Vec<f64>,
    lanes_touched: Vec<bool>,
    // Slice-replay cache: when a slice's inputs match the previous
    // slice's exactly, its per-thread work is identical and the slice
    // collapses to replaying these adds and increments.
    replay_adds: Vec<(usize, f64)>,
    replay_incs: Vec<(usize, u64, u64)>,
    replay_instr: u64,
    replay_power: f64,
    replay_bw: f64,
    replay_valid: bool,
    cached_sig: (u64, u32, u64),
}

impl SimScratch {
    /// Creates an empty scratch. Buffers grow on first use and are
    /// retained (capacity only) across runs.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Clears all state and sizes the buffers for one run.
    fn reset(&mut self, threads: usize, n_ctx: usize, cores: usize) {
        self.ctx_of.clear();
        self.ctx_of.resize(threads, 0);
        self.core_of.clear();
        self.core_of.resize(threads, 0);
        self.exec_order.clear();
        self.exec_order.extend(0..threads);
        self.cursor.clear();
        self.cursor.resize(threads, 0);
        self.n_runnable.clear();
        self.n_runnable.resize(n_ctx, 0);
        self.services_on_ctx.clear();
        self.services_on_ctx.resize(n_ctx, 0);
        self.ctxs_busy_on_core.clear();
        self.ctxs_busy_on_core.resize(cores, 0);
        self.services_on_core.clear();
        self.services_on_core.resize(cores, 0);
        self.threads_on_core.clear();
        self.threads_on_core.resize(cores, 0);
        self.core_busy.clear();
        self.core_busy.resize(cores, false);
        self.core_pressure.clear();
        self.core_pressure.resize(cores, 0.0);
        self.perfs.clear();
        self.perfs.resize(threads, None);
        for m in &mut self.memo {
            m.clear();
        }
        self.memo.resize(threads, Vec::new());
        self.lanes.clear();
        self.lanes.resize(cores + 3, 0.0);
        self.lanes_touched.clear();
        self.lanes_touched.resize(cores + 3, false);
        self.replay_adds.clear();
        self.replay_incs.clear();
        self.replay_instr = 0;
        self.replay_power = 0.0;
        self.replay_bw = 1.0;
        self.replay_valid = false;
        self.cached_sig = (0, 0, u64::MAX);
    }
}

impl ChipSimulator {
    /// Creates a simulator with the default energy model and slice budget.
    #[must_use]
    pub fn new() -> Self {
        Self {
            energy_model: EnergyModel::new(EventEnergies::default(), NodeScaling::default()),
            estimator: MissRateEstimator::global(),
            target_slices: 400,
        }
    }

    /// Overrides the number of simulation slices per run (more slices give
    /// finer waveforms and Turbo reaction at linear cost).
    ///
    /// # Panics
    ///
    /// Panics if `n < 8`.
    #[must_use]
    pub fn with_target_slices(mut self, n: usize) -> Self {
        assert!(n >= 8, "need at least 8 slices for a meaningful waveform");
        self.target_slices = n;
        self
    }

    /// Runs `workload` on `config`. The `seed` selects the run's
    /// nondeterminism (JIT/GC timing jitter for Java, system noise for
    /// natives); the same seed always reproduces the same result.
    ///
    /// This is the flattened hot path: see [`ChipSimulator::run_with_scratch`]
    /// for the buffer-reusing variant and [`ChipSimulator::run_reference`]
    /// for the readable reference implementation both are pinned against.
    #[must_use]
    pub fn run(&self, config: &ChipConfig, workload: &Workload, seed: u64) -> RunResult {
        let mut scratch = SimScratch::new();
        self.run_with_scratch(config, workload, seed, &mut scratch)
    }

    /// The straight-line reference implementation of [`ChipSimulator::run`].
    ///
    /// Kept verbatim from before the hot-loop flattening so tests (and the
    /// equivalence proptest) can pin the optimized path to it bit for bit:
    /// both must produce identical times, waveforms, meters, and
    /// instruction counts for every `(config, workload, seed)`.
    #[must_use]
    pub fn run_reference(&self, config: &ChipConfig, workload: &Workload, seed: u64) -> RunResult {
        let spec = config.spec();
        let n_ctx = config.contexts();
        let cores = config.active_cores();
        let slots = config.threads_per_core();

        // --- Thread placement: spread across cores first, then SMT slots.
        let software = workload.software_threads(n_ctx);
        let mut rng = SplitMix64::new(seed ^ 0x6c68_7221);
        let cv = workload.nondeterminism_cv();
        let mut threads: Vec<ThreadState> = software
            .into_iter()
            .enumerate()
            .map(|(i, thread)| {
                let total = thread.trace.total_instructions().max(1);
                let mut cum = 0u64;
                let n_phases = thread.trace.phases().len();
                let boundaries: Vec<u64> = (0..n_phases)
                    .map(|p| {
                        cum += thread.trace.phase_instructions(p).max(1);
                        cum.min(total.max(cum))
                    })
                    .collect();
                let jitter = (1.0 + rng.next_normal(0.0, cv)).clamp(1.0 - 3.0 * cv, 1.0 + 3.0 * cv);
                let _ = i;
                ThreadState {
                    thread,
                    boundaries,
                    done: 0,
                    finished: false,
                    jitter,
                    context: 0,
                }
            })
            .collect();

        // --- Placement: OS-like load balancing. Heaviest threads first,
        // each onto the least-loaded context; context index order is
        // slot-major ((core0,slot0), (core1,slot0), ..., (core0,slot1), ...)
        // so physical cores fill before SMT siblings, and VM service
        // threads land on spare contexts away from the application.
        {
            let mut order: Vec<usize> = (0..threads.len()).collect();
            order.sort_by_key(|&i| std::cmp::Reverse(threads[i].total()));
            let mut loads = vec![0u64; n_ctx];
            for &i in &order {
                let ctx = (0..n_ctx)
                    .min_by_key(|&c| (loads[c], c))
                    .expect("n_ctx > 0");
                threads[i].context = ctx;
                loads[ctx] += threads[i].total();
            }
        }

        // --- Slice sizing from a solo-IPC probe of each thread's phase 0.
        let clock = config.clock();
        let mut est_time: f64 = 1e-6;
        for t in &threads {
            let env = Environment::solo(spec, clock);
            let perf = phase_performance(spec, &t.thread.trace.phases()[0], &env, self.estimator);
            let time = t.total() as f64 / (perf.ipc() * clock.value());
            est_time = est_time.max(time);
        }
        let slice_s = (est_time / self.target_slices as f64).clamp(1e-4, 2.0);
        let slice = Seconds::new(slice_s);

        // --- Main loop state.
        let mut waveform = PowerWaveform::new(slice);
        let mut meters = PowerMeters::new();
        let mut perf_memo: HashMap<PerfKey, PhasePerf> = HashMap::new();
        let mut bw_dilation = 1.0f64;
        let mut prev_power = Watts::ZERO;
        let mut elapsed_slices = 0u64;
        let mut final_fraction = 1.0f64;
        let mut total_instructions = 0u64;
        let displacement_of = |w: &Workload| {
            w.managed().map_or(1.0, |m| m.displacement_miss_factor)
        };
        let llc_total = spec.mem.last_level_bytes();
        let node = spec.node;
        let turbo = spec.power.turbo.as_ref();

        // Hard bound so a mis-specified workload cannot spin forever.
        let max_slices = (self.target_slices as u64) * 64;

        while threads.iter().any(|t| !t.finished) && elapsed_slices < max_slices {
            // Occupancy.
            let mut ctx_threads: Vec<Vec<usize>> = vec![Vec::new(); n_ctx];
            for (i, t) in threads.iter().enumerate() {
                if !t.finished {
                    ctx_threads[t.context].push(i);
                }
            }
            let core_busy: Vec<bool> = (0..cores)
                .map(|c| (0..slots).any(|s| !ctx_threads[s * cores + c].is_empty()))
                .collect();
            let busy_cores = core_busy.iter().filter(|&&b| b).count().max(1);
            let running_threads: usize = ctx_threads.iter().map(Vec::len).sum();

            // --- Turbo decision based on last slice's measured power.
            let (f_eff, v_eff) = if config.turbo_enabled() {
                let t = turbo.expect("turbo_enabled implies turbo params");
                let steps = t.steps_for(busy_cores);
                let headroom = prev_power.value() < spec.power.tdp_w * 0.90;
                if headroom && steps > 0 {
                    (
                        t.boosted_clock(clock, steps),
                        t.boosted_voltage(spec.voltage_at(clock), steps),
                    )
                } else {
                    (clock, spec.voltage_at(clock))
                }
            } else {
                (clock, spec.voltage_at(clock))
            };

            // --- LLC partitioning among busy cores and their threads.
            // Capacity contention is softer than a strict equal split:
            // threads with small working sets leave capacity to the rest
            // (utility-based allocation to first order), so the share
            // shrinks with the square root of the sharer count.
            let llc_core_share =
                (llc_total as f64 / (busy_cores as f64).sqrt()) as u64;

            // --- Per-core slot pressure for SMT combining (two passes:
            // solo perf first, then pressure-adjusted execution).
            let mut core_pressure = vec![0.0f64; cores];
            let mut perfs: Vec<Option<(PhasePerf, f64)>> = vec![None; threads.len()];
            for c in 0..cores {
                for s in 0..slots {
                    let ctx = s * cores + c;
                    let n_on_ctx = ctx_threads[ctx].len();
                    if n_on_ctx == 0 {
                        continue;
                    }
                    let sibling_busy = slots > 1
                        && (0..slots).any(|s2| s2 != s && !ctx_threads[s2 * cores + c].is_empty());
                    let time_share = 1.0 / n_on_ctx as f64;
                    for &ti in &ctx_threads[ctx] {
                        let t = &threads[ti];
                        let phase_idx = t.phase_index();
                        let phase = &t.thread.trace.phases()[phase_idx];
                        // Displacement: services displace the application
                        // when they share its context (full effect) or its
                        // core via SMT (partial).
                        let disp = if t.thread.role == ThreadRole::Application {
                            let d = displacement_of(workload);
                            let service_same_ctx = ctx_threads[ctx].iter().any(|&oj| {
                                threads[oj].thread.role.is_service() && oj != ti
                            });
                            let service_sibling = slots > 1
                                && (0..slots).any(|s2| {
                                    s2 != s
                                        && ctx_threads[s2 * cores + c]
                                            .iter()
                                            .any(|&oj| threads[oj].thread.role.is_service())
                                });
                            if service_same_ctx {
                                d
                            } else if service_sibling {
                                1.0 + (d - 1.0) * 0.5
                            } else {
                                1.0
                            }
                        } else {
                            1.0
                        };
                        let cache_share = if sibling_busy {
                            spec.core.smt_cache_share
                        } else {
                            1.0
                        };
                        let threads_on_core: usize = (0..slots)
                            .map(|s2| ctx_threads[s2 * cores + c].len())
                            .sum();
                        let llc_eff = (llc_core_share as f64
                            / (threads_on_core as f64).sqrt())
                            .max(1024.0) as u64;
                        let env = Environment {
                            clock: f_eff,
                            private_cache_share: cache_share,
                            llc_bytes_eff: llc_eff,
                            displacement: disp,
                            bw_dilation,
                        };
                        let key = PerfKey {
                            thread: ti,
                            phase: phase_idx,
                            clock_bits: f_eff.value().to_bits(),
                            share_bits: cache_share.to_bits(),
                            llc_eff,
                            disp_bits: disp.to_bits(),
                            bw_bucket: (bw_dilation * 16.0) as u32,
                        };
                        let perf = *perf_memo.entry(key).or_insert_with(|| {
                            phase_performance(spec, phase, &env, self.estimator)
                        });
                        core_pressure[c] +=
                            perf.busy_fraction() * perf.issue_demand * time_share;
                        perfs[ti] = Some((perf, time_share));
                    }
                }
            }

            // --- Execute the slice.
            let mut slice_dram_bytes = 0.0f64;
            let mut dyn_energy = Joules::ZERO;
            let mut all_finished_now = true;
            let mut slice_fraction = 0.0f64;
            for c in 0..cores {
                let contexts_busy_on_core = (0..slots)
                    .filter(|&s| !ctx_threads[s * cores + c].is_empty())
                    .count();
                let corun = contexts_busy_on_core > 1;
                for s in 0..slots {
                    let ctx = s * cores + c;
                    for &ti in &ctx_threads[ctx] {
                        let (perf, time_share) = perfs[ti].expect("perf computed above");
                        let cpi = if corun {
                            perf.cpi_corun(core_pressure[c], spec.core.smt_overhead)
                        } else {
                            perf.cpi()
                        };
                        let ipc = threads[ti].jitter / cpi;
                        let potential =
                            (ipc * f_eff.value() * slice_s * time_share).max(1.0);
                        let remaining = threads[ti].remaining() as f64;
                        let executed = remaining.min(potential);
                        let used_fraction = executed / potential;
                        slice_fraction = slice_fraction.max(used_fraction.min(1.0));

                        let t = &mut threads[ti];
                        t.done += executed as u64;
                        if t.remaining() == 0 {
                            t.finished = true;
                        } else {
                            all_finished_now = false;
                        }
                        total_instructions += executed as u64;

                        // --- Power accounting for this thread's work.
                        let phase = &t.thread.trace.phases()[t.phase_index().min(
                            t.thread.trace.phases().len() - 1,
                        )];
                        let e = perf.events;
                        let n = executed;
                        let core_counters = ActivityCounters {
                            instructions: n as u64,
                            int_ops: (n * e.int_ops) as u64,
                            fp_ops: (n * e.fp_ops) as u64,
                            l1_accesses: (n * e.l1_accesses) as u64,
                            l2_accesses: (n * e.l2_accesses) as u64,
                            branches: (n * e.branches) as u64,
                            branch_flushes: (n * e.branch_flushes) as u64,
                            tlb_misses: (n * e.tlb_misses) as u64,
                            ..ActivityCounters::default()
                        };
                        let llc_counters = ActivityCounters {
                            llc_accesses: (n * e.llc_accesses) as u64,
                            ..ActivityCounters::default()
                        };
                        let dram_counters = ActivityCounters {
                            dram_accesses: (n * e.dram_accesses) as u64,
                            ..ActivityCounters::default()
                        };
                        slice_dram_bytes += n * e.dram_accesses * 64.0;
                        let activity = phase.activity();
                        let model = self.chip_energy_model(spec);
                        let e_core = model.dynamic_energy_with_activity(
                            &core_counters,
                            node,
                            v_eff,
                            activity,
                        );
                        let e_llc = model.dynamic_energy_with_activity(
                            &llc_counters,
                            node,
                            v_eff,
                            activity,
                        );
                        let e_dram = model.dynamic_energy_with_activity(
                            &dram_counters,
                            node,
                            v_eff,
                            activity,
                        );
                        meters.add(Structure::Core(c), e_core);
                        meters.add(Structure::Llc, e_llc);
                        meters.add(Structure::MemoryInterface, e_dram);
                        dyn_energy += e_core + e_llc + e_dram;
                    }
                }
            }

            // Clock-tree energy for each busy core.
            let model = self.chip_energy_model(spec);
            for (c, &busy) in core_busy.iter().enumerate() {
                if busy {
                    let clk = ActivityCounters {
                        active_cycles: (f_eff.value() * slice_s) as u64,
                        ..ActivityCounters::default()
                    };
                    let e = model.dynamic_energy_with_activity(&clk, node, v_eff, 1.0);
                    meters.add(Structure::Core(c), e);
                    dyn_energy += e;
                }
            }

            // Static power.
            let idle_cores = cores - busy_cores.min(cores);
            let disabled = spec.cores - cores;
            let llc_mb = llc_total as f64 / (1024.0 * 1024.0);
            let (p_core, p_llc, p_uncore) = model.static_power_parts(
                &spec.power.statics,
                node,
                v_eff,
                busy_cores.min(cores),
                idle_cores,
                disabled,
                llc_mb,
            );
            let static_power = p_core + p_llc + p_uncore;
            // Attribute static energy to meters (cores share equally).
            meters.add(Structure::Llc, p_llc * slice);
            meters.add(Structure::Uncore, p_uncore * slice);
            for c in 0..cores {
                meters.add(Structure::Core(c), (p_core / cores as f64) * slice);
            }

            let slice_power = dyn_energy / slice + static_power;
            waveform.push(slice_power);
            prev_power = slice_power;

            // Bandwidth feedback for the next slice.
            let demand_gbs = slice_dram_bytes / slice_s / 1e9;
            bw_dilation = (demand_gbs / spec.mem.peak_bw_gbs).max(1.0);

            elapsed_slices += 1;
            if all_finished_now {
                final_fraction = slice_fraction.clamp(1e-3, 1.0);
            }
            let _ = running_threads;
        }

        let full = elapsed_slices.saturating_sub(1) as f64;
        let time = Seconds::new((full + final_fraction) * slice_s);
        RunResult {
            time,
            waveform,
            meters,
            instructions: total_instructions,
        }
    }

    /// [`ChipSimulator::run`] with caller-owned working memory.
    ///
    /// Behaviorally identical to [`ChipSimulator::run_reference`] -- same
    /// times, waveforms, meters, and instruction counts, bit for bit --
    /// but allocation-free in the slice loop and able to collapse
    /// steady-state slices into replays of the previous one. Pass the same
    /// [`SimScratch`] across runs to amortize buffer allocation; see
    /// [`SimScratch`] for the reuse contract and a doctest.
    ///
    /// # Bit-identity discipline
    ///
    /// Every `f64` accumulation (`+=`) happens in the reference's exact
    /// iteration order -- core-major, then SMT slot, then thread index --
    /// and every memoized value is a pure function of inputs the memo key
    /// captures completely. A slice is replayed only when its inputs
    /// (turbo state, bandwidth bucket, occupancy, thread phases) match
    /// the previous slice's exactly, in which case its per-thread results
    /// are the same values in the same order. Memoization changes *when*
    /// values are computed, never the values.
    #[must_use]
    #[allow(clippy::too_many_lines)]
    pub fn run_with_scratch(
        &self,
        config: &ChipConfig,
        workload: &Workload,
        seed: u64,
        scratch: &mut SimScratch,
    ) -> RunResult {
        let spec = config.spec();
        let n_ctx = config.contexts();
        let cores = config.active_cores();
        let slots = config.threads_per_core();

        // --- Thread placement: identical to the reference. ---
        let software = workload.software_threads(n_ctx);
        let mut rng = SplitMix64::new(seed ^ 0x6c68_7221);
        let cv = workload.nondeterminism_cv();
        let mut threads: Vec<ThreadState> = software
            .into_iter()
            .map(|thread| {
                let total = thread.trace.total_instructions().max(1);
                let mut cum = 0u64;
                let n_phases = thread.trace.phases().len();
                let boundaries: Vec<u64> = (0..n_phases)
                    .map(|p| {
                        cum += thread.trace.phase_instructions(p).max(1);
                        cum.min(total.max(cum))
                    })
                    .collect();
                let jitter = (1.0 + rng.next_normal(0.0, cv)).clamp(1.0 - 3.0 * cv, 1.0 + 3.0 * cv);
                ThreadState {
                    thread,
                    boundaries,
                    done: 0,
                    finished: false,
                    jitter,
                    context: 0,
                }
            })
            .collect();
        {
            let mut order: Vec<usize> = (0..threads.len()).collect();
            order.sort_by_key(|&i| std::cmp::Reverse(threads[i].total()));
            let mut loads = vec![0u64; n_ctx];
            for &i in &order {
                let ctx = (0..n_ctx)
                    .min_by_key(|&c| (loads[c], c))
                    .expect("n_ctx > 0");
                threads[i].context = ctx;
                loads[ctx] += threads[i].total();
            }
        }

        // --- Slice sizing: identical to the reference. ---
        let clock = config.clock();
        let mut est_time: f64 = 1e-6;
        for t in &threads {
            let env = Environment::solo(spec, clock);
            let perf =
                cached_phase_performance(spec, &t.thread.trace.phases()[0], &env, self.estimator);
            let time = t.total() as f64 / (perf.ipc() * clock.value());
            est_time = est_time.max(time);
        }
        let slice_s = (est_time / self.target_slices as f64).clamp(1e-4, 2.0);
        let slice = Seconds::new(slice_s);

        // --- Pre-resolved flat structure. ---
        let nt = threads.len();
        scratch.reset(nt, n_ctx, cores);
        for (i, t) in threads.iter().enumerate() {
            scratch.ctx_of[i] = t.context;
            scratch.core_of[i] = t.context % cores;
        }
        // The reference walks cores, then SMT slots, then each context's
        // thread list (which holds ascending thread indices). Sorting by
        // (core, slot, index) reproduces that order exactly, so every
        // order-sensitive f64 accumulation below matches bit for bit.
        let (core_of_s, ctx_of_s) = (&scratch.core_of, &scratch.ctx_of);
        scratch
            .exec_order
            .sort_unstable_by_key(|&i| (core_of_s[i], ctx_of_s[i] / cores, i));

        // --- Main loop state. ---
        // A run lands near `target_slices` samples by construction; the
        // capacity hint removes the growth reallocations from the loop.
        let mut waveform = PowerWaveform::with_capacity(slice, 2 * self.target_slices);
        let mut bw_dilation = 1.0f64;
        let mut prev_power = Watts::ZERO;
        let mut elapsed_slices = 0u64;
        let mut final_fraction = 1.0f64;
        let mut total_instructions = 0u64;
        let displacement = workload
            .managed()
            .map_or(1.0, |m| m.displacement_miss_factor);
        let llc_total = spec.mem.last_level_bytes();
        let node = spec.node;
        let turbo = spec.power.turbo.as_ref();
        // One model for the whole run: `EnergyModel` is a `Copy` value
        // table, so hoisting it out of the loop cannot change a joule.
        let model = self.chip_energy_model(spec);
        let max_slices = (self.target_slices as u64) * 64;

        let mut runnable = nt;
        let mut occupancy_dirty = true;
        let mut epoch = 0u64;
        let mut busy_cores = 1usize;
        let mut llc_core_share = 0u64;

        while runnable > 0 && elapsed_slices < max_slices {
            // --- Occupancy: rebuilt only when a thread finished. ---
            if occupancy_dirty {
                scratch.n_runnable.iter_mut().for_each(|v| *v = 0);
                scratch.services_on_ctx.iter_mut().for_each(|v| *v = 0);
                for t in &threads {
                    if !t.finished {
                        scratch.n_runnable[t.context] += 1;
                        if t.thread.role.is_service() {
                            scratch.services_on_ctx[t.context] += 1;
                        }
                    }
                }
                for c in 0..cores {
                    let mut busy_ctxs = 0u32;
                    let mut services = 0u32;
                    let mut total = 0u32;
                    for s in 0..slots {
                        let ctx = s * cores + c;
                        if scratch.n_runnable[ctx] > 0 {
                            busy_ctxs += 1;
                        }
                        services += scratch.services_on_ctx[ctx];
                        total += scratch.n_runnable[ctx];
                    }
                    scratch.ctxs_busy_on_core[c] = busy_ctxs;
                    scratch.services_on_core[c] = services;
                    scratch.threads_on_core[c] = total;
                    scratch.core_busy[c] = busy_ctxs > 0;
                }
                busy_cores = scratch.core_busy.iter().filter(|&&b| b).count().max(1);
                llc_core_share = (llc_total as f64 / (busy_cores as f64).sqrt()) as u64;
                occupancy_dirty = false;
            }

            // --- Turbo decision: identical arithmetic to the reference. ---
            let (f_eff, v_eff) = if config.turbo_enabled() {
                let t = turbo.expect("turbo_enabled implies turbo params");
                let steps = t.steps_for(busy_cores);
                let headroom = prev_power.value() < spec.power.tdp_w * 0.90;
                if headroom && steps > 0 {
                    (
                        t.boosted_clock(clock, steps),
                        t.boosted_voltage(spec.voltage_at(clock), steps),
                    )
                } else {
                    (clock, spec.voltage_at(clock))
                }
            } else {
                (clock, spec.voltage_at(clock))
            };

            let bw_bucket = (bw_dilation * 16.0) as u32;
            let sig = (f_eff.value().to_bits(), bw_bucket, epoch);

            // --- Fast path: replay the previous slice verbatim when its
            // inputs match and no thread finishes or changes phase.
            if scratch.replay_valid && sig == scratch.cached_sig {
                let plain = scratch
                    .replay_incs
                    .iter()
                    .all(|&(ti, inc, bound)| threads[ti].done + inc < bound);
                if plain {
                    for &(ti, inc, _) in &scratch.replay_incs {
                        threads[ti].done += inc;
                    }
                    total_instructions += scratch.replay_instr;
                    for &(lane, v) in &scratch.replay_adds {
                        scratch.lanes[lane] += v;
                    }
                    let p = Watts::new(scratch.replay_power);
                    waveform.push(p);
                    prev_power = p;
                    bw_dilation = scratch.replay_bw;
                    elapsed_slices += 1;
                    continue;
                }
            }

            // --- Structural slice: full recompute, recording the replay.
            scratch.replay_adds.clear();
            scratch.replay_incs.clear();
            let mut slice_instr = 0u64;
            let mut replay_ok = true;

            // Pass 1: interval performance and per-core slot pressure.
            scratch.core_pressure.iter_mut().for_each(|v| *v = 0.0);
            scratch.perfs.iter_mut().for_each(|v| *v = None);
            for idx in 0..nt {
                let ti = scratch.exec_order[idx];
                let t = &threads[ti];
                if t.finished {
                    continue;
                }
                let ctx = scratch.ctx_of[ti];
                let c = scratch.core_of[ti];
                let sibling_busy = slots > 1 && scratch.ctxs_busy_on_core[c] >= 2;
                let time_share = 1.0 / f64::from(scratch.n_runnable[ctx]);
                let phase_idx = scratch.cursor[ti];
                let phase = &t.thread.trace.phases()[phase_idx];
                // Services never displace themselves; an application
                // thread is displaced by services on its context (full
                // effect) or on a sibling SMT context (half effect).
                let disp = if t.thread.role == ThreadRole::Application {
                    if scratch.services_on_ctx[ctx] > 0 {
                        displacement
                    } else if slots > 1
                        && scratch.services_on_core[c] > scratch.services_on_ctx[ctx]
                    {
                        1.0 + (displacement - 1.0) * 0.5
                    } else {
                        1.0
                    }
                } else {
                    1.0
                };
                let cache_share = if sibling_busy {
                    spec.core.smt_cache_share
                } else {
                    1.0
                };
                let llc_eff = (llc_core_share as f64
                    / f64::from(scratch.threads_on_core[c]).sqrt())
                .max(1024.0) as u64;
                let key: PerfMemoKey = (
                    phase_idx,
                    f_eff.value().to_bits(),
                    cache_share.to_bits(),
                    llc_eff,
                    disp.to_bits(),
                    bw_bucket,
                );
                let memo = &mut scratch.memo[ti];
                let perf = match memo.iter().find(|(k, _)| *k == key) {
                    Some(&(_, p)) => p,
                    None => {
                        let env = Environment {
                            clock: f_eff,
                            private_cache_share: cache_share,
                            llc_bytes_eff: llc_eff,
                            displacement: disp,
                            bw_dilation,
                        };
                        let p = cached_phase_performance(spec, phase, &env, self.estimator);
                        memo.push((key, p));
                        p
                    }
                };
                scratch.core_pressure[c] += perf.busy_fraction() * perf.issue_demand * time_share;
                scratch.perfs[ti] = Some((perf, time_share));
            }

            // Pass 2: execute the slice.
            let mut slice_dram_bytes = 0.0f64;
            let mut dyn_energy = Joules::ZERO;
            let mut all_finished_now = true;
            let mut slice_fraction = 0.0f64;
            for idx in 0..nt {
                let ti = scratch.exec_order[idx];
                if threads[ti].finished {
                    continue;
                }
                let c = scratch.core_of[ti];
                let corun = scratch.ctxs_busy_on_core[c] > 1;
                let (perf, time_share) = scratch.perfs[ti].expect("perf computed above");
                let cpi = if corun {
                    perf.cpi_corun(scratch.core_pressure[c], spec.core.smt_overhead)
                } else {
                    perf.cpi()
                };
                let ipc = threads[ti].jitter / cpi;
                let potential = (ipc * f_eff.value() * slice_s * time_share).max(1.0);
                let remaining = threads[ti].remaining() as f64;
                let executed = remaining.min(potential);
                let used_fraction = executed / potential;
                slice_fraction = slice_fraction.max(used_fraction.min(1.0));

                let inc = executed as u64;
                let t = &mut threads[ti];
                let old_cursor = scratch.cursor[ti];
                t.done += inc;
                if t.remaining() == 0 {
                    t.finished = true;
                    runnable -= 1;
                    occupancy_dirty = true;
                    epoch += 1;
                    replay_ok = false;
                } else {
                    all_finished_now = false;
                }
                slice_instr += inc;
                // Advance the phase cursor; `done` only grows, so this
                // matches the reference's linear `phase_index()` scan.
                {
                    let b = &t.boundaries;
                    let mut cur = old_cursor;
                    while cur + 1 < b.len() && t.done >= b[cur] {
                        cur += 1;
                    }
                    scratch.cursor[ti] = cur;
                }
                if scratch.cursor[ti] != old_cursor {
                    epoch += 1;
                    replay_ok = false;
                }
                if executed < potential {
                    replay_ok = false;
                }
                scratch
                    .replay_incs
                    .push((ti, inc, t.boundaries[scratch.cursor[ti]]));

                // --- Power accounting (identical expressions). ---
                let phase = &threads[ti].thread.trace.phases()[scratch.cursor[ti]];
                let e = perf.events;
                let n = executed;
                let core_counters = ActivityCounters {
                    instructions: n as u64,
                    int_ops: (n * e.int_ops) as u64,
                    fp_ops: (n * e.fp_ops) as u64,
                    l1_accesses: (n * e.l1_accesses) as u64,
                    l2_accesses: (n * e.l2_accesses) as u64,
                    branches: (n * e.branches) as u64,
                    branch_flushes: (n * e.branch_flushes) as u64,
                    tlb_misses: (n * e.tlb_misses) as u64,
                    ..ActivityCounters::default()
                };
                let llc_counters = ActivityCounters {
                    llc_accesses: (n * e.llc_accesses) as u64,
                    ..ActivityCounters::default()
                };
                let dram_counters = ActivityCounters {
                    dram_accesses: (n * e.dram_accesses) as u64,
                    ..ActivityCounters::default()
                };
                slice_dram_bytes += n * e.dram_accesses * 64.0;
                let activity = phase.activity();
                let e_core =
                    model.dynamic_energy_with_activity(&core_counters, node, v_eff, activity);
                let e_llc =
                    model.dynamic_energy_with_activity(&llc_counters, node, v_eff, activity);
                let e_dram =
                    model.dynamic_energy_with_activity(&dram_counters, node, v_eff, activity);
                scratch.replay_adds.push((c, e_core.value()));
                scratch.replay_adds.push((cores, e_llc.value()));
                scratch.replay_adds.push((cores + 2, e_dram.value()));
                dyn_energy += e_core + e_llc + e_dram;
            }

            // Clock-tree energy for each busy core.
            for c in 0..cores {
                if scratch.core_busy[c] {
                    let clk = ActivityCounters {
                        active_cycles: (f_eff.value() * slice_s) as u64,
                        ..ActivityCounters::default()
                    };
                    let e = model.dynamic_energy_with_activity(&clk, node, v_eff, 1.0);
                    scratch.replay_adds.push((c, e.value()));
                    dyn_energy += e;
                }
            }

            // Static power.
            let idle_cores = cores - busy_cores.min(cores);
            let disabled = spec.cores - cores;
            let llc_mb = llc_total as f64 / (1024.0 * 1024.0);
            let (p_core, p_llc, p_uncore) = model.static_power_parts(
                &spec.power.statics,
                node,
                v_eff,
                busy_cores.min(cores),
                idle_cores,
                disabled,
                llc_mb,
            );
            let static_power = p_core + p_llc + p_uncore;
            scratch.replay_adds.push((cores, (p_llc * slice).value()));
            scratch
                .replay_adds
                .push((cores + 1, (p_uncore * slice).value()));
            for c in 0..cores {
                scratch
                    .replay_adds
                    .push((c, ((p_core / cores as f64) * slice).value()));
            }

            // Apply this slice's adds to the lanes, in recorded order --
            // the same order the reference feeds its meters.
            for &(lane, v) in &scratch.replay_adds {
                scratch.lanes[lane] += v;
                scratch.lanes_touched[lane] = true;
            }
            total_instructions += slice_instr;

            let slice_power = dyn_energy / slice + static_power;
            waveform.push(slice_power);
            prev_power = slice_power;

            let demand_gbs = slice_dram_bytes / slice_s / 1e9;
            bw_dilation = (demand_gbs / spec.mem.peak_bw_gbs).max(1.0);

            elapsed_slices += 1;
            if all_finished_now {
                final_fraction = slice_fraction.clamp(1e-3, 1.0);
            }

            scratch.replay_instr = slice_instr;
            scratch.replay_power = slice_power.value();
            scratch.replay_bw = bw_dilation;
            scratch.replay_valid = replay_ok;
            scratch.cached_sig = (f_eff.value().to_bits(), bw_bucket, epoch);
        }

        let full = elapsed_slices.saturating_sub(1) as f64;
        let time = Seconds::new((full + final_fraction) * slice_s);
        let mut meters = PowerMeters::new();
        for lane in 0..scratch.lanes.len() {
            if scratch.lanes_touched[lane] {
                meters.add(lane_structure(lane, cores), Joules::new(scratch.lanes[lane]));
            }
        }
        RunResult {
            time,
            waveform,
            meters,
            instructions: total_instructions,
        }
    }

    /// The energy model specialized to one chip's event table.
    fn chip_energy_model(&self, spec: &crate::catalog::ProcessorSpec) -> EnergyModel {
        EnergyModel::new(spec.power.events, *self.energy_model.nodes())
    }

    /// Convenience: the supply voltage a config runs at (without Turbo).
    #[must_use]
    pub fn voltage_of(config: &ChipConfig) -> Volts {
        config.voltage()
    }

    /// Convenience: run and return `(time, average power)`.
    #[must_use]
    pub fn measure(&self, config: &ChipConfig, workload: &Workload, seed: u64) -> (Seconds, Watts) {
        let r = self.run(config, workload, seed);
        (r.time, r.average_power())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::ProcessorId;
    use lhr_workloads::by_name;

    fn sim() -> ChipSimulator {
        ChipSimulator::new().with_target_slices(60)
    }

    fn stock(id: ProcessorId) -> ChipConfig {
        ChipConfig::stock(id.spec())
    }

    /// A scaled-down workload clone for fast tests.
    fn small(name: &str) -> Workload {
        by_name(name).expect("benchmark exists").clone()
    }

    #[test]
    fn run_is_deterministic() {
        let w = small("jess");
        let cfg = stock(ProcessorId::Core2DuoE6600);
        let s = sim();
        let a = s.run(&cfg, &w, 7);
        let b = s.run(&cfg, &w, 7);
        assert_eq!(a.time, b.time);
        assert_eq!(a.waveform, b.waveform);
        assert_eq!(a.instructions, b.instructions);
    }

    /// The flattened loop is pinned to the reference bit for bit: same
    /// time, waveform, meters, and instruction count, whether the scratch
    /// is fresh or reused across runs.
    #[test]
    fn flattened_loop_matches_reference_bit_for_bit() {
        let s = sim();
        let mut scratch = SimScratch::new();
        for name in ["jess", "hmmer", "sunflow", "xalan"] {
            let w = small(name);
            for id in [
                ProcessorId::Core2DuoE6600,
                ProcessorId::CoreI7_920,
                ProcessorId::Atom230,
            ] {
                for seed in [1u64, 7, 42] {
                    let cfg = stock(id);
                    let reference = s.run_reference(&cfg, &w, seed);
                    let fresh = s.run(&cfg, &w, seed);
                    let reused = s.run_with_scratch(&cfg, &w, seed, &mut scratch);
                    assert_eq!(reference, fresh, "{name} on {id:?} seed {seed} (fresh)");
                    assert_eq!(reference, reused, "{name} on {id:?} seed {seed} (reused)");
                }
            }
        }
    }

    /// Non-stock shapes exercise SMT co-running, disabled cores, turbo-off,
    /// and downclocking -- the structural-slice edge cases.
    #[test]
    fn flattened_loop_matches_reference_on_nonstock_configs() {
        let s = sim();
        let mut scratch = SimScratch::new();
        let spec = ProcessorId::CoreI7_920.spec();
        let configs = [
            ChipConfig::stock(spec).with_cores(1).unwrap(),
            ChipConfig::stock(spec)
                .with_cores(2)
                .unwrap()
                .with_smt(false)
                .unwrap(),
            ChipConfig::stock(spec).with_turbo(false).unwrap(),
            ChipConfig::stock(spec)
                .with_clock(spec.min_clock)
                .unwrap()
                .with_turbo(false)
                .unwrap(),
        ];
        for w in [small("db"), small("mtrt"), small("compress")] {
            for (i, cfg) in configs.iter().enumerate() {
                let reference = s.run_reference(cfg, &w, 11);
                let optimized = s.run_with_scratch(cfg, &w, 11, &mut scratch);
                assert_eq!(reference, optimized, "{} config #{i}", w.name());
            }
        }
    }

    #[test]
    fn different_seeds_jitter_slightly() {
        let w = small("jess");
        let cfg = stock(ProcessorId::Core2DuoE6600);
        let s = sim();
        let a = s.run(&cfg, &w, 1);
        let b = s.run(&cfg, &w, 2);
        let rel = (a.time.value() - b.time.value()).abs() / a.time.value();
        assert!(rel > 0.0, "seeds must perturb Java runs");
        assert!(rel < 0.2, "jitter should be small, got {rel}");
    }

    #[test]
    fn power_is_positive_and_below_tdp_scale() {
        for id in ProcessorId::ALL {
            let w = small("mpegaudio");
            let cfg = stock(id);
            let r = sim().run(&cfg, &w, 3);
            let p = r.average_power().value();
            assert!(p > 0.1, "{id:?} power {p}");
            assert!(
                p < id.spec().power.tdp_w * 1.05,
                "{id:?} power {p} exceeds TDP {}",
                id.spec().power.tdp_w
            );
        }
    }

    #[test]
    fn faster_chip_finishes_sooner() {
        let w = small("jess");
        let s = sim();
        let atom = s.run(&stock(ProcessorId::Atom230), &w, 3);
        let i7 = s.run(&stock(ProcessorId::CoreI7_920), &w, 3);
        assert!(
            i7.time.value() < atom.time.value() / 2.0,
            "i7 {} vs Atom {}",
            i7.time.value(),
            atom.time.value()
        );
    }

    #[test]
    fn scalable_workload_speeds_up_with_cores() {
        let w = small("mtrt"); // short dual-threaded benchmark
        let spec = ProcessorId::CoreI7_920.spec();
        let s = sim();
        let one = ChipConfig::stock(spec)
            .with_cores(1).unwrap()
            .with_smt(false).unwrap()
            .with_turbo(false).unwrap();
        let two = ChipConfig::stock(spec)
            .with_cores(2).unwrap()
            .with_smt(false).unwrap()
            .with_turbo(false).unwrap();
        let t1 = s.run(&one, &w, 3).time.value();
        let t2 = s.run(&two, &w, 3).time.value();
        assert!(t2 < t1 * 0.8, "2C {t2} vs 1C {t1}");
    }

    #[test]
    fn more_cores_draw_more_power_for_scalable_work() {
        let w = small("sunflow");
        let spec = ProcessorId::CoreI7_920.spec();
        let s = sim();
        let one = ChipConfig::stock(spec)
            .with_cores(1).unwrap().with_smt(false).unwrap().with_turbo(false).unwrap();
        let four = ChipConfig::stock(spec)
            .with_cores(4).unwrap().with_smt(false).unwrap().with_turbo(false).unwrap();
        let p1 = s.run(&one, &w, 3).average_power().value();
        let p4 = s.run(&four, &w, 3).average_power().value();
        assert!(p4 > p1 * 1.3, "4C {p4} vs 1C {p1}");
    }

    #[test]
    fn single_threaded_java_gains_from_second_core() {
        let w = small("db");
        let spec = ProcessorId::CoreI7_920.spec();
        let s = sim();
        let one = ChipConfig::stock(spec)
            .with_cores(1).unwrap().with_smt(false).unwrap().with_turbo(false).unwrap();
        let two = ChipConfig::stock(spec)
            .with_cores(2).unwrap().with_smt(false).unwrap().with_turbo(false).unwrap();
        let t1 = s.run(&one, &w, 3).time.value();
        let t2 = s.run(&two, &w, 3).time.value();
        assert!(t2 < t1 * 0.95, "db 2C {t2} vs 1C {t1}: VM services must offload");
    }

    #[test]
    fn single_threaded_native_gains_nothing_from_second_core() {
        let w = small("hmmer");
        let spec = ProcessorId::CoreI7_920.spec();
        let s = sim();
        let one = ChipConfig::stock(spec)
            .with_cores(1).unwrap().with_smt(false).unwrap().with_turbo(false).unwrap();
        let two = ChipConfig::stock(spec)
            .with_cores(2).unwrap().with_smt(false).unwrap().with_turbo(false).unwrap();
        let t1 = s.run(&one, &w, 3).time.value();
        let t2 = s.run(&two, &w, 3).time.value();
        let rel = (t1 - t2).abs() / t1;
        assert!(rel < 0.03, "native ST must be core-count invariant, got {rel}");
    }

    #[test]
    fn turbo_raises_power() {
        let w = small("compress");
        let spec = ProcessorId::CoreI7_920.spec();
        let s = sim();
        let on = ChipConfig::stock(spec);
        let off = ChipConfig::stock(spec).with_turbo(false).unwrap();
        let r_on = s.run(&on, &w, 3);
        let r_off = s.run(&off, &w, 3);
        assert!(r_on.average_power().value() > r_off.average_power().value());
        assert!(r_on.time.value() < r_off.time.value());
    }

    #[test]
    fn meters_account_for_total_energy() {
        let w = small("jess");
        let cfg = stock(ProcessorId::Core2DuoE6600);
        let r = sim().run(&cfg, &w, 3);
        let metered = r.meters.total_energy().value();
        let waveform_e = r.waveform.energy().value();
        let rel = (metered - waveform_e).abs() / waveform_e;
        assert!(rel < 0.02, "meters {metered} vs waveform {waveform_e}");
    }

    #[test]
    fn waveform_shape_matches_run() {
        let w = small("jess");
        let cfg = stock(ProcessorId::Core2DuoE6600);
        let r = sim().run(&cfg, &w, 3);
        assert!(r.waveform.len() >= 8);
        assert!(r.waveform.duration().value() >= r.time.value() * 0.95);
        assert!(r.instructions > 0);
    }

    #[test]
    fn downclocking_stretches_time_and_cuts_power() {
        let w = small("compress");
        let spec = ProcessorId::Core2DuoE7600.spec();
        let s = sim();
        let fast = ChipConfig::stock(spec);
        let slow = ChipConfig::stock(spec).with_clock(spec.min_clock).unwrap();
        let rf = s.run(&fast, &w, 3);
        let rs = s.run(&slow, &w, 3);
        assert!(rs.time.value() > rf.time.value() * 1.4);
        assert!(rs.average_power().value() < rf.average_power().value());
    }
}
