//! The time-sliced chip simulator.
//!
//! A run places a workload's software threads (application + VM services)
//! onto a configured chip's hardware contexts and advances time in slices.
//! Each slice recomputes every runnable thread's interval performance in its
//! current environment -- SMT sibling pressure, shared-LLC partitioning,
//! memory-bandwidth saturation, VM-service displacement -- executes the
//! resulting instructions, meters the energy per structure, lets the Turbo
//! controller react to the measured power, and appends one sample to the
//! chip's power waveform. The waveform is what the sensing rig in
//! `lhr-sensors` later samples at 50 Hz, mirroring the paper's rig.

use std::collections::HashMap;

use lhr_power::{
    ActivityCounters, EnergyModel, EventEnergies, NodeScaling, PowerMeters, PowerWaveform,
    Structure,
};
use lhr_trace::{Rng64, SplitMix64};
use lhr_units::{Joules, Seconds, Volts, Watts};
use lhr_workloads::{SoftwareThread, ThreadRole, Workload};

use crate::cache::MissRateEstimator;
use crate::config::ChipConfig;
use crate::interval::{phase_performance, Environment, PhasePerf};

/// The outcome of one benchmark run on one configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct RunResult {
    /// Wall-clock execution time.
    pub time: Seconds,
    /// The chip power waveform (one sample per simulation slice).
    pub waveform: PowerWaveform,
    /// Per-structure energy meters.
    pub meters: PowerMeters,
    /// Total instructions retired across all threads.
    pub instructions: u64,
}

impl RunResult {
    /// True average chip power over the run.
    #[must_use]
    pub fn average_power(&self) -> Watts {
        self.waveform.average_power()
    }

    /// Total energy, consistent with `average_power x time`.
    #[must_use]
    pub fn energy(&self) -> Joules {
        self.average_power() * self.time
    }
}

/// The chip simulator. Stateless across runs apart from the shared
/// miss-rate memo; cheap to clone or share.
#[derive(Debug)]
pub struct ChipSimulator {
    energy_model: EnergyModel,
    estimator: &'static MissRateEstimator,
    target_slices: usize,
}

impl Default for ChipSimulator {
    fn default() -> Self {
        Self::new()
    }
}

/// Memo key for interval-model results within a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct PerfKey {
    thread: usize,
    phase: usize,
    clock_bits: u64,
    share_bits: u64,
    llc_eff: u64,
    disp_bits: u64,
    bw_bucket: u32,
}

struct ThreadState {
    thread: SoftwareThread,
    /// Cumulative instruction count at the end of each phase.
    boundaries: Vec<u64>,
    done: u64,
    finished: bool,
    jitter: f64,
    context: usize,
}

impl ThreadState {
    fn total(&self) -> u64 {
        *self.boundaries.last().expect("traces have phases")
    }

    fn remaining(&self) -> u64 {
        self.total() - self.done
    }

    fn phase_index(&self) -> usize {
        self.boundaries
            .iter()
            .position(|&b| self.done < b)
            .unwrap_or(self.boundaries.len() - 1)
    }
}

impl ChipSimulator {
    /// Creates a simulator with the default energy model and slice budget.
    #[must_use]
    pub fn new() -> Self {
        Self {
            energy_model: EnergyModel::new(EventEnergies::default(), NodeScaling::default()),
            estimator: MissRateEstimator::global(),
            target_slices: 400,
        }
    }

    /// Overrides the number of simulation slices per run (more slices give
    /// finer waveforms and Turbo reaction at linear cost).
    ///
    /// # Panics
    ///
    /// Panics if `n < 8`.
    #[must_use]
    pub fn with_target_slices(mut self, n: usize) -> Self {
        assert!(n >= 8, "need at least 8 slices for a meaningful waveform");
        self.target_slices = n;
        self
    }

    /// Runs `workload` on `config`. The `seed` selects the run's
    /// nondeterminism (JIT/GC timing jitter for Java, system noise for
    /// natives); the same seed always reproduces the same result.
    #[must_use]
    pub fn run(&self, config: &ChipConfig, workload: &Workload, seed: u64) -> RunResult {
        let spec = config.spec();
        let n_ctx = config.contexts();
        let cores = config.active_cores();
        let slots = config.threads_per_core();

        // --- Thread placement: spread across cores first, then SMT slots.
        let software = workload.software_threads(n_ctx);
        let mut rng = SplitMix64::new(seed ^ 0x6c68_7221);
        let cv = workload.nondeterminism_cv();
        let mut threads: Vec<ThreadState> = software
            .into_iter()
            .enumerate()
            .map(|(i, thread)| {
                let total = thread.trace.total_instructions().max(1);
                let mut cum = 0u64;
                let n_phases = thread.trace.phases().len();
                let boundaries: Vec<u64> = (0..n_phases)
                    .map(|p| {
                        cum += thread.trace.phase_instructions(p).max(1);
                        cum.min(total.max(cum))
                    })
                    .collect();
                let jitter = (1.0 + rng.next_normal(0.0, cv)).clamp(1.0 - 3.0 * cv, 1.0 + 3.0 * cv);
                let _ = i;
                ThreadState {
                    thread,
                    boundaries,
                    done: 0,
                    finished: false,
                    jitter,
                    context: 0,
                }
            })
            .collect();

        // --- Placement: OS-like load balancing. Heaviest threads first,
        // each onto the least-loaded context; context index order is
        // slot-major ((core0,slot0), (core1,slot0), ..., (core0,slot1), ...)
        // so physical cores fill before SMT siblings, and VM service
        // threads land on spare contexts away from the application.
        {
            let mut order: Vec<usize> = (0..threads.len()).collect();
            order.sort_by_key(|&i| std::cmp::Reverse(threads[i].total()));
            let mut loads = vec![0u64; n_ctx];
            for &i in &order {
                let ctx = (0..n_ctx)
                    .min_by_key(|&c| (loads[c], c))
                    .expect("n_ctx > 0");
                threads[i].context = ctx;
                loads[ctx] += threads[i].total();
            }
        }

        // --- Slice sizing from a solo-IPC probe of each thread's phase 0.
        let clock = config.clock();
        let mut est_time: f64 = 1e-6;
        for t in &threads {
            let env = Environment::solo(spec, clock);
            let perf = phase_performance(spec, &t.thread.trace.phases()[0], &env, self.estimator);
            let time = t.total() as f64 / (perf.ipc() * clock.value());
            est_time = est_time.max(time);
        }
        let slice_s = (est_time / self.target_slices as f64).clamp(1e-4, 2.0);
        let slice = Seconds::new(slice_s);

        // --- Main loop state.
        let mut waveform = PowerWaveform::new(slice);
        let mut meters = PowerMeters::new();
        let mut perf_memo: HashMap<PerfKey, PhasePerf> = HashMap::new();
        let mut bw_dilation = 1.0f64;
        let mut prev_power = Watts::ZERO;
        let mut elapsed_slices = 0u64;
        let mut final_fraction = 1.0f64;
        let mut total_instructions = 0u64;
        let displacement_of = |w: &Workload| {
            w.managed().map_or(1.0, |m| m.displacement_miss_factor)
        };
        let llc_total = spec.mem.last_level_bytes();
        let node = spec.node;
        let turbo = spec.power.turbo.as_ref();

        // Hard bound so a mis-specified workload cannot spin forever.
        let max_slices = (self.target_slices as u64) * 64;

        while threads.iter().any(|t| !t.finished) && elapsed_slices < max_slices {
            // Occupancy.
            let mut ctx_threads: Vec<Vec<usize>> = vec![Vec::new(); n_ctx];
            for (i, t) in threads.iter().enumerate() {
                if !t.finished {
                    ctx_threads[t.context].push(i);
                }
            }
            let core_busy: Vec<bool> = (0..cores)
                .map(|c| (0..slots).any(|s| !ctx_threads[s * cores + c].is_empty()))
                .collect();
            let busy_cores = core_busy.iter().filter(|&&b| b).count().max(1);
            let running_threads: usize = ctx_threads.iter().map(Vec::len).sum();

            // --- Turbo decision based on last slice's measured power.
            let (f_eff, v_eff) = if config.turbo_enabled() {
                let t = turbo.expect("turbo_enabled implies turbo params");
                let steps = t.steps_for(busy_cores);
                let headroom = prev_power.value() < spec.power.tdp_w * 0.90;
                if headroom && steps > 0 {
                    (
                        t.boosted_clock(clock, steps),
                        t.boosted_voltage(spec.voltage_at(clock), steps),
                    )
                } else {
                    (clock, spec.voltage_at(clock))
                }
            } else {
                (clock, spec.voltage_at(clock))
            };

            // --- LLC partitioning among busy cores and their threads.
            // Capacity contention is softer than a strict equal split:
            // threads with small working sets leave capacity to the rest
            // (utility-based allocation to first order), so the share
            // shrinks with the square root of the sharer count.
            let llc_core_share =
                (llc_total as f64 / (busy_cores as f64).sqrt()) as u64;

            // --- Per-core slot pressure for SMT combining (two passes:
            // solo perf first, then pressure-adjusted execution).
            let mut core_pressure = vec![0.0f64; cores];
            let mut perfs: Vec<Option<(PhasePerf, f64)>> = vec![None; threads.len()];
            for c in 0..cores {
                for s in 0..slots {
                    let ctx = s * cores + c;
                    let n_on_ctx = ctx_threads[ctx].len();
                    if n_on_ctx == 0 {
                        continue;
                    }
                    let sibling_busy = slots > 1
                        && (0..slots).any(|s2| s2 != s && !ctx_threads[s2 * cores + c].is_empty());
                    let time_share = 1.0 / n_on_ctx as f64;
                    for &ti in &ctx_threads[ctx] {
                        let t = &threads[ti];
                        let phase_idx = t.phase_index();
                        let phase = &t.thread.trace.phases()[phase_idx];
                        // Displacement: services displace the application
                        // when they share its context (full effect) or its
                        // core via SMT (partial).
                        let disp = if t.thread.role == ThreadRole::Application {
                            let d = displacement_of(workload);
                            let service_same_ctx = ctx_threads[ctx].iter().any(|&oj| {
                                threads[oj].thread.role.is_service() && oj != ti
                            });
                            let service_sibling = slots > 1
                                && (0..slots).any(|s2| {
                                    s2 != s
                                        && ctx_threads[s2 * cores + c]
                                            .iter()
                                            .any(|&oj| threads[oj].thread.role.is_service())
                                });
                            if service_same_ctx {
                                d
                            } else if service_sibling {
                                1.0 + (d - 1.0) * 0.5
                            } else {
                                1.0
                            }
                        } else {
                            1.0
                        };
                        let cache_share = if sibling_busy {
                            spec.core.smt_cache_share
                        } else {
                            1.0
                        };
                        let threads_on_core: usize = (0..slots)
                            .map(|s2| ctx_threads[s2 * cores + c].len())
                            .sum();
                        let llc_eff = (llc_core_share as f64
                            / (threads_on_core as f64).sqrt())
                            .max(1024.0) as u64;
                        let env = Environment {
                            clock: f_eff,
                            private_cache_share: cache_share,
                            llc_bytes_eff: llc_eff,
                            displacement: disp,
                            bw_dilation,
                        };
                        let key = PerfKey {
                            thread: ti,
                            phase: phase_idx,
                            clock_bits: f_eff.value().to_bits(),
                            share_bits: cache_share.to_bits(),
                            llc_eff,
                            disp_bits: disp.to_bits(),
                            bw_bucket: (bw_dilation * 16.0) as u32,
                        };
                        let perf = *perf_memo.entry(key).or_insert_with(|| {
                            phase_performance(spec, phase, &env, self.estimator)
                        });
                        core_pressure[c] +=
                            perf.busy_fraction() * perf.issue_demand * time_share;
                        perfs[ti] = Some((perf, time_share));
                    }
                }
            }

            // --- Execute the slice.
            let mut slice_dram_bytes = 0.0f64;
            let mut dyn_energy = Joules::ZERO;
            let mut all_finished_now = true;
            let mut slice_fraction = 0.0f64;
            for c in 0..cores {
                let contexts_busy_on_core = (0..slots)
                    .filter(|&s| !ctx_threads[s * cores + c].is_empty())
                    .count();
                let corun = contexts_busy_on_core > 1;
                for s in 0..slots {
                    let ctx = s * cores + c;
                    for &ti in &ctx_threads[ctx] {
                        let (perf, time_share) = perfs[ti].expect("perf computed above");
                        let cpi = if corun {
                            perf.cpi_corun(core_pressure[c], spec.core.smt_overhead)
                        } else {
                            perf.cpi()
                        };
                        let ipc = threads[ti].jitter / cpi;
                        let potential =
                            (ipc * f_eff.value() * slice_s * time_share).max(1.0);
                        let remaining = threads[ti].remaining() as f64;
                        let executed = remaining.min(potential);
                        let used_fraction = executed / potential;
                        slice_fraction = slice_fraction.max(used_fraction.min(1.0));

                        let t = &mut threads[ti];
                        t.done += executed as u64;
                        if t.remaining() == 0 {
                            t.finished = true;
                        } else {
                            all_finished_now = false;
                        }
                        total_instructions += executed as u64;

                        // --- Power accounting for this thread's work.
                        let phase = &t.thread.trace.phases()[t.phase_index().min(
                            t.thread.trace.phases().len() - 1,
                        )];
                        let e = perf.events;
                        let n = executed;
                        let core_counters = ActivityCounters {
                            instructions: n as u64,
                            int_ops: (n * e.int_ops) as u64,
                            fp_ops: (n * e.fp_ops) as u64,
                            l1_accesses: (n * e.l1_accesses) as u64,
                            l2_accesses: (n * e.l2_accesses) as u64,
                            branches: (n * e.branches) as u64,
                            branch_flushes: (n * e.branch_flushes) as u64,
                            tlb_misses: (n * e.tlb_misses) as u64,
                            ..ActivityCounters::default()
                        };
                        let llc_counters = ActivityCounters {
                            llc_accesses: (n * e.llc_accesses) as u64,
                            ..ActivityCounters::default()
                        };
                        let dram_counters = ActivityCounters {
                            dram_accesses: (n * e.dram_accesses) as u64,
                            ..ActivityCounters::default()
                        };
                        slice_dram_bytes += n * e.dram_accesses * 64.0;
                        let activity = phase.activity();
                        let model = self.chip_energy_model(spec);
                        let e_core = model.dynamic_energy_with_activity(
                            &core_counters,
                            node,
                            v_eff,
                            activity,
                        );
                        let e_llc = model.dynamic_energy_with_activity(
                            &llc_counters,
                            node,
                            v_eff,
                            activity,
                        );
                        let e_dram = model.dynamic_energy_with_activity(
                            &dram_counters,
                            node,
                            v_eff,
                            activity,
                        );
                        meters.add(Structure::Core(c), e_core);
                        meters.add(Structure::Llc, e_llc);
                        meters.add(Structure::MemoryInterface, e_dram);
                        dyn_energy += e_core + e_llc + e_dram;
                    }
                }
            }

            // Clock-tree energy for each busy core.
            let model = self.chip_energy_model(spec);
            for (c, &busy) in core_busy.iter().enumerate() {
                if busy {
                    let clk = ActivityCounters {
                        active_cycles: (f_eff.value() * slice_s) as u64,
                        ..ActivityCounters::default()
                    };
                    let e = model.dynamic_energy_with_activity(&clk, node, v_eff, 1.0);
                    meters.add(Structure::Core(c), e);
                    dyn_energy += e;
                }
            }

            // Static power.
            let idle_cores = cores - busy_cores.min(cores);
            let disabled = spec.cores - cores;
            let llc_mb = llc_total as f64 / (1024.0 * 1024.0);
            let (p_core, p_llc, p_uncore) = model.static_power_parts(
                &spec.power.statics,
                node,
                v_eff,
                busy_cores.min(cores),
                idle_cores,
                disabled,
                llc_mb,
            );
            let static_power = p_core + p_llc + p_uncore;
            // Attribute static energy to meters (cores share equally).
            meters.add(Structure::Llc, p_llc * slice);
            meters.add(Structure::Uncore, p_uncore * slice);
            for c in 0..cores {
                meters.add(Structure::Core(c), (p_core / cores as f64) * slice);
            }

            let slice_power = dyn_energy / slice + static_power;
            waveform.push(slice_power);
            prev_power = slice_power;

            // Bandwidth feedback for the next slice.
            let demand_gbs = slice_dram_bytes / slice_s / 1e9;
            bw_dilation = (demand_gbs / spec.mem.peak_bw_gbs).max(1.0);

            elapsed_slices += 1;
            if all_finished_now {
                final_fraction = slice_fraction.clamp(1e-3, 1.0);
            }
            let _ = running_threads;
        }

        let full = elapsed_slices.saturating_sub(1) as f64;
        let time = Seconds::new((full + final_fraction) * slice_s);
        RunResult {
            time,
            waveform,
            meters,
            instructions: total_instructions,
        }
    }

    /// The energy model specialized to one chip's event table.
    fn chip_energy_model(&self, spec: &crate::catalog::ProcessorSpec) -> EnergyModel {
        EnergyModel::new(spec.power.events, *self.energy_model.nodes())
    }

    /// Convenience: the supply voltage a config runs at (without Turbo).
    #[must_use]
    pub fn voltage_of(config: &ChipConfig) -> Volts {
        config.voltage()
    }

    /// Convenience: run and return `(time, average power)`.
    #[must_use]
    pub fn measure(&self, config: &ChipConfig, workload: &Workload, seed: u64) -> (Seconds, Watts) {
        let r = self.run(config, workload, seed);
        (r.time, r.average_power())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::ProcessorId;
    use lhr_workloads::by_name;

    fn sim() -> ChipSimulator {
        ChipSimulator::new().with_target_slices(60)
    }

    fn stock(id: ProcessorId) -> ChipConfig {
        ChipConfig::stock(id.spec())
    }

    /// A scaled-down workload clone for fast tests.
    fn small(name: &str) -> Workload {
        by_name(name).expect("benchmark exists").clone()
    }

    #[test]
    fn run_is_deterministic() {
        let w = small("jess");
        let cfg = stock(ProcessorId::Core2DuoE6600);
        let s = sim();
        let a = s.run(&cfg, &w, 7);
        let b = s.run(&cfg, &w, 7);
        assert_eq!(a.time, b.time);
        assert_eq!(a.waveform, b.waveform);
        assert_eq!(a.instructions, b.instructions);
    }

    #[test]
    fn different_seeds_jitter_slightly() {
        let w = small("jess");
        let cfg = stock(ProcessorId::Core2DuoE6600);
        let s = sim();
        let a = s.run(&cfg, &w, 1);
        let b = s.run(&cfg, &w, 2);
        let rel = (a.time.value() - b.time.value()).abs() / a.time.value();
        assert!(rel > 0.0, "seeds must perturb Java runs");
        assert!(rel < 0.2, "jitter should be small, got {rel}");
    }

    #[test]
    fn power_is_positive_and_below_tdp_scale() {
        for id in ProcessorId::ALL {
            let w = small("mpegaudio");
            let cfg = stock(id);
            let r = sim().run(&cfg, &w, 3);
            let p = r.average_power().value();
            assert!(p > 0.1, "{id:?} power {p}");
            assert!(
                p < id.spec().power.tdp_w * 1.05,
                "{id:?} power {p} exceeds TDP {}",
                id.spec().power.tdp_w
            );
        }
    }

    #[test]
    fn faster_chip_finishes_sooner() {
        let w = small("jess");
        let s = sim();
        let atom = s.run(&stock(ProcessorId::Atom230), &w, 3);
        let i7 = s.run(&stock(ProcessorId::CoreI7_920), &w, 3);
        assert!(
            i7.time.value() < atom.time.value() / 2.0,
            "i7 {} vs Atom {}",
            i7.time.value(),
            atom.time.value()
        );
    }

    #[test]
    fn scalable_workload_speeds_up_with_cores() {
        let w = small("mtrt"); // short dual-threaded benchmark
        let spec = ProcessorId::CoreI7_920.spec();
        let s = sim();
        let one = ChipConfig::stock(spec)
            .with_cores(1).unwrap()
            .with_smt(false).unwrap()
            .with_turbo(false).unwrap();
        let two = ChipConfig::stock(spec)
            .with_cores(2).unwrap()
            .with_smt(false).unwrap()
            .with_turbo(false).unwrap();
        let t1 = s.run(&one, &w, 3).time.value();
        let t2 = s.run(&two, &w, 3).time.value();
        assert!(t2 < t1 * 0.8, "2C {t2} vs 1C {t1}");
    }

    #[test]
    fn more_cores_draw_more_power_for_scalable_work() {
        let w = small("sunflow");
        let spec = ProcessorId::CoreI7_920.spec();
        let s = sim();
        let one = ChipConfig::stock(spec)
            .with_cores(1).unwrap().with_smt(false).unwrap().with_turbo(false).unwrap();
        let four = ChipConfig::stock(spec)
            .with_cores(4).unwrap().with_smt(false).unwrap().with_turbo(false).unwrap();
        let p1 = s.run(&one, &w, 3).average_power().value();
        let p4 = s.run(&four, &w, 3).average_power().value();
        assert!(p4 > p1 * 1.3, "4C {p4} vs 1C {p1}");
    }

    #[test]
    fn single_threaded_java_gains_from_second_core() {
        let w = small("db");
        let spec = ProcessorId::CoreI7_920.spec();
        let s = sim();
        let one = ChipConfig::stock(spec)
            .with_cores(1).unwrap().with_smt(false).unwrap().with_turbo(false).unwrap();
        let two = ChipConfig::stock(spec)
            .with_cores(2).unwrap().with_smt(false).unwrap().with_turbo(false).unwrap();
        let t1 = s.run(&one, &w, 3).time.value();
        let t2 = s.run(&two, &w, 3).time.value();
        assert!(t2 < t1 * 0.95, "db 2C {t2} vs 1C {t1}: VM services must offload");
    }

    #[test]
    fn single_threaded_native_gains_nothing_from_second_core() {
        let w = small("hmmer");
        let spec = ProcessorId::CoreI7_920.spec();
        let s = sim();
        let one = ChipConfig::stock(spec)
            .with_cores(1).unwrap().with_smt(false).unwrap().with_turbo(false).unwrap();
        let two = ChipConfig::stock(spec)
            .with_cores(2).unwrap().with_smt(false).unwrap().with_turbo(false).unwrap();
        let t1 = s.run(&one, &w, 3).time.value();
        let t2 = s.run(&two, &w, 3).time.value();
        let rel = (t1 - t2).abs() / t1;
        assert!(rel < 0.03, "native ST must be core-count invariant, got {rel}");
    }

    #[test]
    fn turbo_raises_power() {
        let w = small("compress");
        let spec = ProcessorId::CoreI7_920.spec();
        let s = sim();
        let on = ChipConfig::stock(spec);
        let off = ChipConfig::stock(spec).with_turbo(false).unwrap();
        let r_on = s.run(&on, &w, 3);
        let r_off = s.run(&off, &w, 3);
        assert!(r_on.average_power().value() > r_off.average_power().value());
        assert!(r_on.time.value() < r_off.time.value());
    }

    #[test]
    fn meters_account_for_total_energy() {
        let w = small("jess");
        let cfg = stock(ProcessorId::Core2DuoE6600);
        let r = sim().run(&cfg, &w, 3);
        let metered = r.meters.total_energy().value();
        let waveform_e = r.waveform.energy().value();
        let rel = (metered - waveform_e).abs() / waveform_e;
        assert!(rel < 0.02, "meters {metered} vs waveform {waveform_e}");
    }

    #[test]
    fn waveform_shape_matches_run() {
        let w = small("jess");
        let cfg = stock(ProcessorId::Core2DuoE6600);
        let r = sim().run(&cfg, &w, 3);
        assert!(r.waveform.len() >= 8);
        assert!(r.waveform.duration().value() >= r.time.value() * 0.95);
        assert!(r.instructions > 0);
    }

    #[test]
    fn downclocking_stretches_time_and_cuts_power() {
        let w = small("compress");
        let spec = ProcessorId::Core2DuoE7600.spec();
        let s = sim();
        let fast = ChipConfig::stock(spec);
        let slow = ChipConfig::stock(spec).with_clock(spec.min_clock).unwrap();
        let rf = s.run(&fast, &w, 3);
        let rs = s.run(&slow, &w, 3);
        assert!(rs.time.value() > rf.time.value() * 1.4);
        assert!(rs.average_power().value() < rf.average_power().value());
    }
}
