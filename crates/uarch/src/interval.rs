//! The interval performance model: one workload phase on one hardware
//! context, decomposed into issue cycles and stall cycles.
//!
//! Interval analysis (Eyerman/Eeckhout-style) models a thread's CPI as a
//! base issue component -- limited by the narrower of machine width and
//! program ILP -- plus miss-event penalties: upper-level cache hits below
//! L1, DRAM accesses (divided by exploitable memory-level parallelism),
//! TLB walks, and branch-mispredict pipeline refills. Out-of-order cores
//! hide a machine-dependent fraction of the mid-level stalls; in-order
//! cores (Bonnell) expose nearly all of them. DRAM latency is constant in
//! *nanoseconds*, so its cycle cost scales with the clock -- the mechanism
//! behind every workload-dependent clock-scaling result in the paper.

use lhr_trace::Phase;
use lhr_units::Hertz;

use crate::cache::{MissRateEstimator, Tlb};
use crate::catalog::ProcessorSpec;

/// The execution environment a phase sees on its context for one interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Environment {
    /// The core clock.
    pub clock: Hertz,
    /// Effective fraction of private (L1/L2) capacity available
    /// (1.0 solo; the spec's `smt_cache_share` when an SMT sibling co-runs).
    pub private_cache_share: f64,
    /// Effective shared-LLC capacity available to this thread, bytes.
    pub llc_bytes_eff: u64,
    /// Multiplier (>= 1) on miss rates from VM-service displacement.
    pub displacement: f64,
    /// Multiplier (>= 1) on DRAM latency from bandwidth saturation.
    pub bw_dilation: f64,
}

impl Environment {
    /// A solo environment: the whole machine to itself.
    #[must_use]
    pub fn solo(spec: &ProcessorSpec, clock: Hertz) -> Self {
        Self {
            clock,
            private_cache_share: 1.0,
            llc_bytes_eff: spec.mem.last_level_bytes(),
            displacement: 1.0,
            bw_dilation: 1.0,
        }
    }
}

/// Per-instruction event rates, aligned with the power model's counters.
#[derive(Debug, Default, Clone, Copy, PartialEq)]
pub struct EventRates {
    /// Integer ops per instruction.
    pub int_ops: f64,
    /// FP ops per instruction.
    pub fp_ops: f64,
    /// L1 data accesses per instruction (loads + stores).
    pub l1_accesses: f64,
    /// Private-L2 accesses per instruction (zero on 2-level chips).
    pub l2_accesses: f64,
    /// Shared-LLC accesses per instruction.
    pub llc_accesses: f64,
    /// DRAM accesses per instruction.
    pub dram_accesses: f64,
    /// Branches per instruction.
    pub branches: f64,
    /// Branch mispredicts per instruction.
    pub branch_flushes: f64,
    /// TLB misses per instruction.
    pub tlb_misses: f64,
}

/// The decomposed performance of a phase in an environment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PhasePerf {
    /// Issue-bound CPI component.
    pub base_cpi: f64,
    /// Exposed stall CPI component.
    pub stall_cpi: f64,
    /// Fraction of issue slots this thread wants in its busy cycles.
    pub issue_demand: f64,
    /// Per-instruction event rates.
    pub events: EventRates,
}

impl PhasePerf {
    /// Total solo CPI.
    #[must_use]
    pub fn cpi(&self) -> f64 {
        self.base_cpi + self.stall_cpi
    }

    /// Solo instructions per cycle.
    #[must_use]
    pub fn ipc(&self) -> f64 {
        1.0 / self.cpi()
    }

    /// Fraction of cycles spent issuing (not stalled).
    #[must_use]
    pub fn busy_fraction(&self) -> f64 {
        self.base_cpi / self.cpi()
    }

    /// CPI when co-running under SMT with the given combined slot pressure
    /// (`>= 1` dilates the issue component) and structural overhead.
    #[must_use]
    pub fn cpi_corun(&self, slot_pressure: f64, smt_overhead: f64) -> f64 {
        (self.base_cpi * slot_pressure.max(1.0) + self.stall_cpi) * smt_overhead
    }
}

/// Computes the interval model for one phase in one environment.
///
/// # Panics
///
/// Panics if the environment is degenerate (non-positive clock or shares).
#[must_use]
pub fn phase_performance(
    spec: &ProcessorSpec,
    phase: &Phase,
    env: &Environment,
    estimator: &MissRateEstimator,
) -> PhasePerf {
    assert!(env.clock.value() > 0.0, "clock must be positive");
    assert!(
        env.private_cache_share > 0.0 && env.private_cache_share <= 1.0,
        "cache share out of range"
    );
    assert!(env.llc_bytes_eff > 0, "LLC share must be positive");
    assert!(env.displacement >= 1.0 && env.bw_dilation >= 1.0);

    let core = &spec.core;
    let mem_sys = &spec.mem;
    let mix = phase.mix();
    let locality = phase.locality();

    // --- Issue component ----------------------------------------------.
    let effective_ilp = phase.ilp().min(core.issue_width);
    let base_cpi = 1.0 / effective_ilp;
    let issue_demand = effective_ilp / core.issue_width;

    // --- Cache miss chain (LRU inclusion lets levels be independent) ---.
    let mem_per_inst = mix.memory_fraction();
    let clamp = |m: f64| (m * env.displacement).clamp(0.0, 1.0);

    let l1_bytes = ((mem_sys.l1d.size_bytes as f64) * env.private_cache_share) as u64;
    let m1 = clamp(estimator.global_miss_rate(locality, l1_bytes.max(1024)));
    let (m2, has_l2) = match mem_sys.l2 {
        Some(l2) => {
            let l2_bytes = ((l2.size_bytes as f64) * env.private_cache_share) as u64;
            (
                clamp(estimator.global_miss_rate(locality, l2_bytes.max(1024))).min(m1),
                true,
            )
        }
        None => (m1, false),
    };
    let m_last = match mem_sys.llc {
        Some(_) => clamp(estimator.global_miss_rate(locality, env.llc_bytes_eff)).min(m2),
        None => m2,
    };

    // Hit distribution across the hierarchy.
    let next_hits = if has_l2 { m1 - m2 } else { 0.0 };
    let llc_hits = m2 - m_last;
    let dram = m_last;

    // --- Stall components ----------------------------------------------.
    let hide = if core.out_of_order { core.ooo_overlap } else { 0.0 };
    let s_l2 = mem_per_inst * next_hits * mem_sys.l2_hit_cycles * (1.0 - hide);
    let s_llc = mem_per_inst * llc_hits * mem_sys.llc_hit_cycles * (1.0 - hide);

    let dram_cycles =
        mem_sys.mem_latency_ns * 1e-9 * env.clock.value() * env.bw_dilation;
    let mlp = phase.mlp().min(core.mlp_cap).max(1.0);
    let s_dram = mem_per_inst * dram * dram_cycles / mlp;

    let tlb = Tlb::new(mem_sys.dtlb_entries, 4096);
    let tlb_miss = (tlb.miss_rate(locality) * env.displacement).clamp(0.0, 1.0);
    let s_tlb = mem_per_inst * tlb_miss * mem_sys.tlb_miss_cycles;

    let mispredict = (phase.branch_mispredict_rate() * core.predictor_factor).clamp(0.0, 1.0);
    let s_branch = mix.branch_fraction() * mispredict * core.pipeline_depth * 0.7;

    let stall_cpi = s_l2 + s_llc + s_dram + s_tlb + s_branch;

    let events = EventRates {
        int_ops: mix.fraction(lhr_trace::InstructionClass::IntAlu),
        fp_ops: mix.fp_fraction(),
        l1_accesses: mem_per_inst,
        l2_accesses: if has_l2 { mem_per_inst * m1 } else { 0.0 },
        llc_accesses: mem_per_inst * m2,
        dram_accesses: mem_per_inst * dram,
        branches: mix.branch_fraction(),
        branch_flushes: mix.branch_fraction() * mispredict,
        tlb_misses: mem_per_inst * tlb_miss,
    };

    PhasePerf {
        base_cpi,
        stall_cpi,
        issue_demand,
        events,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::ProcessorId;
    use lhr_trace::{InstructionMix, LocalityProfile};

    fn phase(ilp: f64, loc: LocalityProfile) -> Phase {
        Phase::new("t", 1.0, InstructionMix::typical_int(), ilp, loc)
            .with_branch_mispredict_rate(0.05)
            .with_mlp(3.0)
    }

    fn est() -> MissRateEstimator {
        MissRateEstimator::new()
    }

    #[test]
    fn cache_resident_code_runs_near_issue_limit() {
        let spec = ProcessorId::Core2DuoE6600.spec();
        let p = phase(2.5, LocalityProfile::cache_resident(16 << 10));
        let perf = phase_performance(spec, &p, &Environment::solo(spec, spec.base_clock), &est());
        // Base CPI = 1/2.5 = 0.4; stalls should be small (branch only).
        assert!(perf.base_cpi == 0.4);
        assert!(perf.ipc() > 1.5, "ipc = {}", perf.ipc());
        assert!(perf.events.dram_accesses < 0.01);
    }

    #[test]
    fn memory_bound_code_is_dominated_by_dram_stalls() {
        let spec = ProcessorId::Core2DuoE6600.spec();
        let p = phase(2.0, LocalityProfile::pointer_chasing(512 << 20));
        let perf = phase_performance(spec, &p, &Environment::solo(spec, spec.base_clock), &est());
        assert!(perf.ipc() < 0.5, "ipc = {}", perf.ipc());
        assert!(perf.events.dram_accesses > 0.2);
        assert!(perf.busy_fraction() < 0.3);
    }

    #[test]
    fn dram_stalls_scale_with_clock() {
        // Memory-bound IPC falls as the clock rises (same ns latency costs
        // more cycles); cache-resident IPC is clock-invariant.
        let spec = ProcessorId::CoreI7_920.spec();
        let memory = phase(2.0, LocalityProfile::pointer_chasing(512 << 20));
        let compute = phase(2.5, LocalityProfile::cache_resident(16 << 10));
        let e = est();
        let lo = Environment::solo(spec, spec.min_clock);
        let hi = Environment::solo(spec, spec.base_clock);
        let mem_lo = phase_performance(spec, &memory, &lo, &e).ipc();
        let mem_hi = phase_performance(spec, &memory, &hi, &e).ipc();
        let cpu_lo = phase_performance(spec, &compute, &lo, &e).ipc();
        let cpu_hi = phase_performance(spec, &compute, &hi, &e).ipc();
        assert!(mem_hi < mem_lo, "{mem_hi} vs {mem_lo}");
        assert!((cpu_hi - cpu_lo).abs() < 1e-9);
    }

    #[test]
    fn in_order_exposes_more_stalls_than_out_of_order() {
        let atom = ProcessorId::Atom230.spec();
        let i7 = ProcessorId::CoreI7_920.spec();
        let p = phase(2.0, LocalityProfile::hierarchical(
            16 << 10, 256 << 10, 8 << 20, 0.5, 0.3,
        ));
        let e = est();
        let perf_atom =
            phase_performance(atom, &p, &Environment::solo(atom, atom.base_clock), &e);
        let perf_i7 = phase_performance(i7, &p, &Environment::solo(i7, i7.base_clock), &e);
        // Atom: narrower issue AND exposed stalls.
        assert!(perf_atom.cpi() > perf_i7.cpi() * 1.5);
        assert!(perf_atom.busy_fraction() < perf_i7.busy_fraction());
    }

    #[test]
    fn displacement_inflates_misses_and_stalls() {
        let spec = ProcessorId::CoreI7_920.spec();
        let p = phase(1.6, LocalityProfile::hierarchical(
            16 << 10, 2 << 20, 64 << 20, 0.45, 0.25,
        ));
        let e = est();
        let clean = Environment::solo(spec, spec.base_clock);
        let displaced = Environment {
            displacement: 1.8,
            ..clean
        };
        let perf_clean = phase_performance(spec, &p, &clean, &e);
        let perf_disp = phase_performance(spec, &p, &displaced, &e);
        assert!(perf_disp.cpi() > perf_clean.cpi() * 1.05);
        assert!(perf_disp.events.tlb_misses > perf_clean.events.tlb_misses);
    }

    #[test]
    fn llc_share_matters_for_llc_sized_working_sets() {
        let spec = ProcessorId::CoreI7_920.spec();
        // Working set ~ LLC size: halving the share hurts.
        let p = phase(2.0, LocalityProfile::hierarchical(
            0, 0, 6 << 20, 0.0, 0.0,
        ).with_pointer_chase(1.0));
        let e = est();
        let full = Environment::solo(spec, spec.base_clock);
        let half = Environment {
            llc_bytes_eff: spec.mem.last_level_bytes() / 4,
            ..full
        };
        let perf_full = phase_performance(spec, &p, &full, &e);
        let perf_half = phase_performance(spec, &p, &half, &e);
        assert!(
            perf_half.events.dram_accesses > perf_full.events.dram_accesses,
            "{} vs {}",
            perf_half.events.dram_accesses,
            perf_full.events.dram_accesses
        );
    }

    #[test]
    fn bandwidth_dilation_slows_memory_bound_threads() {
        let spec = ProcessorId::Atom230.spec();
        let p = phase(2.0, LocalityProfile::streaming(256 << 20));
        let e = est();
        let free = Environment::solo(spec, spec.base_clock);
        let saturated = Environment {
            bw_dilation: 2.0,
            ..free
        };
        let f = phase_performance(spec, &p, &free, &e);
        let s = phase_performance(spec, &p, &saturated, &e);
        assert!(s.cpi() > f.cpi() * 1.3);
    }

    #[test]
    fn corun_dilation_and_overhead() {
        let spec = ProcessorId::CoreI7_920.spec();
        let p = phase(2.0, LocalityProfile::cache_resident(8 << 10));
        let perf =
            phase_performance(spec, &p, &Environment::solo(spec, spec.base_clock), &est());
        let solo = perf.cpi();
        let corun = perf.cpi_corun(1.5, 1.02);
        assert!(corun > solo);
        // Pressure below 1 never speeds a thread up.
        assert!(perf.cpi_corun(0.5, 1.0) >= solo - 1e-12);
    }

    #[test]
    fn branchy_code_pays_pipeline_depth() {
        let p4 = ProcessorId::Pentium4_130.spec();
        let c2d = ProcessorId::Core2DuoE6600.spec();
        let p = phase(2.0, LocalityProfile::cache_resident(8 << 10))
            .with_branch_mispredict_rate(0.10);
        let e = est();
        let perf_p4 = phase_performance(p4, &p, &Environment::solo(p4, p4.base_clock), &e);
        let perf_c2d =
            phase_performance(c2d, &p, &Environment::solo(c2d, c2d.base_clock), &e);
        // 31-stage NetBurst pays far more per mispredict than 14-stage Core.
        assert!(perf_p4.stall_cpi > perf_c2d.stall_cpi * 1.8);
    }
}
