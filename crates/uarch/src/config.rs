//! Processor configuration: the paper's BIOS-level controlled experiments.
//!
//! Section 2.8: "We evaluate the eight stock processors and configure them
//! for a total of 45 processor configurations ... We selectively down-clock
//! the processors, disable cores, disable simultaneous multithreading (SMT),
//! and disable Turbo Boost." [`ChipConfig`] is the typed equivalent of those
//! BIOS switches, validated against each chip's capabilities.

use std::error::Error;
use std::fmt;

use lhr_units::{Hertz, Volts};

use crate::catalog::ProcessorSpec;

/// Error producing an invalid [`ChipConfig`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ConfigError {
    /// Asked for more cores than the chip has (or zero).
    BadCoreCount {
        /// Cores requested.
        requested: usize,
        /// Cores available.
        available: usize,
    },
    /// Asked for SMT on a chip without it.
    SmtUnavailable,
    /// Clock outside the chip's supported DVFS range.
    ClockOutOfRange {
        /// Requested clock in Hz.
        requested_hz: f64,
        /// Supported minimum in Hz.
        min_hz: f64,
        /// Supported maximum in Hz.
        max_hz: f64,
    },
    /// Turbo requested on a chip without it, or below the top clock bin
    /// (Turbo only engages at the highest clock setting).
    TurboUnavailable,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::BadCoreCount {
                requested,
                available,
            } => write!(f, "requested {requested} cores, chip has {available}"),
            ConfigError::SmtUnavailable => write!(f, "chip does not support SMT"),
            ConfigError::ClockOutOfRange {
                requested_hz,
                min_hz,
                max_hz,
            } => write!(
                f,
                "clock {requested_hz} Hz outside supported range {min_hz}..{max_hz} Hz"
            ),
            ConfigError::TurboUnavailable => {
                write!(f, "Turbo Boost unavailable (no turbo, or clock below top bin)")
            }
        }
    }
}

impl Error for ConfigError {}

/// A validated processor configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct ChipConfig {
    spec: &'static ProcessorSpec,
    active_cores: usize,
    smt: bool,
    clock: Hertz,
    turbo: bool,
}

impl ChipConfig {
    /// The chip as shipped: all cores, SMT if present, stock clock, Turbo
    /// if present.
    #[must_use]
    pub fn stock(spec: &'static ProcessorSpec) -> Self {
        Self {
            spec,
            active_cores: spec.cores,
            smt: spec.smt_ways > 1,
            clock: spec.base_clock,
            turbo: spec.power.turbo.is_some(),
        }
    }

    /// Limits the number of enabled cores.
    ///
    /// # Errors
    ///
    /// [`ConfigError::BadCoreCount`] if `n` is zero or exceeds the chip.
    pub fn with_cores(mut self, n: usize) -> Result<Self, ConfigError> {
        if n == 0 || n > self.spec.cores {
            return Err(ConfigError::BadCoreCount {
                requested: n,
                available: self.spec.cores,
            });
        }
        self.active_cores = n;
        Ok(self)
    }

    /// Enables or disables SMT.
    ///
    /// # Errors
    ///
    /// [`ConfigError::SmtUnavailable`] when enabling SMT on a non-SMT chip.
    pub fn with_smt(mut self, smt: bool) -> Result<Self, ConfigError> {
        if smt && self.spec.smt_ways < 2 {
            return Err(ConfigError::SmtUnavailable);
        }
        self.smt = smt;
        Ok(self)
    }

    /// Sets the clock. Turbo is implicitly disabled when the clock drops
    /// below the top bin (matching real BIOS semantics).
    ///
    /// # Errors
    ///
    /// [`ConfigError::ClockOutOfRange`] outside `[min_clock, base_clock]`.
    pub fn with_clock(mut self, clock: Hertz) -> Result<Self, ConfigError> {
        let lo = self.spec.min_clock.value() - 1.0;
        let hi = self.spec.base_clock.value() + 1.0;
        if clock.value() < lo || clock.value() > hi {
            return Err(ConfigError::ClockOutOfRange {
                requested_hz: clock.value(),
                min_hz: self.spec.min_clock.value(),
                max_hz: self.spec.base_clock.value(),
            });
        }
        self.clock = clock;
        if clock.value() + 1.0 < self.spec.base_clock.value() {
            self.turbo = false;
        }
        Ok(self)
    }

    /// Enables or disables Turbo Boost.
    ///
    /// # Errors
    ///
    /// [`ConfigError::TurboUnavailable`] when enabling Turbo on a chip
    /// without it or while down-clocked.
    pub fn with_turbo(mut self, turbo: bool) -> Result<Self, ConfigError> {
        if turbo
            && (self.spec.power.turbo.is_none()
                || self.clock.value() + 1.0 < self.spec.base_clock.value())
        {
            return Err(ConfigError::TurboUnavailable);
        }
        self.turbo = turbo;
        Ok(self)
    }

    /// The underlying processor.
    #[must_use]
    pub fn spec(&self) -> &'static ProcessorSpec {
        self.spec
    }

    /// Enabled cores.
    #[must_use]
    pub fn active_cores(&self) -> usize {
        self.active_cores
    }

    /// Whether SMT is enabled.
    #[must_use]
    pub fn smt_enabled(&self) -> bool {
        self.smt
    }

    /// SMT slots per enabled core (1 or the chip's SMT width).
    #[must_use]
    pub fn threads_per_core(&self) -> usize {
        if self.smt {
            self.spec.smt_ways
        } else {
            1
        }
    }

    /// Total hardware contexts exposed to software.
    #[must_use]
    pub fn contexts(&self) -> usize {
        self.active_cores * self.threads_per_core()
    }

    /// The configured clock.
    #[must_use]
    pub fn clock(&self) -> Hertz {
        self.clock
    }

    /// Whether Turbo Boost is enabled.
    #[must_use]
    pub fn turbo_enabled(&self) -> bool {
        self.turbo
    }

    /// The non-boosted supply voltage at the configured clock.
    #[must_use]
    pub fn voltage(&self) -> Volts {
        self.spec.voltage_at(self.clock)
    }

    /// The Table 5-style label, e.g. `i7 (45) 4C2T@2.7GHz No TB`.
    #[must_use]
    pub fn label(&self) -> String {
        let t = if self.smt { self.spec.smt_ways } else { 1 };
        let mut s = format!(
            "{} {}C{}T@{:.1}GHz",
            self.spec.short,
            self.active_cores,
            t,
            self.clock.as_ghz()
        );
        if self.spec.power.turbo.is_some()
            && !self.turbo
            && (self.clock.value() + 1.0 >= self.spec.base_clock.value())
        {
            s.push_str(" No TB");
        }
        s
    }
}

impl fmt::Display for ChipConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::ProcessorId;

    #[test]
    fn stock_matches_table3() {
        let i7 = ChipConfig::stock(ProcessorId::CoreI7_920.spec());
        assert_eq!(i7.active_cores(), 4);
        assert!(i7.smt_enabled());
        assert!(i7.turbo_enabled());
        assert_eq!(i7.contexts(), 8);
        assert_eq!(i7.label(), "i7 (45) 4C2T@2.7GHz");

        let c2d = ChipConfig::stock(ProcessorId::Core2DuoE6600.spec());
        assert!(!c2d.smt_enabled());
        assert!(!c2d.turbo_enabled());
        assert_eq!(c2d.contexts(), 2);
    }

    #[test]
    fn disabling_features() {
        let cfg = ChipConfig::stock(ProcessorId::CoreI7_920.spec())
            .with_cores(1)
            .unwrap()
            .with_smt(false)
            .unwrap()
            .with_turbo(false)
            .unwrap();
        assert_eq!(cfg.contexts(), 1);
        assert_eq!(cfg.label(), "i7 (45) 1C1T@2.7GHz No TB");
    }

    #[test]
    fn downclocking_disables_turbo() {
        let cfg = ChipConfig::stock(ProcessorId::CoreI5_670.spec())
            .with_clock(Hertz::from_ghz(1.2))
            .unwrap();
        assert!(!cfg.turbo_enabled());
        // And turbo cannot be re-enabled while down-clocked.
        assert_eq!(cfg.with_turbo(true), Err(ConfigError::TurboUnavailable));
    }

    #[test]
    fn validation_errors() {
        let spec = ProcessorId::Core2DuoE6600.spec();
        let stock = ChipConfig::stock(spec);
        assert!(matches!(
            stock.clone().with_cores(3),
            Err(ConfigError::BadCoreCount { .. })
        ));
        assert!(matches!(
            stock.clone().with_cores(0),
            Err(ConfigError::BadCoreCount { .. })
        ));
        assert_eq!(stock.clone().with_smt(true), Err(ConfigError::SmtUnavailable));
        assert!(matches!(
            stock.clone().with_clock(Hertz::from_ghz(9.0)),
            Err(ConfigError::ClockOutOfRange { .. })
        ));
        assert_eq!(stock.with_turbo(true), Err(ConfigError::TurboUnavailable));
    }

    #[test]
    fn voltage_follows_clock() {
        let spec = ProcessorId::CoreI7_920.spec();
        let hi = ChipConfig::stock(spec);
        let lo = hi.clone().with_clock(spec.min_clock).unwrap();
        assert!(hi.voltage().value() > lo.voltage().value());
    }

    #[test]
    fn error_messages() {
        let e = ConfigError::BadCoreCount {
            requested: 9,
            available: 4,
        };
        assert!(format!("{e}").contains("9"));
        assert!(format!("{}", ConfigError::SmtUnavailable).contains("SMT"));
    }

    #[test]
    fn display_is_label() {
        let cfg = ChipConfig::stock(ProcessorId::Atom230.spec());
        assert_eq!(format!("{cfg}"), cfg.label());
        assert_eq!(cfg.label(), "Atom (45) 1C2T@1.7GHz");
    }
}
