//! The eight experimental processors of Table 3, with model parameters.
//!
//! Table 3 of the paper gives each chip's market identity (sSpec, release,
//! price), topology (cores x SMT), last-level cache, clock, node, transistor
//! count, die area, VID range, TDP, and memory system. To those documented
//! facts this catalog adds the microarchitectural and electrical model
//! parameters the simulator needs: issue width, pipeline depth, ordering,
//! overlap capability, predictor quality, cache/TLB geometry, latencies and
//! bandwidth, per-event energies, static power, V(f) curve shape, and Turbo
//! stepping. Those parameters are set from the public microarchitecture
//! literature and then calibrated so the simulated Table 4 lands in the
//! measured ranges (see EXPERIMENTS.md).

use lhr_power::{EventEnergies, StaticPowerParams, TurboParams, VfCurve};
use lhr_units::{Hertz, TechNode, Volts};

use crate::cache::CacheGeometry;

/// The four microarchitecture families of the study.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Microarch {
    /// Pentium 4: very deep pipeline, trace cache, first commercial SMT.
    NetBurst,
    /// Core 2: wide in-flight OoO, shared L2, no SMT.
    Core,
    /// Atom: dual-issue in-order, low power, SMT.
    Bonnell,
    /// Core i7/i5: integrated memory controller, SMT, Turbo Boost.
    Nehalem,
}

impl std::fmt::Display for Microarch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Microarch::NetBurst => "NetBurst",
            Microarch::Core => "Core",
            Microarch::Bonnell => "Bonnell",
            Microarch::Nehalem => "Nehalem",
        })
    }
}

/// Identifies one of the eight studied processors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ProcessorId {
    /// Pentium 4 Northwood, 130nm (2003).
    Pentium4_130,
    /// Core 2 Duo E6600 Conroe, 65nm (2006).
    Core2DuoE6600,
    /// Core 2 Quad Q6600 Kentsfield, 65nm (2007).
    Core2QuadQ6600,
    /// Core i7-920 Bloomfield, 45nm (2008).
    CoreI7_920,
    /// Atom 230 Diamondville, 45nm (2008).
    Atom230,
    /// Core 2 Duo E7600 Wolfdale, 45nm (2009).
    Core2DuoE7600,
    /// Atom D510 Pineview, 45nm (2009).
    AtomD510,
    /// Core i5-670 Clarkdale, 32nm (2010).
    CoreI5_670,
}

impl ProcessorId {
    /// All eight processors, in Table 3 (release) order.
    pub const ALL: [ProcessorId; 8] = [
        ProcessorId::Pentium4_130,
        ProcessorId::Core2DuoE6600,
        ProcessorId::Core2QuadQ6600,
        ProcessorId::CoreI7_920,
        ProcessorId::Atom230,
        ProcessorId::Core2DuoE7600,
        ProcessorId::AtomD510,
        ProcessorId::CoreI5_670,
    ];

    /// The specification for this processor.
    #[must_use]
    pub fn spec(self) -> &'static ProcessorSpec {
        spec_of(self)
    }
}

/// Core pipeline model parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoreParams {
    /// Peak sustained issue width (abstract ops per cycle).
    pub issue_width: f64,
    /// Pipeline depth in stages (sets the mispredict refill penalty).
    pub pipeline_depth: f64,
    /// Out-of-order execution?
    pub out_of_order: bool,
    /// Fraction of L2/LLC-hit stall cycles the OoO window hides.
    pub ooo_overlap: f64,
    /// Cap on exploitable memory-level parallelism for DRAM misses.
    pub mlp_cap: f64,
    /// Multiplier on a workload's baseline branch mispredict rate
    /// (better predictors are < 1).
    pub predictor_factor: f64,
    /// CPI multiplier applied to each thread when two SMT threads co-run
    /// (structural hazards, replay; large on NetBurst).
    pub smt_overhead: f64,
    /// Effective fraction of private cache capacity each SMT thread sees
    /// when co-running.
    pub smt_cache_share: f64,
}

/// Memory-system model parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemorySystem {
    /// Per-core L1 data cache.
    pub l1d: CacheGeometry,
    /// Per-core private L2, if the chip has one (Nehalem).
    pub l2: Option<CacheGeometry>,
    /// Shared last-level cache, if distinct from L2.
    pub llc: Option<CacheGeometry>,
    /// Data-TLB entries.
    pub dtlb_entries: usize,
    /// L2 hit latency in cycles.
    pub l2_hit_cycles: f64,
    /// LLC hit latency in cycles.
    pub llc_hit_cycles: f64,
    /// TLB miss (page walk) penalty in cycles.
    pub tlb_miss_cycles: f64,
    /// Main-memory latency in nanoseconds (constant in wall-clock terms:
    /// this is why memory-bound work scales sub-linearly with clock).
    pub mem_latency_ns: f64,
    /// Peak memory bandwidth in GB/s.
    pub peak_bw_gbs: f64,
}

impl MemorySystem {
    /// Total last-level capacity in bytes (LLC if present, else L2, else L1).
    #[must_use]
    pub fn last_level_bytes(&self) -> u64 {
        self.llc
            .map(|c| c.size_bytes)
            .or(self.l2.map(|c| c.size_bytes))
            .unwrap_or(self.l1d.size_bytes)
    }
}

/// Electrical model parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct PowerParams {
    /// Per-event energies for this chip (family-scaled).
    pub events: EventEnergies,
    /// Static power parameters.
    pub statics: StaticPowerParams,
    /// The V(f) operating curve.
    pub vf: VfCurve,
    /// Thermal design power in watts (Table 3).
    pub tdp_w: f64,
    /// Turbo Boost stepping, if the chip has it.
    pub turbo: Option<TurboParams>,
}

/// One processor: Table 3 identity plus model parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct ProcessorSpec {
    /// Which processor this is.
    pub id: ProcessorId,
    /// Marketing name, e.g. "Core i7 920".
    pub name: &'static str,
    /// The paper's shorthand, e.g. "i7 (45)".
    pub short: &'static str,
    /// Microarchitecture family.
    pub uarch: Microarch,
    /// Intel sSpec number.
    pub sspec: &'static str,
    /// Release date.
    pub release: &'static str,
    /// Release price in USD (the Pentium 4's is not documented).
    pub price_usd: Option<u32>,
    /// Process technology node.
    pub node: TechNode,
    /// Physical cores.
    pub cores: usize,
    /// SMT threads per core (1 = no SMT).
    pub smt_ways: usize,
    /// Stock clock.
    pub base_clock: Hertz,
    /// Minimum supported clock for down-scaling experiments.
    pub min_clock: Hertz,
    /// Transistors in the package, millions.
    pub transistors_m: f64,
    /// Die area, mm^2.
    pub die_mm2: f64,
    /// Front-side bus MHz (pre-Nehalem chips).
    pub fsb_mhz: Option<u32>,
    /// DRAM technology string (Table 3).
    pub dram: &'static str,
    /// Core pipeline parameters.
    pub core: CoreParams,
    /// Memory system parameters.
    pub mem: MemorySystem,
    /// Electrical parameters.
    pub power: PowerParams,
}

impl ProcessorSpec {
    /// Hardware contexts in the stock configuration.
    #[must_use]
    pub fn contexts(&self) -> usize {
        self.cores * self.smt_ways
    }

    /// The paper's "nCmT" topology string, e.g. `4C2T`.
    #[must_use]
    pub fn topology(&self) -> String {
        format!("{}C{}T", self.cores, self.smt_ways)
    }

    /// Supply voltage at a given clock.
    #[must_use]
    pub fn voltage_at(&self, f: Hertz) -> Volts {
        self.power.vf.voltage_at(f)
    }
}

fn g(size_kb: u64, ways: usize) -> CacheGeometry {
    CacheGeometry::new(size_kb << 10, ways, 64)
}

fn vf(fmin_ghz: f64, fmax_ghz: f64, vmin: f64, vmax: f64, gamma: f64) -> VfCurve {
    VfCurve::new(
        Hertz::from_ghz(fmin_ghz),
        Hertz::from_ghz(fmax_ghz),
        Volts::new(vmin),
        Volts::new(vmax),
        gamma,
    )
    .expect("catalog V(f) curves are valid")
}

fn spec_of(id: ProcessorId) -> &'static ProcessorSpec {
    use std::sync::OnceLock;
    static SPECS: OnceLock<Vec<ProcessorSpec>> = OnceLock::new();
    let specs = SPECS.get_or_init(build_specs);
    &specs[ProcessorId::ALL
        .iter()
        .position(|&p| p == id)
        .expect("all ids are in ALL")]
}

/// All eight processor specifications, in Table 3 order.
#[must_use]
pub fn processors() -> Vec<&'static ProcessorSpec> {
    ProcessorId::ALL.iter().map(|&id| id.spec()).collect()
}

/// The 45nm processors used for the Pareto analysis (Section 4.2).
#[must_use]
pub fn processors_45nm() -> Vec<&'static ProcessorSpec> {
    processors()
        .into_iter()
        .filter(|s| s.node == TechNode::Nm45)
        .collect()
}

fn build_specs() -> Vec<ProcessorSpec> {
    let base = EventEnergies::default();
    vec![
        // -------------------------------------------------- Pentium 4 (130)
        ProcessorSpec {
            id: ProcessorId::Pentium4_130,
            name: "Pentium 4",
            short: "Pentium4 (130)",
            uarch: Microarch::NetBurst,
            sspec: "SL6WF",
            release: "May '03",
            price_usd: None,
            node: TechNode::Nm130,
            cores: 1,
            smt_ways: 2,
            base_clock: Hertz::from_ghz(2.4),
            min_clock: Hertz::from_ghz(2.4),
            transistors_m: 55.0,
            die_mm2: 131.0,
            fsb_mhz: Some(800),
            dram: "DDR-400",
            core: CoreParams {
                issue_width: 3.0,
                pipeline_depth: 31.0,
                out_of_order: true,
                ooo_overlap: 0.46,
                mlp_cap: 2.8,
                predictor_factor: 1.05,
                smt_overhead: 1.45,
                smt_cache_share: 0.40,
            },
            mem: MemorySystem {
                l1d: g(8, 4),
                l2: None,
                llc: Some(g(512, 8)),
                dtlb_entries: 64,
                l2_hit_cycles: 18.0,
                llc_hit_cycles: 18.0,
                tlb_miss_cycles: 55.0,
                mem_latency_ns: 105.0,
                peak_bw_gbs: 6.4,
            },
            power: PowerParams {
                events: base.scaled(5.0),
                statics: StaticPowerParams {
                    core_leak_w: 30.0,
                    uncore_w: 6.0,
                    llc_leak_w_per_mb: 1.2,
                    idle_core_fraction: 0.9,
                    disabled_core_fraction: 0.05,
                },
                vf: VfCurve::fixed(Hertz::from_ghz(2.4), Hertz::from_ghz(2.4), Volts::new(1.5)),
                tdp_w: 66.0,
                turbo: None,
            },
        },
        // --------------------------------------------- Core 2 Duo E6600 (65)
        ProcessorSpec {
            id: ProcessorId::Core2DuoE6600,
            name: "Core 2 Duo E6600",
            short: "C2D (65)",
            uarch: Microarch::Core,
            sspec: "SL9S8",
            release: "Jul '06",
            price_usd: Some(316),
            node: TechNode::Nm65,
            cores: 2,
            smt_ways: 1,
            base_clock: Hertz::from_ghz(2.4),
            min_clock: Hertz::from_ghz(1.6),
            transistors_m: 291.0,
            die_mm2: 143.0,
            fsb_mhz: Some(1066),
            dram: "DDR2-800",
            core: CoreParams {
                issue_width: 4.0,
                pipeline_depth: 14.0,
                out_of_order: true,
                ooo_overlap: 0.52,
                mlp_cap: 5.0,
                predictor_factor: 0.90,
                smt_overhead: 1.0,
                smt_cache_share: 1.0,
            },
            mem: MemorySystem {
                l1d: g(32, 8),
                l2: None,
                llc: Some(g(4096, 16)),
                dtlb_entries: 256,
                l2_hit_cycles: 14.0,
                llc_hit_cycles: 14.0,
                tlb_miss_cycles: 40.0,
                mem_latency_ns: 88.0,
                peak_bw_gbs: 8.5,
            },
            power: PowerParams {
                events: base.scaled(1.3),
                statics: StaticPowerParams {
                    core_leak_w: 5.0,
                    uncore_w: 5.5,
                    llc_leak_w_per_mb: 0.65,
                    idle_core_fraction: 0.95,
                    disabled_core_fraction: 0.05,
                },
                vf: vf(1.6, 2.4, 1.05, 1.35, 1.2),
                tdp_w: 65.0,
                turbo: None,
            },
        },
        // -------------------------------------------- Core 2 Quad Q6600 (65)
        ProcessorSpec {
            id: ProcessorId::Core2QuadQ6600,
            name: "Core 2 Quad Q6600",
            short: "C2Q (65)",
            uarch: Microarch::Core,
            sspec: "SL9UM",
            release: "Jan '07",
            price_usd: Some(851),
            node: TechNode::Nm65,
            cores: 4,
            smt_ways: 1,
            base_clock: Hertz::from_ghz(2.4),
            min_clock: Hertz::from_ghz(1.6),
            transistors_m: 582.0,
            die_mm2: 286.0,
            fsb_mhz: Some(1066),
            dram: "DDR2-800",
            core: CoreParams {
                issue_width: 4.0,
                pipeline_depth: 14.0,
                out_of_order: true,
                ooo_overlap: 0.52,
                mlp_cap: 5.0,
                predictor_factor: 0.90,
                smt_overhead: 1.0,
                smt_cache_share: 1.0,
            },
            mem: MemorySystem {
                l1d: g(32, 8),
                l2: None,
                llc: Some(g(8192, 16)),
                dtlb_entries: 256,
                l2_hit_cycles: 14.0,
                llc_hit_cycles: 14.0,
                tlb_miss_cycles: 40.0,
                mem_latency_ns: 98.0,
                peak_bw_gbs: 8.5,
            },
            power: PowerParams {
                events: base.scaled(1.3),
                statics: StaticPowerParams {
                    // Two Conroe dies in one package.
                    core_leak_w: 5.0,
                    uncore_w: 15.0,
                    llc_leak_w_per_mb: 0.55,
                    idle_core_fraction: 0.95,
                    disabled_core_fraction: 0.05,
                },
                vf: vf(1.6, 2.4, 1.05, 1.35, 1.2),
                tdp_w: 105.0,
                turbo: None,
            },
        },
        // ------------------------------------------------- Core i7 920 (45)
        ProcessorSpec {
            id: ProcessorId::CoreI7_920,
            name: "Core i7 920",
            short: "i7 (45)",
            uarch: Microarch::Nehalem,
            sspec: "SLBCH",
            release: "Nov '08",
            price_usd: Some(284),
            node: TechNode::Nm45,
            cores: 4,
            smt_ways: 2,
            base_clock: Hertz::from_ghz(2.66),
            min_clock: Hertz::from_ghz(1.6),
            transistors_m: 731.0,
            die_mm2: 263.0,
            fsb_mhz: None,
            dram: "DDR3-1066",
            core: CoreParams {
                issue_width: 4.0,
                pipeline_depth: 16.0,
                out_of_order: true,
                ooo_overlap: 0.56,
                mlp_cap: 5.0,
                predictor_factor: 0.88,
                smt_overhead: 1.15,
                smt_cache_share: 0.50,
            },
            mem: MemorySystem {
                l1d: g(32, 8),
                l2: Some(g(256, 8)),
                llc: Some(g(8192, 16)),
                dtlb_entries: 512,
                l2_hit_cycles: 10.0,
                llc_hit_cycles: 42.0,
                tlb_miss_cycles: 30.0,
                mem_latency_ns: 68.0,
                peak_bw_gbs: 25.6,
            },
            power: PowerParams {
                events: base.scaled(2.4),
                statics: StaticPowerParams {
                    core_leak_w: 3.0,
                    uncore_w: 3.5,
                    llc_leak_w_per_mb: 0.15,
                    idle_core_fraction: 1.0,
                    disabled_core_fraction: 0.05,
                },
                vf: vf(1.6, 2.66, 0.95, 1.38, 1.5),
                tdp_w: 130.0,
                turbo: Some(TurboParams {
                    step_hz: 133.0e6,
                    max_steps_all_cores: 1,
                    max_steps_single_core: 2,
                    voltage_per_step: 0.095,
                }),
            },
        },
        // ---------------------------------------------------- Atom 230 (45)
        ProcessorSpec {
            id: ProcessorId::Atom230,
            name: "Atom 230",
            short: "Atom (45)",
            uarch: Microarch::Bonnell,
            sspec: "SLB6Z",
            release: "Jun '08",
            price_usd: Some(29),
            node: TechNode::Nm45,
            cores: 1,
            smt_ways: 2,
            base_clock: Hertz::from_ghz(1.66),
            min_clock: Hertz::from_ghz(0.8),
            transistors_m: 47.0,
            die_mm2: 26.0,
            fsb_mhz: Some(533),
            dram: "DDR2-800",
            core: CoreParams {
                issue_width: 2.0,
                pipeline_depth: 16.0,
                out_of_order: false,
                ooo_overlap: 0.05,
                mlp_cap: 1.1,
                predictor_factor: 1.35,
                smt_overhead: 1.06,
                smt_cache_share: 0.60,
            },
            mem: MemorySystem {
                l1d: g(24, 6),
                l2: None,
                llc: Some(g(512, 8)),
                dtlb_entries: 64,
                l2_hit_cycles: 24.0,
                llc_hit_cycles: 24.0,
                tlb_miss_cycles: 45.0,
                mem_latency_ns: 102.0,
                peak_bw_gbs: 4.2,
            },
            power: PowerParams {
                events: base.scaled(0.26),
                statics: StaticPowerParams {
                    core_leak_w: 0.55,
                    uncore_w: 1.4,
                    llc_leak_w_per_mb: 0.22,
                    idle_core_fraction: 0.55,
                    disabled_core_fraction: 0.05,
                },
                vf: vf(0.8, 1.66, 0.90, 1.16, 1.1),
                tdp_w: 4.0,
                turbo: None,
            },
        },
        // --------------------------------------------- Core 2 Duo E7600 (45)
        ProcessorSpec {
            id: ProcessorId::Core2DuoE7600,
            name: "Core 2 Duo E7600",
            short: "C2D (45)",
            uarch: Microarch::Core,
            sspec: "SLGTD",
            release: "May '09",
            price_usd: Some(133),
            node: TechNode::Nm45,
            cores: 2,
            smt_ways: 1,
            base_clock: Hertz::from_ghz(3.06),
            min_clock: Hertz::from_ghz(1.6),
            transistors_m: 228.0,
            die_mm2: 82.0,
            fsb_mhz: Some(1066),
            dram: "DDR2-800",
            core: CoreParams {
                issue_width: 4.0,
                pipeline_depth: 14.0,
                out_of_order: true,
                ooo_overlap: 0.52,
                mlp_cap: 5.0,
                predictor_factor: 0.85,
                smt_overhead: 1.0,
                smt_cache_share: 1.0,
            },
            mem: MemorySystem {
                l1d: g(32, 8),
                l2: None,
                llc: Some(g(3072, 12)),
                dtlb_entries: 256,
                l2_hit_cycles: 14.0,
                llc_hit_cycles: 14.0,
                tlb_miss_cycles: 40.0,
                mem_latency_ns: 72.0,
                peak_bw_gbs: 8.5,
            },
            power: PowerParams {
                events: base.scaled(1.3),
                statics: StaticPowerParams {
                    core_leak_w: 4.0,
                    uncore_w: 5.0,
                    llc_leak_w_per_mb: 0.40,
                    idle_core_fraction: 0.80,
                    disabled_core_fraction: 0.05,
                },
                vf: vf(1.6, 3.06, 0.82, 1.36, 2.2),
                tdp_w: 65.0,
                turbo: None,
            },
        },
        // --------------------------------------------------- Atom D510 (45)
        ProcessorSpec {
            id: ProcessorId::AtomD510,
            name: "Atom D510",
            short: "AtomD (45)",
            uarch: Microarch::Bonnell,
            sspec: "SLBLA",
            release: "Dec '09",
            price_usd: Some(63),
            node: TechNode::Nm45,
            cores: 2,
            smt_ways: 2,
            base_clock: Hertz::from_ghz(1.66),
            min_clock: Hertz::from_ghz(0.8),
            transistors_m: 176.0,
            die_mm2: 87.0,
            fsb_mhz: Some(665),
            dram: "DDR2-800",
            core: CoreParams {
                issue_width: 2.0,
                pipeline_depth: 16.0,
                out_of_order: false,
                ooo_overlap: 0.05,
                mlp_cap: 1.1,
                predictor_factor: 1.35,
                smt_overhead: 1.06,
                smt_cache_share: 0.60,
            },
            mem: MemorySystem {
                l1d: g(24, 6),
                l2: None,
                llc: Some(g(1024, 8)),
                dtlb_entries: 64,
                l2_hit_cycles: 24.0,
                llc_hit_cycles: 24.0,
                tlb_miss_cycles: 45.0,
                mem_latency_ns: 98.0,
                peak_bw_gbs: 5.3,
            },
            power: PowerParams {
                // Pineview integrates the GPU/chipset in-package: higher
                // uncore floor, same Bonnell cores.
                events: base.scaled(0.26),
                statics: StaticPowerParams {
                    core_leak_w: 0.55,
                    uncore_w: 3.1,
                    llc_leak_w_per_mb: 0.22,
                    idle_core_fraction: 0.55,
                    disabled_core_fraction: 0.05,
                },
                vf: vf(0.8, 1.66, 0.80, 1.17, 1.1),
                tdp_w: 13.0,
                turbo: None,
            },
        },
        // ------------------------------------------------- Core i5 670 (32)
        ProcessorSpec {
            id: ProcessorId::CoreI5_670,
            name: "Core i5 670",
            short: "i5 (32)",
            uarch: Microarch::Nehalem,
            sspec: "SLBLT",
            release: "Jan '10",
            price_usd: Some(284),
            node: TechNode::Nm32,
            cores: 2,
            smt_ways: 2,
            base_clock: Hertz::from_ghz(3.46),
            min_clock: Hertz::from_ghz(1.2),
            transistors_m: 382.0,
            die_mm2: 81.0,
            fsb_mhz: None,
            dram: "DDR3-1333",
            core: CoreParams {
                issue_width: 4.0,
                pipeline_depth: 16.0,
                out_of_order: true,
                ooo_overlap: 0.56,
                mlp_cap: 5.0,
                predictor_factor: 0.84,
                smt_overhead: 1.15,
                smt_cache_share: 0.50,
            },
            mem: MemorySystem {
                l1d: g(32, 8),
                l2: Some(g(256, 8)),
                llc: Some(g(4096, 16)),
                dtlb_entries: 512,
                l2_hit_cycles: 10.0,
                llc_hit_cycles: 35.0,
                tlb_miss_cycles: 30.0,
                mem_latency_ns: 63.0,
                peak_bw_gbs: 21.0,
            },
            power: PowerParams {
                events: base.scaled(3.1),
                statics: StaticPowerParams {
                    // Clarkdale: on-package GPU die + PCIe keep the uncore
                    // floor high, but Westmere power-gates idle cores well.
                    core_leak_w: 2.8,
                    uncore_w: 9.0,
                    llc_leak_w_per_mb: 0.15,
                    idle_core_fraction: 0.20,
                    disabled_core_fraction: 0.03,
                },
                // Front-loaded V(f): near-peak clocks ride the shallow top
                // of the curve, which is why clocking the i5 up is nearly
                // energy-neutral (Architecture Finding 3).
                vf: vf(1.2, 3.46, 0.80, 1.20, 0.5),
                tdp_w: 73.0,
                turbo: Some(TurboParams {
                    step_hz: 133.0e6,
                    max_steps_all_cores: 1,
                    max_steps_single_core: 2,
                    voltage_per_step: 0.015,
                }),
            },
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eight_processors() {
        assert_eq!(processors().len(), 8);
        let mut shorts: Vec<&str> = processors().iter().map(|s| s.short).collect();
        shorts.sort_unstable();
        shorts.dedup();
        assert_eq!(shorts.len(), 8, "short names must be unique");
    }

    #[test]
    fn table3_identity_spot_checks() {
        let i7 = ProcessorId::CoreI7_920.spec();
        assert_eq!(i7.sspec, "SLBCH");
        assert_eq!(i7.cores, 4);
        assert_eq!(i7.smt_ways, 2);
        assert_eq!(i7.contexts(), 8);
        assert_eq!(i7.topology(), "4C2T");
        assert_eq!(i7.transistors_m, 731.0);
        assert_eq!(i7.power.tdp_w, 130.0);
        assert_eq!(i7.node, TechNode::Nm45);

        let p4 = ProcessorId::Pentium4_130.spec();
        assert_eq!(p4.topology(), "1C2T");
        assert!(p4.price_usd.is_none());
        assert_eq!(p4.node, TechNode::Nm130);
        assert_eq!(p4.mem.last_level_bytes(), 512 << 10);

        let atom = ProcessorId::Atom230.spec();
        assert_eq!(atom.price_usd, Some(29));
        assert_eq!(atom.power.tdp_w, 4.0);
        assert!(!atom.core.out_of_order);

        let i5 = ProcessorId::CoreI5_670.spec();
        assert_eq!(i5.node, TechNode::Nm32);
        assert_eq!(i5.dram, "DDR3-1333");
        assert!(i5.power.turbo.is_some());
    }

    #[test]
    fn four_chips_are_45nm() {
        let names: Vec<&str> = processors_45nm().iter().map(|s| s.short).collect();
        assert_eq!(names, ["i7 (45)", "Atom (45)", "C2D (45)", "AtomD (45)"]);
    }

    #[test]
    fn smt_chips_match_table3() {
        for (id, has_smt) in [
            (ProcessorId::Pentium4_130, true),
            (ProcessorId::Core2DuoE6600, false),
            (ProcessorId::Core2QuadQ6600, false),
            (ProcessorId::CoreI7_920, true),
            (ProcessorId::Atom230, true),
            (ProcessorId::Core2DuoE7600, false),
            (ProcessorId::AtomD510, true),
            (ProcessorId::CoreI5_670, true),
        ] {
            assert_eq!(id.spec().smt_ways == 2, has_smt, "{id:?}");
        }
    }

    #[test]
    fn only_nehalems_have_turbo() {
        for s in processors() {
            let expect = matches!(s.uarch, Microarch::Nehalem);
            assert_eq!(s.power.turbo.is_some(), expect, "{}", s.short);
        }
    }

    #[test]
    fn voltage_tracks_clock() {
        let i7 = ProcessorId::CoreI7_920.spec();
        let v_lo = i7.voltage_at(i7.min_clock);
        let v_hi = i7.voltage_at(i7.base_clock);
        assert!(v_hi.value() > v_lo.value());
    }

    #[test]
    fn bonnell_is_the_low_energy_family() {
        let atom = ProcessorId::Atom230.spec();
        let core2 = ProcessorId::Core2DuoE6600.spec();
        assert!(
            atom.power.events.per_instruction_pj < core2.power.events.per_instruction_pj / 4.0
        );
    }

    #[test]
    fn netburst_pipeline_is_deepest() {
        let depths: Vec<f64> = processors().iter().map(|s| s.core.pipeline_depth).collect();
        let p4 = ProcessorId::Pentium4_130.spec().core.pipeline_depth;
        assert!(depths.iter().all(|&d| d <= p4));
    }
}
