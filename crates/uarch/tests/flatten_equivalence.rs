//! Property test pinning the flattened hot loop to the pre-optimization
//! reference simulator.
//!
//! `ChipSimulator::run_reference` is the pinned, line-for-line copy of
//! the simulator as it stood before the hot loop was flattened;
//! `ChipSimulator::run_with_scratch` is the optimized loop. The property
//! is strict equality of the full [`lhr_uarch::RunResult`] -- time,
//! per-structure energy meters, power waveform, and instruction count,
//! every `f64` compared bit-for-bit through `PartialEq` -- across
//! randomly drawn `(processor, configuration, workload, seed)` cells,
//! with one scratch buffer reused within each case so buffer-reset bugs
//! cannot hide either.

use proptest::prelude::*;

use lhr_uarch::{ChipConfig, ChipSimulator, ProcessorId, SimScratch};
use lhr_workloads::catalog;

/// Applies one of five configuration shapes to a stock machine. Shapes a
/// given chip cannot take (SMT-off without SMT, turbo-off without turbo,
/// and so on) fall back to stock, so every drawn cell is valid.
fn configured(id: ProcessorId, shape: usize) -> ChipConfig {
    let stock = ChipConfig::stock(id.spec());
    let shaped = match shape {
        0 => Ok(stock.clone()),
        1 => stock.clone().with_cores(1),
        2 => stock.clone().with_smt(false),
        3 => stock.clone().with_turbo(false),
        _ => stock.clone().with_clock(id.spec().min_clock),
    };
    shaped.unwrap_or(stock)
}

proptest! {
    // Each case runs the simulator four times on a full trace; 32 cases
    // keep the suite inside the tier-1 time budget while still covering
    // every chip and shape over a few runs.
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn flattened_loop_equals_reference_on_random_cells(
        chip_ix in 0usize..ProcessorId::ALL.len(),
        shape_ix in 0usize..5,
        workload_ix in 0usize..catalog().len(),
        seed in any::<u64>(),
    ) {
        let id = ProcessorId::ALL[chip_ix];
        let config = configured(id, shape_ix);
        let workload = &catalog()[workload_ix];
        let sim = ChipSimulator::new().with_target_slices(60);
        let mut scratch = SimScratch::new();
        let reference = sim.run_reference(&config, workload, seed);
        let fresh = sim.run(&config, workload, seed);
        // Run twice with the same scratch: the second run must be
        // unaffected by the first one's leftovers.
        let reused_once = sim.run_with_scratch(&config, workload, seed, &mut scratch);
        let reused_twice = sim.run_with_scratch(&config, workload, seed, &mut scratch);
        prop_assert_eq!(&reference, &fresh, "fresh-scratch run diverged");
        prop_assert_eq!(&reference, &reused_once, "reused-scratch run diverged");
        prop_assert_eq!(&reference, &reused_twice, "second reuse diverged");
    }
}
