//! Physical-quantity newtypes for the `lhr` measurement stack.
//!
//! The paper this project reproduces ("Looking Back on the Language and
//! Hardware Revolutions", ASPLOS 2011) is above all a *measurement* study:
//! every headline number is a wattage, an energy, a frequency, or a ratio of
//! those. Mixing those up in raw `f64`s is exactly the class of bug a
//! measurement harness cannot afford, so every quantity that crosses a crate
//! boundary in this workspace is a newtype from this crate.
//!
//! # Example
//!
//! ```
//! use lhr_units::{Seconds, Watts, Joules, Hertz};
//!
//! let run = Seconds::new(629.0);            // libquantum reference time
//! let draw = Watts::new(23.0);              // i7 floor on SPEC CPU2006
//! let energy: Joules = draw * run;          // energy = power x time
//! assert!((energy.value() - 14_467.0).abs() < 1e-9);
//!
//! let clock = Hertz::from_ghz(2.66);
//! assert_eq!(clock.as_ghz(), 2.66);
//! assert!((clock.period().value() - 1.0 / 2.66e9).abs() < 1e-24);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// Implements the shared surface of a scalar physical quantity.
macro_rules! quantity {
    ($(#[$meta:meta])* $name:ident, $unit:literal) => {
        $(#[$meta])*
        #[derive(
            Debug, Default, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize,
        )]
        #[serde(transparent)]
        pub struct $name(f64);

        impl $name {
            /// The zero quantity.
            pub const ZERO: Self = Self(0.0);

            /// Wraps a raw value expressed in the base unit.
            #[inline]
            #[must_use]
            pub const fn new(value: f64) -> Self {
                Self(value)
            }

            /// Returns the raw value in the base unit.
            #[inline]
            #[must_use]
            pub const fn value(self) -> f64 {
                self.0
            }

            /// Returns the absolute value.
            #[inline]
            #[must_use]
            pub fn abs(self) -> Self {
                Self(self.0.abs())
            }

            /// Returns the smaller of two quantities.
            #[inline]
            #[must_use]
            pub fn min(self, other: Self) -> Self {
                Self(self.0.min(other.0))
            }

            /// Returns the larger of two quantities.
            #[inline]
            #[must_use]
            pub fn max(self, other: Self) -> Self {
                Self(self.0.max(other.0))
            }

            /// Clamps the quantity to the inclusive `[lo, hi]` range.
            ///
            /// # Panics
            ///
            /// Panics if `lo > hi` or either bound is NaN, as for
            /// [`f64::clamp`].
            #[inline]
            #[must_use]
            pub fn clamp(self, lo: Self, hi: Self) -> Self {
                Self(self.0.clamp(lo.0, hi.0))
            }

            /// Returns `true` when the underlying value is finite.
            #[inline]
            #[must_use]
            pub fn is_finite(self) -> bool {
                self.0.is_finite()
            }

            /// Dimensionless ratio of two like quantities.
            ///
            /// Returns `self / denom` as a bare `f64`, the form every
            /// normalized figure in the paper is expressed in.
            #[inline]
            #[must_use]
            pub fn ratio(self, denom: Self) -> f64 {
                self.0 / denom.0
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                match f.precision() {
                    Some(p) => write!(f, "{:.*} {}", p, self.0, $unit),
                    None => write!(f, "{} {}", self.0, $unit),
                }
            }
        }

        impl Add for $name {
            type Output = Self;
            #[inline]
            fn add(self, rhs: Self) -> Self {
                Self(self.0 + rhs.0)
            }
        }

        impl AddAssign for $name {
            #[inline]
            fn add_assign(&mut self, rhs: Self) {
                self.0 += rhs.0;
            }
        }

        impl Sub for $name {
            type Output = Self;
            #[inline]
            fn sub(self, rhs: Self) -> Self {
                Self(self.0 - rhs.0)
            }
        }

        impl SubAssign for $name {
            #[inline]
            fn sub_assign(&mut self, rhs: Self) {
                self.0 -= rhs.0;
            }
        }

        impl Neg for $name {
            type Output = Self;
            #[inline]
            fn neg(self) -> Self {
                Self(-self.0)
            }
        }

        impl Mul<f64> for $name {
            type Output = Self;
            #[inline]
            fn mul(self, rhs: f64) -> Self {
                Self(self.0 * rhs)
            }
        }

        impl Mul<$name> for f64 {
            type Output = $name;
            #[inline]
            fn mul(self, rhs: $name) -> $name {
                $name(self * rhs.0)
            }
        }

        impl Div<f64> for $name {
            type Output = Self;
            #[inline]
            fn div(self, rhs: f64) -> Self {
                Self(self.0 / rhs)
            }
        }

        impl Div for $name {
            /// Like-by-like division yields a dimensionless ratio.
            type Output = f64;
            #[inline]
            fn div(self, rhs: Self) -> f64 {
                self.0 / rhs.0
            }
        }

        impl Sum for $name {
            fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
                Self(iter.map(|q| q.0).sum())
            }
        }

        impl From<$name> for f64 {
            #[inline]
            fn from(q: $name) -> f64 {
                q.0
            }
        }
    };
}

quantity!(
    /// A duration in seconds.
    Seconds,
    "s"
);

quantity!(
    /// A frequency in hertz.
    Hertz,
    "Hz"
);

quantity!(
    /// Electrical power in watts.
    Watts,
    "W"
);

quantity!(
    /// Energy in joules.
    Joules,
    "J"
);

quantity!(
    /// Electrical potential in volts.
    Volts,
    "V"
);

quantity!(
    /// Electrical current in amperes.
    Amperes,
    "A"
);

impl Seconds {
    /// Constructs a duration from milliseconds.
    #[must_use]
    pub fn from_ms(ms: f64) -> Self {
        Self::new(ms * 1e-3)
    }

    /// Returns the duration expressed in milliseconds.
    #[must_use]
    pub fn as_ms(self) -> f64 {
        self.value() * 1e3
    }

    /// Constructs a duration from nanoseconds.
    #[must_use]
    pub fn from_ns(ns: f64) -> Self {
        Self::new(ns * 1e-9)
    }

    /// Returns the duration expressed in nanoseconds.
    #[must_use]
    pub fn as_ns(self) -> f64 {
        self.value() * 1e9
    }
}

impl Hertz {
    /// Constructs a frequency from gigahertz.
    #[must_use]
    pub fn from_ghz(ghz: f64) -> Self {
        Self::new(ghz * 1e9)
    }

    /// Returns the frequency expressed in gigahertz.
    #[must_use]
    pub fn as_ghz(self) -> f64 {
        self.value() * 1e-9
    }

    /// Constructs a frequency from megahertz.
    #[must_use]
    pub fn from_mhz(mhz: f64) -> Self {
        Self::new(mhz * 1e6)
    }

    /// Returns the frequency expressed in megahertz.
    #[must_use]
    pub fn as_mhz(self) -> f64 {
        self.value() * 1e-6
    }

    /// The period of one cycle at this frequency.
    ///
    /// # Panics
    ///
    /// Does not panic, but returns an infinite duration for a zero frequency.
    #[must_use]
    pub fn period(self) -> Seconds {
        Seconds::new(1.0 / self.value())
    }
}

impl Watts {
    /// Constructs power from milliwatts.
    #[must_use]
    pub fn from_mw(mw: f64) -> Self {
        Self::new(mw * 1e-3)
    }

    /// Returns the power expressed in milliwatts.
    #[must_use]
    pub fn as_mw(self) -> f64 {
        self.value() * 1e3
    }
}

impl Joules {
    /// Average power over an interval: `energy / time`.
    #[must_use]
    pub fn over(self, span: Seconds) -> Watts {
        Watts::new(self.value() / span.value())
    }
}

impl Amperes {
    /// Constructs current from milliamperes.
    #[must_use]
    pub fn from_ma(ma: f64) -> Self {
        Self::new(ma * 1e-3)
    }

    /// Returns the current expressed in milliamperes.
    #[must_use]
    pub fn as_ma(self) -> f64 {
        self.value() * 1e3
    }
}

impl Volts {
    /// Constructs potential from millivolts.
    #[must_use]
    pub fn from_mv(mv: f64) -> Self {
        Self::new(mv * 1e-3)
    }

    /// Returns the potential expressed in millivolts.
    #[must_use]
    pub fn as_mv(self) -> f64 {
        self.value() * 1e3
    }
}

// --- Cross-dimension arithmetic -------------------------------------------

impl Mul<Seconds> for Watts {
    type Output = Joules;
    /// Energy is power integrated over time.
    #[inline]
    fn mul(self, rhs: Seconds) -> Joules {
        Joules::new(self.value() * rhs.value())
    }
}

impl Mul<Watts> for Seconds {
    type Output = Joules;
    #[inline]
    fn mul(self, rhs: Watts) -> Joules {
        rhs * self
    }
}

impl Div<Seconds> for Joules {
    type Output = Watts;
    /// Average power over an interval.
    #[inline]
    fn div(self, rhs: Seconds) -> Watts {
        Watts::new(self.value() / rhs.value())
    }
}

impl Div<Watts> for Joules {
    type Output = Seconds;
    /// The time over which a power level accumulates this energy.
    #[inline]
    fn div(self, rhs: Watts) -> Seconds {
        Seconds::new(self.value() / rhs.value())
    }
}

impl Mul<Amperes> for Volts {
    type Output = Watts;
    /// Electrical power: `P = V x I`.
    #[inline]
    fn mul(self, rhs: Amperes) -> Watts {
        Watts::new(self.value() * rhs.value())
    }
}

impl Mul<Volts> for Amperes {
    type Output = Watts;
    #[inline]
    fn mul(self, rhs: Volts) -> Watts {
        rhs * self
    }
}

impl Div<Volts> for Watts {
    type Output = Amperes;
    /// Current drawn at a supply voltage: `I = P / V`.
    #[inline]
    fn div(self, rhs: Volts) -> Amperes {
        Amperes::new(self.value() / rhs.value())
    }
}

impl Div<Amperes> for Watts {
    type Output = Volts;
    /// Potential at a current draw: `V = P / I`.
    #[inline]
    fn div(self, rhs: Amperes) -> Volts {
        Volts::new(self.value() / rhs.value())
    }
}

/// A semiconductor process technology node.
///
/// The study spans exactly these four nodes (Table 3 of the paper); modelling
/// them as an enum keeps impossible nodes unrepresentable and gives each a
/// place to hang its scaling parameters.
///
/// ```
/// use lhr_units::TechNode;
///
/// assert!(TechNode::Nm32 < TechNode::Nm130); // finer nodes sort first
/// assert_eq!(TechNode::Nm45.nanometers(), 45.0);
/// assert_eq!(TechNode::Nm130.shrink(), Some(TechNode::Nm90));
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub enum TechNode {
    /// 32 nm (2010; the Core i5-670 "Clarkdale").
    Nm32,
    /// 45 nm (2008-09; i7-920, Atom 230/D510, Core 2 Duo E7600).
    Nm45,
    /// 65 nm (2006-07; Core 2 Duo E6600, Core 2 Quad Q6600).
    Nm65,
    /// 90 nm (not measured in the study -- no isolated supply rail -- but
    /// present so die-shrink chains are complete).
    Nm90,
    /// 130 nm (2003; the Pentium 4 "Northwood").
    Nm130,
}

impl TechNode {
    /// All nodes used by the study's processors, coarse to fine.
    pub const STUDIED: [TechNode; 4] =
        [TechNode::Nm130, TechNode::Nm65, TechNode::Nm45, TechNode::Nm32];

    /// The feature size in nanometers.
    #[must_use]
    pub fn nanometers(self) -> f64 {
        match self {
            TechNode::Nm32 => 32.0,
            TechNode::Nm45 => 45.0,
            TechNode::Nm65 => 65.0,
            TechNode::Nm90 => 90.0,
            TechNode::Nm130 => 130.0,
        }
    }

    /// The next finer node, if any (one "die shrink" step).
    #[must_use]
    pub fn shrink(self) -> Option<TechNode> {
        match self {
            TechNode::Nm130 => Some(TechNode::Nm90),
            TechNode::Nm90 => Some(TechNode::Nm65),
            TechNode::Nm65 => Some(TechNode::Nm45),
            TechNode::Nm45 => Some(TechNode::Nm32),
            TechNode::Nm32 => None,
        }
    }

    /// The linear scale factor relative to another node.
    ///
    /// A 130nm -> 65nm comparison yields 2.0: features are twice as large on
    /// the older node.
    #[must_use]
    pub fn linear_scale_vs(self, other: TechNode) -> f64 {
        self.nanometers() / other.nanometers()
    }
}

impl fmt::Display for TechNode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}nm", self.nanometers() as u32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn power_times_time_is_energy() {
        let e = Watts::new(10.0) * Seconds::new(3.0);
        assert_eq!(e, Joules::new(30.0));
    }

    #[test]
    fn time_times_power_commutes() {
        assert_eq!(Seconds::new(3.0) * Watts::new(10.0), Joules::new(30.0));
    }

    #[test]
    fn energy_over_time_is_power() {
        assert_eq!(Joules::new(30.0) / Seconds::new(3.0), Watts::new(10.0));
        assert_eq!(Joules::new(30.0).over(Seconds::new(3.0)), Watts::new(10.0));
    }

    #[test]
    fn energy_over_power_is_time() {
        assert_eq!(Joules::new(30.0) / Watts::new(10.0), Seconds::new(3.0));
    }

    #[test]
    fn volts_times_amps_is_watts() {
        let p = Volts::new(12.0) * Amperes::new(2.5);
        assert_eq!(p, Watts::new(30.0));
        assert_eq!(Amperes::new(2.5) * Volts::new(12.0), p);
    }

    #[test]
    fn watts_over_volts_is_amps() {
        assert_eq!(Watts::new(30.0) / Volts::new(12.0), Amperes::new(2.5));
        assert_eq!(Watts::new(30.0) / Amperes::new(2.5), Volts::new(12.0));
    }

    #[test]
    fn like_division_is_dimensionless() {
        let r: f64 = Watts::new(89.0) / Watts::new(23.0);
        assert!((r - 89.0 / 23.0).abs() < 1e-12);
        assert_eq!(Watts::new(89.0).ratio(Watts::new(23.0)), r);
    }

    #[test]
    fn scalar_multiplication_both_sides() {
        assert_eq!(Watts::new(2.0) * 3.0, Watts::new(6.0));
        assert_eq!(3.0 * Watts::new(2.0), Watts::new(6.0));
        assert_eq!(Watts::new(6.0) / 3.0, Watts::new(2.0));
    }

    #[test]
    fn additive_group_behaviour() {
        let mut w = Watts::new(1.0);
        w += Watts::new(2.0);
        assert_eq!(w, Watts::new(3.0));
        w -= Watts::new(0.5);
        assert_eq!(w, Watts::new(2.5));
        assert_eq!(-w, Watts::new(-2.5));
        assert_eq!(Watts::new(1.0) + Watts::new(2.0) - Watts::new(3.0), Watts::ZERO);
    }

    #[test]
    fn sum_over_iterator() {
        let total: Joules = (1..=4).map(|i| Joules::new(f64::from(i))).sum();
        assert_eq!(total, Joules::new(10.0));
    }

    #[test]
    fn unit_conversions_round_trip() {
        assert!((Seconds::from_ms(1500.0).value() - 1.5).abs() < 1e-12);
        assert!((Seconds::new(1.5).as_ms() - 1500.0).abs() < 1e-9);
        assert!((Seconds::from_ns(5.0).as_ns() - 5.0).abs() < 1e-12);
        assert!((Hertz::from_ghz(2.4).as_mhz() - 2400.0).abs() < 1e-6);
        assert!((Watts::from_mw(185.0).as_mw() - 185.0).abs() < 1e-9);
        assert!((Amperes::from_ma(300.0).value() - 0.3).abs() < 1e-12);
        assert!((Volts::from_mv(2500.0).value() - 2.5).abs() < 1e-12);
        assert!((Volts::new(2.5).as_mv() - 2500.0).abs() < 1e-9);
    }

    #[test]
    fn period_inverts_frequency() {
        let f = Hertz::from_ghz(2.0);
        assert!((f.period().as_ns() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn display_includes_unit_and_precision() {
        assert_eq!(format!("{:.1}", Watts::new(44.06)), "44.1 W");
        assert_eq!(format!("{}", Seconds::new(2.0)), "2 s");
        assert_eq!(format!("{:.2}", Amperes::new(1.0 / 3.0)), "0.33 A");
        assert_eq!(format!("{}", TechNode::Nm45), "45nm");
    }

    #[test]
    fn min_max_clamp_abs() {
        let a = Watts::new(-4.0);
        assert_eq!(a.abs(), Watts::new(4.0));
        assert_eq!(a.min(Watts::ZERO), a);
        assert_eq!(a.max(Watts::ZERO), Watts::ZERO);
        assert_eq!(
            Watts::new(7.0).clamp(Watts::ZERO, Watts::new(5.0)),
            Watts::new(5.0)
        );
    }

    #[test]
    fn tech_node_ordering_and_scale() {
        assert!(TechNode::Nm32 < TechNode::Nm45);
        assert!(TechNode::Nm45 < TechNode::Nm65);
        assert!(TechNode::Nm65 < TechNode::Nm130);
        assert!((TechNode::Nm130.linear_scale_vs(TechNode::Nm65) - 2.0).abs() < 1e-12);
        assert_eq!(TechNode::Nm45.shrink(), Some(TechNode::Nm32));
        assert_eq!(TechNode::Nm32.shrink(), None);
        assert_eq!(TechNode::STUDIED.len(), 4);
    }

    #[test]
    fn finite_checks() {
        assert!(Watts::new(1.0).is_finite());
        assert!(!Watts::new(f64::INFINITY).is_finite());
        assert!(!(Joules::new(f64::NAN)).is_finite());
    }

    #[test]
    fn serde_round_trip_is_transparent() {
        let w = Watts::new(42.5);
        let json = serde_json_like(w.value());
        // serde(transparent) means the wire format is the bare number.
        assert_eq!(json, "42.5");
        fn serde_json_like(v: f64) -> String {
            // We avoid a serde_json dependency; transparency is checked via
            // the derived Serialize impl feeding a trivial serializer in the
            // integration suite. Here we at least pin the invariant that the
            // value survives a round trip through f64.
            format!("{v}")
        }
        let back = Watts::new(json.parse::<f64>().unwrap());
        assert_eq!(back, w);
    }
}
