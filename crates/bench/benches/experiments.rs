//! Criterion benches: one per reproduced table and figure.
//!
//! Each bench times the *experiment kernel* -- the measurement sweep plus
//! analysis that regenerates the table/figure -- on the quick harness (the
//! 12-benchmark representative subset with shortened traces), so `cargo
//! bench` exercises every experiment end to end in minutes. The
//! full-fidelity regenerations are the `lhr-bench` binaries (`repro_all`).

use criterion::{criterion_group, criterion_main, Criterion};

use lhr_bench::run_experiment;
use lhr_core::Harness;

fn bench_experiments(c: &mut Criterion) {
    let mut group = c.benchmark_group("experiments");
    group.sample_size(10);
    for name in lhr_bench::EXPERIMENTS {
        group.bench_function(name, |b| {
            b.iter_batched(
                Harness::quick,
                |harness| std::hint::black_box(run_experiment(name, &harness)),
                criterion::BatchSize::PerIteration,
            );
        });
    }
    // Figure 12 shares Table 5's analysis but is its own paper artifact.
    group.bench_function("figure12", |b| {
        b.iter_batched(
            Harness::quick,
            |harness| std::hint::black_box(run_experiment("figure12", &harness)),
            criterion::BatchSize::PerIteration,
        );
    });
    group.finish();
}

criterion_group!(benches, bench_experiments);
criterion_main!(benches);
