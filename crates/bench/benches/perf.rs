//! The per-layer perf suite behind PERF.md: six criterion groups, one
//! per pipeline layer, mirroring `lhr_bench::perfjson::collect`
//! one-to-one so a drift flagged in a committed `BENCH_*.json` snapshot
//! can be localized interactively with
//! `cargo bench -p lhr-bench --bench perf -- <group>`.
//!
//! Every group follows the APAS benchmark rules: 300 ms warm-up, 1 s
//! measurement target, 30 samples, so each bench stays within ~1.3 s and
//! the whole file inside 10 s. IDs are unique across the benches tree
//! (`simulator.rs` and `experiments.rs` use different names).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};

use lhr_core::Runner;
use lhr_power::{
    ActivityCounters, EnergyModel, NodeScaling, PowerMeters, PowerWaveform, Structure,
};
use lhr_sensors::MeasurementRig;
use lhr_uarch::{phase_performance, ChipConfig, Environment, MissRateEstimator, ProcessorId};
use lhr_units::{Seconds, Watts};
use lhr_workloads::by_name;

/// Applies the APAS knobs shared by every group in this file.
fn apas(group: &mut criterion::BenchmarkGroup<'_>) {
    group.sample_size(30);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(1));
}

fn bench_trace_gen(c: &mut Criterion) {
    let mut group = c.benchmark_group("trace_gen");
    apas(&mut group);
    let xalan = by_name("xalan").unwrap();
    group.bench_function("xalan_software_threads", |b| {
        b.iter(|| std::hint::black_box(xalan.software_threads(8)));
    });
    group.finish();
}

fn bench_interval_core(c: &mut Criterion) {
    let mut group = c.benchmark_group("interval_core");
    apas(&mut group);
    let spec = ProcessorId::CoreI7_920.spec();
    let jess = by_name("jess").unwrap();
    let phases = jess.trace().phases().to_vec();
    let estimator = MissRateEstimator::global();
    let base = Environment::solo(spec, spec.base_clock);
    let envs: Vec<Environment> = (0..8u32)
        .map(|i| Environment {
            private_cache_share: if i % 2 == 0 { 1.0 } else { spec.core.smt_cache_share },
            llc_bytes_eff: spec.mem.last_level_bytes() / (1 + u64::from(i) % 4),
            displacement: 1.0 + 0.2 * f64::from(i % 3),
            ..base
        })
        .collect();
    group.bench_function("jess_phase_sweep", |b| {
        b.iter(|| {
            for phase in &phases {
                for env in &envs {
                    std::hint::black_box(phase_performance(spec, phase, env, estimator));
                }
            }
        });
    });
    group.finish();
}

fn bench_energy_integration(c: &mut Criterion) {
    let mut group = c.benchmark_group("energy_integration");
    apas(&mut group);
    let spec = ProcessorId::CoreI7_920.spec();
    let model = EnergyModel::new(spec.power.events, NodeScaling::default());
    let node = spec.node;
    let v = spec.voltage_at(spec.base_clock);
    let slice = Seconds::new(1e-3);
    group.bench_function("i7_slice_metering", |b| {
        b.iter(|| {
            let mut meters = PowerMeters::new();
            let mut waveform = PowerWaveform::new(slice);
            for k in 0..256u64 {
                let core = ActivityCounters {
                    instructions: 1_000 + k,
                    int_ops: 600,
                    fp_ops: 50,
                    l1_accesses: 400,
                    l2_accesses: 40,
                    branches: 180,
                    branch_flushes: 9,
                    tlb_misses: 2,
                    ..ActivityCounters::default()
                };
                let llc = ActivityCounters {
                    llc_accesses: 30 + k % 7,
                    ..ActivityCounters::default()
                };
                let dram = ActivityCounters {
                    dram_accesses: 10 + k % 5,
                    ..ActivityCounters::default()
                };
                let e_core = model.dynamic_energy_with_activity(&core, node, v, 0.9);
                let e_llc = model.dynamic_energy_with_activity(&llc, node, v, 0.9);
                let e_dram = model.dynamic_energy_with_activity(&dram, node, v, 0.9);
                meters.add(Structure::Core(0), e_core);
                meters.add(Structure::Llc, e_llc);
                meters.add(Structure::MemoryInterface, e_dram);
                waveform.push((e_core + e_llc + e_dram) / slice);
            }
            std::hint::black_box((meters.total_energy(), waveform.average_power()));
        });
    });
    group.finish();
}

fn bench_adc_sensor(c: &mut Criterion) {
    let mut group = c.benchmark_group("adc_sensor");
    apas(&mut group);
    let rig = MeasurementRig::for_max_power(Watts::new(65.0), 42).unwrap();
    let mut waveform = PowerWaveform::new(Seconds::from_ms(20.0));
    for i in 0..500u32 {
        waveform.push(Watts::new(26.0 + 6.0 * f64::from(i % 8)));
    }
    group.bench_function("rig_measure_10s", |b| {
        b.iter(|| std::hint::black_box(rig.measure(&waveform, 1)));
    });
    group.finish();
}

fn bench_cell_e2e(c: &mut Criterion) {
    let mut group = c.benchmark_group("cell_e2e");
    apas(&mut group);
    let config = ChipConfig::stock(ProcessorId::Core2DuoE6600.spec());
    let jess = by_name("jess").unwrap();
    group.bench_function("fast_cell_jess_c2d", |b| {
        b.iter(|| {
            let runner = Runner::fast();
            std::hint::black_box(runner.try_measure(&config, jess).unwrap());
        });
    });
    group.finish();
}

fn bench_serve_cache_hit(c: &mut Criterion) {
    let mut group = c.benchmark_group("serve_cache_hit");
    apas(&mut group);
    let config = ChipConfig::stock(ProcessorId::Core2DuoE6600.spec());
    let jess = by_name("jess").unwrap();
    let runner = Runner::fast();
    let _ = runner.try_measure(&config, jess).unwrap();
    group.bench_function("warm_cell_jess_c2d", |b| {
        b.iter(|| std::hint::black_box(runner.try_measure(&config, jess).unwrap()));
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_trace_gen,
    bench_interval_core,
    bench_energy_integration,
    bench_adc_sensor,
    bench_cell_e2e,
    bench_serve_cache_hit
);
criterion_main!(benches);
