//! Criterion benches for the simulator primitives: cache access, miss-rate
//! estimation, interval evaluation, a full chip run, and the sensing rig.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

use lhr_sensors::MeasurementRig;
use lhr_trace::{LocalityProfile, SplitMix64};
use lhr_uarch::{
    phase_performance, Cache, CacheGeometry, ChipConfig, ChipSimulator, Environment,
    MissRateEstimator, ProcessorId,
};
use lhr_units::Watts;
use lhr_workloads::by_name;

fn bench_cache_access(c: &mut Criterion) {
    let mut group = c.benchmark_group("cache");
    group.sample_size(30);
    let profile = LocalityProfile::hierarchical(32 << 10, 256 << 10, 4 << 20, 0.7, 0.2);
    group.bench_function("lru_32k_access_stream_4k", |b| {
        let mut rng = SplitMix64::new(1);
        let addrs: Vec<u64> = profile.address_stream(&mut rng).take(4096).collect();
        b.iter_batched(
            || Cache::new(CacheGeometry::new(32 << 10, 8, 64)),
            |mut cache| {
                for &a in &addrs {
                    std::hint::black_box(cache.access(a));
                }
                cache
            },
            BatchSize::SmallInput,
        );
    });
    group.bench_function("miss_rate_estimation_cold", |b| {
        let mut salt = 0u64;
        b.iter(|| {
            // Vary the profile so memoization does not short-circuit.
            salt += 1;
            let p = LocalityProfile::hierarchical(
                32 << 10,
                256 << 10,
                (4 << 20) + salt * 4096,
                0.7,
                0.2,
            );
            let est = MissRateEstimator::new();
            std::hint::black_box(est.global_miss_rate(&p, 256 << 10))
        });
    });
    group.finish();
}

fn bench_interval_model(c: &mut Criterion) {
    let spec = ProcessorId::CoreI7_920.spec();
    let w = by_name("gcc").unwrap();
    let phase = &w.trace().phases()[0];
    let est = MissRateEstimator::new();
    // Warm the memo so we measure the analytical evaluation itself.
    let env = Environment::solo(spec, spec.base_clock);
    let _ = phase_performance(spec, phase, &env, &est);
    c.bench_function("interval_phase_performance_warm", |b| {
        b.iter(|| std::hint::black_box(phase_performance(spec, phase, &env, &est)));
    });
}

fn bench_chip_run(c: &mut Criterion) {
    let mut group = c.benchmark_group("chip");
    group.sample_size(10);
    let sim = ChipSimulator::new().with_target_slices(200);
    let mut jess = by_name("jess").unwrap().clone();
    jess.scale_trace(0.2);
    let i7 = ChipConfig::stock(ProcessorId::CoreI7_920.spec());
    group.bench_function("run_jess_on_i7_200_slices", |b| {
        b.iter(|| std::hint::black_box(sim.run(&i7, &jess, 1)));
    });
    let mut sunflow = by_name("sunflow").unwrap().clone();
    sunflow.scale_trace(0.05);
    group.bench_function("run_sunflow_8_contexts", |b| {
        b.iter(|| std::hint::black_box(sim.run(&i7, &sunflow, 1)));
    });
    group.finish();
}

fn bench_sensing(c: &mut Criterion) {
    let sim = ChipSimulator::new().with_target_slices(200);
    let mut w = by_name("jess").unwrap().clone();
    w.scale_trace(0.2);
    let cfg = ChipConfig::stock(ProcessorId::Core2DuoE6600.spec());
    let run = sim.run(&cfg, &w, 1);
    let rig = MeasurementRig::for_max_power(Watts::new(65.0), 7).unwrap();
    c.bench_function("rig_measure_waveform", |b| {
        b.iter(|| std::hint::black_box(rig.measure(&run.waveform, 1)));
    });
}

criterion_group!(
    benches,
    bench_cache_access,
    bench_interval_model,
    bench_chip_run,
    bench_sensing
);
criterion_main!(benches);
