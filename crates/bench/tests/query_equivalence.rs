//! The paper's figures and headline findings, re-derived from the
//! measurement store by the stored queries in `queries/`, must render
//! byte-for-byte identically to the direct experiment pipelines. This
//! is the bit-identity contract for the store: persisting cells through
//! the sink and aggregating them with the query engine loses nothing.

use std::path::PathBuf;
use std::sync::Arc;

use lhr_bench::queries;
use lhr_core::experiments::{figure7_clock, figure8_dieshrink};
use lhr_core::Harness;
use lhr_store::Store;
use lhr_uarch::{ChipConfig, ProcessorId};

fn tempdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("lhr-query-equiv-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn sinked_harness(dir: &PathBuf) -> (Harness, Arc<Store>) {
    let store = Arc::new(Store::open(dir).unwrap());
    let harness = Harness::quick().with_cell_sink(Arc::clone(&store) as _);
    (harness, store)
}

#[test]
fn stored_figure7_query_matches_the_direct_pipeline_bit_for_bit() {
    let dir = tempdir("fig7");
    let (harness, store) = sinked_harness(&dir);
    let direct = figure7_clock::run(&harness);
    let derived = queries::derive_figure7(&store, 4).unwrap();
    // Compare rendered output, not structs: the derivation fills fields
    // the renderer never reads with NaN, and NaN breaks PartialEq.
    assert_eq!(
        figure7_clock::render(&direct),
        figure7_clock::render(&derived),
        "figure 7 derived from the store diverged from the direct run"
    );
    assert_eq!(
        figure7_clock::render_curves(&direct),
        figure7_clock::render_curves(&derived),
        "figure 7 per-point curves diverged"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn stored_figure8_query_matches_the_direct_pipeline_bit_for_bit() {
    let dir = tempdir("fig8");
    let (harness, store) = sinked_harness(&dir);
    let direct = figure8_dieshrink::run(&harness);
    let derived = queries::derive_figure8(&store).unwrap();
    assert_eq!(
        figure8_dieshrink::render(&direct),
        figure8_dieshrink::render(&derived),
        "figure 8 derived from the store diverged from the direct run"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn finding_queries_reproduce_harness_aggregates_bitwise() {
    let dir = tempdir("findings");
    let (harness, store) = sinked_harness(&dir);
    let i7 = ChipConfig::stock(ProcessorId::CoreI7_920.spec());
    let atom = ChipConfig::stock(ProcessorId::Atom230.spec());
    let c2d45 = ChipConfig::stock(ProcessorId::Core2DuoE7600.spec());
    let direct_i7 = harness.group_metrics(&i7);
    let direct_atom = harness.group_metrics(&atom);
    let _ = harness.group_metrics(&c2d45);

    // Finding 1: Nehalem vs Atom performance, equal-group-weight means.
    let text = queries::load_query("finding_i7_vs_atom_perf").unwrap();
    let table = store.query(&text).unwrap();
    let i7_perf = queries::avg_w_for_chip(&table, "i7 (45)", "mean(perf_norm)").unwrap();
    let atom_perf = queries::avg_w_for_chip(&table, "Atom (45)", "mean(perf_norm)").unwrap();
    assert_eq!(i7_perf.to_bits(), direct_i7.perf_w.to_bits());
    assert_eq!(atom_perf.to_bits(), direct_atom.perf_w.to_bits());
    assert!(
        i7_perf > atom_perf,
        "the paper's headline gap (i7 outperforms Atom) must survive the store"
    );

    // Finding 2: the measured power range spans well over 4x across
    // chips, sorted hottest-first by the stored query.
    let text = queries::load_query("finding_power_range").unwrap();
    let table = store.query(&text).unwrap();
    assert!(table.rows.len() >= 3, "expected one row per measured chip");
    let mean_col = table
        .columns
        .iter()
        .position(|c| c == "mean(watts)")
        .unwrap();
    let means: Vec<f64> = table
        .rows
        .iter()
        .map(|r| match &r[mean_col] {
            lhr_store::Value::Num(x) => *x,
            lhr_store::Value::Str(s) => panic!("mean(watts) was a string: {s}"),
        })
        .collect();
    assert!(
        means.windows(2).all(|w| w[0] >= w[1]),
        "sort mean(watts) desc must order rows hottest-first"
    );
    assert!(
        means[0] > 4.0 * means[means.len() - 1],
        "power range across chips should exceed 4x ({means:?})"
    );

    // Finding 3: managed EPI on 45nm grouped by SMT -- both SMT classes
    // present (i7 has SMT, the Core 2 / Atom parts measured here vary),
    // every mean finite and positive.
    let text = queries::load_query("finding_managed_epi_smt").unwrap();
    let table = store.query(&text).unwrap();
    assert_eq!(table.columns, vec!["smt".to_owned(), "mean(epi)".to_owned()]);
    assert!(!table.rows.is_empty(), "managed 45nm rows must exist");
    for r in &table.rows {
        match &r[1] {
            lhr_store::Value::Num(x) => {
                assert!(x.is_finite() && *x > 0.0, "EPI must be finite and positive")
            }
            lhr_store::Value::Str(s) => panic!("mean(epi) was a string: {s}"),
        }
    }

    // The Pareto view runs and keeps at least one frontier point.
    let text = queries::load_query("pareto_power_perf").unwrap();
    let table = store.query(&text).unwrap();
    assert!(!table.rows.is_empty(), "pareto frontier cannot be empty");

    let _ = std::fs::remove_dir_all(&dir);
}
