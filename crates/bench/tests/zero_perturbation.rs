//! Locks in the observability layer's central guarantee: an armed
//! recorder watches the pipeline without changing a single byte of what
//! it produces.

use std::fs;
use std::sync::Arc;

use lhr_bench::{run_experiment, Observability};
use lhr_core::{configs, grid_units, AbortHandle, Harness, Supervisor};

/// The experiments the byte-compare covers: one sweep-heavy table and
/// one ratio figure, both exercising the rig, runner, and harness layers.
const PROBES: [&str; 2] = ["figure4", "figure7"];

#[test]
fn armed_recorder_never_changes_a_rendered_byte() {
    let silent = Harness::quick();
    let observability = Observability::with_trace_path(None);
    let observed = observability.arm(Harness::quick());
    for name in PROBES {
        let a = run_experiment(name, &silent);
        let b = run_experiment(name, &observed);
        assert_eq!(a, b, "{name}: observed output must be byte-identical");
    }
    // The comparison is only meaningful if the recorder actually saw the
    // pipeline at work.
    let snap = observability.snapshot();
    assert!(snap.events_recorded > 0, "recorder saw nothing");
    assert!(snap.counter("runner.measurements") > 0);
    assert!(snap.counter("harness.cells") > 0);
    assert!(snap.spans.contains_key("harness.cell"));
    assert_eq!(snap.trace_write_errors, 0, "no trace file, no write errors");
    // The byte-compare above ran with the windowed time-series recorder
    // armed in the same fanout; prove it was live, not a stub.
    let ts = observability.timeseries().snapshot();
    assert!(!ts.series.is_empty(), "time-series recorder saw nothing");
    assert!(
        ts.series.iter().any(|s| s.name == "runner.measurements"),
        "engine counters must land in the windowed view"
    );
    assert!(
        ts.series
            .iter()
            .any(|s| s.kind == "distribution" && s.quantiles.is_some()),
        "span durations must feed windowed quantiles"
    );
}

#[test]
fn armed_span_store_under_a_live_trace_never_changes_a_rendered_byte() {
    // The distributed-tracing analog of the recorder guarantee: a span
    // store persisting every span of a live 128-bit trace watches the
    // pipeline without changing a byte of what it renders.
    let dir = std::env::temp_dir().join(format!(
        "lhr-zero-perturb-spans-{}",
        std::process::id()
    ));
    let _ = fs::remove_dir_all(&dir);
    let spans = Arc::new(
        lhr_store::SpanRecorder::open(&dir, "bench", lhr_store::SamplingConfig::default())
            .expect("open span store"),
    );
    let obs = lhr_obs::Obs::fanout(vec![spans.clone() as Arc<dyn lhr_obs::Recorder>]);
    let silent = Harness::quick();
    let traced = Harness::quick().with_observer(obs);
    let trace = lhr_obs::context::next_trace_id();
    let ctx = lhr_obs::context::Ctx {
        request: lhr_obs::context::next_request_id(),
        parent: 0,
        trace,
    };
    for name in PROBES {
        let a = run_experiment(name, &silent);
        let b = lhr_obs::context::with_ctx(ctx, || run_experiment(name, &traced));
        assert_eq!(a, b, "{name}: traced output must be byte-identical");
    }
    spans.drain().expect("drain span store");
    let rows = spans.table().trace_rows(trace);
    assert!(
        rows.iter().any(|r| r.name == "harness.cell"),
        "the span store must have seen the pipeline at work: {rows:?}"
    );
    assert_eq!(spans.append_errors(), 0, "no append failures on a healthy disk");
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn supervised_campaign_never_changes_a_rendered_byte() {
    // The supervision guarantee mirrors the observability one: the
    // campaign supervisor schedules, journals, and deadline-watches the
    // grid, but the measurements it warms into the cache -- and every
    // artifact rendered from them -- stay byte-identical to an
    // unsupervised run.
    let silent = Harness::quick();
    let supervised = Arc::new(Harness::quick());
    let units = grid_units(&configs::stock_configs(), supervised.workloads());
    let supervisor = Supervisor::new(supervised.clone()).with_max_cell_seconds(120.0);
    let report = supervisor.run(&units, &(), &AbortHandle::new());
    assert!(!report.aborted, "generous deadlines never abort");
    assert_eq!(report.failed, 0, "a healthy rig fails no cells");
    assert_eq!(report.completed, units.len());
    assert!(report.sweep_health().is_clean(), "no degradation on a clean rig");
    for name in PROBES {
        let a = run_experiment(name, &silent);
        let b = run_experiment(name, &supervised);
        assert_eq!(a, b, "{name}: supervised output must be byte-identical");
    }
}

#[test]
fn trace_stream_and_profile_summary_round_trip() {
    let path = std::env::temp_dir().join(format!(
        "lhr-trace-test-{}.jsonl",
        std::process::id()
    ));
    let observability = Observability::with_trace_path(Some(&path));
    assert!(observability.tracing());
    let harness = observability.arm(Harness::quick());
    {
        let _span = observability.experiment_span("figure4");
        let _ = run_experiment("figure4", &harness);
    }
    let summary = observability.profile_summary();
    assert!(summary.contains("figure4"), "per-experiment time:\n{summary}");
    assert!(summary.contains("cells/sec"), "throughput line:\n{summary}");
    assert!(summary.contains("retries"), "resilience totals:\n{summary}");
    assert!(summary.contains("degraded cells"), "{summary}");

    let trace = fs::read_to_string(&path).expect("trace file written");
    fs::remove_file(&path).ok();
    assert!(!trace.is_empty());
    for line in trace.lines() {
        assert!(line.starts_with('{') && line.ends_with('}'), "bad line {line:?}");
    }
    assert!(trace.contains(r#""name":"experiment.figure4""#));
    assert!(trace.contains(r#""ev":"span_end""#));
    assert!(trace.contains(r#""ev":"counter""#));
    let lines = trace.lines().count() as u64;
    assert!(summary.contains(&format!("{lines} lines")), "{summary}");
}
