//! Torn-tail recovery, exhaustively: a crash can cut the journal's
//! final record at *any* byte. Replay must never panic, must keep every
//! earlier record, and must count the torn line as skipped so the
//! resuming campaign simply re-measures that cell.

use std::fs;
use std::path::PathBuf;

use lhr_bench::campaign::{load_journal, seal_line, JournalWriter};

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("lhr-journal-torn-{}-{name}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

/// A syntactically real ok-cell body (the shape `record_unit` writes),
/// with distinct values per index so survivors are identifiable.
fn cell_body(i: usize) -> String {
    format!(
        "{{\"cell\":\"i7 (45) stock\",\"workload\":\"w{i}\",\"status\":\"ok\",\
         \"attempts\":1,\"deadline_misses\":0,\"retries\":0,\"recalibrations\":0,\
         \"rejected_outliers\":0,\"time\":[5,1.2{i},0.01,1.1,1.3],\
         \"power\":[5,40.{i},0.5,39.0,42.0]"
    )
}

#[test]
fn torn_final_record_is_skipped_at_every_byte_offset() {
    let dir = scratch("every-offset");
    let path = dir.join("journal.jsonl");
    {
        let journal = JournalWriter::fresh(&path, "fast", 1, 3).expect("fresh journal");
        for i in 0..3 {
            journal.record_raw(cell_body(i)).expect("record cell");
        }
    }
    let full = fs::read(&path).expect("read journal");
    let text = String::from_utf8(full.clone()).expect("utf8");
    // Intact baseline: header + 3 cells.
    let intact = load_journal(&path).expect("load intact");
    assert_eq!(intact.ok_cells.len(), 3);
    assert_eq!(intact.skipped_lines, 0);

    // The final record starts after the second-to-last newline.
    let last_line_start = text.trim_end().rfind('\n').expect("multi-line journal") + 1;
    let torn_path = dir.join("torn.jsonl");

    // Losing only the trailing newline is not a tear: the record is
    // whole and must still parse.
    fs::write(&torn_path, &full[..full.len() - 1]).expect("write newline-less copy");
    let loaded = load_journal(&torn_path).expect("load newline-less");
    assert_eq!(loaded.ok_cells.len(), 3, "a missing final newline loses nothing");

    // Every cut *inside* the record is a tear.
    for cut in last_line_start..full.len() - 1 {
        fs::write(&torn_path, &full[..cut]).expect("write torn copy");
        let loaded = load_journal(&torn_path)
            .unwrap_or_else(|e| panic!("torn journal at byte {cut} must load: {e}"));
        // Everything before the torn record survives, bit-exact.
        assert_eq!(
            loaded.ok_cells.len(),
            2,
            "cells before the tear must survive a cut at byte {cut}"
        );
        assert_eq!(loaded.ok_cells[0].workload, "w0");
        assert_eq!(loaded.ok_cells[1].workload, "w1");
        // The torn record itself is either gone entirely (cut exactly at
        // the line start) or counted as skipped -- never half-parsed.
        assert!(
            loaded.skipped_lines <= 1,
            "a single torn record must cost at most one skipped line (cut {cut})"
        );
        assert!(
            loaded
                .ok_cells
                .iter()
                .all(|c| c.workload != "w2"),
            "the torn record must never half-parse into a cell (cut {cut})"
        );
    }
}

#[test]
fn corrupted_middle_record_is_skipped_without_losing_neighbors() {
    let dir = scratch("tamper");
    let path = dir.join("journal.jsonl");
    {
        let journal = JournalWriter::fresh(&path, "fast", 1, 3).expect("fresh journal");
        for i in 0..3 {
            journal.record_raw(cell_body(i)).expect("record cell");
        }
    }
    let text = fs::read_to_string(&path).expect("read journal");
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 4, "header + 3 cells");

    // Flip one byte inside the middle cell's payload: its CRC no longer
    // matches, so replay must drop exactly that line.
    let mut tampered: Vec<String> = lines.iter().map(|&l| l.to_owned()).collect();
    let target = &mut tampered[2];
    let flip_at = target.find("\"w1\"").expect("workload in line") + 1;
    target.replace_range(flip_at..=flip_at, "X");
    fs::write(&path, tampered.join("\n") + "\n").expect("write tampered");

    let loaded = load_journal(&path).expect("load tampered");
    assert_eq!(loaded.skipped_lines, 1, "exactly the tampered line is dropped");
    let survivors: Vec<&str> = loaded.ok_cells.iter().map(|c| c.workload.as_str()).collect();
    assert_eq!(survivors, ["w0", "w2"], "neighbors survive bit-exact");

    // A record re-sealed after tampering would pass the CRC -- the seal
    // is an integrity check against tearing, not tampering; make sure a
    // correctly re-sealed line *does* parse (documents the contract).
    let resealed = seal_line(cell_body(9));
    fs::write(&path, format!("{}\n{resealed}\n", lines[0])).expect("write resealed");
    let loaded = load_journal(&path).expect("load resealed");
    assert_eq!(loaded.ok_cells.len(), 1);
    assert_eq!(loaded.ok_cells[0].workload, "w9");
}
