//! The kill-and-resume guarantee, end to end against the real
//! `repro_all` binary: a campaign aborted mid-flight and resumed from
//! its journal regenerates **byte-identical** artifacts to an
//! uninterrupted run -- even with a torn journal tail from the "crash".
//!
//! This is the reproduction's version of the paper's multi-day
//! measurement campaign surviving a power cut at hour 40.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::Command;

/// A scratch directory unique to this test process.
fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("lhr-resume-{}-{name}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

/// Runs the `repro_all` binary with `args`, returning its exit code.
fn repro_all(args: &[&str]) -> i32 {
    let status = Command::new(env!("CARGO_BIN_EXE_repro_all"))
        .args(args)
        .current_dir(std::env::temp_dir())
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::inherit())
        .status()
        .expect("spawn repro_all");
    status.code().expect("exit code")
}

/// The experiment artifacts in a directory, name -> bytes.
fn artifacts(dir: &Path) -> Vec<(String, Vec<u8>)> {
    let mut out: Vec<(String, Vec<u8>)> = fs::read_dir(dir)
        .expect("read out dir")
        .filter_map(Result::ok)
        .filter(|e| e.file_name().to_string_lossy().ends_with(".txt"))
        .map(|e| {
            (
                e.file_name().to_string_lossy().into_owned(),
                fs::read(e.path()).expect("read artifact"),
            )
        })
        .collect();
    out.sort();
    out
}

#[test]
fn killed_campaign_resumes_to_byte_identical_artifacts() {
    let interrupted = scratch("interrupted");
    let fresh = scratch("fresh");
    let journal = interrupted.join("campaign.jsonl");
    let journal_arg = journal.to_string_lossy().into_owned();
    let interrupted_arg = interrupted.to_string_lossy().into_owned();
    let fresh_arg = fresh.to_string_lossy().into_owned();

    // 1. Start the campaign and "crash" it after 40 cells: the driver
    //    aborts deterministically and exits with the aborted code.
    let code = repro_all(&[
        "--quick",
        "--out-dir",
        &interrupted_arg,
        "--journal",
        &journal_arg,
        "--abort-after",
        "40",
    ]);
    assert_eq!(code, 3, "an aborted campaign must exit with code 3");
    assert!(journal.exists(), "the journal survives the crash");
    let journal_text = fs::read_to_string(&journal).expect("read journal");
    let lines_before = journal_text.lines().count();
    assert!(
        lines_before >= 40,
        "at least the header plus ~40 cells journaled, got {lines_before}"
    );
    assert!(
        artifacts(&interrupted).is_empty(),
        "the crash hit before the artifact phase"
    );

    // 2. Tear the journal's tail, as a crash mid-append would: the last
    //    record loses its end (and with it, its checksum).
    let torn = &journal_text[..journal_text.len() - 30];
    fs::write(&journal, torn).expect("tear journal tail");

    // 3. Resume: the journal replays (minus the torn record), the
    //    missing cells re-execute, and the artifacts get written.
    let code = repro_all(&[
        "--quick",
        "--out-dir",
        &interrupted_arg,
        "--journal",
        &journal_arg,
        "--resume",
    ]);
    assert_eq!(code, 0, "the resumed campaign completes cleanly");
    let resumed = artifacts(&interrupted);
    assert_eq!(resumed.len(), 16, "all sixteen experiments rendered");
    let resumed_journal = fs::read_to_string(&journal).expect("read journal");
    assert!(
        resumed_journal.lines().count() > lines_before,
        "resume appended the remaining cells to the same journal"
    );

    // 4. An uninterrupted run from nothing produces the same bytes:
    //    interruption cost wall-clock time, never data.
    let code = repro_all(&["--quick", "--out-dir", &fresh_arg]);
    assert_eq!(code, 0, "the fresh campaign completes cleanly");
    let baseline = artifacts(&fresh);
    assert_eq!(baseline.len(), 16);
    for ((name_a, bytes_a), (name_b, bytes_b)) in baseline.iter().zip(&resumed) {
        assert_eq!(name_a, name_b);
        assert_eq!(
            bytes_a, bytes_b,
            "{name_a}: resumed artifact must be byte-identical to the uninterrupted run"
        );
    }

    // 5. Resuming a *completed* campaign is a fast no-op replay that
    //    re-verifies every artifact checksum against the journal.
    let code = repro_all(&[
        "--quick",
        "--out-dir",
        &interrupted_arg,
        "--journal",
        &journal_arg,
        "--resume",
    ]);
    assert_eq!(code, 0, "re-resume verifies checksums and stays clean");

    fs::remove_dir_all(&interrupted).ok();
    fs::remove_dir_all(&fresh).ok();
}
