//! A kill-anything chaos harness for the serving layer.
//!
//! The harness drives the real `lhr_serve` *binary* over its real TCP
//! surface -- no test doubles -- and injects the faults an unattended
//! deployment actually meets:
//!
//! * **SIGKILL mid-campaign** -- the process dies between journal
//!   fsyncs; the journal's write-ahead discipline must make the loss
//!   invisible after a `--resume` restart.
//! * **Torn journal tails** -- [`tear_tail`] truncates the journal at
//!   an arbitrary byte (the header line is never touched), simulating
//!   a crash landing mid-write on top of the kill.
//! * **Sensor stalls** -- the server's `--fault-stall` knob wedges a
//!   chip's sensor rig for its first runs; stalls burn wall-clock but
//!   never change measured values, so artifacts stay byte-identical.
//! * **Queue saturation** -- [`Overload`] aims a pool of clients at an
//!   endpoint so admission control sheds under real concurrency while
//!   the campaign makes progress on the background lane.
//!
//! Every knob derives from one seed ([`ChaosPlan::from_seed`] for the
//! campaign drill, [`ShardChaosPlan::from_seed`] for the shard drill),
//! so a failing chaos run reproduces exactly. The harness itself lives
//! in `lhr-bench` and talks only TCP + process control: it has no
//! compile-time dependency on the serve crate, which keeps the
//! layering acyclic (serve depends on bench for its journal).
//!
//! All HTTP in this module rides the hardened [`crate::httpc`] client:
//! a torn body (server killed mid-write) surfaces as a typed
//! truncation error, never as a quiet prefix that byte-identity checks
//! would wave through.
//!
//! See `examples/chaos_campaign.rs` for the full kill/tear/resume
//! drill, `examples/shard_chaos.rs` for the sharded kill + rolling
//! restart drill, and the `chaos`/`shard-chaos` CI jobs that run them
//! on every push.

use std::fs;
use std::io::{self, BufRead, BufReader};
use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::httpc;
use lhr_trace::{Rng64, SplitMix64};

// ---------------------------------------------------------------------
// Fault schedule
// ---------------------------------------------------------------------

/// The seeded fault schedule for one chaos run. Every quantity is a
/// pure function of the seed, so a failure report that names the seed
/// names the whole scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChaosPlan {
    /// The seed everything below derives from.
    pub seed: u64,
    /// SIGKILL the server once this many campaign cells have resolved.
    pub kill_after_cells: usize,
    /// Bytes to tear off the journal tail after the kill (the header
    /// line is always preserved).
    pub tear_bytes: usize,
    /// Concurrent overload clients hammering the server during the
    /// campaign.
    pub overload_clients: usize,
}

impl ChaosPlan {
    /// Derives a fault schedule from `seed`: kill after 2-4 cells, tear
    /// 1-40 bytes, 8-16 overload clients.
    #[must_use]
    pub fn from_seed(seed: u64) -> Self {
        let mut rng = SplitMix64::new(seed);
        Self {
            seed,
            kill_after_cells: 2 + rng.next_below(3) as usize,
            tear_bytes: 1 + rng.next_below(40) as usize,
            overload_clients: 8 + rng.next_below(9) as usize,
        }
    }
}

/// The seeded fault schedule for one sharded chaos run (see
/// `examples/shard_chaos.rs`): which backend dies, which one gets the
/// rolling restart, and how much client pressure rides through the
/// router while both happen.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardChaosPlan {
    /// The seed everything below derives from.
    pub seed: u64,
    /// Index of the backend to SIGKILL (of the 3 the drill boots).
    pub kill_backend: usize,
    /// Index of the backend to roll-restart via drain; always differs
    /// from [`ShardChaosPlan::kill_backend`].
    pub drain_backend: usize,
    /// Concurrent verifying clients driving load through the router.
    pub clients: usize,
    /// Router-routed requests each client must complete before the
    /// first fault lands (warms every shard's cache path).
    pub warmup_requests: usize,
}

impl ShardChaosPlan {
    /// Derives a shard fault schedule from `seed`: kill one of three
    /// backends, roll-restart a different one, 4-8 clients, 3-6 warmup
    /// requests per client.
    #[must_use]
    pub fn from_seed(seed: u64) -> Self {
        let mut rng = SplitMix64::new(seed ^ 0x5AAD);
        let kill_backend = rng.next_below(3) as usize;
        // Pick the drain target from the two survivors.
        let drain_backend = (kill_backend + 1 + rng.next_below(2) as usize) % 3;
        Self {
            seed,
            kill_backend,
            drain_backend,
            clients: 4 + rng.next_below(5) as usize,
            warmup_requests: 3 + rng.next_below(4) as usize,
        }
    }
}

// ---------------------------------------------------------------------
// Process control
// ---------------------------------------------------------------------

/// Locates a release binary of this workspace by name: the explicit
/// `env_override` variable wins, otherwise the binary is expected next
/// to the calling test/example executable's target directory
/// (`target/release/examples/x` -> `target/release/<name>`).
///
/// # Errors
///
/// The binary not existing (the message names the build command).
pub fn locate_binary(name: &str, env_override: &str) -> io::Result<PathBuf> {
    if let Ok(path) = std::env::var(env_override) {
        return Ok(PathBuf::from(path));
    }
    let me = std::env::current_exe()?;
    // Tests live in target/release/deps/, examples in
    // target/release/examples/; walk up until a dir holding the binary.
    let mut dir = me.parent();
    while let Some(d) = dir {
        let bin = d.join(name);
        if bin.is_file() {
            return Ok(bin);
        }
        if d.file_name().is_some_and(|n| n == "target") {
            break;
        }
        dir = d.parent();
    }
    Err(io::Error::other(format!(
        "{name} not found near {}; build it first: \
         cargo build --release -p lhr-serve --bin {name} (or set {env_override})",
        me.display()
    )))
}

/// A running serving-layer child process (`lhr_serve` or `lhr_router`),
/// its bound address parsed from the boot banner (so `--addr
/// 127.0.0.1:0` works and tests never race over a fixed port).
#[derive(Debug)]
pub struct ServerProc {
    child: Child,
    addr: SocketAddr,
    drain: Option<JoinHandle<()>>,
}

impl ServerProc {
    /// Spawns `binary` with `args`, waits for its listening banner, and
    /// returns a handle once the server accepts connections.
    ///
    /// # Errors
    ///
    /// Spawn failures, or the child exiting before it prints a banner.
    pub fn spawn(binary: &Path, args: &[&str]) -> io::Result<Self> {
        let mut child = Command::new(binary)
            .args(args)
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit())
            .spawn()?;
        let stdout = child.stdout.take().expect("piped stdout");
        let mut reader = BufReader::new(stdout);
        let mut line = String::new();
        // Both serving binaries print "<name> listening on http://ADDR";
        // matching the shared suffix keeps one harness for all of them.
        const BANNER: &str = "listening on http://";
        let addr = loop {
            line.clear();
            if reader.read_line(&mut line)? == 0 {
                let _ = child.kill();
                let _ = child.wait();
                return Err(io::Error::other("server exited before its banner"));
            }
            if let Some(at) = line.find(BANNER) {
                let rest = line[at + BANNER.len()..].trim();
                break rest
                    .parse::<SocketAddr>()
                    .map_err(|e| io::Error::other(format!("bad banner addr {rest:?}: {e}")))?;
            }
        };
        // Keep draining stdout so the child never blocks on a full pipe.
        let drain = std::thread::spawn(move || {
            let mut sink = String::new();
            while matches!(reader.read_line(&mut sink), Ok(n) if n > 0) {
                sink.clear();
            }
        });
        Ok(Self {
            child,
            addr,
            drain: Some(drain),
        })
    }

    /// The server's bound address.
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// SIGKILLs the server -- no drain, no flush, exactly the failure
    /// the journal must survive.
    ///
    /// # Errors
    ///
    /// Any error delivering the kill or reaping the child.
    pub fn kill(mut self) -> io::Result<()> {
        self.child.kill()?;
        let _ = self.child.wait()?;
        if let Some(d) = self.drain.take() {
            let _ = d.join();
        }
        Ok(())
    }

    /// Requests a graceful drain (`POST /admin/drain`) and waits for
    /// the process to exit 0.
    ///
    /// # Errors
    ///
    /// The drain request failing, the child erroring on wait, or a
    /// non-zero exit.
    pub fn drain(mut self) -> io::Result<()> {
        let _ = http_post(self.addr, "/admin/drain")?;
        let status = self.child.wait()?;
        if let Some(d) = self.drain.take() {
            let _ = d.join();
        }
        if status.success() {
            Ok(())
        } else {
            Err(io::Error::other(format!("server exited {status}")))
        }
    }
}

impl Drop for ServerProc {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
        if let Some(d) = self.drain.take() {
            let _ = d.join();
        }
    }
}

// ---------------------------------------------------------------------
// HTTP clients
// ---------------------------------------------------------------------

/// The read deadline the chaos helpers hand to [`crate::httpc`]: long
/// enough for a cold campaign cell, short enough that a wedged server
/// still fails the drill.
const CHAOS_TIMEOUT: Duration = Duration::from_secs(120);

/// One raw HTTP exchange via the hardened client; returns
/// `(status, full response text)` so callers can keep splitting with
/// [`body_of`].
///
/// # Errors
///
/// Connection, send, or read failures (expected mid-kill; callers
/// decide whether that is fatal) -- including typed truncation when a
/// dying server tears the body (`httpc::ClientError::Truncated`).
pub fn http_request(addr: SocketAddr, raw: &str) -> io::Result<(u16, String)> {
    let resp = httpc::exchange(addr, raw.as_bytes(), CHAOS_TIMEOUT)?;
    Ok((resp.status, rebuild_text(&resp)))
}

/// Renders a validated [`httpc::HttpResponse`] back into the
/// `head\r\n\r\nbody` text shape the older string helpers expose.
fn rebuild_text(resp: &httpc::HttpResponse) -> String {
    use std::fmt::Write as _;
    let mut text = format!("HTTP/1.1 {}\r\n", resp.status);
    for (name, value) in &resp.headers {
        let _ = write!(text, "{name}: {value}\r\n");
    }
    text.push_str("\r\n");
    text.push_str(&resp.body_str());
    text
}

/// `GET target`.
///
/// # Errors
///
/// See [`http_request`].
pub fn http_get(addr: SocketAddr, target: &str) -> io::Result<(u16, String)> {
    let resp = httpc::get(addr, target, CHAOS_TIMEOUT)?;
    Ok((resp.status, rebuild_text(&resp)))
}

/// `POST target` with an empty body.
///
/// # Errors
///
/// See [`http_request`].
pub fn http_post(addr: SocketAddr, target: &str) -> io::Result<(u16, String)> {
    let resp = httpc::post(addr, target, CHAOS_TIMEOUT)?;
    Ok((resp.status, rebuild_text(&resp)))
}

/// The body of a full response text.
#[must_use]
pub fn body_of(response: &str) -> &str {
    response.split("\r\n\r\n").nth(1).unwrap_or("")
}

/// Polls `target` until `pred(body)` holds or `deadline` passes.
/// Connection errors are tolerated (the server may be mid-restart).
///
/// # Errors
///
/// Only the deadline expiring; the last observed body is in the error.
pub fn poll_until(
    addr: SocketAddr,
    target: &str,
    deadline: Duration,
    pred: impl Fn(&str) -> bool,
) -> io::Result<String> {
    let until = Instant::now() + deadline;
    let mut last = String::new();
    loop {
        if let Ok((status, text)) = http_get(addr, target) {
            let body = body_of(&text);
            if status == 200 && pred(body) {
                return Ok(body.to_owned());
            }
            last = format!("{status}: {body}");
        }
        if Instant::now() >= until {
            return Err(io::Error::other(format!(
                "deadline polling {target}; last: {last}"
            )));
        }
        std::thread::sleep(Duration::from_millis(50));
    }
}

// ---------------------------------------------------------------------
// Journal tearing
// ---------------------------------------------------------------------

/// Tears up to `bytes` off the end of a journal file, never cutting
/// into the first line (the campaign header must survive or the
/// journal is legitimately unrecoverable). Returns the bytes removed.
///
/// # Errors
///
/// Read/write failures on the journal file.
pub fn tear_tail(path: &Path, bytes: usize) -> io::Result<usize> {
    let data = fs::read(path)?;
    let header_end = data
        .iter()
        .position(|&b| b == b'\n')
        .map_or(data.len(), |i| i + 1);
    let keep = data.len().saturating_sub(bytes).max(header_end);
    let removed = data.len() - keep;
    if removed > 0 {
        fs::write(path, &data[..keep])?;
    }
    Ok(removed)
}

// ---------------------------------------------------------------------
// Overload
// ---------------------------------------------------------------------

/// A pool of client threads hammering one endpoint until stopped,
/// tallying outcomes. Used to saturate the interactive queue while a
/// campaign runs on the background lane: the campaign must keep making
/// progress and admission control must shed, not collapse.
#[derive(Debug)]
pub struct Overload {
    stop: Arc<AtomicBool>,
    ok: Arc<AtomicU64>,
    shed: Arc<AtomicU64>,
    errors: Arc<AtomicU64>,
    clients: Vec<JoinHandle<()>>,
}

/// The tally an [`Overload`] run ends with.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OverloadStats {
    /// Responses with status < 500 that were not sheds.
    pub ok: u64,
    /// `503` shed responses (admission control working).
    pub shed: u64,
    /// Connection-level failures (resets mid-kill are expected).
    pub errors: u64,
}

impl Overload {
    /// Starts `clients` threads issuing `GET target` in a loop. A `503`
    /// shed with a `Retry-After` header backs the client off for the
    /// advertised interval (capped at one second so a drill cannot
    /// stall) instead of immediately re-stampeding the shedding server.
    #[must_use]
    pub fn start(addr: SocketAddr, target: &str, clients: usize) -> Self {
        let stop = Arc::new(AtomicBool::new(false));
        let ok = Arc::new(AtomicU64::new(0));
        let shed = Arc::new(AtomicU64::new(0));
        let errors = Arc::new(AtomicU64::new(0));
        let clients = (0..clients.max(1))
            .map(|_| {
                let stop = Arc::clone(&stop);
                let ok = Arc::clone(&ok);
                let shed = Arc::clone(&shed);
                let errors = Arc::clone(&errors);
                let target = target.to_owned();
                std::thread::spawn(move || {
                    while !stop.load(Ordering::Relaxed) {
                        match httpc::get(addr, &target, CHAOS_TIMEOUT) {
                            Ok(resp) if resp.status == 503 => {
                                shed.fetch_add(1, Ordering::Relaxed);
                                if let Some(secs) = resp.retry_after_secs() {
                                    let backoff =
                                        Duration::from_secs(secs).min(Duration::from_secs(1));
                                    // Re-check stop so Overload::stop is
                                    // never held hostage by a backoff.
                                    let until = Instant::now() + backoff;
                                    while Instant::now() < until
                                        && !stop.load(Ordering::Relaxed)
                                    {
                                        std::thread::sleep(Duration::from_millis(10));
                                    }
                                }
                            }
                            Ok(_) => {
                                ok.fetch_add(1, Ordering::Relaxed);
                            }
                            Err(_) => {
                                errors.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                    }
                })
            })
            .collect();
        Self {
            stop,
            ok,
            shed,
            errors,
            clients,
        }
    }

    /// Stops the clients and returns the tally.
    #[must_use]
    pub fn stop(self) -> OverloadStats {
        self.stop.store(true, Ordering::Relaxed);
        for c in self.clients {
            let _ = c.join();
        }
        OverloadStats {
            ok: self.ok.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chaos_plan_is_a_pure_function_of_the_seed() {
        let a = ChaosPlan::from_seed(7);
        let b = ChaosPlan::from_seed(7);
        assert_eq!(a, b);
        assert!((2..=4).contains(&a.kill_after_cells));
        assert!((1..=40).contains(&a.tear_bytes));
        assert!((8..=16).contains(&a.overload_clients));
        // Different seeds land on different schedules eventually.
        assert!((0..64).any(|s| ChaosPlan::from_seed(s) != a));
    }

    #[test]
    fn shard_plan_is_deterministic_and_never_drains_the_killed_backend() {
        for seed in 0..256 {
            let plan = ShardChaosPlan::from_seed(seed);
            assert_eq!(plan, ShardChaosPlan::from_seed(seed));
            assert!(plan.kill_backend < 3);
            assert!(plan.drain_backend < 3);
            assert_ne!(
                plan.kill_backend, plan.drain_backend,
                "seed {seed}: rolling restart must target a survivor"
            );
            assert!((4..=8).contains(&plan.clients));
            assert!((3..=6).contains(&plan.warmup_requests));
        }
    }

    #[test]
    fn rebuild_text_round_trips_through_body_of() {
        let resp = httpc::HttpResponse {
            status: 200,
            headers: vec![("content-length".into(), "4".into())],
            body: b"body".to_vec(),
            length_checked: true,
        };
        let text = rebuild_text(&resp);
        assert!(text.starts_with("HTTP/1.1 200\r\n"));
        assert_eq!(body_of(&text), "body");
    }

    #[test]
    fn tear_tail_never_cuts_the_header_line() {
        let dir = std::env::temp_dir().join(format!("lhr-chaos-tear-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("scratch");
        let path = dir.join("j.jsonl");
        std::fs::write(&path, "header-line\nsecond\nthird\n").expect("write");

        // A modest tear removes tail bytes only.
        let removed = tear_tail(&path, 4).expect("tear");
        assert_eq!(removed, 4);
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "header-line\nsecond\nth");

        // An absurd tear stops at the header boundary.
        let removed = tear_tail(&path, 10_000).expect("tear all");
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "header-line\n");
        assert!(removed > 0);
        let removed = tear_tail(&path, 10_000).expect("tear again");
        assert_eq!(removed, 0, "the header is never torn");
    }
}
