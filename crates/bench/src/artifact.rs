//! Crash-safe artifact writes and content checksums for `repro_out/`.
//!
//! Every file a regenerator bin produces goes through [`write_atomic`]:
//! the bytes land in a temp file in the same directory, are fsynced,
//! and only then renamed over the destination (with a directory fsync
//! to persist the rename itself). A crash at any instant leaves either
//! the old complete file or the new complete file -- never a torn one.
//! This mirrors how the paper's multi-day campaign protected its data:
//! a power cut at hour 40 must not cost the first 39.

use std::fs;
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};

/// FNV-1a 64 content checksum (the same mix the measurement cache uses
/// for workload fingerprints), rendered by the campaign journal as
/// 16 hex digits.
#[must_use]
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// Writes `bytes` to `path` atomically: temp file in the same
/// directory, fsync, rename, directory fsync. Interrupting the process
/// at any point leaves the previous contents of `path` (if any) intact.
///
/// # Errors
///
/// Any I/O error from creating, writing, syncing, or renaming; on
/// error the destination is untouched and the temp file is removed
/// best-effort.
pub fn write_atomic(path: &Path, bytes: &[u8]) -> io::Result<()> {
    write_atomic_hooked(path, bytes, |_| Ok(()))
}

/// [`write_atomic`] with a fault hook run between the temp-file fsync
/// and the rename -- the unit tests' stand-in for a crash at the worst
/// possible instant.
fn write_atomic_hooked(
    path: &Path,
    bytes: &[u8],
    before_rename: impl FnOnce(&Path) -> io::Result<()>,
) -> io::Result<()> {
    let dir = match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p.to_path_buf(),
        _ => PathBuf::from("."),
    };
    let name = path
        .file_name()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "path has no file name"))?;
    let tmp = dir.join(format!(
        ".{}.tmp.{}",
        name.to_string_lossy(),
        std::process::id()
    ));
    let result = (|| {
        let mut f = fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
        drop(f);
        before_rename(&tmp)?;
        fs::rename(&tmp, path)
    })();
    if result.is_err() {
        let _ = fs::remove_file(&tmp);
        return result;
    }
    // Persist the rename: fsync the containing directory. Failure here
    // is not fatal to correctness of the visible file, so best-effort.
    if let Ok(d) = fs::File::open(&dir) {
        let _ = d.sync_all();
    }
    Ok(())
}

/// One entry of an artifact directory listing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArtifactEntry {
    /// Bare file name (no directory components).
    pub name: String,
    /// Size in bytes.
    pub bytes: u64,
}

/// Lists the regular files of an artifact directory (`repro_out/`),
/// sorted by name. Subdirectories, temp files from in-flight
/// [`write_atomic`] calls (leading `.`), and unreadable entries are
/// skipped -- the listing only ever names complete, published
/// artifacts. The serving layer's `/v1/artifacts` endpoint renders it.
///
/// # Errors
///
/// The [`io::Error`] from reading the directory itself (a missing
/// directory is the caller's 404, not a panic).
pub fn list_artifacts(dir: &Path) -> io::Result<Vec<ArtifactEntry>> {
    let mut entries = Vec::new();
    for entry in fs::read_dir(dir)? {
        let Ok(entry) = entry else { continue };
        let Ok(meta) = entry.metadata() else { continue };
        if !meta.is_file() {
            continue;
        }
        let name = entry.file_name().to_string_lossy().into_owned();
        if name.starts_with('.') {
            continue;
        }
        entries.push(ArtifactEntry {
            name,
            bytes: meta.len(),
        });
    }
    entries.sort_by(|a, b| a.name.cmp(&b.name));
    Ok(entries)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("lhr-artifact-{}", std::process::id()));
        fs::create_dir_all(&dir).expect("scratch dir");
        dir.join(name)
    }

    #[test]
    fn checksum_is_stable_and_content_sensitive() {
        assert_eq!(fnv64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv64(b"table4"), fnv64(b"table4"));
        assert_ne!(fnv64(b"table4"), fnv64(b"table5"));
    }

    #[test]
    fn atomic_write_replaces_whole_files() {
        let path = scratch("replace.txt");
        write_atomic(&path, b"first version\n").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"first version\n");
        write_atomic(&path, b"second version\n").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"second version\n");
        fs::remove_file(&path).ok();
    }

    #[test]
    fn simulated_crash_before_rename_leaves_the_old_file_intact() {
        let path = scratch("crash.txt");
        write_atomic(&path, b"the good data\n").unwrap();
        // The new write dies after the temp file hit disk but before the
        // rename: the destination must still hold the old bytes, and the
        // temp must not linger.
        let err = write_atomic_hooked(&path, b"half-written garbage", |tmp| {
            assert!(tmp.exists(), "temp file exists at the crash point");
            Err(io::Error::other("power cut"))
        })
        .unwrap_err();
        assert_eq!(err.to_string(), "power cut");
        assert_eq!(
            fs::read(&path).unwrap(),
            b"the good data\n",
            "old artifact survives a mid-write crash"
        );
        let dir = path.parent().unwrap();
        let leftovers: Vec<_> = fs::read_dir(dir)
            .unwrap()
            .filter_map(Result::ok)
            .filter(|e| e.file_name().to_string_lossy().contains("crash.txt.tmp"))
            .collect();
        assert!(leftovers.is_empty(), "no temp litter: {leftovers:?}");
        fs::remove_file(&path).ok();
    }

    #[test]
    fn listing_names_complete_artifacts_only() {
        let dir = std::env::temp_dir().join(format!("lhr-listing-{}", std::process::id()));
        fs::create_dir_all(dir.join("sub")).unwrap();
        write_atomic(&dir.join("table4.txt"), b"rows\n").unwrap();
        write_atomic(&dir.join("figure7.txt"), b"series\n").unwrap();
        fs::write(dir.join(".figure7.txt.tmp.123"), b"torn").unwrap();
        let listing = list_artifacts(&dir).unwrap();
        assert_eq!(
            listing.iter().map(|e| e.name.as_str()).collect::<Vec<_>>(),
            vec!["figure7.txt", "table4.txt"],
            "sorted, no temp files, no subdirectories"
        );
        assert_eq!(listing[1].bytes, 5);
        assert!(list_artifacts(&dir.join("absent")).is_err());
        fs::remove_dir_all(&dir).ok();
    }
}
