//! Regenerates the paper's figure12. Flags: `--quick`, `--paper`.
fn main() {
    lhr_bench::main_for("figure12");
}
