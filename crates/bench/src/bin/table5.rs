//! Regenerates the paper's table5. Flags: `--quick`, `--paper`.
fn main() {
    lhr_bench::main_for("table5");
}
