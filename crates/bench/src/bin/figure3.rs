//! Regenerates the paper's figure3. Flags: `--quick`, `--paper`.
fn main() {
    lhr_bench::main_for("figure3");
}
