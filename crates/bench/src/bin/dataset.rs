//! Exports the per-benchmark dataset as csv, mirroring the paper's
//! published companion data in the ACM Digital Library: one row per
//! (benchmark, configuration) with time, power, and normalized metrics.
//!
//! Usage: `cargo run --release -p lhr-bench --bin dataset [--quick] [--paper]`
//! Writes `repro_out/dataset.csv`.

use lhr_bench::Fidelity;
use lhr_core::{configs, Table};

fn main() {
    let fidelity = Fidelity::from_args();
    let harness = fidelity.harness();
    let mut table = Table::new([
        "benchmark",
        "group",
        "configuration",
        "seconds",
        "seconds_ci95",
        "watts",
        "watts_ci95",
        "perf_normalized",
        "energy_normalized",
    ]);
    for config in configs::stock_configs() {
        for e in harness.evaluate_config(&config) {
            let m = &e.measurement;
            table.row([
                m.workload.to_owned(),
                m.group.to_string(),
                m.config.clone(),
                format!("{:.6}", m.time.mean()),
                format!("{:.6}", m.time.ci95_halfwidth()),
                format!("{:.4}", m.power.mean()),
                format!("{:.4}", m.power.ci95_halfwidth()),
                format!("{:.4}", e.perf_norm),
                format!("{:.4}", e.energy_norm),
            ]);
        }
    }
    std::fs::create_dir_all("repro_out").expect("create repro_out/");
    let csv = table.to_csv();
    // Crash-safe: an interrupted export leaves the previous csv intact.
    lhr_bench::artifact::write_atomic(std::path::Path::new("repro_out/dataset.csv"), csv.as_bytes())
        .expect("write dataset.csv");
    println!("{} rows -> repro_out/dataset.csv", table.len());
}
