//! Regenerates the ablation studies: the VM-service attribution for
//! Workload Finding 1 and the JVM-vendor power sensitivity of Section 2.2.

use lhr_bench::Fidelity;
use lhr_core::experiments::ablation;

fn main() {
    let harness = Fidelity::from_args().harness();
    let services = ablation::jvm_service_ablation(
        &harness,
        &["antlr", "db", "luindex", "fop", "jess", "compress"],
    );
    let vendors = ablation::vm_vendor_comparison(&harness, &["jess", "db", "sunflow", "xalan"]);
    println!("{}", ablation::render(&services, &vendors));
}
