//! Runs Section 4.1's thought experiment: the Pentium 4 die-shrunk across
//! four generations to 32nm, measured alongside the real chip.

use lhr_bench::Fidelity;
use lhr_core::experiments::retrospective;

fn main() {
    let harness = Fidelity::from_args().harness();
    let r = retrospective::run(&harness);
    println!("{}", retrospective::render(&r));
}
