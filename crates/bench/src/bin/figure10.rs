//! Regenerates the paper's figure10. Flags: `--quick`, `--paper`.
fn main() {
    lhr_bench::main_for("figure10");
}
