//! Regenerates every table and figure in one pass and writes each to
//! `repro_out/<name>.txt` (plus everything to stdout).
//!
//! Each experiment runs behind a panic guard: a faulted rig or dead cell
//! skips that experiment's output file and the run continues, ending with
//! the runner's health ledger. On a clean run the written files are
//! byte-for-byte identical to the non-resilient pipeline's.
//!
//! Flags: `--quick` (12-benchmark subset), `--paper` (prescribed
//! invocation counts), `--trace <path>` (stream pipeline events as JSON
//! lines and print the profile summary). Default: full catalog, 3
//! invocations.

use std::fs;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Instant;

use lhr_bench::{run_experiment, Fidelity, Observability, EXPERIMENTS};

fn main() {
    let fidelity = Fidelity::from_args();
    let observability = Observability::from_args();
    let harness = observability.arm(fidelity.harness());
    let out_dir = std::path::Path::new("repro_out");
    fs::create_dir_all(out_dir).expect("create repro_out/");
    println!("regenerating all tables and figures at {fidelity:?} fidelity\n");
    let t0 = Instant::now();
    let mut failed: Vec<&str> = Vec::new();
    for name in EXPERIMENTS {
        let t = Instant::now();
        let span = observability.experiment_span(name);
        let outcome = catch_unwind(AssertUnwindSafe(|| run_experiment(name, &harness)));
        span.end();
        match outcome {
            Ok(rendered) => {
                let path = out_dir.join(format!("{name}.txt"));
                fs::write(&path, &rendered).expect("write experiment output");
                println!("=== {name} ({:.1?}) ===\n{rendered}", t.elapsed());
            }
            Err(panic) => {
                let msg = panic
                    .downcast_ref::<String>()
                    .cloned()
                    .or_else(|| panic.downcast_ref::<&str>().map(|s| (*s).to_owned()))
                    .unwrap_or_else(|| "opaque panic".to_owned());
                println!("=== {name} FAILED ({:.1?}) ===\n{msg}\n", t.elapsed());
                failed.push(name);
            }
        }
    }
    println!("total: {:.1?}; outputs in repro_out/", t0.elapsed());
    println!("runner health: {}", harness.runner().health());
    println!("{}", observability.profile_summary());
    if !failed.is_empty() {
        println!("failed experiments: {}", failed.join(", "));
        std::process::exit(1);
    }
}
