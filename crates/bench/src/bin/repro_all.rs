//! Regenerates every table and figure in one pass and writes each to
//! `repro_out/<name>.txt` (plus everything to stdout).
//!
//! Flags: `--quick` (12-benchmark subset), `--paper` (prescribed
//! invocation counts). Default: full catalog, 3 invocations.

use std::fs;
use std::time::Instant;

use lhr_bench::{run_experiment, Fidelity, EXPERIMENTS};

fn main() {
    let fidelity = Fidelity::from_args();
    let harness = fidelity.harness();
    let out_dir = std::path::Path::new("repro_out");
    fs::create_dir_all(out_dir).expect("create repro_out/");
    println!("regenerating all tables and figures at {fidelity:?} fidelity\n");
    let t0 = Instant::now();
    for name in EXPERIMENTS {
        let t = Instant::now();
        let rendered = run_experiment(name, &harness);
        let path = out_dir.join(format!("{name}.txt"));
        fs::write(&path, &rendered).expect("write experiment output");
        println!("=== {name} ({:.1?}) ===\n{rendered}", t.elapsed());
    }
    println!("total: {:.1?}; outputs in repro_out/", t0.elapsed());
}
