//! Regenerates every table and figure in one pass as a supervised,
//! resumable campaign, writing each artifact crash-safely to
//! `repro_out/<name>.txt` (plus everything to stdout).
//!
//! The study grid (45 configurations x the catalog) is measured first
//! under the campaign supervisor, with every resolved cell appended to
//! a write-ahead journal (`repro_out/campaign.jsonl` by default). Kill
//! the run at any point and `--resume` replays the journal, re-executing
//! only the missing cells -- and regenerating byte-identical artifacts,
//! verified against the journal's recorded checksums.
//!
//! Each experiment then runs behind a panic guard: a faulted rig or dead
//! cell skips that experiment's output file and the run continues,
//! ending with the runner's health ledger. On a clean run the written
//! files are byte-for-byte identical to the non-resilient pipeline's.
//!
//! Flags: `--quick` (12-benchmark subset), `--paper` (prescribed
//! invocation counts), `--trace <path>` (stream pipeline events as JSON
//! lines), `--journal <path>`, `--resume`, `--max-cell-seconds <s>`,
//! `--jobs <n>`, `--abort-after <n>`, `--out-dir <path>`. Default: full
//! catalog, 3 invocations, artifacts in `repro_out/`.
//!
//! Exit codes: 0 clean; 1 failed experiments; 2 artifact checksum
//! mismatch against the journal; 3 campaign aborted (resume to finish).

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Instant;

use lhr_bench::artifact::{fnv64, write_atomic};
use lhr_bench::campaign::{self, CampaignOptions};
use lhr_bench::{run_experiment, Fidelity, Observability, EXPERIMENTS};

fn main() {
    let fidelity = Fidelity::from_args();
    let observability = Observability::from_args();
    let mut opts = CampaignOptions::from_args();
    // repro_all is the multi-day campaign: the journal is always on.
    if opts.journal.is_none() {
        opts.journal = Some(opts.out_dir.join(campaign::DEFAULT_JOURNAL));
    }
    let out_dir = opts.out_dir.clone();
    std::fs::create_dir_all(&out_dir).expect("create output dir");
    println!("regenerating all tables and figures at {fidelity:?} fidelity\n");
    let t0 = Instant::now();

    let prepared = campaign::prepare(fidelity, &observability, &opts);
    if prepared.aborted() {
        println!(
            "total: {:.1?}; campaign aborted before artifact generation",
            t0.elapsed()
        );
        std::process::exit(campaign::EXIT_ABORTED);
    }

    let mut failed: Vec<&str> = Vec::new();
    let mut mismatched: Vec<String> = Vec::new();
    for name in EXPERIMENTS {
        let t = Instant::now();
        let span = observability.experiment_span(name);
        let outcome = catch_unwind(AssertUnwindSafe(|| run_experiment(name, &prepared.harness)));
        span.end();
        match outcome {
            Ok(rendered) => {
                let file = format!("{name}.txt");
                let path = out_dir.join(&file);
                // A resumed run must reproduce the interrupted run's
                // bytes: compare against the journaled checksum before
                // overwriting, and report the first divergence if not.
                if let Some(prior) = prepared.prior_artifact(&file) {
                    if prior != fnv64(rendered.as_bytes()) {
                        let old = std::fs::read_to_string(&path).unwrap_or_default();
                        mismatched.push(campaign::diff_summary(&file, &old, &rendered));
                    }
                }
                write_atomic(&path, rendered.as_bytes()).expect("write experiment output");
                prepared.record_artifact(&file, rendered.as_bytes());
                println!("=== {name} ({:.1?}) ===\n{rendered}", t.elapsed());
            }
            Err(panic) => {
                let msg = panic
                    .downcast_ref::<String>()
                    .cloned()
                    .or_else(|| panic.downcast_ref::<&str>().map(|s| (*s).to_owned()))
                    .unwrap_or_else(|| "opaque panic".to_owned());
                println!("=== {name} FAILED ({:.1?}) ===\n{msg}\n", t.elapsed());
                failed.push(name);
            }
        }
    }
    println!("total: {:.1?}; outputs in {}", t0.elapsed(), out_dir.display());
    println!("runner health: {}", prepared.harness.runner().health());
    println!("{}", observability.profile_summary());
    if !mismatched.is_empty() {
        println!(
            "artifact checksum mismatches against the campaign journal:\n{}",
            mismatched.join("\n")
        );
        std::process::exit(campaign::EXIT_CHECKSUM_MISMATCH);
    }
    if !failed.is_empty() {
        println!("failed experiments: {}", failed.join(", "));
        std::process::exit(1);
    }
}
