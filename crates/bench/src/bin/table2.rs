//! Regenerates the paper's table2. Flags: `--quick`, `--paper`.
fn main() {
    lhr_bench::main_for("table2");
}
