//! Regenerates the paper's figure6. Flags: `--quick`, `--paper`.
fn main() {
    lhr_bench::main_for("figure6");
}
