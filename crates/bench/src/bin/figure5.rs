//! Regenerates the paper's figure5. Flags: `--quick`, `--paper`.
fn main() {
    lhr_bench::main_for("figure5");
}
