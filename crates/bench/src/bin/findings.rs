//! Audits the paper's thirteen findings against the reproduction, printing
//! PASS/FAIL per finding with the numbers behind each verdict.
//!
//! The audit is resilient: each experiment runs behind a panic guard, so a
//! degraded rig or a dead cell downgrades the findings that needed it to
//! SKIP instead of aborting the audit, and the runner's health ledger is
//! printed at the end.
//!
//! Usage: `cargo run --release -p lhr-bench --bin findings
//! [--quick|--paper] [--trace <path>]`

use std::panic::{catch_unwind, AssertUnwindSafe};

use lhr_bench::{Fidelity, Observability};
use lhr_core::experiments::{
    figure10_turbo, figure4_cmp, figure5_smt, figure6_jvm, figure7_clock, figure8_dieshrink,
    figure9_uarch, figure11_history, pareto, table4,
};
use lhr_core::Harness;
use lhr_uarch::ProcessorId;
use lhr_workloads::Group;

struct Audit {
    passed: usize,
    failed: usize,
    skipped: usize,
}

impl Audit {
    fn check(&mut self, name: &str, detail: String, ok: bool) {
        if ok {
            self.passed += 1;
            println!("PASS  {name}\n      {detail}");
        } else {
            self.failed += 1;
            println!("FAIL  {name}\n      {detail}");
        }
    }

    /// A finding whose experiment could not produce numbers at all.
    fn skip(&mut self, name: &str, why: &str) {
        self.skipped += 1;
        println!("SKIP  {name}\n      {why}");
    }
}

/// Runs one experiment behind a panic guard and an `experiment.<name>`
/// span: a failure yields `None` (plus a diagnostic) instead of killing
/// the audit.
fn guarded<T>(obs: &Observability, name: &str, f: impl FnOnce() -> T) -> Option<T> {
    let span = obs.experiment_span(name);
    let outcome = catch_unwind(AssertUnwindSafe(f));
    span.end();
    match outcome {
        Ok(v) => Some(v),
        Err(panic) => {
            let msg = panic
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| panic.downcast_ref::<&str>().map(|s| (*s).to_owned()))
                .unwrap_or_else(|| "opaque panic".to_owned());
            println!("WARN  experiment {name} failed: {msg}");
            None
        }
    }
}

#[allow(clippy::too_many_lines)]
fn main() {
    let observability = Observability::from_args();
    let harness: Harness = observability.arm(Fidelity::from_args().harness());
    let mut audit = Audit { passed: 0, failed: 0, skipped: 0 };

    // ---- Workload findings -------------------------------------------------
    if let Some(fig6) = guarded(&observability, "figure6", || figure6_jvm::run(&harness)) {
        let avg_gain: f64 =
            fig6.iter().map(|r| r.speedup).sum::<f64>() / fig6.len() as f64;
        let max_gain = fig6.iter().map(|r| r.speedup).fold(0.0f64, f64::max);
        audit.check(
            "W1: JVM induces parallelism in single-threaded Java",
            format!("avg 2C/1C gain {avg_gain:.2} (paper ~1.10), max {max_gain:.2} (paper up to 1.6)"),
            avg_gain > 1.05 && max_gain > 1.2,
        );
    } else {
        audit.skip("W1: JVM induces parallelism in single-threaded Java", "figure6 failed");
    }

    let fig5 = guarded(&observability, "figure5", || figure5_smt::run(&harness));
    let p4 = fig5
        .as_ref()
        .and_then(|f| f.iter().find(|r| r.processor.contains("Pentium4")));
    if let Some(p4) = p4 {
        let p4_jn = p4.energy_by_group[&Group::JavaNonScalable];
        let p4_ns = p4.energy_by_group[&Group::NativeScalable];
        audit.check(
            "W2: SMT on Pentium 4 treats Java Non-scalable worst",
            format!("P4 SMT energy: JN {p4_jn:.2} vs NS {p4_ns:.2} (JN must look worse)"),
            p4_jn > p4_ns,
        );
    } else {
        audit.skip("W2: SMT on Pentium 4 treats Java Non-scalable worst", "figure5 failed");
    }

    let fig7 = guarded(&observability, "figure7", || figure7_clock::run(&harness));
    let i5_clock = fig7
        .as_ref()
        .and_then(|f| f.iter().find(|r| r.processor == "i5 (32)"));
    if let Some(i5_clock) = i5_clock {
        let nn = i5_clock.energy_by_group[&Group::NativeNonScalable];
        let others_min = [Group::NativeScalable, Group::JavaScalable]
            .iter()
            .map(|g| i5_clock.energy_by_group[g])
            .fold(f64::INFINITY, f64::min);
        audit.check(
            "W3: Native Non-scalable responds differently to clock scaling",
            format!("i5 energy/doubling: NN {nn:.2} vs scalables' best {others_min:.2}"),
            nn < others_min,
        );
    } else {
        audit.skip(
            "W3: Native Non-scalable responds differently to clock scaling",
            "figure7 failed",
        );
    }

    if let Some(par) = guarded(&observability, "pareto", || pareto::run(&harness)) {
        let group_sets: Vec<Vec<usize>> = Group::ALL
            .iter()
            .filter_map(|&g| par.frontiers.get(&Some(g)).cloned())
            .collect();
        let all_same = group_sets.windows(2).all(|w| w[0] == w[1]);
        audit.check(
            "W4: Pareto-efficient design is workload-sensitive",
            format!(
                "per-group frontier sizes {:?}, identical across groups: {all_same}",
                group_sets.iter().map(Vec::len).collect::<Vec<_>>()
            ),
            !all_same,
        );
    } else {
        audit.skip("W4: Pareto-efficient design is workload-sensitive", "pareto failed");
    }

    // ---- Architecture findings ---------------------------------------------
    if let Some(fig4) = guarded(&observability, "figure4", || figure4_cmp::run(&harness)) {
        let (i7c, i5c) = (&fig4[0], &fig4[1]);
        audit.check(
            "A1: enabling a core is not consistently energy efficient",
            format!(
                "2C/1C energy: i7 {:.2} (paper 1.12) vs i5 {:.2} (paper 0.91)",
                i7c.ratios.energy, i5c.ratios.energy
            ),
            i7c.ratios.energy > 0.97 && i5c.ratios.energy < 0.95,
        );
    } else {
        audit.skip("A1: enabling a core is not consistently energy efficient", "figure4 failed");
    }

    let atom = fig5
        .as_ref()
        .and_then(|f| f.iter().find(|r| r.processor == "Atom (45)"));
    let i5s = fig5
        .as_ref()
        .and_then(|f| f.iter().find(|r| r.processor == "i5 (32)"));
    if let (Some(atom), Some(i5s), Some(p4)) = (atom, i5s, p4) {
        audit.check(
            "A2: SMT saves energy on i5 and (most) on Atom",
            format!(
                "SMT energy: Atom {:.2} (paper 0.86), i5 {:.2} (paper 0.89), P4 {:.2} (paper 0.98)",
                atom.ratios.energy, i5s.ratios.energy, p4.ratios.energy
            ),
            atom.ratios.energy < i5s.ratios.energy && i5s.ratios.energy < 1.0
                && atom.ratios.energy < p4.ratios.energy,
        );
    } else {
        audit.skip("A2: SMT saves energy on i5 and (most) on Atom", "figure5 failed");
    }

    let i7_clock = fig7
        .as_ref()
        .and_then(|f| f.iter().find(|r| r.processor == "i7 (45)"));
    if let (Some(i7_clock), Some(i5_clock)) = (i7_clock, i5_clock) {
        audit.check(
            "A3: clocking up costs the i7 dearly, the i5 nothing",
            format!(
                "energy per doubling: i7 {:+.0}% (paper +60%), i5 {:+.0}% (paper -4%)",
                (i7_clock.energy - 1.0) * 100.0,
                (i5_clock.energy - 1.0) * 100.0
            ),
            i7_clock.energy > 1.3 && i5_clock.energy < 1.05,
        );
    } else {
        audit.skip("A3: clocking up costs the i7 dearly, the i5 nothing", "figure7 failed");
    }

    if let Some(fig8) = guarded(&observability, "figure8", || figure8_dieshrink::run(&harness)) {
        audit.check(
            "A4: die shrink cuts energy even at matched clocks",
            format!(
                "matched-clock energy: Core {:.2} (paper 0.54), Nehalem {:.2} (paper 0.60)",
                fig8[0].matched.energy, fig8[1].matched.energy
            ),
            fig8.iter().all(|r| r.matched.energy < 0.85),
        );
        audit.check(
            "A5: 45->32nm repeated the previous generation's savings",
            format!(
                "both shrinks save >=15% energy at matched clocks ({:.2}, {:.2})",
                fig8[0].matched.energy, fig8[1].matched.energy
            ),
            fig8.iter().all(|r| r.matched.energy < 0.85 && r.matched.power < 0.85),
        );
    } else {
        audit.skip("A4: die shrink cuts energy even at matched clocks", "figure8 failed");
        audit.skip("A5: 45->32nm repeated the previous generation's savings", "figure8 failed");
    }

    if let Some(fig9) = guarded(&observability, "figure9", || figure9_uarch::run(&harness)) {
        let core45 = fig9.iter().find(|r| r.label.starts_with("Core: i7")).expect("present");
        audit.check(
            "A6: Nehalem ~14% faster than Core at matched configuration",
            format!("perf ratio {:.2} (paper 1.14)", core45.ratios.performance),
            core45.ratios.performance > 1.05 && core45.ratios.performance < 1.5,
        );
        let bonnell = fig9.iter().find(|r| r.label.starts_with("Bonnell")).expect("present");
        audit.check(
            "A7: similar energy across 45nm microarchitectures",
            format!(
                "i7/AtomD energy {:.2} (paper 0.85), i7/C2D45 {:.2} (paper 1.00)",
                bonnell.ratios.energy, core45.ratios.energy
            ),
            bonnell.ratios.energy > 0.5 && bonnell.ratios.energy < 1.5,
        );
    } else {
        audit.skip("A6: Nehalem ~14% faster than Core at matched configuration", "figure9 failed");
        audit.skip("A7: similar energy across 45nm microarchitectures", "figure9 failed");
    }

    if let Some(fig10) = guarded(&observability, "figure10", || figure10_turbo::run(&harness)) {
        let i7_tb = &fig10[0];
        let i5_tb = &fig10[2];
        audit.check(
            "A8: Turbo Boost is energy-inefficient on the i7, neutral on the i5",
            format!(
                "turbo energy: i7 stock {:.2} (paper 1.19), i5 stock {:.2} (paper 1.04)",
                i7_tb.ratios.energy, i5_tb.ratios.energy
            ),
            i7_tb.ratios.energy > 1.08 && i5_tb.ratios.energy < 1.06,
        );
    } else {
        audit.skip(
            "A8: Turbo Boost is energy-inefficient on the i7, neutral on the i5",
            "figure10 failed",
        );
    }

    if let Some(fig11) = guarded(&observability, "figure11", || figure11_history::run(&harness)) {
        let p4_ppt = fig11
            .iter()
            .find(|p| p.processor.contains("Pentium4"))
            .expect("present")
            .power_per_transistor();
        let max_other = fig11
            .iter()
            .filter(|p| !p.processor.contains("Pentium4"))
            .map(figure11_history::HistoryPoint::power_per_transistor)
            .fold(0.0f64, f64::max);
        audit.check(
            "A9: power/transistor consistent within families; P4 the outlier",
            format!("P4 {p4_ppt:.3} W/Mtran vs next-highest {max_other:.3}"),
            p4_ppt > 2.0 * max_other,
        );
    } else {
        audit.skip(
            "A9: power/transistor consistent within families; P4 the outlier",
            "figure11 failed",
        );
    }

    // TDP, for good measure (Section 2.5).
    if let Some(t4) = guarded(&observability, "table4", || table4::run(&harness)) {
        let tdp_ok = t4.rows.iter().all(|r| {
            let spec = ProcessorId::ALL
                .iter()
                .map(|id| id.spec())
                .find(|s| s.short == r.processor)
                .expect("row names match catalog");
            r.metrics.power_max < spec.power.tdp_w
        });
        audit.check(
            "TDP: strictly above measured power on every chip",
            "max per-benchmark power < TDP for all eight processors".to_owned(),
            tdp_ok,
        );
    } else {
        audit.skip("TDP: strictly above measured power on every chip", "table4 failed");
    }

    println!(
        "\n{} passed, {} failed, {} skipped",
        audit.passed, audit.failed, audit.skipped
    );
    println!("runner health: {}", harness.runner().health());
    if observability.tracing() {
        println!("{}", observability.profile_summary());
    } else {
        observability.flush();
    }
    if audit.failed > 0 || audit.skipped > 0 {
        std::process::exit(1);
    }
}
