//! `lhr_queries_check` -- proves the stored queries in `queries/`
//! reproduce the committed artifacts bit-for-bit.
//!
//! Runs the figure 7 and figure 8 pipelines with a measurement-store
//! sink attached, re-derives both figures *from the store* through the
//! stored `group_by`/`agg` queries, and compares the rendered bytes
//! against `repro_out/figure7.txt` / `repro_out/figure8.txt`. The three
//! headline-finding queries and the Pareto view are executed as well
//! and must return non-empty tables.
//!
//! ```text
//! lhr_queries_check              # standard fidelity, checks repro_out/
//! lhr_queries_check --quick      # 12-benchmark subset, skips the
//!                                # repro_out byte comparison (quick
//!                                # artifacts differ by design) but
//!                                # still requires direct == derived
//! ```
//!
//! Exit codes: 0 all checks pass; 1 a derivation or byte check failed.

use std::process::ExitCode;
use std::sync::Arc;

use lhr_bench::queries;
use lhr_core::experiments::{figure7_clock, figure8_dieshrink};
use lhr_core::Harness;
use lhr_store::Store;

fn fail(what: &str) -> ExitCode {
    eprintln!("FAIL: {what}");
    ExitCode::FAILURE
}

/// Points at the first line where two renders diverge, so a failure
/// names the row instead of just the byte count.
fn first_diff(a: &str, b: &str) -> String {
    for (i, (la, lb)) in a.lines().zip(b.lines()).enumerate() {
        if la != lb {
            return format!("first diff at line {}:\n  direct:  {la}\n  derived: {lb}", i + 1);
        }
    }
    format!("one render is a prefix of the other ({} vs {} bytes)", a.len(), b.len())
}

#[allow(clippy::too_many_lines)]
fn main() -> ExitCode {
    let quick = std::env::args().any(|a| a == "--quick");
    let fast_full = std::env::args().any(|a| a == "--fast-full");
    let dir = std::env::temp_dir().join(format!("lhr-queries-check-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = match Store::open(&dir) {
        Ok(s) => Arc::new(s),
        Err(e) => return fail(&format!("opening scratch store: {e}")),
    };
    let (base, mode) = if quick {
        (Harness::quick(), "quick")
    } else if fast_full {
        // Full catalog on the fast runner: the derivation contract at
        // real breadth without standard fidelity's runtime. Skips the
        // repro_out byte check (those artifacts are 3-invocation).
        (Harness::new(lhr_core::Runner::fast()), "fast-full")
    } else {
        (lhr_bench::Fidelity::Standard.harness(), "standard")
    };
    let skip_committed = quick || fast_full;
    let harness = base.with_cell_sink(Arc::clone(&store) as _);
    println!("populating store via the {mode} pipelines...");

    // Figure 7: direct pipeline vs store-derived, and vs the committed
    // artifact bytes at standard fidelity.
    let direct7 = figure7_clock::render(&figure7_clock::run(&harness));
    let derived7 = match queries::derive_figure7(&store, 4) {
        Ok(d) => figure7_clock::render(&d),
        Err(e) => return fail(&format!("deriving figure 7 from the store: {e}")),
    };
    if direct7 != derived7 {
        eprintln!("{}", first_diff(&direct7, &derived7));
        return fail("figure 7: store-derived bytes differ from the direct pipeline");
    }
    println!("figure 7: direct == derived ({} bytes)", derived7.len());

    // Figure 8 likewise.
    let direct8 = figure8_dieshrink::render(&figure8_dieshrink::run(&harness));
    let derived8 = match queries::derive_figure8(&store) {
        Ok(d) => figure8_dieshrink::render(&d),
        Err(e) => return fail(&format!("deriving figure 8 from the store: {e}")),
    };
    if direct8 != derived8 {
        eprintln!("{}", first_diff(&direct8, &derived8));
        return fail("figure 8: store-derived bytes differ from the direct pipeline");
    }
    println!("figure 8: direct == derived ({} bytes)", derived8.len());

    if !skip_committed {
        for (name, derived) in [("figure7", &derived7), ("figure8", &derived8)] {
            let path = format!("repro_out/{name}.txt");
            match std::fs::read_to_string(&path) {
                Ok(committed) => {
                    if committed != *derived {
                        return fail(&format!(
                            "{name}: store-derived bytes differ from committed {path}"
                        ));
                    }
                    println!("{name}: derived == committed {path}");
                }
                Err(e) => return fail(&format!("reading {path}: {e}")),
            }
        }
    }

    // The figure pipelines never measure an Atom; seed its stock cells
    // so the i7-vs-Atom finding has both sides of the comparison.
    let atom = lhr_uarch::ChipConfig::stock(lhr_uarch::ProcessorId::Atom230.spec());
    let _ = harness.group_metrics(&atom);

    // The finding queries and the Pareto view must execute and return
    // rows over the store the figures populated.
    for name in [
        "finding_i7_vs_atom_perf",
        "finding_power_range",
        "finding_managed_epi_smt",
        "pareto_power_perf",
    ] {
        let text = match queries::load_query(name) {
            Ok(t) => t,
            Err(e) => return fail(&format!("loading queries/{name}.lhq: {e}")),
        };
        match store.query(&text) {
            Ok(table) if table.rows.is_empty() => {
                return fail(&format!("{name}: returned no rows"));
            }
            Ok(table) => println!("{name}: {} rows", table.rows.len()),
            Err(e) => return fail(&format!("{name}: {e}")),
        }
    }

    let _ = std::fs::remove_dir_all(&dir);
    println!("all stored-query checks passed");
    ExitCode::SUCCESS
}
