//! Regenerates the paper's figure9. Flags: `--quick`, `--paper`.
fn main() {
    lhr_bench::main_for("figure9");
}
