//! Calibration dashboard: prints every headline number next to the
//! paper's measured value, so model-parameter tuning has a target sheet.
//!
//! Usage: `cargo run --release -p lhr-bench --bin calibrate [--full]`
//! (`--full` uses the complete catalog and prescribed invocations; the
//! default uses the fast 12-benchmark harness.)

use lhr_core::experiments::{
    figure1_scalability, figure4_cmp, figure5_smt, figure6_jvm, figure7_clock,
    figure8_dieshrink, figure9_uarch, figure10_turbo, figure11_history, table4,
};
use lhr_core::{Harness, Runner};

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let harness = if full {
        Harness::new(Runner::new().with_invocations(3))
    } else {
        Harness::quick()
    };

    println!("=== Table 4: paper vs measured (Avg_w) ===");
    let t4 = table4::run(&harness);
    println!("{}", t4.render_comparison());

    println!("=== Figure 4: CMP (2C/1C) — paper i7: 1.32/1.57/1.12, i5: 1.34/1.29/0.91 ===");
    println!("{}", figure4_cmp::render(&figure4_cmp::run(&harness)));

    println!("=== Figure 5: SMT — paper P4: 1.06/1.06/0.98, i7: 1.14/1.15/0.97, Atom: 1.24/1.10/0.86, i5: 1.17/1.10/0.89 ===");
    println!("{}", figure5_smt::render(&figure5_smt::run(&harness)));

    println!("=== Figure 7: clock doubling — paper i7: +83/+180/+60, C2D45: +73/+159/+56, i5: +78/+73/-4 ===");
    println!("{}", figure7_clock::render(&figure7_clock::run(&harness)));

    println!("=== Figure 8: die shrink (matched) — paper Core: 1.01/0.55/0.54, Nehalem: 0.90/0.53/0.60 ===");
    println!("{}", figure8_dieshrink::render(&figure8_dieshrink::run(&harness)));

    println!("=== Figure 9: gross uarch — paper Bonnell: 2.70/2.38/0.85, NetBurst: 2.60/0.33/0.13, Core45: 1.14/1.14/1.00, Core65: 1.14/0.55/0.48 ===");
    println!("{}", figure9_uarch::render(&figure9_uarch::run(&harness)));

    println!("=== Figure 10: Turbo — paper i7 stock: 1.05/1.19/1.19, i7 1C1T: 1.07/1.49/1.39, i5 stock: 1.03/1.07/1.04, i5 1C1T: 1.05/1.05/1.00 ===");
    println!("{}", figure10_turbo::render(&figure10_turbo::run(&harness)));

    println!("=== Figure 1: Java MT scalability on i7 ===");
    println!(
        "{}",
        figure1_scalability::render(&figure1_scalability::run(&harness))
    );

    println!("=== Figure 6: single-threaded Java 2C1T/1C1T on i7 ===");
    println!("{}", figure6_jvm::render(&figure6_jvm::run(&harness)));

    println!("=== Figure 11: history ===");
    println!("{}", figure11_history::render(&figure11_history::run(&harness)));
}
