//! `lhr_perf` -- the plain-timer perf harness behind `BENCH_*.json`.
//!
//! Runs the six-layer suite from `lhr_bench::perfjson` under a counting
//! global allocator and either writes a snapshot or gates against a
//! committed one:
//!
//! ```text
//! lhr_perf --label pr7 --out BENCH_pr7.json        # emit a snapshot
//! lhr_perf --label ci --out BENCH_ci.json \
//!          --check BENCH_pr7.json                  # CI drift gate
//! lhr_perf --smoke                                 # seconds-long sanity run
//! ```
//!
//! `--check` exits 1 when cells/sec dropped by more than 15% versus the
//! baseline, naming the regressing layer; speedups always pass. A
//! failing gate re-measures up to twice before giving its verdict, so a
//! transient co-tenant burst on a shared CI machine cannot fail a clean
//! commit -- a real regression fails all three attempts.

use std::alloc::{GlobalAlloc, Layout, System};
use std::process::ExitCode;
use std::sync::atomic::{AtomicU64, Ordering};

use lhr_bench::perfjson::{self, BenchReport, TimerConfig};

/// The system allocator with a relaxed allocation counter bolted on, so
/// `allocs_per_iter` can ride along in the snapshot.
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates every operation to the system allocator unchanged;
// the counter is a side effect only.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn alloc_count() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: lhr_perf [--label <name>] [--out <path>] [--check <baseline.json>] [--smoke]"
    );
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    perfjson::set_alloc_probe(alloc_count);

    let mut label = String::from("local");
    let mut out: Option<String> = None;
    let mut check: Option<String> = None;
    let mut cfg = TimerConfig::default();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--label" => match args.next() {
                Some(v) => label = v,
                None => return usage(),
            },
            "--out" => match args.next() {
                Some(v) => out = Some(v),
                None => return usage(),
            },
            "--check" => match args.next() {
                Some(v) => check = Some(v),
                None => return usage(),
            },
            "--smoke" => cfg = TimerConfig::smoke(),
            _ => return usage(),
        }
    }

    let mut report = perfjson::collect(&label, &cfg);
    // The serving-tier HTTP layers ride along when the release binaries
    // are built (the CI perf job builds them first); compare() only
    // diffs layers present in both snapshots, so older baselines still
    // gate cleanly.
    report.layers.extend(perfjson::collect_serving(&cfg));
    report.layers.extend(perfjson::collect_store(&cfg));
    println!("label: {}", report.label);
    println!("cells/sec (end-to-end): {:.2}", report.cells_per_sec);
    println!("ns/interval (model core): {:.1}", report.ns_per_interval);
    for layer in &report.layers {
        let allocs = layer
            .allocs_per_iter
            .map_or_else(String::new, |a| format!("  {a:>12.0} allocs/iter"));
        println!(
            "  {:<44} {:>14.0} ns/iter  ({} iters){allocs}",
            layer.id, layer.ns_per_iter, layer.iters
        );
    }
    if let (Some(direct), Some(routed)) = (
        report.layer("serve_http_warm/direct_cell_jess_i7"),
        report.layer("route_http_warm/router_cached_cell"),
    ) {
        println!(
            "router warm hit vs direct backend: {:.2}x",
            routed.ns_per_iter / direct.ns_per_iter
        );
    }

    if let Some(path) = out {
        if let Err(e) = std::fs::write(&path, report.to_json()) {
            eprintln!("error: writing {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("wrote {path}");
    }

    if let Some(path) = check {
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("error: reading baseline {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let baseline = match BenchReport::from_json(&text) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("error: parsing baseline {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let mut drift = perfjson::compare(&report, &baseline);
        print!("{}", drift.render());
        // A shared CI machine can be contended for longer than one
        // measurement window; re-measuring separates "this commit is
        // slower" (fails every time) from "a co-tenant was busy" (one
        // clean re-run passes). Real regressions still fail all three.
        let mut attempt = 1;
        while !drift.passed() && attempt < 3 {
            attempt += 1;
            println!("drift gate failed; re-measuring (attempt {attempt}/3)");
            let mut retry = perfjson::collect(&label, &cfg);
            retry.layers.extend(perfjson::collect_serving(&cfg));
            retry.layers.extend(perfjson::collect_store(&cfg));
            drift = perfjson::compare(&retry, &baseline);
            print!("{}", drift.render());
        }
        if !drift.passed() {
            return ExitCode::FAILURE;
        }
    }

    ExitCode::SUCCESS
}
