//! Regenerates the paper's table1. Flags: `--quick`, `--paper`.
fn main() {
    lhr_bench::main_for("table1");
}
