//! Regenerates the paper's figure8. Flags: `--quick`, `--paper`.
fn main() {
    lhr_bench::main_for("figure8");
}
