//! Regenerates the paper's figure7. Flags: `--quick`, `--paper`.
fn main() {
    lhr_bench::main_for("figure7");
}
