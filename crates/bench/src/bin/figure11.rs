//! Regenerates the paper's figure11. Flags: `--quick`, `--paper`.
fn main() {
    lhr_bench::main_for("figure11");
}
