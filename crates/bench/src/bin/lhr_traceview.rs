//! `lhr_traceview`: render per-request span trees from a JSON-lines
//! trace (the `--trace` output of any workspace binary, or the serve
//! layer's trace file).
//!
//! ```text
//! lhr_traceview <trace.jsonl> [--request N]
//! ```
//!
//! For every request the trace saw, prints the reconstructed span tree
//! with total and self wall time per span and `*` marking the critical
//! path (see `lhr_bench::traceview`). `--request N` narrows the output
//! to one request. Exits 1 if the trace holds no spans at all -- a
//! trace without spans means the producer was not request-instrumented,
//! which CI treats as a regression.

use std::process::ExitCode;

use lhr_bench::traceview::TraceView;

fn usage() -> &'static str {
    "usage: lhr_traceview <trace.jsonl> [--request N]"
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut path = None;
    let mut only_request: Option<u64> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--request" => {
                let Some(n) = it.next().and_then(|v| v.parse().ok()) else {
                    eprintln!("--request needs a numeric id\n{}", usage());
                    return ExitCode::FAILURE;
                };
                only_request = Some(n);
            }
            "--help" | "-h" => {
                println!("{}", usage());
                return ExitCode::SUCCESS;
            }
            other if path.is_none() => path = Some(other.to_owned()),
            other => {
                eprintln!("unexpected argument {other:?}\n{}", usage());
                return ExitCode::FAILURE;
            }
        }
    }
    let Some(path) = path else {
        eprintln!("{}", usage());
        return ExitCode::FAILURE;
    };

    let mut view = match TraceView::open(&path) {
        Ok(view) => view,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(req) = only_request {
        view.requests.retain(|id, _| *id == req);
        if view.requests.is_empty() {
            eprintln!("no request {req} in {path}");
            return ExitCode::FAILURE;
        }
    }

    print!("{}", view.render());
    let spans = view.span_count();
    let requests = view.requests.iter().filter(|(id, _)| **id != 0).count();
    println!("{spans} span(s) across {requests} traced request(s)");
    if spans == 0 {
        eprintln!("trace holds no spans; was the producer run with tracing armed?");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
