//! `lhr_traceview`: render per-request span trees from a JSON-lines
//! trace (the `--trace` output of any workspace binary, or the serve
//! layer's trace file), or stitched multi-process distributed traces
//! from span-store directories.
//!
//! ```text
//! lhr_traceview <trace.jsonl> [--request N]
//! lhr_traceview --span-store DIR [--span-store DIR ...] [--trace-id HEX]
//! ```
//!
//! In file mode, prints the reconstructed span tree for every request
//! the trace saw, with total and self wall time per span and `*`
//! marking the critical path (see `lhr_bench::traceview`).
//! `--request N` narrows the output to one request.
//!
//! In span-store mode, merges the span fragments every named directory
//! holds (a router's store plus its backends') and renders each
//! distributed trace as one stitched tree with clock-skew alignment --
//! the view a single process's trace file cannot give. `--trace-id`
//! narrows to one 128-bit trace (hex).
//!
//! Exits 1 if no spans are found at all -- a spanless trace means the
//! producer was not instrumented, which CI treats as a regression.

use std::process::ExitCode;

use lhr_bench::traceview::{SpanStoreView, TraceView};

fn usage() -> &'static str {
    "usage: lhr_traceview <trace.jsonl> [--request N]\n\
     \x20      lhr_traceview --span-store DIR [--span-store DIR ...] [--trace-id HEX]"
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut path = None;
    let mut only_request: Option<u64> = None;
    let mut span_stores: Vec<String> = Vec::new();
    let mut only_trace: Option<u128> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--request" => {
                let Some(n) = it.next().and_then(|v| v.parse().ok()) else {
                    eprintln!("--request needs a numeric id\n{}", usage());
                    return ExitCode::FAILURE;
                };
                only_request = Some(n);
            }
            "--span-store" => {
                let Some(dir) = it.next() else {
                    eprintln!("--span-store needs a directory\n{}", usage());
                    return ExitCode::FAILURE;
                };
                span_stores.push(dir.clone());
            }
            "--trace-id" => {
                let Some(id) = it
                    .next()
                    .and_then(|v| u128::from_str_radix(v.trim(), 16).ok())
                else {
                    eprintln!("--trace-id needs a hex trace id\n{}", usage());
                    return ExitCode::FAILURE;
                };
                only_trace = Some(id);
            }
            "--help" | "-h" => {
                println!("{}", usage());
                return ExitCode::SUCCESS;
            }
            other if path.is_none() && !other.starts_with('-') => path = Some(other.to_owned()),
            other => {
                eprintln!("unexpected argument {other:?}\n{}", usage());
                return ExitCode::FAILURE;
            }
        }
    }

    if !span_stores.is_empty() {
        return span_store_mode(&span_stores, only_trace);
    }

    let Some(path) = path else {
        eprintln!("{}", usage());
        return ExitCode::FAILURE;
    };

    let mut view = match TraceView::open(&path) {
        Ok(view) => view,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(req) = only_request {
        view.requests.retain(|id, _| *id == req);
        if view.requests.is_empty() {
            eprintln!("no request {req} in {path}");
            return ExitCode::FAILURE;
        }
    }

    print!("{}", view.render());
    let spans = view.span_count();
    let requests = view.requests.iter().filter(|(id, _)| **id != 0).count();
    println!("{spans} span(s) across {requests} traced request(s)");
    if spans == 0 {
        eprintln!("trace holds no spans; was the producer run with tracing armed?");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

fn span_store_mode(dirs: &[String], only_trace: Option<u128>) -> ExitCode {
    let view = match SpanStoreView::open(dirs) {
        Ok(view) => view,
        Err(e) => {
            eprintln!("cannot open span store(s): {e}");
            return ExitCode::FAILURE;
        }
    };
    match only_trace {
        Some(id) => match view.render_trace(id) {
            Some(text) => print!("{text}"),
            None => {
                eprintln!("no trace {id:032x} in the given span store(s)");
                return ExitCode::FAILURE;
            }
        },
        None => print!("{}", view.render()),
    }
    let spans: usize = view.traces.values().map(Vec::len).sum();
    println!("{spans} span(s) across {} distributed trace(s)", view.traces.len());
    if spans == 0 {
        eprintln!("span store holds no spans; was the producer run with --span-store?");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
