//! Regenerates the paper's figure2. Flags: `--quick`, `--paper`.
fn main() {
    lhr_bench::main_for("figure2");
}
