//! Regenerates the paper's table3. Flags: `--quick`, `--paper`.
fn main() {
    lhr_bench::main_for("table3");
}
