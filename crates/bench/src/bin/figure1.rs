//! Regenerates the paper's figure1. Flags: `--quick`, `--paper`.
fn main() {
    lhr_bench::main_for("figure1");
}
