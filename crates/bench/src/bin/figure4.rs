//! Regenerates the paper's figure4. Flags: `--quick`, `--paper`.
fn main() {
    lhr_bench::main_for("figure4");
}
