//! Regenerates the paper's table4. Flags: `--quick`, `--paper`.
fn main() {
    lhr_bench::main_for("table4");
}
