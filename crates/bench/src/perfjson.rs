//! Machine-readable performance snapshots (`BENCH_*.json`).
//!
//! The criterion suite (`cargo bench -p lhr-bench`) answers "is this
//! change faster?" interactively; this module answers it *mechanically*.
//! [`collect`] runs one fixed workload per pipeline layer under a plain
//! wall-clock timer and renders the result as a small JSON document that
//! is committed per PR (`BENCH_pr7.json`, ...) and diffed in CI: the
//! `perf` job re-measures (`BENCH_ci.json`), [`compare`]s against the
//! committed snapshot, and fails on a >15% cells/sec drift, naming the
//! regressing layer.
//!
//! The six layers mirror the criterion groups one-to-one so a drift in
//! the JSON can be localized with the interactive suite (see PERF.md):
//!
//! | layer id prefix     | what it times                                  |
//! |---------------------|------------------------------------------------|
//! | `trace_gen`         | workload-descriptor → software-thread traces   |
//! | `interval_core`     | the interval model (`phase_performance`)       |
//! | `energy_integration`| per-slice energy metering + waveform append    |
//! | `adc_sensor`        | the 50 Hz logger → ADC → calibration inversion |
//! | `cell_e2e`          | one uncached `(config, workload)` cell         |
//! | `serve_cache_hit`   | the serving layer's warm-cache lookup          |
//!
//! Two measurement-store layers ([`collect_store`]) ride along since the
//! store landed: `store_ingest` (sealed-batch upsert of one sweep's
//! cells) and `query_scan` (the figure-7 shaped `group_by`/`agg`).
//!
//! Allocation counts ride along where countable: the `lhr_perf` binary
//! installs a counting global allocator and registers it through
//! [`set_alloc_probe`]; library users (tests, doctests) simply get
//! `allocs_per_iter: None`.

use std::fmt::Write as _;
use std::sync::OnceLock;
use std::time::{Duration, Instant};

use lhr_core::Runner;
use lhr_obs::{push_json_number, push_json_string};
use lhr_power::{
    ActivityCounters, EnergyModel, NodeScaling, PowerMeters, PowerWaveform, Structure,
};
use lhr_sensors::MeasurementRig;
use lhr_uarch::{phase_performance, ChipConfig, Environment, MissRateEstimator, ProcessorId};
use lhr_units::{Seconds, Watts};
use lhr_workloads::by_name;

use crate::campaign::{parse_num, parse_str};

/// Version stamp of the `BENCH_*.json` layout; bumped on breaking
/// changes so [`BenchReport::from_json`] can reject snapshots it does
/// not understand.
pub const SCHEMA_VERSION: u32 = 1;

/// Fractional cells/sec loss at which [`compare`] fails the drift gate
/// (the CI `perf` job's threshold).
pub const DRIFT_FAIL_FRACTION: f64 = 0.15;

/// One layer's timing result.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerStat {
    /// Unique layer ID, `<group>/<workload>` (matches the criterion
    /// suite's benchmark IDs).
    pub id: String,
    /// The pipeline layer this measures (one of the six groups).
    pub group: String,
    /// Timed iterations behind the averages.
    pub iters: u64,
    /// Noise-robust nanoseconds per iteration: the fastest batch mean,
    /// where the measurement budget is cut into twenty contiguous
    /// batches (falling back to the overall mean when the budget is too
    /// small to complete one batch). Co-tenant CPU bursts inflate some
    /// batches; the fastest batch estimates the undisturbed cost, which
    /// is what a committed snapshot should record.
    pub ns_per_iter: f64,
    /// Fastest observed iteration, nanoseconds.
    pub min_ns_per_iter: f64,
    /// Heap allocations per iteration, when a probe is installed
    /// (see [`set_alloc_probe`]); `None` otherwise.
    pub allocs_per_iter: Option<f64>,
}

/// A full perf snapshot: the per-layer split plus the two headline
/// numbers the drift gate and the README trajectory table key on.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchReport {
    /// Snapshot label (`seed`, `pr7`, `ci`, ...).
    pub label: String,
    /// End-to-end throughput: uncached `(config, workload)` cells
    /// resolved per second (from the `cell_e2e` layer).
    pub cells_per_sec: f64,
    /// Mean nanoseconds per interval-model evaluation (from the
    /// `interval_core` layer).
    pub ns_per_interval: f64,
    /// The per-layer split, in pipeline order.
    pub layers: Vec<LayerStat>,
}

impl BenchReport {
    /// Renders the snapshot as the committed `BENCH_*.json` layout: one
    /// top-level object, one line per layer, trailing newline.
    ///
    /// ```
    /// use lhr_bench::perfjson::{BenchReport, LayerStat};
    ///
    /// let report = BenchReport {
    ///     label: "example".into(),
    ///     cells_per_sec: 120.5,
    ///     ns_per_interval: 850.0,
    ///     layers: vec![LayerStat {
    ///         id: "cell_e2e/fast_cell_jess_c2d".into(),
    ///         group: "cell_e2e".into(),
    ///         iters: 30,
    ///         ns_per_iter: 8.3e6,
    ///         min_ns_per_iter: 8.0e6,
    ///         allocs_per_iter: Some(1200.0),
    ///     }],
    /// };
    /// let json = report.to_json();
    /// assert!(json.starts_with("{\n  \"schema\": 1,"));
    /// assert_eq!(BenchReport::from_json(&json).unwrap(), report);
    /// ```
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(512);
        out.push_str("{\n  \"schema\": ");
        let _ = write!(out, "{SCHEMA_VERSION}");
        out.push_str(",\n  \"label\": ");
        push_json_string(&mut out, &self.label);
        out.push_str(",\n  \"cells_per_sec\": ");
        push_json_number(&mut out, self.cells_per_sec);
        out.push_str(",\n  \"ns_per_interval\": ");
        push_json_number(&mut out, self.ns_per_interval);
        out.push_str(",\n  \"layers\": [\n");
        for (i, layer) in self.layers.iter().enumerate() {
            out.push_str("    {\"id\": ");
            push_json_string(&mut out, &layer.id);
            out.push_str(", \"group\": ");
            push_json_string(&mut out, &layer.group);
            let _ = write!(out, ", \"iters\": {}", layer.iters);
            out.push_str(", \"ns_per_iter\": ");
            push_json_number(&mut out, layer.ns_per_iter);
            out.push_str(", \"min_ns_per_iter\": ");
            push_json_number(&mut out, layer.min_ns_per_iter);
            if let Some(allocs) = layer.allocs_per_iter {
                out.push_str(", \"allocs_per_iter\": ");
                push_json_number(&mut out, allocs);
            }
            out.push('}');
            if i + 1 < self.layers.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Parses a snapshot previously rendered by [`BenchReport::to_json`].
    ///
    /// # Errors
    ///
    /// A human-readable message when the schema version is missing or
    /// unsupported, a required field is absent, or no layers parse.
    pub fn from_json(text: &str) -> Result<Self, String> {
        let schema = parse_num(text, "schema").ok_or("missing \"schema\" field")?;
        #[allow(clippy::float_cmp)]
        if schema != f64::from(SCHEMA_VERSION) {
            return Err(format!(
                "unsupported schema version {schema} (this build reads {SCHEMA_VERSION})"
            ));
        }
        let label = parse_str(text, "label").ok_or("missing \"label\" field")?;
        let cells_per_sec =
            parse_num(text, "cells_per_sec").ok_or("missing \"cells_per_sec\" field")?;
        let ns_per_interval =
            parse_num(text, "ns_per_interval").ok_or("missing \"ns_per_interval\" field")?;
        let mut layers = Vec::new();
        for line in text.lines() {
            let Some(id) = parse_str(line, "id") else {
                continue;
            };
            let stat = LayerStat {
                id,
                group: parse_str(line, "group").ok_or("layer missing \"group\"")?,
                #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
                iters: parse_num(line, "iters").ok_or("layer missing \"iters\"")? as u64,
                ns_per_iter: parse_num(line, "ns_per_iter")
                    .ok_or("layer missing \"ns_per_iter\"")?,
                min_ns_per_iter: parse_num(line, "min_ns_per_iter")
                    .ok_or("layer missing \"min_ns_per_iter\"")?,
                allocs_per_iter: parse_num(line, "allocs_per_iter"),
            };
            layers.push(stat);
        }
        if layers.is_empty() {
            return Err("no layers found".into());
        }
        Ok(Self {
            label,
            cells_per_sec,
            ns_per_interval,
            layers,
        })
    }

    /// The layer with the given ID, if present.
    #[must_use]
    pub fn layer(&self, id: &str) -> Option<&LayerStat> {
        self.layers.iter().find(|l| l.id == id)
    }
}

/// The outcome of diffing a fresh measurement against a committed
/// snapshot (the CI drift gate's verdict).
#[derive(Debug, Clone, PartialEq)]
pub struct Drift {
    /// `candidate.cells_per_sec / baseline.cells_per_sec` (1.0 = no
    /// change, below 1 = slower).
    pub cells_per_sec_ratio: f64,
    /// Per-layer slowdowns for layers present in both snapshots:
    /// `(layer id, candidate ns / baseline ns)`, worst first.
    pub layer_slowdowns: Vec<(String, f64)>,
    /// The fractional loss limit the verdict used
    /// ([`DRIFT_FAIL_FRACTION`]).
    pub limit: f64,
}

impl Drift {
    /// Whether the gate passes: cells/sec has not dropped by more than
    /// the limit.
    ///
    /// ```
    /// use lhr_bench::perfjson::{compare, BenchReport, LayerStat};
    ///
    /// let layer = |ns: f64| LayerStat {
    ///     id: "cell_e2e/fast_cell_jess_c2d".into(),
    ///     group: "cell_e2e".into(),
    ///     iters: 30,
    ///     ns_per_iter: ns,
    ///     min_ns_per_iter: ns,
    ///     allocs_per_iter: None,
    /// };
    /// let report = |cells: f64, ns: f64| BenchReport {
    ///     label: "x".into(),
    ///     cells_per_sec: cells,
    ///     ns_per_interval: 100.0,
    ///     layers: vec![layer(ns)],
    /// };
    /// let baseline = report(100.0, 1.0e7);
    /// // 10% slower: inside the 15% gate.
    /// assert!(compare(&report(90.0, 1.1e7), &baseline).passed());
    /// // 30% slower: the gate fails and names the layer.
    /// let drift = compare(&report(70.0, 1.4e7), &baseline);
    /// assert!(!drift.passed());
    /// assert!(drift.render().contains("cell_e2e/fast_cell_jess_c2d"));
    /// ```
    #[must_use]
    pub fn passed(&self) -> bool {
        self.cells_per_sec_ratio >= 1.0 - self.limit
    }

    /// The layer that slowed down the most, if any slowed at all.
    #[must_use]
    pub fn worst_layer(&self) -> Option<&(String, f64)> {
        self.layer_slowdowns.first().filter(|(_, s)| *s > 1.0)
    }

    /// Renders the verdict for CI logs: the headline ratio, the named
    /// regressing layer on failure, and the full per-layer table.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        let delta = (self.cells_per_sec_ratio - 1.0) * 100.0;
        let _ = writeln!(
            out,
            "cells/sec: {delta:+.1}% vs baseline (fail below -{:.0}%)",
            self.limit * 100.0
        );
        if self.passed() {
            out.push_str("drift gate: PASS\n");
        } else {
            out.push_str("drift gate: FAIL");
            if let Some((id, slowdown)) = self.worst_layer() {
                let _ = write!(out, " -- regressing layer: {id} ({slowdown:.2}x slower)");
            }
            out.push('\n');
        }
        for (id, slowdown) in &self.layer_slowdowns {
            let _ = writeln!(out, "  {id:<44} {slowdown:>6.2}x");
        }
        out
    }
}

/// Diffs a fresh measurement against a baseline snapshot.
///
/// The verdict keys on cells/sec (the paper-methodology unit of work);
/// the per-layer slowdowns exist to *name* the regressing layer in the
/// failure message and to localize drift. See [`Drift::passed`] for a
/// worked example.
#[must_use]
pub fn compare(candidate: &BenchReport, baseline: &BenchReport) -> Drift {
    let ratio = if baseline.cells_per_sec > 0.0 {
        candidate.cells_per_sec / baseline.cells_per_sec
    } else {
        1.0
    };
    let mut slowdowns: Vec<(String, f64)> = candidate
        .layers
        .iter()
        .filter_map(|c| {
            let b = baseline.layer(&c.id)?;
            (b.ns_per_iter > 0.0).then(|| (c.id.clone(), c.ns_per_iter / b.ns_per_iter))
        })
        .collect();
    slowdowns.sort_by(|a, b| b.1.total_cmp(&a.1));
    Drift {
        cells_per_sec_ratio: ratio,
        layer_slowdowns: slowdowns,
        limit: DRIFT_FAIL_FRACTION,
    }
}

/// The allocation-count probe: returns a monotonically increasing count
/// of heap allocations in this process. Installed once by binaries that
/// run under a counting allocator (`lhr_perf`); never installed by
/// library users, whose reports simply omit allocation counts.
static ALLOC_PROBE: OnceLock<fn() -> u64> = OnceLock::new();

/// Registers the process-wide allocation-count probe. Later calls are
/// ignored (the first probe wins).
pub fn set_alloc_probe(probe: fn() -> u64) {
    let _ = ALLOC_PROBE.set(probe);
}

/// The current allocation count, if a probe is installed.
fn alloc_count() -> Option<u64> {
    ALLOC_PROBE.get().map(|probe| probe())
}

/// Timing budgets for the plain-timer harness. The defaults follow the
/// same APAS rules as the criterion suite: 300 ms warm-up and a 1 s
/// measurement target per layer.
#[derive(Debug, Clone, Copy)]
pub struct TimerConfig {
    /// Untimed warm-up budget per layer.
    pub warm_up: Duration,
    /// Measurement budget per layer (a floor, not a cap: at least
    /// [`TimerConfig::min_samples`] iterations always run).
    pub measurement: Duration,
    /// Minimum timed iterations per layer, whatever the budget says.
    pub min_samples: u64,
}

impl Default for TimerConfig {
    fn default() -> Self {
        Self {
            warm_up: Duration::from_millis(300),
            measurement: Duration::from_secs(1),
            min_samples: 10,
        }
    }
}

impl TimerConfig {
    /// A drastically shortened config for tests and smoke runs.
    #[must_use]
    pub fn smoke() -> Self {
        Self {
            warm_up: Duration::from_millis(5),
            measurement: Duration::from_millis(20),
            min_samples: 3,
        }
    }
}

/// Times one layer under the plain timer: warm-up, then iterations
/// until both the measurement budget and the minimum sample count are
/// satisfied.
///
/// The reported `ns_per_iter` is the fastest batch mean over twenty
/// contiguous batches of the measurement budget (see
/// [`LayerStat::ns_per_iter`]): on a shared machine the *mean* of all
/// iterations absorbs every co-tenant burst that lands inside the
/// window, while the fastest batch tracks the code's actual cost. The
/// same estimator runs on both sides of the CI drift gate, so the
/// comparison stays like-for-like.
pub fn time_layer(
    id: &str,
    group: &str,
    cfg: &TimerConfig,
    mut f: impl FnMut(),
) -> LayerStat {
    let warm_start = Instant::now();
    loop {
        f();
        if warm_start.elapsed() >= cfg.warm_up {
            break;
        }
    }
    let batch_target = cfg.measurement.as_nanos() as f64 / 20.0;
    let allocs_before = alloc_count();
    let start = Instant::now();
    let mut iters = 0u64;
    let mut total_ns = 0.0f64;
    let mut min_ns = f64::INFINITY;
    let mut batch_ns = 0.0f64;
    let mut batch_iters = 0u64;
    let mut best_batch = f64::INFINITY;
    loop {
        let t = Instant::now();
        f();
        let ns = t.elapsed().as_nanos() as f64;
        iters += 1;
        total_ns += ns;
        min_ns = min_ns.min(ns);
        batch_ns += ns;
        batch_iters += 1;
        if batch_ns >= batch_target {
            best_batch = best_batch.min(batch_ns / batch_iters as f64);
            batch_ns = 0.0;
            batch_iters = 0;
        }
        if iters >= cfg.min_samples && start.elapsed() >= cfg.measurement {
            break;
        }
    }
    let allocs_per_iter = match (allocs_before, alloc_count()) {
        (Some(a0), Some(a1)) => Some((a1 - a0) as f64 / iters as f64),
        _ => None,
    };
    let ns_per_iter = if best_batch.is_finite() {
        best_batch
    } else {
        total_ns / iters as f64
    };
    LayerStat {
        id: id.to_owned(),
        group: group.to_owned(),
        iters,
        ns_per_iter,
        min_ns_per_iter: min_ns,
        allocs_per_iter,
    }
}

/// Runs all six layers and assembles the snapshot.
///
/// The layer workloads are fixed and deterministic (same benchmarks,
/// same seeds, same sizes every run) so two snapshots differ only by
/// machine and code, never by input.
#[must_use]
#[allow(clippy::missing_panics_doc)] // catalog lookups of known names
pub fn collect(label: &str, cfg: &TimerConfig) -> BenchReport {
    let mut layers = Vec::with_capacity(6);

    // trace-gen: workload descriptor -> placed software threads, the
    // front of the pipeline (trace clones + VM service synthesis).
    {
        let xalan = by_name("xalan").expect("catalog workload");
        layers.push(time_layer(
            "trace_gen/xalan_software_threads",
            "trace_gen",
            cfg,
            || {
                std::hint::black_box(xalan.software_threads(8));
            },
        ));
    }

    // interval core: the analytical model itself, across the phase and
    // environment diversity one chip sweep sees.
    let interval = {
        let spec = ProcessorId::CoreI7_920.spec();
        let jess = by_name("jess").expect("catalog workload");
        let phases = jess.trace().phases().to_vec();
        let estimator = MissRateEstimator::global();
        let base = Environment::solo(spec, spec.base_clock);
        let envs: Vec<Environment> = (0..8u32)
            .map(|i| Environment {
                private_cache_share: if i % 2 == 0 { 1.0 } else { spec.core.smt_cache_share },
                llc_bytes_eff: spec.mem.last_level_bytes() / (1 + i as u64 % 4),
                displacement: 1.0 + 0.2 * f64::from(i % 3),
                ..base
            })
            .collect();
        let evals = (phases.len() * envs.len()) as f64;
        let stat = time_layer("interval_core/jess_phase_sweep", "interval_core", cfg, || {
            for phase in &phases {
                for env in &envs {
                    std::hint::black_box(phase_performance(spec, phase, env, estimator));
                }
            }
        });
        let ns_per_interval = stat.ns_per_iter / evals;
        layers.push(stat);
        ns_per_interval
    };

    // energy integration: per-slice activity metering and waveform
    // append, the simulator's inner accounting step.
    {
        let spec = ProcessorId::CoreI7_920.spec();
        let model = EnergyModel::new(spec.power.events, NodeScaling::default());
        let node = spec.node;
        let v = spec.voltage_at(spec.base_clock);
        let slice = Seconds::new(1e-3);
        layers.push(time_layer(
            "energy_integration/i7_slice_metering",
            "energy_integration",
            cfg,
            || {
                let mut meters = PowerMeters::new();
                let mut waveform = PowerWaveform::new(slice);
                for k in 0..256u64 {
                    let core = ActivityCounters {
                        instructions: 1_000 + k,
                        int_ops: 600,
                        fp_ops: 50,
                        l1_accesses: 400,
                        l2_accesses: 40,
                        branches: 180,
                        branch_flushes: 9,
                        tlb_misses: 2,
                        ..ActivityCounters::default()
                    };
                    let llc = ActivityCounters {
                        llc_accesses: 30 + k % 7,
                        ..ActivityCounters::default()
                    };
                    let dram = ActivityCounters {
                        dram_accesses: 10 + k % 5,
                        ..ActivityCounters::default()
                    };
                    let e_core = model.dynamic_energy_with_activity(&core, node, v, 0.9);
                    let e_llc = model.dynamic_energy_with_activity(&llc, node, v, 0.9);
                    let e_dram = model.dynamic_energy_with_activity(&dram, node, v, 0.9);
                    meters.add(Structure::Core(0), e_core);
                    meters.add(Structure::Llc, e_llc);
                    meters.add(Structure::MemoryInterface, e_dram);
                    waveform.push((e_core + e_llc + e_dram) / slice);
                }
                std::hint::black_box((meters.total_energy(), waveform.average_power()));
            },
        ));
    }

    // ADC/sensor path: a 10 s run through the 50 Hz logger, the Hall
    // sensor, the ADC, and the calibration inversion.
    {
        let rig = MeasurementRig::for_max_power(Watts::new(65.0), 42).expect("rig calibrates");
        let mut waveform = PowerWaveform::new(Seconds::from_ms(20.0));
        for i in 0..500u32 {
            waveform.push(Watts::new(26.0 + 6.0 * f64::from(i % 8)));
        }
        layers.push(time_layer("adc_sensor/rig_measure_10s", "adc_sensor", cfg, || {
            std::hint::black_box(rig.measure(&waveform, 1));
        }));
    }

    // end-to-end cell: one uncached (configuration, workload) cell on a
    // fresh fast runner -- the unit every campaign and endpoint pays.
    let cells_per_sec = {
        let config = ChipConfig::stock(ProcessorId::Core2DuoE6600.spec());
        let jess = by_name("jess").expect("catalog workload");
        let stat = time_layer("cell_e2e/fast_cell_jess_c2d", "cell_e2e", cfg, || {
            let runner = Runner::fast();
            std::hint::black_box(runner.try_measure(&config, jess).expect("clean cell"));
        });
        let cells_per_sec = 1e9 / stat.ns_per_iter;
        layers.push(stat);
        cells_per_sec
    };

    // serve cache-hit: the warm path a serving layer rides on repeats.
    {
        let config = ChipConfig::stock(ProcessorId::Core2DuoE6600.spec());
        let jess = by_name("jess").expect("catalog workload");
        let runner = Runner::fast();
        let _ = runner.try_measure(&config, jess).expect("warm the cell");
        layers.push(time_layer(
            "serve_cache_hit/warm_cell_jess_c2d",
            "serve_cache_hit",
            cfg,
            || {
                std::hint::black_box(runner.try_measure(&config, jess).expect("cache hit"));
            },
        ));
    }

    BenchReport {
        label: label.to_owned(),
        cells_per_sec,
        ns_per_interval: interval,
        layers,
    }
}

/// The serving-tier HTTP layers: warm-cell request latency straight to
/// one `lhr_serve` backend, through an `lhr_router` with its response
/// cache armed (the 2x-of-direct bound on the router hop lives in these
/// two numbers), and through a cache-off router that genuinely forwards
/// every request.
///
/// Spawns the real release binaries over loopback TCP; returns an empty
/// vec when they are not built (library tests, doctests), so [`compare`]
/// -- which only diffs layers present in both snapshots -- still gates
/// older snapshots cleanly.
#[must_use]
pub fn collect_serving(cfg: &TimerConfig) -> Vec<LayerStat> {
    use crate::chaos::{locate_binary, ServerProc};
    use crate::httpc;

    let (Ok(serve_bin), Ok(router_bin)) = (
        locate_binary("lhr_serve", "LHR_SERVE_BIN"),
        locate_binary("lhr_router", "LHR_ROUTER_BIN"),
    ) else {
        return Vec::new();
    };
    const TARGET: &str = "/v1/cell?chip=i7-45&workload=jess";
    const TIMEOUT: Duration = Duration::from_secs(120);
    let campaign_dir = std::env::temp_dir().join(format!("lhr-perf-serve-{}", std::process::id()));
    let campaign_dir = campaign_dir.to_string_lossy().into_owned();
    let fetch = |addr: std::net::SocketAddr| {
        let resp = httpc::get(addr, TARGET, TIMEOUT).expect("serving layer reachable");
        assert_eq!(resp.status, 200, "warm cell must serve: {}", resp.body_str());
        std::hint::black_box(resp.body.len());
    };

    let mut layers = Vec::with_capacity(3);
    let backend = ServerProc::spawn(
        &serve_bin,
        &["--addr", "127.0.0.1:0", "--jobs", "2", "--campaign-dir", &campaign_dir],
    )
    .expect("spawn perf backend");
    let backend_addr = backend.addr();
    fetch(backend_addr); // pay the one cold simulation up front

    // Direct: one full connect + request + warm-cache response against
    // the backend -- the baseline the router hop is measured against.
    layers.push(time_layer(
        "serve_http_warm/direct_cell_jess_i7",
        "serve_http_warm",
        cfg,
        || fetch(backend_addr),
    ));

    // Routed, cache armed: after the first pass the router answers 200s
    // from its own bounded FIFO cache, so this times the pure hop.
    {
        let router = ServerProc::spawn(
            &router_bin,
            &[
                "--addr",
                "127.0.0.1:0",
                "--backends",
                &backend_addr.to_string(),
                "--probe-interval-ms",
                "50",
                "--no-local-fallback",
            ],
        )
        .expect("spawn perf router");
        let addr = router.addr();
        fetch(addr); // populates the route cache
        layers.push(time_layer(
            "route_http_warm/router_cached_cell",
            "route_http_warm",
            cfg,
            || fetch(addr),
        ));
        let _ = router.drain();
    }

    // Routed, cache off: every request genuinely forwards (shard-key,
    // candidate walk, backend exchange) -- the failover path's cost.
    {
        let router = ServerProc::spawn(
            &router_bin,
            &[
                "--addr",
                "127.0.0.1:0",
                "--backends",
                &backend_addr.to_string(),
                "--route-cache",
                "0",
                "--probe-interval-ms",
                "50",
                "--no-local-fallback",
            ],
        )
        .expect("spawn perf forwarding router");
        let addr = router.addr();
        fetch(addr);
        layers.push(time_layer(
            "route_http_forward/router_forwarded_cell",
            "route_http_forward",
            cfg,
            || fetch(addr),
        ));
        let _ = router.drain();
    }
    let _ = backend.drain();
    layers
}

/// The measurement-store layers: sealed-batch ingest (`store_ingest`,
/// one 61-row upsert per iteration with every row changed so the
/// supersede path and the per-column fsync batch are both paid) and the
/// query engine's scan (`query_scan`, the figure-7 shaped
/// `group_by`/`agg` over a ~500-row store, pure in-memory).
///
/// # Panics
///
/// Panics when the scratch store cannot be created under the system
/// temp directory (perf runs assume a writable temp).
#[must_use]
pub fn collect_store(cfg: &TimerConfig) -> Vec<LayerStat> {
    use lhr_store::{CellRow, Store};

    let mk_row = |chip: usize, wl: usize, bump: f64| {
        let perf = 0.5 + 0.01 * (chip * 61 + wl) as f64;
        let watts = 5.0 + chip as f64 * 7.0 + bump;
        CellRow {
            chip: format!("chip-{chip}"),
            config: format!("chip-{chip} stock"),
            workload: format!("wl-{wl}"),
            group: ["Native Non-scalable", "Java Scalable"][wl % 2].to_owned(),
            config_fp: format!("{chip:016x}"),
            workload_fp: format!("{wl:016x}"),
            node: 45.0,
            cores: 4.0,
            smt: (chip % 2) as f64,
            clock: 2.66,
            turbo: 0.0,
            managed: (wl % 2) as f64,
            seconds: 10.0 / perf,
            watts,
            joules: watts * 10.0 / perf,
            perf_norm: perf,
            energy_norm: watts / perf,
            epi: watts / (perf * 1e9),
        }
    };

    let dir = std::env::temp_dir().join(format!("lhr-perf-store-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut layers = Vec::with_capacity(2);

    // Ingest: one sweep-sized batch, mutated every iteration so each
    // upsert genuinely writes (18 sealed column lines + fsyncs).
    {
        let store = Store::open(&dir).expect("scratch store");
        let mut pass = 0.0f64;
        layers.push(time_layer("store_ingest/upsert_61_cells", "store_ingest", cfg, || {
            pass += 1e-6;
            let rows: Vec<CellRow> = (0..61).map(|wl| mk_row(0, wl, pass)).collect();
            std::hint::black_box(store.upsert(&rows).expect("upsert"));
        }));
    }

    // Scan: the figure-7 shaped aggregation over an 8-chip x 61-workload
    // store (the query every stored figure pays).
    {
        let _ = std::fs::remove_dir_all(&dir);
        let store = Store::open(&dir).expect("scratch store");
        let rows: Vec<CellRow> = (0..8)
            .flat_map(|chip| (0..61).map(move |wl| mk_row(chip, wl, 0.0)))
            .collect();
        store.upsert(&rows).expect("seed scan store");
        const Q: &str =
            "filter turbo == 0 | group_by chip, clock, group | agg mean(perf_norm), mean(watts), mean(energy_norm)";
        layers.push(time_layer("query_scan/figure7_group_agg", "query_scan", cfg, || {
            std::hint::black_box(store.query(Q).expect("scan query"));
        }));
    }

    let _ = std::fs::remove_dir_all(&dir);
    layers
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> BenchReport {
        BenchReport {
            label: "test".into(),
            cells_per_sec: 42.5,
            ns_per_interval: 913.25,
            layers: vec![
                LayerStat {
                    id: "trace_gen/xalan_software_threads".into(),
                    group: "trace_gen".into(),
                    iters: 100,
                    ns_per_iter: 1234.5,
                    min_ns_per_iter: 1200.0,
                    allocs_per_iter: Some(17.0),
                },
                LayerStat {
                    id: "cell_e2e/fast_cell_jess_c2d".into(),
                    group: "cell_e2e".into(),
                    iters: 12,
                    ns_per_iter: 2.35e7,
                    min_ns_per_iter: 2.3e7,
                    allocs_per_iter: None,
                },
            ],
        }
    }

    #[test]
    fn json_round_trip_is_identity() {
        let report = sample_report();
        let parsed = BenchReport::from_json(&report.to_json()).expect("parses");
        assert_eq!(parsed, report);
    }

    #[test]
    fn round_trip_preserves_float_bits() {
        // The shortest-round-trip formatter must reproduce exact bits,
        // the same property the campaign journal relies on.
        let mut report = sample_report();
        report.cells_per_sec = 0.1 + 0.2; // a classic non-representable sum
        report.layers[0].ns_per_iter = 1.0 / 3.0;
        let parsed = BenchReport::from_json(&report.to_json()).unwrap();
        assert_eq!(
            parsed.cells_per_sec.to_bits(),
            report.cells_per_sec.to_bits()
        );
        assert_eq!(
            parsed.layers[0].ns_per_iter.to_bits(),
            report.layers[0].ns_per_iter.to_bits()
        );
    }

    #[test]
    fn missing_allocs_stays_missing() {
        let report = sample_report();
        let parsed = BenchReport::from_json(&report.to_json()).unwrap();
        assert_eq!(parsed.layers[0].allocs_per_iter, Some(17.0));
        assert_eq!(parsed.layers[1].allocs_per_iter, None);
    }

    #[test]
    fn wrong_schema_is_rejected() {
        let json = sample_report().to_json().replace(
            "\"schema\": 1",
            "\"schema\": 99",
        );
        let err = BenchReport::from_json(&json).unwrap_err();
        assert!(err.contains("unsupported schema"), "{err}");
    }

    #[test]
    fn drift_gate_passes_small_and_fails_large_regressions() {
        let base = sample_report();
        let mut ok = base.clone();
        ok.cells_per_sec = base.cells_per_sec * 0.90;
        assert!(compare(&ok, &base).passed(), "10% loss is inside the gate");
        let mut bad = base.clone();
        bad.cells_per_sec = base.cells_per_sec * 0.80;
        bad.layers[1].ns_per_iter *= 1.30;
        let drift = compare(&bad, &base);
        assert!(!drift.passed(), "20% loss must fail");
        let (worst, slowdown) = drift.worst_layer().expect("a layer regressed");
        assert_eq!(worst, "cell_e2e/fast_cell_jess_c2d");
        assert!((slowdown - 1.30).abs() < 1e-9);
        assert!(drift.render().contains("regressing layer"));
    }

    #[test]
    fn drift_gate_celebrates_speedups() {
        let base = sample_report();
        let mut fast = base.clone();
        fast.cells_per_sec *= 5.0;
        let drift = compare(&fast, &base);
        assert!(drift.passed());
        assert!(drift.worst_layer().is_none(), "nothing slowed down");
    }

    #[test]
    fn timer_respects_minimum_samples() {
        let cfg = TimerConfig::smoke();
        let mut calls = 0u64;
        let stat = time_layer("t/x", "t", &cfg, || calls += 1);
        assert!(stat.iters >= cfg.min_samples);
        assert!(calls >= stat.iters, "warm-up runs extra calls");
        assert!(stat.min_ns_per_iter <= stat.ns_per_iter);
        assert_eq!(stat.allocs_per_iter, None, "no probe in unit tests");
    }

    #[test]
    fn fastest_batch_suppresses_one_off_stalls() {
        let cfg = TimerConfig {
            warm_up: Duration::from_millis(1),
            measurement: Duration::from_millis(100),
            min_samples: 3,
        };
        // Each call spins ~2 us; one call mid-measurement stalls 200 ms,
        // the shape of a co-tenant CPU burst. A plain mean over the
        // window would report ~6 us/iter; the fastest-batch estimator
        // must stay near the undisturbed 2 us.
        let started = Instant::now();
        let mut stalled = false;
        let stat = time_layer("t/stall", "t", &cfg, || {
            if !stalled && started.elapsed() > Duration::from_millis(30) {
                stalled = true;
                std::thread::sleep(Duration::from_millis(200));
            }
            let spin = Instant::now();
            while spin.elapsed() < Duration::from_micros(2) {
                std::hint::spin_loop();
            }
        });
        assert!(
            stat.ns_per_iter < 3_500.0,
            "fastest batch should shed the stall, got {} ns",
            stat.ns_per_iter
        );
        assert!(stat.min_ns_per_iter <= stat.ns_per_iter);
    }

    #[test]
    fn collect_smoke_produces_all_six_layers() {
        let report = collect("smoke", &TimerConfig::smoke());
        let groups: Vec<&str> = report.layers.iter().map(|l| l.group.as_str()).collect();
        assert_eq!(
            groups,
            [
                "trace_gen",
                "interval_core",
                "energy_integration",
                "adc_sensor",
                "cell_e2e",
                "serve_cache_hit"
            ]
        );
        assert!(report.cells_per_sec > 0.0);
        assert!(report.ns_per_interval > 0.0);
        let round = BenchReport::from_json(&report.to_json()).unwrap();
        assert_eq!(round, report);
    }
}
