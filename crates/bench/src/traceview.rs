//! Span-tree reconstruction from a JSON-lines trace: the engine behind
//! the `lhr_traceview` binary.
//!
//! A trace produced with request context (see `lhr_obs::context`)
//! carries `"req"` on every event recorded under a request and
//! `"parent"` on nested span starts. This module folds those lines back
//! into per-request trees:
//!
//! ```text
//! request 7 (3 spans, 12 events)
//!   * serve.request./v1/cell              total 812.40 ms  self 0.52 ms
//!   *   harness.cell                      total 811.88 ms  self 3.10 ms
//!         runner.measure                  total  96.12 ms  self 96.12 ms
//!   *     runner.measure                  total 712.66 ms  self 712.66 ms
//! ```
//!
//! `total` is the span's own wall time; `self` subtracts the children
//! (clamped at zero -- concurrent children can legitimately overlap
//! their parent). The `*` column marks the critical path: from each
//! root, the chain of largest-total children, which is where an
//! optimizer should look first.
//!
//! Spans whose parent never appears in the trace (the parent ended
//! before tracing started, or the line was lost) attach under the
//! request root rather than vanishing, so the tree is complete even on
//! a truncated trace. Events with no request id (campaign runs, the
//! serve accept loop) group under "untraced".

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

/// One reconstructed span.
#[derive(Debug, Clone)]
pub struct SpanNode {
    /// The process-unique span id from the trace.
    pub id: u64,
    /// The span name (`serve.request./v1/cell`, `harness.cell`, ...).
    pub name: String,
    /// Parent span id; 0 = a root of its request.
    pub parent: u64,
    /// Wall time from the matching `span_end`; 0 if the span never
    /// ended (the trace stopped first).
    pub nanos: u64,
    /// Whether a `span_end` line was seen for this id.
    pub ended: bool,
    /// Child span ids, in trace order.
    pub children: Vec<u64>,
}

impl SpanNode {
    /// The span's wall time in milliseconds.
    #[must_use]
    #[allow(clippy::cast_precision_loss)]
    pub fn total_ms(&self) -> f64 {
        self.nanos as f64 / 1e6
    }
}

/// Every span of one request, plus the request's non-span event count.
#[derive(Debug, Clone, Default)]
pub struct RequestTrace {
    /// Spans by id.
    pub spans: BTreeMap<u64, SpanNode>,
    /// Root span ids (parent 0 or parent missing from the trace).
    pub roots: Vec<u64>,
    /// Non-span events (counters, gauges, histograms, marks) that
    /// carried this request id.
    pub events: usize,
    /// Leader request ids this request coalesced onto
    /// (`serve.coalesce.follows` marks).
    pub followed: Vec<u64>,
}

impl RequestTrace {
    /// Self time of `id`: total minus the children's totals, clamped at
    /// zero (children running on concurrent threads can overlap).
    #[must_use]
    #[allow(clippy::cast_precision_loss)]
    pub fn self_ms(&self, id: u64) -> f64 {
        let Some(span) = self.spans.get(&id) else {
            return 0.0;
        };
        let children: u64 = span
            .children
            .iter()
            .filter_map(|c| self.spans.get(c))
            .map(|c| c.nanos)
            .sum();
        span.nanos.saturating_sub(children) as f64 / 1e6
    }

    /// The critical path from `root`: the chain of largest-total
    /// children, as span ids (root first).
    #[must_use]
    pub fn critical_path(&self, root: u64) -> Vec<u64> {
        let mut path = Vec::new();
        let mut at = root;
        while let Some(span) = self.spans.get(&at) {
            path.push(at);
            let Some(next) = span
                .children
                .iter()
                .filter_map(|c| self.spans.get(c))
                .max_by_key(|c| c.nanos)
            else {
                break;
            };
            at = next.id;
        }
        path
    }
}

/// A whole parsed trace, grouped by request id (0 = untraced).
#[derive(Debug, Clone, Default)]
pub struct TraceView {
    /// Requests in id order; key 0 holds the request-less spans.
    pub requests: BTreeMap<u64, RequestTrace>,
    /// Lines that were not recognizable events (corrupt tail, etc.).
    pub skipped_lines: usize,
}

fn after_key<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let needle = format!("\"{key}\":");
    line.find(&needle).map(|i| &line[i + needle.len()..])
}

fn parse_u64(line: &str, key: &str) -> Option<u64> {
    let rest = after_key(line, key)?;
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    rest[..end].trim().parse().ok()
}

fn parse_str(line: &str, key: &str) -> Option<String> {
    // Trace names never contain escapes the renderer emits unescaped;
    // take the literal up to the closing quote and unescape the common
    // cases (the writer is `lhr_obs::push_json_string`).
    let rest = after_key(line, key)?.strip_prefix('"')?;
    let mut out = String::new();
    let mut chars = rest.chars();
    loop {
        match chars.next()? {
            '"' => return Some(out),
            '\\' => match chars.next()? {
                '"' => out.push('"'),
                '\\' => out.push('\\'),
                'n' => out.push('\n'),
                'r' => out.push('\r'),
                't' => out.push('\t'),
                'u' => {
                    let hex: String = chars.by_ref().take(4).collect();
                    let code = u32::from_str_radix(&hex, 16).ok()?;
                    out.push(char::from_u32(code)?);
                }
                _ => return None,
            },
            c => out.push(c),
        }
    }
}

impl TraceView {
    /// Parses a trace from its text (one JSON object per line).
    #[must_use]
    pub fn parse(text: &str) -> Self {
        let mut view = TraceView::default();
        // First pass: collect spans and events under their requests.
        for line in text.lines() {
            if line.trim().is_empty() {
                continue;
            }
            let Some(ev) = parse_str(line, "ev") else {
                view.skipped_lines += 1;
                continue;
            };
            let req = parse_u64(line, "req").unwrap_or(0);
            let request = view.requests.entry(req).or_default();
            match ev.as_str() {
                "span_start" => {
                    let (Some(id), Some(name)) =
                        (parse_u64(line, "id"), parse_str(line, "name"))
                    else {
                        view.skipped_lines += 1;
                        continue;
                    };
                    request.spans.insert(
                        id,
                        SpanNode {
                            id,
                            name,
                            parent: parse_u64(line, "parent").unwrap_or(0),
                            nanos: 0,
                            ended: false,
                            children: Vec::new(),
                        },
                    );
                }
                "span_end" => {
                    let Some(id) = parse_u64(line, "id") else {
                        view.skipped_lines += 1;
                        continue;
                    };
                    if let Some(span) = request.spans.get_mut(&id) {
                        span.nanos = parse_u64(line, "ns").unwrap_or(0);
                        span.ended = true;
                    }
                }
                "counter" | "gauge" | "histogram" => request.events += 1,
                "mark" => {
                    request.events += 1;
                    if parse_str(line, "name").as_deref() == Some("serve.coalesce.follows") {
                        if let Some(leader) = parse_str(line, "detail")
                            .and_then(|d| d.strip_prefix("leader_request=")?.parse().ok())
                        {
                            request.followed.push(leader);
                        }
                    }
                }
                _ => view.skipped_lines += 1,
            }
        }
        // Second pass: link children and find roots. A span whose
        // parent id is absent from its request still appears -- as a
        // root -- so truncated traces stay readable.
        for request in view.requests.values_mut() {
            let ids: Vec<u64> = request.spans.keys().copied().collect();
            for id in ids {
                let parent = request.spans[&id].parent;
                if parent != 0 && request.spans.contains_key(&parent) {
                    request
                        .spans
                        .get_mut(&parent)
                        .expect("parent present")
                        .children
                        .push(id);
                } else {
                    request.roots.push(id);
                }
            }
        }
        view
    }

    /// Parses the trace file at `path`.
    ///
    /// # Errors
    ///
    /// Propagates the [`io::Error`] if the file cannot be read.
    pub fn open(path: impl AsRef<Path>) -> io::Result<Self> {
        Ok(Self::parse(&fs::read_to_string(path)?))
    }

    /// Total spans reconstructed across every request.
    #[must_use]
    pub fn span_count(&self) -> usize {
        self.requests.values().map(|r| r.spans.len()).sum()
    }

    /// Renders the per-request span trees with self/total time and
    /// critical-path markers (see the module docs for the shape).
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (req, request) in &self.requests {
            if request.spans.is_empty() && request.events == 0 {
                continue;
            }
            if *req == 0 {
                let _ = write!(out, "untraced");
            } else {
                let _ = write!(out, "request {req}");
            }
            let _ = writeln!(
                out,
                " ({} span{}, {} event{})",
                request.spans.len(),
                if request.spans.len() == 1 { "" } else { "s" },
                request.events,
                if request.events == 1 { "" } else { "s" },
            );
            for leader in &request.followed {
                let _ = writeln!(out, "  coalesced onto request {leader}");
            }
            for &root in &request.roots {
                let critical: std::collections::BTreeSet<u64> =
                    request.critical_path(root).into_iter().collect();
                render_subtree(&mut out, request, root, 0, &critical);
            }
        }
        if self.skipped_lines > 0 {
            let _ = writeln!(out, "({} unparseable line(s) skipped)", self.skipped_lines);
        }
        out
    }
}

// ---------------------------------------------------------------------
// Distributed traces: span-store directories
// ---------------------------------------------------------------------

/// A multi-process distributed-trace view over one or more span-store
/// directories (a router's plus its backends'). Fragments recorded by
/// different processes for the same 128-bit trace id merge here, and
/// rendering stitches them with clock-skew alignment -- each remote
/// fragment is shifted into the reference process's timeline using the
/// send/recv bounds of the attempt span that parented it (see
/// `lhr_store::stitch`).
#[derive(Debug, Clone, Default)]
pub struct SpanStoreView {
    /// All persisted rows, grouped by trace id.
    pub traces: BTreeMap<u128, Vec<lhr_store::SpanRow>>,
}

impl SpanStoreView {
    /// Opens every span-store directory in `dirs` and merges their
    /// rows. Exact duplicate rows (two dirs sharing a store) collapse.
    ///
    /// # Errors
    ///
    /// Propagates the first [`io::Error`] opening a directory.
    pub fn open(dirs: &[impl AsRef<Path>]) -> io::Result<Self> {
        let mut view = Self::default();
        for dir in dirs {
            let table = lhr_store::SpanTable::open(dir.as_ref())?;
            for trace in table.trace_ids() {
                let rows = view.traces.entry(trace).or_default();
                for row in table.trace_rows(trace) {
                    let dup = rows.iter().any(|r| {
                        r.proc == row.proc && r.span == row.span && r.start_ns == row.start_ns
                    });
                    if !dup {
                        rows.push(row);
                    }
                }
            }
        }
        Ok(view)
    }

    /// Renders one trace's stitched multi-process tree; `None` if the
    /// trace id is unknown.
    #[must_use]
    pub fn render_trace(&self, trace: u128) -> Option<String> {
        let rows = self.traces.get(&trace)?;
        let roots = lhr_store::stitch(rows);
        let mut procs: Vec<&str> = rows.iter().map(|r| r.proc.as_str()).collect();
        procs.sort_unstable();
        procs.dedup();
        let mut out = String::new();
        let _ = writeln!(
            out,
            "trace {trace:032x} ({} span{}, {} process{})",
            rows.len(),
            if rows.len() == 1 { "" } else { "s" },
            procs.len(),
            if procs.len() == 1 { "" } else { "es" },
        );
        for root in &roots {
            render_stitched(&mut out, root, 0);
        }
        Some(out)
    }

    /// Renders every trace, largest span count first.
    #[must_use]
    pub fn render(&self) -> String {
        let mut ids: Vec<u128> = self.traces.keys().copied().collect();
        ids.sort_by_key(|id| std::cmp::Reverse(self.traces[id].len()));
        let mut out = String::new();
        for id in ids {
            if let Some(text) = self.render_trace(id) {
                out.push_str(&text);
            }
        }
        out
    }
}

#[allow(clippy::cast_precision_loss)]
fn render_stitched(out: &mut String, node: &lhr_store::SpanNode, depth: usize) {
    let indent = depth * 2;
    let name_width = 40usize.saturating_sub(indent);
    let _ = writeln!(
        out,
        "  {:indent$}{:<name_width$} [{}] total {:>10.3} ms{}",
        "",
        node.row.name,
        node.row.proc,
        node.row.dur_ns as f64 / 1e6,
        if node.row.status == "error" {
            "  ERROR"
        } else {
            ""
        },
    );
    for child in &node.children {
        render_stitched(out, child, depth + 1);
    }
}

fn render_subtree(
    out: &mut String,
    request: &RequestTrace,
    id: u64,
    depth: usize,
    critical: &std::collections::BTreeSet<u64>,
) {
    let Some(span) = request.spans.get(&id) else {
        return;
    };
    let marker = if critical.contains(&id) { '*' } else { ' ' };
    let indent = depth * 2;
    let name_width = 40usize.saturating_sub(indent);
    let _ = write!(
        out,
        "  {marker} {:indent$}{:<name_width$}",
        "", span.name,
    );
    if span.ended {
        let _ = writeln!(
            out,
            " total {:>10.3} ms  self {:>10.3} ms",
            span.total_ms(),
            request.self_ms(id)
        );
    } else {
        let _ = writeln!(out, " (never ended)");
    }
    for &child in &span.children {
        render_subtree(out, request, child, depth + 1, critical);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
{\"ev\":\"span_start\",\"name\":\"serve.request./v1/cell\",\"id\":10,\"req\":7}\n\
{\"ev\":\"span_start\",\"name\":\"harness.cell\",\"id\":11,\"parent\":10,\"req\":7}\n\
{\"ev\":\"span_start\",\"name\":\"runner.measure\",\"id\":12,\"parent\":11,\"req\":7}\n\
{\"ev\":\"span_end\",\"name\":\"runner.measure\",\"id\":12,\"ns\":600000000,\"req\":7}\n\
{\"ev\":\"counter\",\"name\":\"runner.measurements\",\"delta\":1,\"req\":7}\n\
{\"ev\":\"span_end\",\"name\":\"harness.cell\",\"id\":11,\"ns\":800000000,\"req\":7}\n\
{\"ev\":\"span_end\",\"name\":\"serve.request./v1/cell\",\"id\":10,\"ns\":900000000,\"req\":7}\n\
{\"ev\":\"span_start\",\"name\":\"serve.request./healthz\",\"id\":20,\"req\":8}\n\
{\"ev\":\"span_end\",\"name\":\"serve.request./healthz\",\"id\":20,\"ns\":50000,\"req\":8}\n\
{\"ev\":\"mark\",\"name\":\"serve.coalesce.follows\",\"detail\":\"leader_request=7\",\"req\":9}\n\
{\"ev\":\"counter\",\"name\":\"serve.accepted\",\"delta\":1}\n";

    #[test]
    fn reconstructs_trees_with_parent_links() {
        let view = TraceView::parse(SAMPLE);
        assert_eq!(view.skipped_lines, 0);
        assert_eq!(view.span_count(), 4, "3 in request 7 plus the healthz span");
        let r7 = &view.requests[&7];
        assert_eq!(r7.roots, vec![10]);
        assert_eq!(r7.spans[&10].children, vec![11]);
        assert_eq!(r7.spans[&11].children, vec![12]);
        assert_eq!(r7.events, 1);
        // Untraced events (the accept counter) group under request 0.
        assert_eq!(view.requests[&0].events, 1);
    }

    #[test]
    fn self_time_subtracts_children_and_clamps() {
        let view = TraceView::parse(SAMPLE);
        let r7 = &view.requests[&7];
        // 900ms total, 800ms child -> 100ms self.
        assert!((r7.self_ms(10) - 100.0).abs() < 1e-9);
        // Leaf: self == total.
        assert!((r7.self_ms(12) - 600.0).abs() < 1e-9);
        // A child longer than its parent clamps to zero, never negative.
        let overlap = TraceView::parse(
            "{\"ev\":\"span_start\",\"name\":\"p\",\"id\":1,\"req\":1}\n\
             {\"ev\":\"span_start\",\"name\":\"c\",\"id\":2,\"parent\":1,\"req\":1}\n\
             {\"ev\":\"span_end\",\"name\":\"c\",\"id\":2,\"ns\":100,\"req\":1}\n\
             {\"ev\":\"span_end\",\"name\":\"p\",\"id\":1,\"ns\":50,\"req\":1}\n",
        );
        assert!(overlap.requests[&1].self_ms(1).abs() < 1e-12);
    }

    #[test]
    fn critical_path_follows_the_largest_child() {
        let view = TraceView::parse(SAMPLE);
        assert_eq!(view.requests[&7].critical_path(10), vec![10, 11, 12]);
    }

    #[test]
    fn orphaned_spans_surface_as_roots() {
        let truncated = "\
{\"ev\":\"span_start\",\"name\":\"child\",\"id\":5,\"parent\":99,\"req\":3}\n\
{\"ev\":\"span_end\",\"name\":\"child\",\"id\":5,\"ns\":1000,\"req\":3}\n";
        let view = TraceView::parse(truncated);
        let r3 = &view.requests[&3];
        assert_eq!(r3.roots, vec![5], "orphan becomes a root, not lost");
    }

    #[test]
    fn render_shows_requests_critical_path_and_linkage() {
        let view = TraceView::parse(SAMPLE);
        let text = view.render();
        assert!(text.contains("request 7 (3 spans, 1 event)"), "{text}");
        assert!(text.contains("* serve.request./v1/cell"), "{text}");
        assert!(text.contains("runner.measure"), "{text}");
        assert!(text.contains("request 9"), "{text}");
        assert!(text.contains("coalesced onto request 7"), "{text}");
        assert!(text.contains("untraced (0 spans, 1 event)"), "{text}");
    }

    #[test]
    fn unparseable_lines_are_counted_not_fatal() {
        let view = TraceView::parse("not json\n{\"ev\":\"widget\",\"name\":\"x\"}\n");
        assert_eq!(view.skipped_lines, 2);
        assert!(view.render().contains("2 unparseable line(s) skipped"));
    }
}
