//! Shared machinery for the table/figure regenerator binaries and the
//! Criterion benches.
//!
//! Every table and figure of the paper has a binary in `src/bin/` that
//! prints the reproduced rows or series (`table1` ... `figure12`), plus
//! `repro_all`, which regenerates everything in one pass and writes the
//! paper-vs-measured record used by EXPERIMENTS.md. All binaries accept
//! `--quick` (12-benchmark subset, 2 invocations) for a fast look; the
//! default runs the full 61-benchmark catalog with a reduced invocation
//! count, and `--paper` uses the exact prescribed 3/5/20 invocations.
//!
//! Every binary also accepts `--trace <path>`: the run's pipeline events
//! (spans, counters, histograms, marks from `lhr-obs`) stream to `path`
//! as JSON lines, and an end-of-run profile summary prints to stdout.
//! Tracing never changes a number in the rendered outputs (see the
//! `zero_perturbation` integration test).
//!
//! Long regenerations run as supervised campaigns (see [`campaign`]):
//! `--journal <path>` arms a crash-safe write-ahead journal of resolved
//! cells, `--resume` replays it so only missing cells re-execute,
//! `--max-cell-seconds <s>` puts a watchdog deadline on each cell,
//! `--jobs <n>` caps worker threads, and `--abort-after <n>` aborts
//! deterministically (the kill half of the kill-and-resume test). None
//! of these change a rendered byte: supervision schedules measurements,
//! it never touches their values.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod artifact;
pub mod campaign;
pub mod chaos;
pub mod httpc;
pub mod perfjson;
pub mod queries;
pub mod traceview;

use std::path::{Path, PathBuf};
use std::sync::Arc;

use lhr_obs::{
    JsonLinesRecorder, MemoryRecorder, MetricsSnapshot, Obs, Recorder, Span, SpanStats,
    TimeSeriesConfig, TimeSeriesRecorder,
};

use lhr_core::experiments::{
    figure10_turbo, figure11_history, figure1_scalability, figure2_tdp, figure3_scatter,
    figure4_cmp, figure5_smt, figure6_jvm, figure7_clock, figure8_dieshrink, figure9_uarch,
    pareto, table1, table2, table3, table4,
};
use lhr_core::{configs, Harness, Runner};

/// Fidelity level selected on the command line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fidelity {
    /// 12-benchmark subset, 2 invocations, shortened traces.
    Quick,
    /// Full catalog, 3 invocations, full traces (the default).
    Standard,
    /// Full catalog, the paper's prescribed 3/5/20 invocations.
    Paper,
}

impl Fidelity {
    /// Parses the process arguments.
    #[must_use]
    pub fn from_args() -> Self {
        let args: Vec<String> = std::env::args().collect();
        if args.iter().any(|a| a == "--quick") {
            Fidelity::Quick
        } else if args.iter().any(|a| a == "--paper") {
            Fidelity::Paper
        } else {
            Fidelity::Standard
        }
    }

    /// Builds the harness for this fidelity.
    #[must_use]
    pub fn harness(self) -> Harness {
        match self {
            Fidelity::Quick => Harness::quick(),
            Fidelity::Standard => Harness::new(Runner::new().with_invocations(3)),
            Fidelity::Paper => Harness::new(Runner::new()),
        }
    }
}

/// The `--trace <path>` argument, if present.
///
/// # Panics
///
/// Panics if `--trace` is the last argument (it needs a path).
#[must_use]
pub fn trace_path_from_args() -> Option<PathBuf> {
    let args: Vec<String> = std::env::args().collect();
    args.iter().position(|a| a == "--trace").map(|i| {
        PathBuf::from(
            args.get(i + 1)
                .expect("--trace requires a path argument")
                .as_str(),
        )
    })
}

/// The observability rig the regenerator binaries arm: an in-memory
/// aggregator (always, for the end-of-run profile summary), a windowed
/// [`TimeSeriesRecorder`] (always, so the live-telemetry aggregation
/// path runs under the zero-perturbation lock too), plus an optional
/// JSON-lines stream when `--trace <path>` is given, fanned out behind
/// one [`Obs`] handle.
///
/// Arming it never changes a rendered number -- the recorders only watch
/// values the pipeline already computed (locked in by the
/// `zero_perturbation` integration test).
pub struct Observability {
    obs: Obs,
    memory: Arc<MemoryRecorder>,
    timeseries: Arc<TimeSeriesRecorder>,
    trace: Option<(PathBuf, Arc<JsonLinesRecorder>)>,
}

impl Observability {
    /// Builds from the process arguments (`--trace <path>`).
    ///
    /// # Panics
    ///
    /// Panics if `--trace` is missing its path or the file cannot be
    /// created.
    #[must_use]
    pub fn from_args() -> Self {
        Self::with_trace_path(trace_path_from_args().as_deref())
    }

    /// Builds with an explicit trace destination (`None` = memory only).
    ///
    /// # Panics
    ///
    /// Panics if the trace file cannot be created.
    #[must_use]
    pub fn with_trace_path(path: Option<&Path>) -> Self {
        let memory = Arc::new(MemoryRecorder::default());
        let timeseries = Arc::new(TimeSeriesRecorder::new(TimeSeriesConfig::serving_default()));
        let mut sinks: Vec<Arc<dyn Recorder>> = vec![
            memory.clone() as Arc<dyn Recorder>,
            timeseries.clone() as Arc<dyn Recorder>,
        ];
        let trace = path.map(|p| {
            let json = Arc::new(
                JsonLinesRecorder::create(p)
                    .unwrap_or_else(|e| panic!("--trace {}: {e}", p.display())),
            );
            sinks.push(json.clone() as Arc<dyn Recorder>);
            (p.to_owned(), json)
        });
        Self {
            obs: Obs::fanout(sinks),
            memory,
            timeseries,
            trace,
        }
    }

    /// Whether a `--trace` stream is armed.
    #[must_use]
    pub fn tracing(&self) -> bool {
        self.trace.is_some()
    }

    /// Arms the rig's handle on a harness (see
    /// [`lhr_core::Harness::with_observer`]).
    #[must_use]
    pub fn arm(&self, harness: Harness) -> Harness {
        harness.with_observer(self.obs.clone())
    }

    /// Opens an `experiment.<name>` span; its wall time feeds the
    /// profile summary and the trace stream.
    pub fn experiment_span(&self, name: &str) -> Span {
        self.obs.span(&format!("experiment.{name}"))
    }

    /// A point-in-time copy of the aggregated metrics, with
    /// [`MetricsSnapshot::trace_write_errors`] filled in from the trace
    /// stream (0 when tracing is off).
    #[must_use]
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut snap = self.memory.snapshot();
        snap.trace_write_errors = self.trace.as_ref().map_or(0, |(_, json)| json.write_errors());
        snap
    }

    /// The windowed time-series view of the same event stream (see
    /// [`TimeSeriesRecorder`]); armed on every run so the serving
    /// layer's aggregation path is exercised by the regenerators too.
    #[must_use]
    pub fn timeseries(&self) -> &Arc<TimeSeriesRecorder> {
        &self.timeseries
    }

    /// Flushes every recorder (drains the trace stream to disk).
    pub fn flush(&self) {
        self.obs.flush();
    }

    /// Flushes and renders the end-of-run profile summary: wall time per
    /// experiment (slowest first), sweep throughput, and the resilience
    /// totals (retries, recalibrations, degraded cells, worker panics).
    #[must_use]
    #[allow(clippy::cast_precision_loss)]
    pub fn profile_summary(&self) -> String {
        use std::fmt::Write as _;

        self.flush();
        let snap = self.snapshot();
        let mut out = String::from("profile summary:\n");
        let mut experiments: Vec<(&str, &SpanStats)> = snap
            .spans
            .iter()
            .filter_map(|(n, s)| n.strip_prefix("experiment.").map(|n| (n, s)))
            .collect();
        experiments.sort_by_key(|(_, s)| std::cmp::Reverse(s.total_nanos));
        let width = experiments.iter().map(|(n, _)| n.len()).max().unwrap_or(0);
        for (name, s) in &experiments {
            let _ = writeln!(out, "  {name:<width$}  {:>8.2} s", s.total_seconds());
        }
        let cells = snap.counter("harness.cells");
        let cell_secs = snap
            .spans
            .get("harness.cell")
            .map_or(0.0, SpanStats::total_seconds);
        let rate = if cell_secs > 0.0 {
            cells as f64 / cell_secs
        } else {
            0.0
        };
        let _ = writeln!(out, "  cells evaluated   {cells} ({rate:.1} cells/sec)");
        let _ = writeln!(
            out,
            "  measurements      {} ({} served from cache)",
            snap.counter("runner.measurements"),
            snap.counter("runner.cache_hits"),
        );
        let _ = writeln!(out, "  retries           {}", snap.counter("runner.retries"));
        let _ = writeln!(
            out,
            "  recalibrations    {}",
            snap.counter("runner.recalibrations")
        );
        let _ = writeln!(
            out,
            "  degraded cells    {}",
            snap.counter("harness.cells_degraded")
        );
        let _ = writeln!(
            out,
            "  worker panics     {}",
            snap.counter("sweep.worker_panics")
        );
        if let Some((path, json)) = &self.trace {
            let _ = writeln!(
                out,
                "  trace             {} ({} lines, {} write errors)",
                path.display(),
                json.lines_written(),
                json.write_errors(),
            );
        }
        out
    }
}

/// The experiments a regenerator can run, in paper order.
pub const EXPERIMENTS: [&str; 16] = [
    "table1", "table2", "table3", "table4", "table5", "figure1", "figure2", "figure3",
    "figure4", "figure5", "figure6", "figure7", "figure8", "figure9", "figure10", "figure11",
];

/// Runs one experiment by name and returns its rendered output.
///
/// # Panics
///
/// Panics on an unknown experiment name; the binaries validate first.
#[must_use]
pub fn run_experiment(name: &str, harness: &Harness) -> String {
    match name {
        "table1" => table1::render(),
        "table2" => {
            let configs = configs::stock_configs();
            table2::run(harness, &configs).render()
        }
        "table3" => table3::render(),
        "table4" => {
            let t = table4::run(harness);
            format!(
                "{}\npaper vs measured (Avg_w):\n{}",
                t.render(),
                t.render_comparison()
            )
        }
        "table5" | "figure12" => {
            let analysis = pareto::run(harness);
            format!(
                "Table 5 (Pareto-efficient 45nm configurations):\n{}\nFigure 12 frontiers:\n{}",
                analysis.render_table5(),
                analysis.render_figure12()
            )
        }
        "figure1" => figure1_scalability::render(&figure1_scalability::run(harness)),
        "figure2" => figure2_tdp::render(&figure2_tdp::run(harness)),
        "figure3" => figure3_scatter::render(&figure3_scatter::run(harness)),
        "figure4" => figure4_cmp::render(&figure4_cmp::run(harness)),
        "figure5" => figure5_smt::render(&figure5_smt::run(harness)),
        "figure6" => figure6_jvm::render(&figure6_jvm::run(harness)),
        "figure7" => figure7_clock::render(&figure7_clock::run(harness)),
        "figure8" => figure8_dieshrink::render(&figure8_dieshrink::run(harness)),
        "figure9" => figure9_uarch::render(&figure9_uarch::run(harness)),
        "figure10" => figure10_turbo::render(&figure10_turbo::run(harness)),
        "figure11" => figure11_history::render(&figure11_history::run(harness)),
        other => panic!("unknown experiment {other:?}; known: {EXPERIMENTS:?} + figure12"),
    }
}

/// Entry point shared by the thin per-experiment binaries.
///
/// Honors `--quick`/`--paper` for fidelity, `--trace <path>` for a
/// JSON-lines event stream (with the profile summary printed after the
/// experiment's output), and the campaign flags (`--journal`,
/// `--resume`, `--max-cell-seconds`, `--jobs`, `--abort-after`): when a
/// campaign feature is armed, the study grid is measured under the
/// supervisor first -- journaled, deadline-watched, resumable -- and
/// the experiment then renders from the warmed cache.
pub fn main_for(name: &str) {
    let fidelity = Fidelity::from_args();
    let observability = Observability::from_args();
    let opts = campaign::CampaignOptions::from_args();
    let prepared = campaign::prepare(fidelity, &observability, &opts);
    if prepared.aborted() {
        println!("{}", observability.profile_summary());
        std::process::exit(campaign::EXIT_ABORTED);
    }
    println!("=== {name} ({fidelity:?}) ===\n");
    let span = observability.experiment_span(name);
    println!("{}", run_experiment(name, &prepared.harness));
    span.end();
    if observability.tracing() {
        println!("{}", observability.profile_summary());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_tables_render_without_a_harness_sweep() {
        // table1/table3 need no measurements at all.
        let harness = Harness::quick();
        assert!(run_experiment("table1", &harness).contains("mcf"));
        assert!(run_experiment("table3", &harness).contains("SLBCH"));
    }

    #[test]
    #[should_panic(expected = "unknown experiment")]
    fn unknown_experiment_panics() {
        let harness = Harness::quick();
        let _ = run_experiment("figure99", &harness);
    }
}
