//! Shared machinery for the table/figure regenerator binaries and the
//! Criterion benches.
//!
//! Every table and figure of the paper has a binary in `src/bin/` that
//! prints the reproduced rows or series (`table1` ... `figure12`), plus
//! `repro_all`, which regenerates everything in one pass and writes the
//! paper-vs-measured record used by EXPERIMENTS.md. All binaries accept
//! `--quick` (12-benchmark subset, 2 invocations) for a fast look; the
//! default runs the full 61-benchmark catalog with a reduced invocation
//! count, and `--paper` uses the exact prescribed 3/5/20 invocations.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use lhr_core::experiments::{
    figure10_turbo, figure11_history, figure1_scalability, figure2_tdp, figure3_scatter,
    figure4_cmp, figure5_smt, figure6_jvm, figure7_clock, figure8_dieshrink, figure9_uarch,
    pareto, table1, table2, table3, table4,
};
use lhr_core::{configs, Harness, Runner};

/// Fidelity level selected on the command line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fidelity {
    /// 12-benchmark subset, 2 invocations, shortened traces.
    Quick,
    /// Full catalog, 3 invocations, full traces (the default).
    Standard,
    /// Full catalog, the paper's prescribed 3/5/20 invocations.
    Paper,
}

impl Fidelity {
    /// Parses the process arguments.
    #[must_use]
    pub fn from_args() -> Self {
        let args: Vec<String> = std::env::args().collect();
        if args.iter().any(|a| a == "--quick") {
            Fidelity::Quick
        } else if args.iter().any(|a| a == "--paper") {
            Fidelity::Paper
        } else {
            Fidelity::Standard
        }
    }

    /// Builds the harness for this fidelity.
    #[must_use]
    pub fn harness(self) -> Harness {
        match self {
            Fidelity::Quick => Harness::quick(),
            Fidelity::Standard => Harness::new(Runner::new().with_invocations(3)),
            Fidelity::Paper => Harness::new(Runner::new()),
        }
    }
}

/// The experiments a regenerator can run, in paper order.
pub const EXPERIMENTS: [&str; 16] = [
    "table1", "table2", "table3", "table4", "table5", "figure1", "figure2", "figure3",
    "figure4", "figure5", "figure6", "figure7", "figure8", "figure9", "figure10", "figure11",
];

/// Runs one experiment by name and returns its rendered output.
///
/// # Panics
///
/// Panics on an unknown experiment name; the binaries validate first.
#[must_use]
pub fn run_experiment(name: &str, harness: &Harness) -> String {
    match name {
        "table1" => table1::render(),
        "table2" => {
            let configs = configs::stock_configs();
            table2::run(harness, &configs).render()
        }
        "table3" => table3::render(),
        "table4" => {
            let t = table4::run(harness);
            format!(
                "{}\npaper vs measured (Avg_w):\n{}",
                t.render(),
                t.render_comparison()
            )
        }
        "table5" | "figure12" => {
            let analysis = pareto::run(harness);
            format!(
                "Table 5 (Pareto-efficient 45nm configurations):\n{}\nFigure 12 frontiers:\n{}",
                analysis.render_table5(),
                analysis.render_figure12()
            )
        }
        "figure1" => figure1_scalability::render(&figure1_scalability::run(harness)),
        "figure2" => figure2_tdp::render(&figure2_tdp::run(harness)),
        "figure3" => figure3_scatter::render(&figure3_scatter::run(harness)),
        "figure4" => figure4_cmp::render(&figure4_cmp::run(harness)),
        "figure5" => figure5_smt::render(&figure5_smt::run(harness)),
        "figure6" => figure6_jvm::render(&figure6_jvm::run(harness)),
        "figure7" => figure7_clock::render(&figure7_clock::run(harness)),
        "figure8" => figure8_dieshrink::render(&figure8_dieshrink::run(harness)),
        "figure9" => figure9_uarch::render(&figure9_uarch::run(harness)),
        "figure10" => figure10_turbo::render(&figure10_turbo::run(harness)),
        "figure11" => figure11_history::render(&figure11_history::run(harness)),
        other => panic!("unknown experiment {other:?}; known: {EXPERIMENTS:?} + figure12"),
    }
}

/// Entry point shared by the thin per-experiment binaries.
pub fn main_for(name: &str) {
    let fidelity = Fidelity::from_args();
    let harness = fidelity.harness();
    println!("=== {name} ({fidelity:?}) ===\n");
    println!("{}", run_experiment(name, &harness));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_tables_render_without_a_harness_sweep() {
        // table1/table3 need no measurements at all.
        let harness = Harness::quick();
        assert!(run_experiment("table1", &harness).contains("mcf"));
        assert!(run_experiment("table3", &harness).contains("SLBCH"));
    }

    #[test]
    #[should_panic(expected = "unknown experiment")]
    fn unknown_experiment_panics() {
        let harness = Harness::quick();
        let _ = run_experiment("figure99", &harness);
    }
}
