//! Stored queries over the measurement store (`lhr-store`), and the
//! derivations that re-express the paper's figures from queried rows.
//!
//! The `queries/` directory at the repository root holds the study's
//! canonical `.lhq` query files: the backing data for Figures 7 and 8
//! and three of the paper's headline findings, written in the
//! `lhr-store` query DSL. This module loads them (stripping `#` comment
//! lines -- the DSL itself has no comments) and turns their result
//! tables back into the exact structures the experiment modules render:
//!
//! * [`derive_figure7`] rebuilds `figure7_clock::ClockEffect`s from the
//!   grouped means of `figure7_groups.lhq`,
//! * [`derive_figure8`] rebuilds `figure8_dieshrink::DieShrink`s from
//!   `figure8_groups.lhq`,
//! * [`avg_w_for_chip`] folds a `group_by chip, group` table into the
//!   paper's equal-group-weight `Avg_w` for one chip.
//!
//! Bit-identity is the contract, not an aspiration: the store's `mean`
//! aggregate accumulates in row-insertion order, which is the harness's
//! workload order, so a queried group mean is the *same float* as
//! `GroupMetrics::aggregate`'s -- and the derived figures render
//! byte-identically to the direct pipeline (asserted by the
//! `query_equivalence` test and the `lhr_queries_check` binary).

use std::collections::BTreeMap;
use std::io;
use std::path::{Path, PathBuf};

use lhr_core::experiments::figure7_clock::{self, ClockEffect, OperatingPoint};
use lhr_core::experiments::figure8_dieshrink::DieShrink;
use lhr_core::experiments::{feature_ratios, group_energy_ratios};
use lhr_core::GroupMetrics;
use lhr_stats::arithmetic_mean;
use lhr_store::{Store, TableResult, Value};
use lhr_uarch::{ChipConfig, ProcessorId};
use lhr_units::Hertz;
use lhr_workloads::Group;

/// The repository's canonical query directory (`queries/` at the root).
#[must_use]
pub fn queries_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../queries")
}

/// Loads a stored query by name (`figure7_groups` ->
/// `queries/figure7_groups.lhq`), with `#` comment lines stripped.
///
/// # Errors
///
/// Propagates the read failure when the file is missing.
pub fn load_query(name: &str) -> io::Result<String> {
    let raw = std::fs::read_to_string(queries_dir().join(format!("{name}.lhq")))?;
    Ok(strip_comments(&raw))
}

/// Removes `#`-prefixed comment lines, keeping the DSL text. The DSL
/// itself has no comment syntax -- the files carry their provenance in
/// comments, the parser never sees them.
#[must_use]
pub fn strip_comments(raw: &str) -> String {
    raw.lines()
        .filter(|l| !l.trim_start().starts_with('#'))
        .collect::<Vec<_>>()
        .join("\n")
}

fn col(table: &TableResult, name: &str) -> Result<usize, String> {
    table
        .columns
        .iter()
        .position(|c| c == name)
        .ok_or_else(|| format!("query result is missing column {name:?}"))
}

fn num_at(row: &[Value], i: usize) -> Result<f64, String> {
    match &row[i] {
        Value::Num(x) => Ok(*x),
        Value::Str(s) => Err(format!("expected a number, found {s:?}")),
    }
}

fn str_at(row: &[Value], i: usize) -> Result<&str, String> {
    match &row[i] {
        Value::Str(s) => Ok(s),
        Value::Num(x) => Err(format!("expected a string, found {x}")),
    }
}

fn group_from_label(label: &str) -> Option<Group> {
    Group::ALL.into_iter().find(|g| g.to_string() == label)
}

/// Rebuilds one configuration's [`GroupMetrics`] from a
/// `group_by chip, cores, clock, group` result table.
///
/// Only the per-group maps and the equal-group-weight averages are
/// recoverable from grouped rows; the per-benchmark fields
/// (`perf_b`, extremes) are filled with `NaN` -- nothing downstream of
/// the figure derivations reads them.
fn metrics_for(table: &TableResult, config: &ChipConfig) -> Result<GroupMetrics, String> {
    let chip_i = col(table, "chip")?;
    let cores_i = col(table, "cores")?;
    let clock_i = col(table, "clock")?;
    let group_i = col(table, "group")?;
    let perf_i = col(table, "mean(perf_norm)")?;
    let watts_i = col(table, "mean(watts)")?;
    let energy_i = col(table, "mean(energy_norm)")?;
    let want_chip = config.spec().short;
    #[allow(clippy::cast_precision_loss)]
    let want_cores = config.active_cores() as f64;
    let want_clock = config.clock().as_ghz();
    let mut perf = BTreeMap::new();
    let mut power = BTreeMap::new();
    let mut energy = BTreeMap::new();
    for row in &table.rows {
        if str_at(row, chip_i)? != want_chip
            || (num_at(row, cores_i)? - want_cores).abs() > 1e-9
            || (num_at(row, clock_i)? - want_clock).abs() > 1e-9
        {
            continue;
        }
        let label = str_at(row, group_i)?;
        let group = group_from_label(label)
            .ok_or_else(|| format!("unknown workload group {label:?}"))?;
        perf.insert(group, num_at(row, perf_i)?);
        power.insert(group, num_at(row, watts_i)?);
        energy.insert(group, num_at(row, energy_i)?);
    }
    if perf.is_empty() {
        return Err(format!(
            "no stored rows for {} at {:.3} GHz; was the store populated by this sweep?",
            config.label(),
            want_clock
        ));
    }
    let present: Vec<Group> = Group::ALL
        .into_iter()
        .filter(|g| perf.contains_key(g))
        .collect();
    let group_mean = |m: &BTreeMap<Group, f64>| {
        arithmetic_mean(&present.iter().map(|g| m[g]).collect::<Vec<_>>())
    };
    Ok(GroupMetrics {
        perf_w: group_mean(&perf),
        power_w: group_mean(&power),
        energy_w: group_mean(&energy),
        perf_b: f64::NAN,
        power_b: f64::NAN,
        energy_b: f64::NAN,
        perf_min: f64::NAN,
        perf_max: f64::NAN,
        power_min: f64::NAN,
        power_max: f64::NAN,
        perf,
        power,
        energy,
    })
}

/// The Figure 7 configuration at one clock: stock topology, Turbo off
/// (the same construction `figure7_clock::run_one` uses).
fn fig7_config(id: ProcessorId, clock: Hertz) -> ChipConfig {
    let cfg = ChipConfig::stock(id.spec())
        .with_clock(clock)
        .expect("clock within range");
    if cfg.turbo_enabled() {
        cfg.with_turbo(false).expect("turbo off")
    } else {
        cfg
    }
}

/// Rebuilds the Figure 7 clock-scaling results from the store, by way
/// of the stored `figure7_groups.lhq` query. `points` must match the
/// point count the store was populated with (`figure7_clock::run` uses
/// 4).
///
/// # Errors
///
/// Reports a missing query file, a query the store rejects, or
/// configurations the store holds no rows for.
///
/// # Panics
///
/// Panics if `points < 2` (as `figure7_clock::run_one` does).
pub fn derive_figure7(store: &Store, points: usize) -> Result<Vec<ClockEffect>, String> {
    assert!(points >= 2, "need at least the two endpoint clocks");
    let text = load_query("figure7_groups").map_err(|e| format!("figure7_groups.lhq: {e}"))?;
    let table = store.query(&text).map_err(|e| e.to_string())?;
    figure7_clock::PROCESSORS
        .iter()
        .map(|&id| {
            let spec = id.spec();
            let f_min = spec.min_clock.value();
            let f_max = spec.base_clock.value();
            let curve = (0..points)
                .map(|i| {
                    #[allow(clippy::cast_precision_loss)]
                    let f = f_min + (f_max - f_min) * i as f64 / (points - 1) as f64;
                    Ok(OperatingPoint {
                        ghz: f / 1e9,
                        metrics: metrics_for(&table, &fig7_config(id, Hertz::new(f)))?,
                    })
                })
                .collect::<Result<Vec<_>, String>>()?;
            let lo = &curve.first().expect("points >= 2").metrics;
            let hi = &curve.last().expect("points >= 2").metrics;
            let doublings = (f_max / f_min).log2();
            let per_doubling = |ratio: f64| ratio.powf(1.0 / doublings);
            let energy_by_group = lo
                .energy
                .keys()
                .map(|&g| (g, per_doubling(hi.energy[&g] / lo.energy[&g])))
                .collect();
            Ok(ClockEffect {
                processor: spec.short,
                performance: per_doubling(hi.perf_w / lo.perf_w),
                power: per_doubling(hi.power_w / lo.power_w),
                energy: per_doubling(hi.energy_w / lo.energy_w),
                energy_by_group,
                curve,
            })
        })
        .collect()
}

fn shrink_from(
    table: &TableResult,
    family: &'static str,
    old: &ChipConfig,
    new: &ChipConfig,
    old_matched: &ChipConfig,
    new_matched: &ChipConfig,
) -> Result<DieShrink, String> {
    let m_old = metrics_for(table, old)?;
    let m_new = metrics_for(table, new)?;
    let m_old_m = metrics_for(table, old_matched)?;
    let m_new_m = metrics_for(table, new_matched)?;
    Ok(DieShrink {
        family,
        native: feature_ratios(&m_old, &m_new),
        matched: feature_ratios(&m_old_m, &m_new_m),
        energy_by_group: group_energy_ratios(&m_old_m, &m_new_m),
    })
}

/// Rebuilds the Figure 8 die-shrink results from the store, by way of
/// the stored `figure8_groups.lhq` query. The configurations are
/// reconstructed exactly as `figure8_dieshrink::run` builds them, so
/// the derived ratios are bit-identical when the store was populated by
/// that run.
///
/// # Errors
///
/// Reports a missing query file, a query the store rejects, or
/// configurations the store holds no rows for.
pub fn derive_figure8(store: &Store) -> Result<Vec<DieShrink>, String> {
    let text = load_query("figure8_groups").map_err(|e| format!("figure8_groups.lhq: {e}"))?;
    let table = store.query(&text).map_err(|e| e.to_string())?;

    let core = {
        let old = ChipConfig::stock(ProcessorId::Core2DuoE6600.spec());
        let new = ChipConfig::stock(ProcessorId::Core2DuoE7600.spec());
        let matched = Hertz::from_ghz(2.4);
        let old_m = ChipConfig::stock(ProcessorId::Core2DuoE6600.spec())
            .with_clock(matched)
            .expect("2.4 GHz is the E6600 stock clock");
        let new_m = ChipConfig::stock(ProcessorId::Core2DuoE7600.spec())
            .with_clock(matched)
            .expect("2.4 GHz is within the E7600 range");
        shrink_from(&table, "Core 2.4GHz", &old, &new, &old_m, &new_m)?
    };

    let nehalem = {
        let i7_2c = |clock: Option<Hertz>| {
            let mut c = ChipConfig::stock(ProcessorId::CoreI7_920.spec())
                .with_cores(2)
                .expect("2 cores")
                .with_turbo(false)
                .expect("turbo off");
            if let Some(f) = clock {
                c = c.with_clock(f).expect("clock in range");
            }
            c
        };
        let i5 = |clock: Option<Hertz>| {
            let mut c = ChipConfig::stock(ProcessorId::CoreI5_670.spec())
                .with_turbo(false)
                .expect("turbo off");
            if let Some(f) = clock {
                c = c.with_clock(f).expect("clock in range");
            }
            c
        };
        let matched = Hertz::from_ghz(2.66);
        shrink_from(
            &table,
            "Nehalem 2C2T 2.6GHz",
            &i7_2c(None),
            &i5(None),
            &i7_2c(Some(matched)),
            &i5(Some(matched)),
        )?
    };

    Ok(vec![core, nehalem])
}

/// Folds a `group_by chip, group` result into the paper's
/// equal-group-weight `Avg_w` of `agg_col` for one chip: the arithmetic
/// mean of the chip's per-group means, groups in presentation order.
/// Bit-identical to `GroupMetrics::aggregate`'s weighted average when
/// the store was populated by the same cells.
///
/// # Errors
///
/// Reports missing columns, unknown group labels, or a chip with no
/// rows in the table.
pub fn avg_w_for_chip(table: &TableResult, chip: &str, agg_col: &str) -> Result<f64, String> {
    let chip_i = col(table, "chip")?;
    let group_i = col(table, "group")?;
    let val_i = col(table, agg_col)?;
    let mut by_group = BTreeMap::new();
    for row in &table.rows {
        if str_at(row, chip_i)? != chip {
            continue;
        }
        let label = str_at(row, group_i)?;
        let group = group_from_label(label)
            .ok_or_else(|| format!("unknown workload group {label:?}"))?;
        by_group.insert(group, num_at(row, val_i)?);
    }
    if by_group.is_empty() {
        return Err(format!("no rows for chip {chip:?}"));
    }
    let present: Vec<Group> = Group::ALL
        .into_iter()
        .filter(|g| by_group.contains_key(g))
        .collect();
    Ok(arithmetic_mean(
        &present.iter().map(|g| by_group[g]).collect::<Vec<_>>(),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_stored_query_parses() {
        for name in [
            "figure7_groups",
            "figure8_groups",
            "finding_i7_vs_atom_perf",
            "finding_power_range",
            "finding_managed_epi_smt",
            "pareto_power_perf",
        ] {
            let text = load_query(name).unwrap_or_else(|e| panic!("{name}: {e}"));
            assert!(!text.trim().is_empty(), "{name} stripped to nothing");
            lhr_store::parse(&text).unwrap_or_else(|e| panic!("{name}: {e}"));
        }
    }

    #[test]
    fn comment_stripping_keeps_the_pipeline() {
        let s = strip_comments("# a comment\nfilter x == 1\n# another\n| limit 3\n");
        assert_eq!(s, "filter x == 1\n| limit 3");
        assert!(lhr_store::parse(&s).is_ok());
    }
}
