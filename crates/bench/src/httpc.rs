//! The in-repo HTTP/1.1 client: one hardened implementation shared by
//! the chaos harness, the shard router, the load generators, and the
//! serving-layer tests.
//!
//! Before this module existed, every test and example read responses
//! with `read_to_string` and split on `\r\n\r\n` -- which silently
//! accepts a *torn* body: a server killed mid-write produces a prefix
//! of the payload, and a byte-identity check that never sees the
//! missing tail cannot fail. The client here parses the head properly
//! and validates `Content-Length` against the bytes actually read;
//! a short body is a typed [`ClientError::Truncated`], never a quiet
//! success.
//!
//! The client speaks exactly the subset the serving layer emits:
//! `Connection: close` responses with a `Content-Length` header. A
//! response without `Content-Length` is read to EOF (and flagged as
//! unverifiable via [`HttpResponse::length_checked`]).

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// Why an exchange failed. `Io` covers everything the socket can do to
/// you (refused, reset, timed out); the other variants are protocol
/// failures the old string-splitting client silently swallowed.
#[derive(Debug)]
pub enum ClientError {
    /// Connect/send/receive failure (the server may be mid-restart).
    Io(io::Error),
    /// The response head did not parse (no status line, bad header).
    Malformed(String),
    /// The body ended before `Content-Length` bytes arrived: a torn
    /// response from a dying or lying server.
    Truncated {
        /// Bytes the `Content-Length` header promised.
        expected: usize,
        /// Bytes actually received before EOF.
        got: usize,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "i/o: {e}"),
            ClientError::Malformed(detail) => write!(f, "malformed response: {detail}"),
            ClientError::Truncated { expected, got } => write!(
                f,
                "truncated response: Content-Length promised {expected} bytes, got {got}"
            ),
        }
    }
}

impl std::error::Error for ClientError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClientError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<ClientError> for io::Error {
    fn from(e: ClientError) -> Self {
        match e {
            ClientError::Io(io) => io,
            other => io::Error::other(other.to_string()),
        }
    }
}

/// A fully received response: status, headers, body -- with the body's
/// length verified against `Content-Length` when the server sent one.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpResponse {
    /// HTTP status code from the status line.
    pub status: u16,
    /// Headers in arrival order, names lowercased, values trimmed.
    pub headers: Vec<(String, String)>,
    /// The body bytes, exactly `Content-Length` of them when declared.
    pub body: Vec<u8>,
    /// Whether the body length was verified against a `Content-Length`
    /// header (`false` means the server sent none and the body is
    /// whatever arrived before EOF).
    pub length_checked: bool,
}

impl HttpResponse {
    /// The first value of header `name` (case-insensitive), if present.
    #[must_use]
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// The `Retry-After` backoff hint in seconds, if the server sent
    /// one (`503` sheds do; see `Response::overloaded` in `lhr-serve`).
    #[must_use]
    pub fn retry_after_secs(&self) -> Option<u64> {
        self.header("retry-after").and_then(|v| v.trim().parse().ok())
    }

    /// The `Content-Type` header value, if present.
    #[must_use]
    pub fn content_type(&self) -> Option<&str> {
        self.header("content-type")
    }

    /// The body as UTF-8 text (lossy -- artifacts are text, but the
    /// client must not panic on a binary body).
    #[must_use]
    pub fn body_str(&self) -> std::borrow::Cow<'_, str> {
        String::from_utf8_lossy(&self.body)
    }
}

/// Performs one raw exchange: connect, send `raw` verbatim, read and
/// validate the response.
///
/// # Errors
///
/// [`ClientError::Io`] on socket failures, [`ClientError::Malformed`]
/// when the head does not parse, [`ClientError::Truncated`] when the
/// body is shorter than its `Content-Length`.
pub fn exchange(
    addr: SocketAddr,
    raw: &[u8],
    timeout: Duration,
) -> Result<HttpResponse, ClientError> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.write_all(raw)?;
    read_response(&mut stream)
}

/// [`exchange`] with a bounded *connect* as well: a dead backend costs
/// `connect_timeout`, not the kernel's multi-second default. This is
/// the variant the shard router forwards through.
///
/// # Errors
///
/// See [`exchange`].
pub fn exchange_timeouts(
    addr: SocketAddr,
    raw: &[u8],
    connect_timeout: Duration,
    read_timeout: Duration,
) -> Result<HttpResponse, ClientError> {
    let mut stream = TcpStream::connect_timeout(&addr, connect_timeout)?;
    stream.set_read_timeout(Some(read_timeout))?;
    let _ = stream.set_nodelay(true);
    stream.write_all(raw)?;
    read_response(&mut stream)
}

/// Reads and validates one response from an already-connected stream.
///
/// # Errors
///
/// See [`exchange`].
pub fn read_response(stream: &mut impl Read) -> Result<HttpResponse, ClientError> {
    // Read the whole response (Connection: close protocol), then parse.
    // The serving layer's responses are small; buffering them whole
    // keeps the parse simple and the truncation check exact.
    let mut bytes = Vec::with_capacity(1024);
    stream.read_to_end(&mut bytes)?;
    parse_response(&bytes)
}

/// Parses a buffered response and validates its body length.
///
/// # Errors
///
/// See [`exchange`].
pub fn parse_response(bytes: &[u8]) -> Result<HttpResponse, ClientError> {
    let head_end = find_head_end(bytes)
        .ok_or_else(|| ClientError::Malformed("no blank line terminating the head".into()))?;
    let head = std::str::from_utf8(&bytes[..head_end])
        .map_err(|_| ClientError::Malformed("head is not UTF-8".into()))?;
    let mut lines = head.split("\r\n");
    let status_line = lines
        .next()
        .ok_or_else(|| ClientError::Malformed("empty head".into()))?;
    let status = parse_status_line(status_line)?;
    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(ClientError::Malformed(format!("bad header line {line:?}")));
        };
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_owned()));
    }
    let body = bytes[head_end + 4..].to_vec();
    let declared = headers
        .iter()
        .find(|(k, _)| k == "content-length")
        .map(|(_, v)| {
            v.parse::<usize>()
                .map_err(|_| ClientError::Malformed(format!("bad Content-Length {v:?}")))
        })
        .transpose()?;
    match declared {
        Some(expected) if body.len() < expected => Err(ClientError::Truncated {
            expected,
            got: body.len(),
        }),
        Some(expected) => Ok(HttpResponse {
            status,
            headers,
            // Anything past Content-Length is trailing garbage; the
            // declared length defines the body.
            body: body[..expected].to_vec(),
            length_checked: true,
        }),
        None => Ok(HttpResponse {
            status,
            headers,
            body,
            length_checked: false,
        }),
    }
}

fn find_head_end(bytes: &[u8]) -> Option<usize> {
    bytes.windows(4).position(|w| w == b"\r\n\r\n")
}

fn parse_status_line(line: &str) -> Result<u16, ClientError> {
    let mut parts = line.split(' ');
    match parts.next() {
        Some(v) if v.starts_with("HTTP/1.") => {}
        other => {
            return Err(ClientError::Malformed(format!(
                "status line does not start with HTTP/1.x: {other:?}"
            )))
        }
    }
    parts
        .next()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| ClientError::Malformed(format!("no status code in {line:?}")))
}

/// `GET target` with the standard minimal head.
///
/// # Errors
///
/// See [`exchange`].
pub fn get(addr: SocketAddr, target: &str, timeout: Duration) -> Result<HttpResponse, ClientError> {
    exchange(
        addr,
        format!("GET {target} HTTP/1.1\r\nHost: lhr\r\n\r\n").as_bytes(),
        timeout,
    )
}

/// `GET target` carrying extra request headers -- the traced-request
/// variant: a load generator minting its own trace ids sends
/// `("x-lhr-trace", "00-<trace>-<parent>-01")` here. Header names and
/// values must be CRLF-free (they are formatted into the head
/// verbatim).
///
/// # Errors
///
/// See [`exchange`].
pub fn get_with_headers(
    addr: SocketAddr,
    target: &str,
    headers: &[(&str, &str)],
    timeout: Duration,
) -> Result<HttpResponse, ClientError> {
    use std::fmt::Write as _;
    let mut head = format!("GET {target} HTTP/1.1\r\nHost: lhr\r\n");
    for (name, value) in headers {
        let _ = write!(head, "{name}: {value}\r\n");
    }
    head.push_str("\r\n");
    exchange(addr, head.as_bytes(), timeout)
}

/// `POST target` with an empty body.
///
/// # Errors
///
/// See [`exchange`].
pub fn post(addr: SocketAddr, target: &str, timeout: Duration) -> Result<HttpResponse, ClientError> {
    exchange(
        addr,
        format!("POST {target} HTTP/1.1\r\nHost: lhr\r\nContent-Length: 0\r\n\r\n").as_bytes(),
        timeout,
    )
}

/// `POST target` with a text body (the shape `/v1/query` consumes).
///
/// # Errors
///
/// See [`exchange`].
pub fn post_body(
    addr: SocketAddr,
    target: &str,
    body: &str,
    timeout: Duration,
) -> Result<HttpResponse, ClientError> {
    exchange(
        addr,
        format!(
            "POST {target} HTTP/1.1\r\nHost: lhr\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        )
        .as_bytes(),
        timeout,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn raw(status: &str, headers: &str, body: &str) -> Vec<u8> {
        format!("HTTP/1.1 {status}\r\n{headers}\r\n{body}").into_bytes()
    }

    #[test]
    fn parses_a_complete_response() {
        let bytes = raw(
            "200 OK",
            "Content-Type: application/json\r\nContent-Length: 9\r\nRetry-After: 2\r\n",
            "{\"ok\":1}\n",
        );
        let r = parse_response(&bytes).expect("parses");
        assert_eq!(r.status, 200);
        assert_eq!(r.content_type(), Some("application/json"));
        assert_eq!(r.retry_after_secs(), Some(2));
        assert_eq!(r.body_str(), "{\"ok\":1}\n");
        assert!(r.length_checked);
    }

    #[test]
    fn torn_bodies_are_a_typed_error_not_a_quiet_success() {
        // The old client would return this prefix as if it were the
        // whole body; the hardened client must refuse.
        let bytes = raw("200 OK", "Content-Length: 100\r\n", "only-a-prefix");
        match parse_response(&bytes) {
            Err(ClientError::Truncated { expected, got }) => {
                assert_eq!(expected, 100);
                assert_eq!(got, 13);
            }
            other => panic!("expected Truncated, got {other:?}"),
        }
    }

    #[test]
    fn trailing_garbage_past_content_length_is_dropped() {
        let bytes = raw("200 OK", "Content-Length: 4\r\n", "bodyGARBAGE");
        let r = parse_response(&bytes).expect("parses");
        assert_eq!(r.body, b"body");
    }

    #[test]
    fn missing_content_length_reads_to_eof_unchecked() {
        let bytes = raw("200 OK", "Content-Type: text/plain\r\n", "whatever arrived");
        let r = parse_response(&bytes).expect("parses");
        assert!(!r.length_checked);
        assert_eq!(r.body_str(), "whatever arrived");
    }

    #[test]
    fn malformed_heads_are_typed_errors() {
        assert!(matches!(
            parse_response(b"GARBAGE\r\n\r\n"),
            Err(ClientError::Malformed(_))
        ));
        assert!(matches!(
            parse_response(b"HTTP/1.1 OK\r\n\r\n"),
            Err(ClientError::Malformed(_))
        ));
        assert!(matches!(
            parse_response(b"HTTP/1.1 200 OK\r\nno-head-terminator"),
            Err(ClientError::Malformed(_))
        ));
        assert!(matches!(
            parse_response(b"HTTP/1.1 200 OK\r\nContent-Length: ten\r\n\r\nx"),
            Err(ClientError::Malformed(_))
        ));
    }

    #[test]
    fn truncation_error_survives_io_error_conversion() {
        let err = ClientError::Truncated {
            expected: 10,
            got: 3,
        };
        let io: io::Error = err.into();
        assert!(io.to_string().contains("truncated response"), "{io}");
        assert!(io.to_string().contains("10"), "{io}");
    }

    #[test]
    fn end_to_end_against_a_real_socket() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            // First connection: a complete response. Second: torn body.
            for (i, conn) in listener.incoming().take(2).enumerate() {
                let mut s = conn.unwrap();
                let mut buf = [0u8; 512];
                let _ = s.read(&mut buf);
                let payload = if i == 0 {
                    "HTTP/1.1 200 OK\r\nContent-Length: 5\r\n\r\nhello".to_owned()
                } else {
                    "HTTP/1.1 200 OK\r\nContent-Length: 50\r\n\r\ncut".to_owned()
                };
                s.write_all(payload.as_bytes()).unwrap();
                // Dropping the stream closes it: the torn case ends at
                // EOF well short of its declared length.
            }
        });
        let ok = get(addr, "/x", Duration::from_secs(5)).expect("first response completes");
        assert_eq!(ok.status, 200);
        assert_eq!(ok.body, b"hello");
        match get(addr, "/x", Duration::from_secs(5)) {
            Err(ClientError::Truncated { expected: 50, got: 3 }) => {}
            other => panic!("expected Truncated {{50, 3}}, got {other:?}"),
        }
        server.join().unwrap();
    }
}
