//! Resumable, supervised sweep campaigns: the write-ahead journal and
//! the campaign driver the regenerator binaries share.
//!
//! # Why a journal
//!
//! The source study's numbers came from a multi-day measurement
//! campaign over real machines. At that scale the campaign *will* be
//! interrupted -- a wedged logger, a reboot, an operator `^C` -- and
//! the only acceptable cost of an interruption is the cells not yet
//! measured. This module makes the reproduction behave the same way:
//! every resolved `(configuration, workload)` cell is appended to a
//! crash-safe JSON-lines journal (`campaign.jsonl`) the moment it
//! resolves, and `--resume` replays the journal into the runner's
//! measurement cache so only the missing cells re-execute.
//!
//! Because measurements are pure functions of their cell under the
//! fixed seed policy, and the journal stores every `f64` in Rust's
//! shortest round-trippable form (see [`lhr_obs::push_json_number`]),
//! a resumed campaign regenerates outputs **byte-identical** to an
//! uninterrupted one -- locked in by the `campaign_resume` integration
//! test.
//!
//! # Journal format
//!
//! One JSON object per line, each ending in a `"crc"` field holding the
//! FNV-1a 64 checksum (16 hex digits) of everything before it:
//!
//! * a header line (`"campaign"`, `"version"`, `"fidelity"`, grid
//!   shape) -- resume refuses a journal recorded at another fidelity;
//! * one line per resolved cell: `"status":"ok"` with time/power
//!   summaries (`[n, mean, stddev, min, max]`) and health counters, or
//!   `"status":"err"` with the error text (re-executed on resume);
//! * one line per written artifact: name, size, and content checksum,
//!   letting a resumed run verify it reproduced the same bytes.
//!
//! Lines that fail the checksum -- a torn tail from a crash mid-append
//! -- are skipped, costing only that cell's re-measurement.

use std::collections::{BTreeMap, HashMap, HashSet};
use std::fmt::Write as _;
use std::fs;
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use lhr_core::{
    configs, grid_units, AbortHandle, CampaignReport, CampaignSink, Harness, MeasureHealth,
    RetryPolicy, RunMeasurement, Supervisor, UnitOutcome, UnitReport,
};
use lhr_obs::{push_json_number, push_json_string};
use lhr_stats::Summary;

use crate::artifact::fnv64;
use crate::{Fidelity, Observability};

/// Journal file name used when `--journal` is not given: it lives next
/// to the artifacts in the output directory (and is gitignored there --
/// resolution order is timing-dependent, so the journal is not
/// byte-reproducible even though the data in it is).
pub const DEFAULT_JOURNAL: &str = "campaign.jsonl";

/// Process exit code for a run that stopped on a checksum mismatch:
/// a resumed campaign failed to reproduce the journaled artifact bytes.
pub const EXIT_CHECKSUM_MISMATCH: i32 = 2;

/// Process exit code for a campaign stopped by `--abort-after` (or any
/// abort): the journal is intact and `--resume` will pick up from it.
pub const EXIT_ABORTED: i32 = 3;

/// Campaign-related command-line options shared by `repro_all` and the
/// per-experiment binaries.
#[derive(Debug, Clone)]
pub struct CampaignOptions {
    /// `--journal <path>`: where the write-ahead journal lives
    /// (default: `<out-dir>/campaign.jsonl`).
    pub journal: Option<PathBuf>,
    /// `--resume`: replay the journal, re-executing only missing cells.
    pub resume: bool,
    /// `--max-cell-seconds <s>`: watchdog deadline for a 3-invocation
    /// cell; other cells scale by their prescribed invocation count.
    pub max_cell_seconds: Option<f64>,
    /// `--jobs <n>`: cap on concurrent measurement workers.
    pub jobs: Option<usize>,
    /// `--abort-after <n>`: deterministically abort the campaign after
    /// `n` cells resolve (the kill half of the kill-and-resume test).
    pub abort_after: Option<usize>,
    /// `--out-dir <path>`: artifact directory (default `repro_out`).
    pub out_dir: PathBuf,
}

impl CampaignOptions {
    /// Parses the process arguments.
    ///
    /// # Panics
    ///
    /// Panics when a flag is missing its value or the value is malformed.
    #[must_use]
    pub fn from_args() -> Self {
        let args: Vec<String> = std::env::args().collect();
        Self::parse(&args)
    }

    /// Parses an explicit argument list (exposed for tests).
    ///
    /// # Panics
    ///
    /// Panics when a flag is missing its value or the value is malformed.
    #[must_use]
    pub fn parse(args: &[String]) -> Self {
        fn value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
            args.iter().position(|a| a == flag).map(|i| {
                args.get(i + 1)
                    .unwrap_or_else(|| panic!("{flag} requires a value"))
                    .as_str()
            })
        }
        let max_cell_seconds = value(args, "--max-cell-seconds").map(|v| {
            let s: f64 = v.parse().unwrap_or_else(|_| panic!("--max-cell-seconds: bad number {v:?}"));
            assert!(s > 0.0 && s.is_finite(), "--max-cell-seconds must be positive");
            s
        });
        let jobs = value(args, "--jobs").map(|v| {
            let n: usize = v.parse().unwrap_or_else(|_| panic!("--jobs: bad count {v:?}"));
            assert!(n > 0, "--jobs must be at least 1");
            n
        });
        let abort_after = value(args, "--abort-after").map(|v| {
            v.parse::<usize>()
                .unwrap_or_else(|_| panic!("--abort-after: bad count {v:?}"))
        });
        Self {
            journal: value(args, "--journal").map(PathBuf::from),
            resume: args.iter().any(|a| a == "--resume"),
            max_cell_seconds,
            jobs,
            abort_after,
            out_dir: value(args, "--out-dir").map_or_else(|| PathBuf::from("repro_out"), PathBuf::from),
        }
    }

    /// Whether any campaign feature was requested: a journal, a resume,
    /// a watchdog deadline, or a deterministic abort. (`--jobs` alone
    /// only caps harness parallelism -- no campaign needed.)
    #[must_use]
    pub fn armed(&self) -> bool {
        self.journal.is_some()
            || self.resume
            || self.max_cell_seconds.is_some()
            || self.abort_after.is_some()
    }

    /// The journal path in force.
    #[must_use]
    pub fn journal_path(&self) -> PathBuf {
        self.journal
            .clone()
            .unwrap_or_else(|| self.out_dir.join(DEFAULT_JOURNAL))
    }
}

// ---------------------------------------------------------------------
// Journal encoding
// ---------------------------------------------------------------------

/// Appends the line-integrity checksum and terminator to a record body
/// (everything up to but excluding `,"crc":...}`) and returns the
/// complete line. Public so other journal producers (the serve-layer
/// campaign orchestrator) write the identical format.
#[must_use]
pub fn seal_line(mut body: String) -> String {
    let crc = fnv64(body.as_bytes());
    let _ = write!(body, ",\"crc\":\"{crc:016x}\"}}");
    body
}

/// Splits a sealed line into its body and checksum, verifying
/// integrity. Returns `None` for torn or tampered lines.
#[must_use]
pub fn open_line(line: &str) -> Option<&str> {
    let at = line.rfind(",\"crc\":\"")?;
    let (body, tail) = line.split_at(at);
    let hex = tail.strip_prefix(",\"crc\":\"")?.strip_suffix("\"}")?;
    let crc = u64::from_str_radix(hex, 16).ok()?;
    (fnv64(body.as_bytes()) == crc).then_some(body)
}

fn push_summary(body: &mut String, s: &Summary) {
    let _ = write!(body, "[{},", s.n());
    push_json_number(body, s.mean());
    body.push(',');
    push_json_number(body, s.stddev());
    body.push(',');
    push_json_number(body, s.min());
    body.push(',');
    push_json_number(body, s.max());
    body.push(']');
}

/// Locates `"key":` in a record and returns the text after the colon.
fn after_key<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let needle = format!("\"{key}\":");
    line.find(&needle).map(|i| &line[i + needle.len()..])
}

/// Parses the JSON string literal a key points at, unescaping RFC 8259
/// escapes (the inverse of [`push_json_string`]).
#[must_use]
pub fn parse_str(line: &str, key: &str) -> Option<String> {
    let rest = after_key(line, key)?.trim_start().strip_prefix('"')?;
    let mut out = String::new();
    let mut chars = rest.chars();
    loop {
        match chars.next()? {
            '"' => return Some(out),
            '\\' => match chars.next()? {
                '"' => out.push('"'),
                '\\' => out.push('\\'),
                '/' => out.push('/'),
                'n' => out.push('\n'),
                'r' => out.push('\r'),
                't' => out.push('\t'),
                'u' => {
                    let hex: String = chars.by_ref().take(4).collect();
                    let code = u32::from_str_radix(&hex, 16).ok()?;
                    out.push(char::from_u32(code)?);
                }
                _ => return None,
            },
            c => out.push(c),
        }
    }
}

/// Parses the number a key points at.
#[must_use]
pub fn parse_num(line: &str, key: &str) -> Option<f64> {
    let rest = after_key(line, key)?;
    let end = rest
        .find([',', '}', ']'])
        .unwrap_or(rest.len());
    rest[..end].trim().parse().ok()
}

/// Parses the 5-element `[n, mean, stddev, min, max]` array a key
/// points at, reconstructing the summary bit-exactly.
fn parse_summary(line: &str, key: &str) -> Option<Summary> {
    let rest = after_key(line, key)?.strip_prefix('[')?;
    let end = rest.find(']')?;
    let parts: Vec<f64> = rest[..end]
        .split(',')
        .map(|p| p.trim().parse().ok())
        .collect::<Option<_>>()?;
    let [n, mean, stddev, min, max] = parts.as_slice() else {
        return None;
    };
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    let n = *n as usize;
    (n >= 1).then(|| Summary::from_parts(n, *mean, *stddev, *min, *max))
}

// ---------------------------------------------------------------------
// Journal writer
// ---------------------------------------------------------------------

/// Append-only, fsync-per-line journal writer: once a line's write
/// returns, the record survives a crash (the definition of write-ahead).
#[derive(Debug)]
pub struct JournalWriter {
    file: Mutex<fs::File>,
}

impl JournalWriter {
    /// Starts a fresh journal (truncating any previous one) and writes
    /// the header line.
    ///
    /// # Errors
    ///
    /// Any I/O error creating or writing the file.
    pub fn fresh(path: &Path, fidelity: &str, configs: usize, workloads: usize) -> io::Result<Self> {
        if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
            fs::create_dir_all(dir)?;
        }
        let file = fs::File::create(path)?;
        let me = Self { file: Mutex::new(file) };
        let mut body = String::from("{\"campaign\":\"lhr-study\",\"version\":1,\"fidelity\":");
        push_json_string(&mut body, fidelity);
        let _ = write!(body, ",\"configs\":{configs},\"workloads\":{workloads}");
        me.write_line(body)?;
        Ok(me)
    }

    /// Reopens an existing journal for appending (the resume path).
    ///
    /// # Errors
    ///
    /// Any I/O error opening the file.
    pub fn append(path: &Path) -> io::Result<Self> {
        let file = fs::OpenOptions::new().append(true).open(path)?;
        Ok(Self { file: Mutex::new(file) })
    }

    /// Starts a fresh journal without the study header, for producers
    /// that write their own header via [`JournalWriter::record_raw`]
    /// (the serve-layer campaign orchestrator).
    ///
    /// # Errors
    ///
    /// Any I/O error creating the file.
    pub fn create(path: &Path) -> io::Result<Self> {
        if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
            fs::create_dir_all(dir)?;
        }
        let file = fs::File::create(path)?;
        Ok(Self { file: Mutex::new(file) })
    }

    /// Seals and appends an arbitrary record body (everything up to but
    /// excluding `,"crc":...}`), fsyncing before returning. The body
    /// must open with `{` and omit the closing brace; the seal adds the
    /// checksum field and closes the object.
    ///
    /// # Errors
    ///
    /// Any I/O error appending the record.
    pub fn record_raw(&self, body: String) -> io::Result<()> {
        self.write_line(body)
    }

    /// Seals and appends one record body, fsyncing before returning.
    fn write_line(&self, body: String) -> io::Result<()> {
        let line = seal_line(body);
        let mut file = self.file.lock().expect("journal lock");
        file.write_all(line.as_bytes())?;
        file.write_all(b"\n")?;
        file.sync_data()
    }

    /// Journals one resolved campaign unit. Skipped units (abort) are
    /// deliberately not recorded -- they are the cells resume re-runs.
    ///
    /// # Errors
    ///
    /// Any I/O error appending the record.
    pub fn record_unit(&self, unit: &UnitReport) -> io::Result<()> {
        let mut body = String::from("{\"cell\":");
        push_json_string(&mut body, &unit.config_label);
        body.push_str(",\"workload\":");
        push_json_string(&mut body, unit.workload);
        match &unit.outcome {
            UnitOutcome::Completed { evaluation, health } => {
                let _ = write!(
                    body,
                    ",\"status\":\"ok\",\"attempts\":{},\"deadline_misses\":{},\
                     \"retries\":{},\"recalibrations\":{},\"rejected_outliers\":{}",
                    unit.attempts,
                    unit.deadline_misses,
                    health.retries,
                    health.recalibrations,
                    health.rejected_outliers,
                );
                body.push_str(",\"time\":");
                push_summary(&mut body, &evaluation.measurement.time);
                body.push_str(",\"power\":");
                push_summary(&mut body, &evaluation.measurement.power);
            }
            UnitOutcome::Failed { error } => {
                let _ = write!(
                    body,
                    ",\"status\":\"err\",\"attempts\":{},\"deadline_misses\":{},\"error\":",
                    unit.attempts, unit.deadline_misses,
                );
                push_json_string(&mut body, &error.to_string());
            }
            UnitOutcome::Skipped => return Ok(()),
        }
        self.write_line(body)
    }

    /// Journals an artifact's name, size, and content checksum.
    ///
    /// # Errors
    ///
    /// Any I/O error appending the record.
    pub fn record_artifact(&self, name: &str, bytes: &[u8]) -> io::Result<()> {
        let mut body = String::from("{\"artifact\":");
        push_json_string(&mut body, name);
        let _ = write!(body, ",\"bytes\":{},\"sum\":\"{:016x}\"", bytes.len(), fnv64(bytes));
        self.write_line(body)
    }
}

// ---------------------------------------------------------------------
// Journal reader
// ---------------------------------------------------------------------

/// One journaled `"status":"ok"` cell, ready to preload.
#[derive(Debug, Clone)]
pub struct OkCell {
    /// The configuration label.
    pub config: String,
    /// The workload name.
    pub workload: String,
    /// The runner-level cost recorded for the cell.
    pub health: MeasureHealth,
    /// Execution-time summary, bit-exact.
    pub time: Summary,
    /// Power summary, bit-exact.
    pub power: Summary,
}

/// Everything a journal replay recovered.
#[derive(Debug, Default)]
pub struct LoadedJournal {
    /// The header's fidelity string, when the header survived.
    pub fidelity: Option<String>,
    /// Completed cells, in journal (resolution) order.
    pub ok_cells: Vec<OkCell>,
    /// Cells journaled as failed (they re-execute on resume).
    pub err_cells: usize,
    /// Artifact name -> content checksum.
    pub artifacts: BTreeMap<String, u64>,
    /// Lifecycle event names (`{"event":...}` lines), in journal order.
    /// The serve-layer orchestrator journals `preempted` / `resumed`
    /// markers this way; replay uses the last one to restore the
    /// campaign's phase.
    pub events: Vec<String>,
    /// Lines dropped by the integrity check (torn tail, tampering).
    pub skipped_lines: usize,
}

/// Replays a journal, tolerating a torn tail: any line that fails its
/// checksum or does not parse is counted in
/// [`LoadedJournal::skipped_lines`] and otherwise ignored (its cell
/// simply re-executes).
///
/// # Errors
///
/// Only on failing to read the file itself.
pub fn load_journal(path: &Path) -> io::Result<LoadedJournal> {
    let text = fs::read_to_string(path)?;
    let mut out = LoadedJournal::default();
    for line in text.lines() {
        let Some(body) = open_line(line) else {
            out.skipped_lines += 1;
            continue;
        };
        if body.starts_with("{\"campaign\":") {
            out.fidelity = parse_str(body, "fidelity");
        } else if body.starts_with("{\"artifact\":") {
            let parsed = parse_str(body, "artifact").and_then(|name| {
                let hex = parse_str(body, "sum")?;
                Some((name, u64::from_str_radix(&hex, 16).ok()?))
            });
            match parsed {
                Some((name, sum)) => {
                    out.artifacts.insert(name, sum);
                }
                None => out.skipped_lines += 1,
            }
        } else if body.starts_with("{\"cell\":") {
            match parse_cell(body) {
                Some(Ok(cell)) => out.ok_cells.push(cell),
                Some(Err(())) => out.err_cells += 1,
                None => out.skipped_lines += 1,
            }
        } else if body.starts_with("{\"event\":") {
            match parse_str(body, "event") {
                Some(event) => out.events.push(event),
                None => out.skipped_lines += 1,
            }
        } else {
            out.skipped_lines += 1;
        }
    }
    Ok(out)
}

/// Parses one cell record: `Ok` cells carry data, `Err(())` marks a
/// journaled failure, `None` a malformed line.
#[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
fn parse_cell(body: &str) -> Option<Result<OkCell, ()>> {
    let config = parse_str(body, "cell")?;
    let workload = parse_str(body, "workload")?;
    match parse_str(body, "status")?.as_str() {
        "err" => Some(Err(())),
        "ok" => {
            let health = MeasureHealth {
                retries: parse_num(body, "retries")? as usize,
                recalibrations: parse_num(body, "recalibrations")? as usize,
                rejected_outliers: parse_num(body, "rejected_outliers")? as usize,
            };
            Some(Ok(OkCell {
                config,
                workload,
                health,
                time: parse_summary(body, "time")?,
                power: parse_summary(body, "power")?,
            }))
        }
        _ => None,
    }
}

// ---------------------------------------------------------------------
// Progress sink
// ---------------------------------------------------------------------

/// The supervisor sink the binaries use: journals every resolved unit,
/// prints periodic progress (cells done/remaining, retries, ETA), and
/// trips the abort handle when `--abort-after` says so.
struct ProgressSink {
    writer: Arc<JournalWriter>,
    total: usize,
    already_done: usize,
    resolved: AtomicUsize,
    retries: AtomicUsize,
    started: Instant,
    last_print: Mutex<Instant>,
    abort_after: Option<usize>,
    abort: AbortHandle,
}

impl ProgressSink {
    fn new(
        writer: Arc<JournalWriter>,
        total: usize,
        already_done: usize,
        abort_after: Option<usize>,
        abort: AbortHandle,
    ) -> Self {
        let now = Instant::now();
        Self {
            writer,
            total,
            already_done,
            resolved: AtomicUsize::new(0),
            retries: AtomicUsize::new(0),
            started: now,
            last_print: Mutex::new(now),
            abort_after,
            abort,
        }
    }
}

impl CampaignSink for ProgressSink {
    #[allow(clippy::cast_precision_loss)]
    fn unit_resolved(&self, unit: &UnitReport) {
        if let Err(e) = self.writer.record_unit(unit) {
            eprintln!("[campaign] journal append failed: {e}");
        }
        let fresh = self.resolved.fetch_add(1, Ordering::Relaxed) + 1;
        let retries = self
            .retries
            .fetch_add(unit.attempts.saturating_sub(1) as usize, Ordering::Relaxed)
            + unit.attempts.saturating_sub(1) as usize;
        let done = self.already_done + fresh;
        let mut last = self.last_print.lock().expect("progress lock");
        if last.elapsed().as_secs_f64() >= 2.0 || done == self.total {
            *last = Instant::now();
            let eta = self.started.elapsed().as_secs_f64() / fresh as f64
                * (self.total - done) as f64;
            println!(
                "[campaign] {done}/{} cells done, {} remaining, {retries} retries, ETA {eta:.0}s",
                self.total,
                self.total - done,
            );
        }
        drop(last);
        if let Some(n) = self.abort_after {
            if fresh >= n {
                self.abort.abort();
            }
        }
    }
}

// ---------------------------------------------------------------------
// Campaign driver
// ---------------------------------------------------------------------

/// A prepared (possibly resumed, possibly aborted) campaign: the warmed
/// harness plus the journal handles the artifact phase needs.
pub struct Campaign {
    /// The harness, its measurement cache warmed by the campaign (and
    /// by the journal replay on resume).
    pub harness: Arc<Harness>,
    /// The supervisor's report, when a campaign ran (`None` when no
    /// campaign feature was requested).
    pub report: Option<CampaignReport>,
    /// Cells preloaded from the journal instead of re-measured.
    pub preloaded: usize,
    /// Artifact checksums recovered from the journal on resume.
    prior_artifacts: BTreeMap<String, u64>,
    writer: Option<Arc<JournalWriter>>,
}

impl Campaign {
    /// Whether the campaign was aborted before completing (exit with
    /// [`EXIT_ABORTED`]; the journal supports `--resume`).
    #[must_use]
    pub fn aborted(&self) -> bool {
        self.report.as_ref().is_some_and(|r| r.aborted)
    }

    /// The journaled checksum of an artifact from the interrupted run,
    /// if the journal recorded one.
    #[must_use]
    pub fn prior_artifact(&self, name: &str) -> Option<u64> {
        self.prior_artifacts.get(name).copied()
    }

    /// Journals a freshly written artifact's checksum.
    pub fn record_artifact(&self, name: &str, bytes: &[u8]) {
        if let Some(w) = &self.writer {
            if let Err(e) = w.record_artifact(name, bytes) {
                eprintln!("[campaign] artifact record failed: {e}");
            }
        }
    }
}

/// Builds the harness for `fidelity` (applying `--jobs`), and -- when a
/// campaign feature is armed -- replays the journal (on `--resume`) and
/// runs the supervised campaign over the full study grid
/// ([`configs::all_study_configs`] x the harness workloads), journaling
/// every resolved cell. The returned harness's cache then serves the
/// experiment renders, so supervision never touches rendered bytes.
///
/// # Panics
///
/// Panics if the journal cannot be created, or exits with
/// [`EXIT_CHECKSUM_MISMATCH`] when resuming against a journal recorded
/// at a different fidelity.
#[must_use]
pub fn prepare(fidelity: Fidelity, observability: &Observability, opts: &CampaignOptions) -> Campaign {
    let mut harness = fidelity.harness();
    if let Some(jobs) = opts.jobs {
        harness = harness.with_jobs(jobs);
    }
    let harness = observability.arm(harness);
    if !opts.armed() {
        return Campaign {
            harness: Arc::new(harness),
            report: None,
            preloaded: 0,
            prior_artifacts: BTreeMap::new(),
            writer: None,
        };
    }

    let path = opts.journal_path();
    let fidelity_name = format!("{fidelity:?}");
    let mut done: HashSet<(String, String)> = HashSet::new();
    let mut preloaded = 0usize;
    let mut prior_artifacts = BTreeMap::new();
    let resuming = opts.resume && path.exists();
    if resuming {
        let journal = load_journal(&path).unwrap_or_else(|e| panic!("--resume {}: {e}", path.display()));
        if let Some(recorded) = &journal.fidelity {
            if *recorded != fidelity_name {
                eprintln!(
                    "cannot resume: journal {} was recorded at {recorded} fidelity, this run is {fidelity_name}",
                    path.display()
                );
                std::process::exit(EXIT_CHECKSUM_MISMATCH);
            }
        }
        // The journal records configurations by label; the study grid's
        // labels are unique, so each maps back to one real ChipConfig
        // (needed for the cache key's structural config fingerprint).
        let study: HashMap<String, lhr_uarch::ChipConfig> = configs::all_study_configs()
            .into_iter()
            .map(|c| (c.label(), c))
            .collect();
        for cell in &journal.ok_cells {
            let Some(w) = lhr_workloads::by_name(&cell.workload) else {
                continue; // a workload this build no longer knows
            };
            let Some(config) = study.get(&cell.config) else {
                continue; // a configuration this build no longer measures
            };
            harness.runner().preload(
                config,
                w,
                RunMeasurement {
                    workload: w.name(),
                    group: w.group(),
                    config: cell.config.clone(),
                    time: cell.time,
                    power: cell.power,
                },
                cell.health,
            );
            done.insert((cell.config.clone(), cell.workload.clone()));
            preloaded += 1;
        }
        prior_artifacts = journal.artifacts;
        println!(
            "[campaign] resumed {}: {preloaded} cells replayed, {} failed cells to retry, {} torn/invalid lines skipped",
            path.display(),
            journal.err_cells,
            journal.skipped_lines,
        );
    }

    let harness = Arc::new(harness);
    let grid = grid_units(&configs::all_study_configs(), harness.workloads());
    let grid_total = grid.len();
    let units: Vec<_> = grid
        .into_iter()
        .filter(|u| !done.contains(&(u.config.label(), u.workload.name().to_owned())))
        .collect();

    let writer = Arc::new(
        if resuming {
            JournalWriter::append(&path)
        } else {
            JournalWriter::fresh(&path, &fidelity_name, configs::all_study_configs().len(), harness.workloads().len())
        }
        .unwrap_or_else(|e| panic!("journal {}: {e}", path.display())),
    );

    let mut supervisor = Supervisor::new(Arc::clone(&harness)).with_policy(RetryPolicy::default());
    if let Some(s) = opts.max_cell_seconds {
        supervisor = supervisor.with_max_cell_seconds(s);
    }
    if let Some(jobs) = opts.jobs {
        supervisor = supervisor.with_jobs(jobs);
    }
    let abort = AbortHandle::new();
    let sink = ProgressSink::new(
        Arc::clone(&writer),
        grid_total,
        preloaded,
        opts.abort_after,
        abort.clone(),
    );
    println!(
        "[campaign] supervising {} cells ({} already journaled), journal {}",
        units.len(),
        preloaded,
        path.display()
    );
    let report = supervisor.run(&units, &sink, &abort);
    let health = report.sweep_health();
    if report.aborted {
        println!(
            "[campaign] aborted with {} cells resolved this run; resume with --resume --journal {}",
            report.completed + report.failed,
            path.display()
        );
    } else if !health.is_clean() {
        println!("[campaign] {}", health.render());
    }
    Campaign {
        harness,
        report: Some(report),
        preloaded,
        prior_artifacts,
        writer: Some(writer),
    }
}

/// A human-readable first-divergence summary between a journaled
/// artifact and its regeneration, for the checksum-mismatch report.
#[must_use]
pub fn diff_summary(name: &str, old: &str, new: &str) -> String {
    let o: Vec<&str> = old.lines().collect();
    let n: Vec<&str> = new.lines().collect();
    let mut differing = 0usize;
    let mut first = None;
    for i in 0..o.len().max(n.len()) {
        let a = o.get(i).copied();
        let b = n.get(i).copied();
        if a != b {
            differing += 1;
            if first.is_none() {
                first = Some(i);
            }
        }
    }
    match first {
        None => format!("  {name}: lines identical, trailing bytes differ"),
        Some(i) => format!(
            "  {name}: {differing} differing line(s), first at line {}:\n    before: {}\n    after:  {}",
            i + 1,
            o.get(i).copied().unwrap_or("<absent>"),
            n.get(i).copied().unwrap_or("<absent>"),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lhr_core::MeasureError;
    use lhr_core::MeasureErrorKind;

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("lhr-campaign-{}", std::process::id()));
        fs::create_dir_all(&dir).expect("scratch dir");
        dir.join(name)
    }

    fn sample_unit(ok: bool) -> UnitReport {
        let harness = Harness::quick();
        let w = lhr_workloads::by_name("hmmer").unwrap();
        let config = lhr_uarch::ChipConfig::stock(lhr_uarch::ProcessorId::Atom230.spec());
        let outcome = if ok {
            let (evaluation, health) = harness.try_evaluate_workload(&config, w).unwrap();
            UnitOutcome::Completed { evaluation, health }
        } else {
            UnitOutcome::Failed {
                error: MeasureError {
                    workload: Some(w.name()),
                    config: config.label(),
                    kind: MeasureErrorKind::DeadlineExceeded { deadline_s: 1.5 },
                },
            }
        };
        UnitReport {
            config_label: config.label(),
            workload: w.name(),
            attempts: if ok { 1 } else { 3 },
            deadline_misses: u32::from(!ok),
            outcome,
        }
    }

    #[test]
    fn journal_round_trips_cells_bit_exactly() {
        let path = scratch("roundtrip.jsonl");
        let writer = JournalWriter::fresh(&path, "Quick", 45, 12).unwrap();
        let ok = sample_unit(true);
        let err = sample_unit(false);
        writer.record_unit(&ok).unwrap();
        writer.record_unit(&err).unwrap();
        writer.record_artifact("table4.txt", b"rendered bytes").unwrap();

        let journal = load_journal(&path).unwrap();
        assert_eq!(journal.fidelity.as_deref(), Some("Quick"));
        assert_eq!(journal.ok_cells.len(), 1);
        assert_eq!(journal.err_cells, 1);
        assert_eq!(journal.skipped_lines, 0);
        assert_eq!(journal.artifacts["table4.txt"], fnv64(b"rendered bytes"));

        let cell = &journal.ok_cells[0];
        let UnitOutcome::Completed { evaluation, health } = &ok.outcome else {
            unreachable!()
        };
        assert_eq!(cell.config, ok.config_label);
        assert_eq!(cell.workload, "hmmer");
        assert_eq!(cell.health, *health);
        // The f64 round trip is exact: shortest-repr format + parse
        // recovers identical bits, the keystone of byte-identical resume.
        assert_eq!(cell.time, evaluation.measurement.time);
        assert_eq!(cell.power, evaluation.measurement.power);
        assert_eq!(
            cell.time.mean().to_bits(),
            evaluation.measurement.time.mean().to_bits()
        );
        fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_tail_and_tampered_lines_are_skipped_not_fatal() {
        let path = scratch("torn.jsonl");
        let writer = JournalWriter::fresh(&path, "Quick", 45, 12).unwrap();
        writer.record_unit(&sample_unit(true)).unwrap();
        writer.record_unit(&sample_unit(true)).unwrap();
        drop(writer);
        // Crash mid-append: the last line is cut short.
        let mut text = fs::read_to_string(&path).unwrap();
        text.truncate(text.len() - 25);
        // And an earlier line is tampered with (bit rot): flip a digit
        // inside the second record's attempts field.
        let tampered = text.replacen("\"attempts\":1", "\"attempts\":7", 1);
        fs::write(&path, &tampered).unwrap();

        let journal = load_journal(&path).unwrap();
        assert_eq!(journal.fidelity.as_deref(), Some("Quick"));
        assert_eq!(
            journal.ok_cells.len(),
            0,
            "both data lines dropped: one torn, one failing its checksum"
        );
        assert_eq!(journal.skipped_lines, 2);
        fs::remove_file(&path).ok();
    }

    #[test]
    fn options_parse_all_campaign_flags() {
        let args: Vec<String> = [
            "repro_all", "--quick", "--resume", "--journal", "/tmp/j.jsonl",
            "--max-cell-seconds", "2.5", "--jobs", "4", "--abort-after", "40",
            "--out-dir", "out",
        ]
        .iter()
        .map(ToString::to_string)
        .collect();
        let opts = CampaignOptions::parse(&args);
        assert!(opts.resume && opts.armed());
        assert_eq!(opts.journal_path(), PathBuf::from("/tmp/j.jsonl"));
        assert_eq!(opts.max_cell_seconds, Some(2.5));
        assert_eq!(opts.jobs, Some(4));
        assert_eq!(opts.abort_after, Some(40));
        assert_eq!(opts.out_dir, PathBuf::from("out"));

        let plain = CampaignOptions::parse(&["x".to_owned()]);
        assert!(!plain.armed(), "no campaign flags, no campaign");
        assert_eq!(plain.journal_path(), PathBuf::from("repro_out/campaign.jsonl"));
        let jobs_only = CampaignOptions::parse(&["x".to_owned(), "--jobs".to_owned(), "2".to_owned()]);
        assert!(!jobs_only.armed(), "--jobs alone only caps parallelism");
    }

    #[test]
    fn diff_summary_points_at_the_first_divergence() {
        let old = "alpha\nbeta\ngamma\n";
        let new = "alpha\nBETA\ngamma\ndelta\n";
        let s = diff_summary("table2.txt", old, new);
        assert!(s.contains("2 differing line(s)"), "{s}");
        assert!(s.contains("first at line 2"), "{s}");
        assert!(s.contains("before: beta"), "{s}");
        assert!(s.contains("after:  BETA"), "{s}");
    }
}
