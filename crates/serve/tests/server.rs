//! Integration tests for the serving layer: a real server on a real
//! socket, exercised by real TCP clients.
//!
//! The four guarantees under test:
//!
//! 1. **Stampede coalescing** -- N concurrent requests for the same
//!    cell cost exactly one simulation and return byte-identical
//!    bodies, proven through the observability counters.
//! 2. **Admission control** -- a full queue sheds with `503 +
//!    Retry-After`, written from the accept thread.
//! 3. **Fault containment** -- a malformed request costs one `400`,
//!    never a worker.
//! 4. **Graceful drain** -- `POST /admin/drain` stops admission, lets
//!    in-flight work complete, and `wait()` returns.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use lhr_core::{Harness, Runner, ShardedLruCache};
use lhr_obs::MemoryRecorder;
use lhr_serve::{ServerConfig, ServerHandle, Telemetry};

fn boot(configure: impl FnOnce(&mut ServerConfig)) -> (ServerHandle, Arc<MemoryRecorder>) {
    let telemetry = Telemetry::default();
    let recorder = Arc::clone(&telemetry.memory);
    let runner = Runner::fast()
        .with_cell_cache(Arc::new(ShardedLruCache::new(256, 4)))
        .with_observer(telemetry.obs());
    let harness = Harness::new(runner).with_workloads(Harness::quick_set());
    let mut config = ServerConfig::default();
    configure(&mut config);
    let handle = lhr_serve::start(config, harness, telemetry).expect("bind");
    (handle, recorder)
}

/// One full HTTP exchange: returns (status, whole response text).
fn http_get(addr: SocketAddr, target: &str) -> (u16, String) {
    http_request(addr, &format!("GET {target} HTTP/1.1\r\nHost: t\r\n\r\n"))
}

/// All exchanges go through the hardened `lhr_bench::httpc` client, so
/// every test response is `Content-Length`-validated: a torn body fails
/// the test as a typed truncation error instead of a confusing
/// assertion on half a payload.
fn http_request(addr: SocketAddr, raw: &str) -> (u16, String) {
    let resp = lhr_bench::httpc::exchange(addr, raw.as_bytes(), Duration::from_secs(120))
        .expect("http exchange");
    (resp.status, rebuild_text(&resp))
}

/// Renders the validated response back into `head\r\n\r\nbody` text so
/// the assertions here keep splitting on the blank line. Header names
/// come back normalized to lowercase.
fn rebuild_text(resp: &lhr_bench::httpc::HttpResponse) -> String {
    use std::fmt::Write as _;
    let mut text = format!("HTTP/1.1 {}\r\n", resp.status);
    for (name, value) in &resp.headers {
        let _ = write!(text, "{name}: {value}\r\n");
    }
    text.push_str("\r\n");
    text.push_str(&resp.body_str());
    text
}

fn body_of(response: &str) -> &str {
    response.split("\r\n\r\n").nth(1).unwrap_or("")
}

#[test]
fn healthz_metrics_and_validation_errors() {
    let (handle, _recorder) = boot(|_| {});
    let addr = handle.addr();

    let (status, text) = http_get(addr, "/healthz");
    assert_eq!(status, 200);
    assert!(body_of(&text).contains("\"status\":\"ok\""));

    // Validation failures are typed and never cost a simulation.
    let (status, text) = http_get(addr, "/v1/cell?chip=z80&workload=jess");
    assert_eq!(status, 404, "unknown chip: {text}");
    assert!(body_of(&text).contains("unknown_chip"));
    let (status, text) = http_get(addr, "/v1/cell?chip=i7-45&workload=nope");
    assert_eq!(status, 404);
    assert!(body_of(&text).contains("unknown_workload"));
    let (status, text) = http_get(addr, "/v1/cell?chip=i7-45&workload=jess&config=99C9T@9.9");
    assert_eq!(status, 400);
    assert!(body_of(&text).contains("bad_config"));
    let (status, _) = http_get(addr, "/v1/unknown");
    assert_eq!(status, 404);
    let (status, _) = http_request(addr, "GET /admin/drain HTTP/1.1\r\n\r\n");
    assert_eq!(status, 405, "drain is POST-only");

    // The snapshot knows everything that just happened.
    let (status, text) = http_get(addr, "/metrics");
    assert_eq!(status, 200);
    let metrics = body_of(&text);
    assert!(metrics.contains("serve.requests"), "{metrics}");
    assert!(metrics.contains("serve.request./v1/cell"), "{metrics}");
    drop(handle);
}

#[test]
fn stampede_of_identical_requests_costs_one_simulation() {
    let (handle, recorder) = boot(|c| {
        c.jobs = 16;
        c.queue_depth = 64;
    });
    let addr = handle.addr();
    let target = "/v1/cell?chip=i7-45&workload=jess";

    let clients: Vec<_> = (0..16)
        .map(|_| std::thread::spawn(move || http_get(addr, target)))
        .collect();
    let mut bodies = Vec::new();
    for c in clients {
        let (status, text) = c.join().expect("client");
        assert_eq!(status, 200, "{text}");
        bodies.push(body_of(&text).to_owned());
    }
    // Byte-identical: every coalesced requester saw the same rendered body.
    for b in &bodies[1..] {
        assert_eq!(b, &bodies[0], "coalesced bodies must be byte-identical");
    }
    assert!(bodies[0].contains("\"workload\":\"jess\""));
    assert!(bodies[0].contains("\"chip\":\"i7 (45)\""));

    let snap = recorder.snapshot();
    // Exactly one requester led and simulated; the other fifteen waited
    // on the same flight.
    assert_eq!(snap.counter("serve.cells_measured"), 1, "{}", snap.render());
    assert_eq!(snap.counter("serve.coalesce_leads"), 1);
    assert_eq!(snap.counter("serve.coalesce_hits"), 15);
    // The engine ran the reference set (4 machines x 12 workloads) plus
    // the one requested cell -- nothing else.
    let expected = 4 * Harness::quick_set().len() as u64 + 1;
    assert_eq!(snap.counter("runner.measurements"), expected);

    // A repeat visit is a pure cache hit: no new flight work, no new
    // measurement.
    let (status, text) = http_get(addr, target);
    assert_eq!(status, 200);
    assert_eq!(body_of(&text), bodies[0], "cached cell renders identically");
    let snap = recorder.snapshot();
    assert_eq!(snap.counter("runner.measurements"), expected);
    assert_eq!(snap.counter("runner.cache_hits"), 1);
    drop(handle);
}

#[test]
fn full_queue_sheds_with_503_and_retry_after() {
    let (handle, recorder) = boot(|c| {
        c.jobs = 1;
        c.queue_depth = 1;
        c.read_timeout = Duration::from_millis(600);
    });
    let addr = handle.addr();

    // A slow-loris connection: accepted, handed to the only worker,
    // which now sits in read() until the socket timeout.
    let loris = TcpStream::connect(addr).expect("loris");
    std::thread::sleep(Duration::from_millis(150));
    // This one fills the single queue slot.
    let parked = TcpStream::connect(addr).expect("parked");
    std::thread::sleep(Duration::from_millis(150));
    // Queue full: the accept thread itself sheds this one.
    let (status, text) = http_get(addr, "/healthz");
    assert_eq!(status, 503, "{text}");
    assert!(text.contains("retry-after:"), "{text}");
    assert!(body_of(&text).contains("overloaded"));
    let snap = recorder.snapshot();
    assert!(snap.counter("serve.shed_503") >= 1, "{}", snap.render());
    drop(loris);
    drop(parked);

    // Once the loris times out, the worker is free again and service
    // recovers.
    std::thread::sleep(Duration::from_millis(800));
    let (status, _) = http_get(addr, "/healthz");
    assert_eq!(status, 200, "server recovers after shed");
    drop(handle);
}

#[test]
fn malformed_requests_get_400_and_never_kill_a_worker() {
    let (handle, recorder) = boot(|c| {
        c.jobs = 1; // one worker: if it died, the next request would hang
    });
    let addr = handle.addr();

    let (status, text) = http_request(addr, "COMPLETE GARBAGE\r\n\r\n");
    assert_eq!(status, 400, "{text}");
    assert!(body_of(&text).contains("bad_request"));
    let (status, _) = http_request(addr, "GET /healthz HTTP/0.9-ish\r\n\r\n");
    assert_eq!(status, 400);
    let (status, text) = http_request(addr, "GET /v1/cell?chip=%zz HTTP/1.1\r\n\r\n");
    assert_eq!(status, 400, "bad percent-encoding: {text}");

    // The sole worker survived all of it.
    let (status, _) = http_get(addr, "/healthz");
    assert_eq!(status, 200);
    let snap = recorder.snapshot();
    assert!(snap.counter("serve.http_400") >= 3, "{}", snap.render());
    assert_eq!(snap.counter("serve.worker_panics_contained"), 0);
    drop(handle);
}

#[test]
fn artifacts_serve_files_but_never_traversal() {
    let dir = std::env::temp_dir().join(format!("lhr-serve-artifacts-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(dir.join("table4.txt"), b"the rows\n").unwrap();
    let secret = dir.join("../lhr-serve-secret.txt");
    std::fs::write(&secret, b"must never be served\n").unwrap();

    let (handle, _recorder) = boot(|c| {
        c.artifact_dir = PathBuf::from(&dir);
    });
    let addr = handle.addr();

    let (status, text) = http_get(addr, "/v1/artifacts");
    assert_eq!(status, 200);
    assert!(body_of(&text).contains("\"name\":\"table4.txt\""));
    let (status, text) = http_get(addr, "/v1/artifacts/table4.txt");
    assert_eq!(status, 200);
    assert_eq!(body_of(&text), "the rows\n");

    // Traversal in every costume: literal, percent-encoded, absolute.
    for evil in [
        "/v1/artifacts/../lhr-serve-secret.txt",
        "/v1/artifacts/%2e%2e%2flhr-serve-secret.txt",
        "/v1/artifacts/..%2flhr-serve-secret.txt",
        "/v1/artifacts//etc/passwd",
        "/v1/artifacts/.hidden",
    ] {
        let (status, text) = http_get(addr, evil);
        assert_eq!(status, 404, "{evil} must 404, got: {text}");
        assert!(
            !text.contains("must never be served"),
            "{evil} leaked the secret"
        );
    }
    drop(handle);
    std::fs::remove_file(&secret).ok();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn drain_completes_in_flight_work_then_stops() {
    let (handle, recorder) = boot(|c| {
        c.jobs = 2;
    });
    let addr = handle.addr();

    // Real work before the drain so "in-flight completes" is non-trivial.
    let (status, _) = http_get(addr, "/v1/cell?chip=atom-45&workload=mcf");
    assert_eq!(status, 200);

    let (status, text) = http_request(addr, "POST /admin/drain HTTP/1.1\r\n\r\n");
    assert_eq!(status, 200);
    assert!(body_of(&text).contains("\"draining\":true"));

    // The drain finishes: accept loop exits, queue drains, workers
    // join, the observer flushes.
    handle.wait();
    let snap = recorder.snapshot();
    assert_eq!(snap.counter("serve.drained"), 1, "{}", snap.render());
    assert_eq!(snap.counter("serve.drain_requests"), 1);

    // The listener is gone: new connections are refused (or reset),
    // never silently accepted.
    std::thread::sleep(Duration::from_millis(50));
    assert!(
        TcpStream::connect(addr).is_err(),
        "drained server must not accept"
    );
}

#[test]
fn sweep_pareto_and_findings_render() {
    let (handle, _recorder) = boot(|c| {
        c.jobs = 4;
        c.max_cell = Duration::from_secs(300);
    });
    let addr = handle.addr();

    let (status, text) = http_get(addr, "/v1/findings");
    assert_eq!(status, 200, "{text}");
    let body = body_of(&text);
    assert!(body.contains("\"id\":\"i7-outperforms-atom\""), "{body}");
    assert!(body.contains("\"holds\":true"), "{body}");

    let (status, text) = http_get(addr, "/v1/sweep?space=stock");
    assert_eq!(status, 200, "{text}");
    let body = body_of(&text);
    assert!(body.contains("\"space\":\"stock\""));
    assert!(body.contains("i7 (45)"), "{body}");
    assert!(body.contains("\"clean\":true"), "{body}");

    let (status, text) = http_get(addr, "/v1/pareto?metric=avg&space=stock");
    assert_eq!(status, 200, "{text}");
    let body = body_of(&text);
    assert!(body.contains("\"efficient\":["), "{body}");
    assert!(body.contains("\"metric\":\"avg\""), "{body}");
    let (status, _) = http_get(addr, "/v1/pareto?metric=sideways");
    assert_eq!(status, 404);
    drop(handle);
}

#[test]
fn slowloris_connection_times_out_with_408_and_is_counted() {
    let (handle, recorder) = boot(|c| {
        c.jobs = 2;
        c.read_timeout = Duration::from_millis(200);
    });
    let addr = handle.addr();

    // A slow-loris client: opens the connection, dribbles half a
    // request line, then stalls. The worker must get the socket back
    // after the read timeout, answer 408, and count the event.
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream.write_all(b"GET /healthz HT").expect("partial send");
    let mut text = String::new();
    stream.read_to_string(&mut text).expect("read response");
    assert!(
        text.starts_with("HTTP/1.1 408"),
        "stalled connection must get 408: {text:?}"
    );
    assert!(text.contains("request_timeout"), "{text}");

    // The worker survived and the server still serves.
    let (status, _) = http_get(addr, "/healthz");
    assert_eq!(status, 200, "server must survive a slowloris client");
    let snapshot = recorder.snapshot().render();
    assert!(
        snapshot.contains("serve.timeout"),
        "slowloris must land in the serve.timeout counter: {snapshot}"
    );
    drop(handle);
}
