//! Integration tests for the live-telemetry layer: Prometheus
//! exposition on `/v1/metrics`, windowed series on
//! `/v1/metrics/timeseries`, SLO reporting in `/healthz`, drain-time
//! bucket sealing (admin endpoint and real `SIGTERM`), and end-to-end
//! request tracing into a JSON-lines file.
//!
//! The signal-drain test flips a process-global flag, so every test
//! that boots a server serializes on one lock.

use std::net::SocketAddr;
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use lhr_core::{Harness, Runner, ShardedLruCache};
use lhr_obs::{prom, SloConfig, TimeSeriesConfig};
use lhr_serve::{signal, ServerConfig, ServerHandle, Telemetry};

/// Serializes server boots within this test binary: the signal test
/// sets the process-global drain flag, which would drain any other live
/// server mid-test.
static SERVER_LOCK: Mutex<()> = Mutex::new(());

fn serialized() -> MutexGuard<'static, ()> {
    SERVER_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// A coarse time-series geometry (one-minute buckets) so a test that
/// takes milliseconds never straddles an interval boundary.
fn coarse_telemetry() -> Telemetry {
    Telemetry::new(
        TimeSeriesConfig {
            window: Duration::from_secs(3600),
            resolution: Duration::from_secs(60),
        },
        SloConfig::default(),
    )
}

fn boot(telemetry: Telemetry) -> ServerHandle {
    let runner = Runner::fast()
        .with_cell_cache(Arc::new(ShardedLruCache::new(256, 4)))
        .with_observer(telemetry.obs());
    let harness = Harness::new(runner).with_workloads(Harness::quick_set());
    lhr_serve::start(ServerConfig::default(), harness, telemetry).expect("bind")
}

/// All exchanges go through the hardened `lhr_bench::httpc` client:
/// `Content-Length` is validated, so a torn response fails loudly.
fn http_request(addr: SocketAddr, raw: &str) -> (u16, String) {
    let resp = lhr_bench::httpc::exchange(addr, raw.as_bytes(), Duration::from_secs(120))
        .expect("http exchange");
    use std::fmt::Write as _;
    let mut text = format!("HTTP/1.1 {}\r\n", resp.status);
    for (name, value) in &resp.headers {
        let _ = write!(text, "{name}: {value}\r\n");
    }
    text.push_str("\r\n");
    text.push_str(&resp.body_str());
    (resp.status, text)
}

fn http_get(addr: SocketAddr, target: &str) -> (u16, String) {
    http_request(addr, &format!("GET {target} HTTP/1.1\r\nHost: t\r\n\r\n"))
}

fn body_of(response: &str) -> &str {
    response.split("\r\n\r\n").nth(1).unwrap_or("")
}

fn header_of<'a>(response: &'a str, name: &str) -> Option<&'a str> {
    response.split("\r\n\r\n").next()?.lines().find_map(|line| {
        let (n, v) = line.split_once(':')?;
        n.eq_ignore_ascii_case(name).then(|| v.trim())
    })
}

#[test]
fn v1_metrics_negotiates_the_prometheus_exposition() {
    let _guard = serialized();
    let handle = boot(coarse_telemetry());
    let addr = handle.addr();

    // Generate traffic so the scrape has RED series to show.
    for _ in 0..3 {
        let (status, _) = http_get(addr, "/healthz");
        assert_eq!(status, 200);
    }
    let (status, _) = http_get(addr, "/v1/cell?chip=i7-45&workload=jess");
    assert_eq!(status, 200);

    // Default profile: the human-readable text render, not Prometheus.
    let (status, text) = http_get(addr, "/v1/metrics");
    assert_eq!(status, 200);
    assert!(body_of(&text).contains("serve.requests"), "{text}");
    assert!(!body_of(&text).contains("# TYPE"), "{text}");

    // A Prometheus scraper's Accept header switches the exposition on.
    let (status, text) = http_request(
        addr,
        "GET /v1/metrics HTTP/1.1\r\nHost: t\r\nAccept: text/plain\r\n\r\n",
    );
    assert_eq!(status, 200);
    assert!(
        header_of(&text, "Content-Type")
            .is_some_and(|ct| ct.contains("version=0.0.4")),
        "{text}"
    );
    let exposition = prom::parse_exposition(body_of(&text)).expect("well-formed exposition");
    assert_eq!(exposition.type_of("serve_requests"), Some("counter"));
    assert!(exposition.value("serve_requests").unwrap() >= 4.0);
    assert_eq!(exposition.type_of("serve_latency__healthz"), Some("summary"));
    let healthz_quantiles: Vec<_> = exposition
        .samples
        .iter()
        .filter(|s| s.name == "serve_latency__healthz" && s.labels.contains("quantile"))
        .collect();
    assert_eq!(healthz_quantiles.len(), 3, "p50/p95/p99 exported");
    assert_eq!(exposition.value("lhr_trace_write_errors"), Some(0.0));

    // `?format=prometheus` works without any Accept header, on the
    // legacy path too.
    let (status, text) = http_get(addr, "/metrics?format=prometheus");
    assert_eq!(status, 200);
    let exposition = prom::parse_exposition(body_of(&text)).expect("well-formed exposition");
    assert!(exposition.value("runner_measurements").is_some());
    drop(handle);
}

#[test]
fn timeseries_endpoint_reports_red_series() {
    let _guard = serialized();
    let handle = boot(coarse_telemetry());
    let addr = handle.addr();

    for _ in 0..5 {
        let (status, _) = http_get(addr, "/healthz");
        assert_eq!(status, 200);
    }
    let (status, text) = http_get(addr, "/v1/metrics/timeseries");
    assert_eq!(status, 200);
    let body = body_of(&text);
    assert!(body.contains("\"resolution_seconds\":60"), "{body}");
    // Rate: the request counter series, with all five requests in its
    // bucket (the sixth request is still in flight while it renders).
    assert!(body.contains("\"name\":\"serve.req./healthz\""), "{body}");
    // Duration: the latency distribution with whole-window quantiles.
    let latency = body
        .split("\"name\":\"serve.latency./healthz\"")
        .nth(1)
        .expect("latency series present");
    let latency_obj = latency.split("]}").next().unwrap();
    assert!(latency_obj.contains("\"kind\":\"distribution\""), "{body}");
    assert!(latency_obj.contains("\"p50\":"), "{body}");
    assert!(latency_obj.contains("\"p99\":"), "{body}");
    drop(handle);
}

#[test]
fn healthz_reports_the_slo_block() {
    let _guard = serialized();
    let handle = boot(coarse_telemetry());
    let addr = handle.addr();

    let (status, _) = http_get(addr, "/healthz");
    assert_eq!(status, 200);
    let (status, text) = http_get(addr, "/healthz");
    assert_eq!(status, 200);
    let body = body_of(&text);
    assert!(body.contains("\"status\":\"ok\""), "{body}");
    assert!(body.contains("\"slo\":{\"alert\":\"ok\""), "{body}");
    assert!(body.contains("\"availability_burn\":{\"short\":"), "{body}");
    assert!(body.contains("\"latency_burn\":{\"short\":"), "{body}");
    assert!(body.contains("\"trace_write_errors\":0"), "{body}");
    assert!(body.contains("\"requests_long_window\":"), "{body}");
    drop(handle);
}

#[test]
fn admin_drain_seals_the_final_timeseries_bucket() {
    let _guard = serialized();
    let handle = boot(coarse_telemetry());
    let addr = handle.addr();
    let state = Arc::clone(handle.state());

    let (status, _) = http_get(addr, "/healthz");
    assert_eq!(status, 200);
    let (status, _) = http_request(addr, "POST /admin/drain HTTP/1.1\r\n\r\n");
    assert_eq!(status, 200);
    handle.wait();

    // The drain advanced the sealing mark strictly past the bucket the
    // final requests landed in: the last partial bucket is sealed
    // history, not a still-open interval.
    let ts = &state.telemetry.timeseries;
    let snap = ts.snapshot();
    assert!(
        ts.sealed_through() > snap.now_index,
        "sealed_through {} must pass the live bucket {}",
        ts.sealed_through(),
        snap.now_index
    );
    // And nothing was lost on the way out: the sealed series still hold
    // the requests that were served.
    let req = snap
        .series
        .iter()
        .find(|s| s.name == "serve.req./healthz")
        .expect("request series survives the drain");
    assert!(req.buckets.iter().map(|b| b.count).sum::<u64>() >= 1);
}

#[test]
fn sigterm_drains_seals_and_flushes_like_the_admin_endpoint() {
    let _guard = serialized();
    signal::reset();
    signal::install();
    let dir = std::env::temp_dir().join(format!("lhr-telemetry-sig-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let trace_path = dir.join("trace.jsonl");
    let telemetry = coarse_telemetry()
        .with_trace_path(&trace_path)
        .expect("open trace");
    let handle = boot(telemetry);
    let addr = handle.addr();
    let state = Arc::clone(handle.state());

    let (status, _) = http_get(addr, "/healthz");
    assert_eq!(status, 200);

    // A real SIGTERM, delivered by the OS to this process: the handler
    // flips the drain flag the accept loop polls.
    let kill = std::process::Command::new("sh")
        .arg("-c")
        .arg(format!("kill -s TERM {}", std::process::id()))
        .status()
        .expect("run kill");
    assert!(kill.success(), "kill must deliver");
    let deadline = Instant::now() + Duration::from_secs(10);
    while !signal::drain_requested() {
        assert!(Instant::now() < deadline, "signal never arrived");
        std::thread::sleep(Duration::from_millis(10));
    }
    handle.wait();
    signal::reset();

    let ts = &state.telemetry.timeseries;
    assert!(
        ts.sealed_through() > ts.snapshot().now_index,
        "signal drain must seal the final bucket"
    );
    // The flush on the drain path wrote the trace out: the file already
    // holds the request's span events, without any explicit flush here.
    let trace = std::fs::read_to_string(&trace_path).expect("trace file written");
    assert!(
        trace.lines().any(|l| l.contains("\"ev\":\"span_start\"")),
        "flushed trace must hold span events: {trace:?}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// Pulls `"field":<u64>` out of a JSON-lines trace line (the trace
/// encoder emits unsigned integers for ids and request numbers).
fn field_u64(line: &str, field: &str) -> Option<u64> {
    let at = line.find(&format!("\"{field}\":"))?;
    let digits: String = line[at + field.len() + 3..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect();
    digits.parse().ok()
}

#[test]
fn trace_records_complete_span_trees_per_request() {
    let _guard = serialized();
    let dir = std::env::temp_dir().join(format!("lhr-telemetry-trace-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let trace_path = dir.join("trace.jsonl");
    let telemetry = coarse_telemetry()
        .with_trace_path(&trace_path)
        .expect("open trace");
    let handle = boot(telemetry);
    let addr = handle.addr();

    let (status, _) = http_get(addr, "/healthz");
    assert_eq!(status, 200);
    // A cold cell (engine work on the leader's flight) and a warm repeat
    // (cache hit) both belong to their own requests in the trace.
    let (status, _) = http_get(addr, "/v1/cell?chip=i7-45&workload=jess");
    assert_eq!(status, 200);
    let (status, _) = http_get(addr, "/v1/cell?chip=i7-45&workload=jess");
    assert_eq!(status, 200);
    let (status, _) = http_request(addr, "POST /admin/drain HTTP/1.1\r\n\r\n");
    assert_eq!(status, 200);
    handle.wait();

    let trace = std::fs::read_to_string(&trace_path).expect("trace file written");
    let mut span_ids = std::collections::HashSet::new();
    let mut starts = Vec::new(); // (id, parent, request)
    let mut ended = std::collections::HashSet::new();
    for line in trace.lines() {
        if line.contains("\"ev\":\"span_start\"") {
            let id = field_u64(line, "id").expect("span_start carries id");
            span_ids.insert(id);
            starts.push((
                id,
                field_u64(line, "parent").unwrap_or(0),
                field_u64(line, "req").unwrap_or(0),
            ));
        } else if line.contains("\"ev\":\"span_end\"") {
            ended.insert(field_u64(line, "id").expect("span_end carries id"));
        }
    }

    // Completeness: every opened span closed (the drain flushed the
    // tail), and every child points at a span that exists.
    assert!(!starts.is_empty(), "trace must hold spans: {trace:?}");
    for (id, parent, _) in &starts {
        assert!(ended.contains(id), "span {id} never ended");
        if *parent != 0 {
            assert!(span_ids.contains(parent), "span {id} orphaned from {parent}");
        }
    }
    // End-to-end attribution: the serve-layer request spans carry their
    // minted request ids, and at least four distinct requests traced
    // (healthz, two cells, the drain).
    let tagged: std::collections::HashSet<u64> = starts
        .iter()
        .filter(|(_, _, req)| *req != 0)
        .map(|(_, _, req)| *req)
        .collect();
    assert!(tagged.len() >= 4, "distinct traced requests: {tagged:?}");
    assert!(
        trace.lines().any(|l| l.contains("serve.request./v1/cell") && l.contains("\"req\":")),
        "cell request span must be request-tagged: {trace:?}"
    );
    std::fs::remove_dir_all(&dir).ok();
}
