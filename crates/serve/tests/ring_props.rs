//! Property tests for the consistent-hash ring: the two guarantees the
//! shard tier leans on are quantified here, not just spot-checked.
//!
//! 1. **Balance** -- with [`VNODES`] virtual nodes per backend, every
//!    backend's share of a uniform keyspace stays within a stated band
//!    around fair (`1/N`).
//! 2. **Minimal movement** -- adding a backend remaps only the keys the
//!    joiner now owns (about `1/(N+1)` of the keyspace), and *every*
//!    moved key lands on the joiner; removing a backend moves only the
//!    keys it owned, and no survivor's key moves at all.

use proptest::prelude::*;

use lhr_serve::shard::ring::{hash_key, mix64, HashRing, VNODES};

/// Keys sampled per case: enough that shares concentrate (the balance
/// band below is ~5 sigma wide at this sample size) while keeping the
/// whole suite fast.
const KEYS: usize = 4096;

/// A deterministic uniform key stream for one case.
fn keys(seed: u64) -> impl Iterator<Item = u64> {
    (0..KEYS as u64).map(move |i| mix64(seed.wrapping_add(i.wrapping_mul(0x9E37_79B9_7F4A_7C15))))
}

proptest! {
    /// Every backend's share of a uniform keyspace lands within
    /// `[0.5, 1.6] x fair`. With 128 vnodes the share's standard
    /// deviation is about `fair / sqrt(VNODES)` (~9% of fair), so the
    /// band is ~5 sigma wide -- and the sampled stream is deterministic,
    /// so a pass here is a pass forever.
    #[test]
    fn load_stays_within_the_stated_balance_band(
        seed in any::<u64>(),
        backends in 2usize..9,
    ) {
        let ring = HashRing::new(backends);
        let mut counts = vec![0usize; backends];
        for h in keys(seed) {
            counts[ring.primary(h).expect("non-empty ring")] += 1;
        }
        let fair = KEYS as f64 / backends as f64;
        for (backend, &count) in counts.iter().enumerate() {
            let share = count as f64 / fair;
            prop_assert!(
                (0.5..=1.6).contains(&share),
                "backend {backend}/{backends} owns {count} of {KEYS} keys \
                 ({share:.2}x fair, vnodes={VNODES})"
            );
        }
    }

    /// Join movement: going from N to N+1 backends moves at most
    /// `2.2/(N+1)` of the keyspace and at least `0.25/(N+1)` (the ring
    /// really does rebalance), and every key that moves is now owned by
    /// the joiner -- survivors never trade keys among themselves.
    #[test]
    fn a_join_moves_about_one_share_and_only_to_the_joiner(
        seed in any::<u64>(),
        backends in 1usize..8,
    ) {
        let before = HashRing::new(backends);
        let after = HashRing::new(backends + 1);
        let joiner = backends; // new member gets the next id
        let mut moved = 0usize;
        for h in keys(seed) {
            let old = before.primary(h).expect("non-empty ring");
            let new = after.primary(h).expect("non-empty ring");
            if new != old {
                moved += 1;
                prop_assert_eq!(
                    new, joiner,
                    "a moved key must land on the joiner, not shuffle \
                     between survivors (key {:#x}: {} -> {})", h, old, new
                );
            }
        }
        let fraction = moved as f64 * (backends + 1) as f64 / KEYS as f64;
        prop_assert!(
            (0.25..=2.2).contains(&fraction),
            "join onto {backends} backends moved {moved}/{KEYS} keys \
             ({fraction:.2}x the fair share 1/{})", backends + 1
        );
    }

    /// Leave movement: removing the last backend never moves a key
    /// between survivors -- only the keys the departed backend owned
    /// get new homes, so a crash reshuffles exactly one failure
    /// domain's worth of cache warmth.
    #[test]
    fn a_leave_never_moves_a_survivors_key(
        seed in any::<u64>(),
        backends in 2usize..9,
    ) {
        let before = HashRing::new(backends);
        let after = HashRing::new(backends - 1);
        let departed = backends - 1;
        for h in keys(seed) {
            let old = before.primary(h).expect("non-empty ring");
            if old != departed {
                prop_assert_eq!(
                    after.primary(h), Some(old),
                    "key {:#x} moved off surviving backend {}", h, old
                );
            }
        }
    }

    /// Replica sets are well-formed for any key: the primary leads,
    /// members are distinct, and the set is as long as the ring allows.
    #[test]
    fn replica_sets_are_distinct_and_led_by_the_primary(
        seed in any::<u64>(),
        backends in 1usize..7,
        replicas in 1usize..5,
    ) {
        let ring = HashRing::new(backends);
        for h in keys(seed).take(256) {
            let owners = ring.route(h, replicas);
            prop_assert_eq!(owners.len(), replicas.min(backends));
            prop_assert_eq!(owners.first().copied(), ring.primary(h));
            let mut dedup = owners.clone();
            dedup.sort_unstable();
            dedup.dedup();
            prop_assert_eq!(dedup.len(), owners.len(), "replicas must be distinct");
        }
    }
}

/// The string hash feeding the ring is stable across processes (no
/// RandomState anywhere), so the router and any offline tooling agree
/// on key placement.
#[test]
fn hash_key_is_stable_and_spreads_similar_keys() {
    assert_eq!(hash_key(b""), hash_key(b""));
    let a = hash_key(b"/v1/cell?chip=i7-45&workload=jess");
    let b = hash_key(b"/v1/cell?chip=i7-45&workload=mcf");
    assert_ne!(a, b);
    // Full-avalanche finish: one changed byte flips about half the bits.
    let flipped = (a ^ b).count_ones();
    assert!((8..=56).contains(&flipped), "weak diffusion: {flipped} bits");
}
