//! Integration tests for in-server campaign orchestration: a real
//! server on a real socket, campaigns submitted over HTTP, cells
//! measured by the shared worker pool on the background queue lane.
//!
//! The guarantees under test:
//!
//! 1. **Submit-to-artifact** -- `POST /v1/campaigns` runs the grid to
//!    completion and serves a deterministic result artifact.
//! 2. **Validation** -- malformed specs are rejected with typed errors
//!    before any journal or measurement work happens.
//! 3. **Preempt/resume** -- preemption stops dispatch, journals the
//!    decision, and resume continues to the same artifact.
//! 4. **Drain-and-restart resume** -- a drained server restarted over
//!    the same campaign directory resumes from the journal, never
//!    re-measures finished cells, and produces a byte-identical
//!    artifact to an uninterrupted run.
//! 5. **Telemetry** -- `/healthz` reports per-tenant scheduler state.

use std::fs;
use std::net::SocketAddr;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

use lhr_core::{Harness, Runner, ShardedLruCache};
use lhr_obs::MemoryRecorder;
use lhr_serve::{ServerConfig, ServerHandle, Telemetry};

/// A scratch directory unique to this test process.
fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("lhr-serve-camp-{}-{name}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

fn boot(configure: impl FnOnce(&mut ServerConfig)) -> (ServerHandle, Arc<MemoryRecorder>) {
    let telemetry = Telemetry::default();
    let recorder = Arc::clone(&telemetry.memory);
    let runner = Runner::fast()
        .with_cell_cache(Arc::new(ShardedLruCache::new(256, 4)))
        .with_observer(telemetry.obs());
    let harness = Harness::new(runner).with_workloads(Harness::quick_set());
    let mut config = ServerConfig::default();
    configure(&mut config);
    let handle = lhr_serve::start(config, harness, telemetry).expect("bind");
    (handle, recorder)
}

/// All exchanges go through the hardened `lhr_bench::httpc` client:
/// `Content-Length` is validated, so a torn response fails loudly.
fn http_request(addr: SocketAddr, raw: &str) -> (u16, String) {
    let resp = lhr_bench::httpc::exchange(addr, raw.as_bytes(), Duration::from_secs(120))
        .expect("http exchange");
    use std::fmt::Write as _;
    let mut text = format!("HTTP/1.1 {}\r\n", resp.status);
    for (name, value) in &resp.headers {
        let _ = write!(text, "{name}: {value}\r\n");
    }
    text.push_str("\r\n");
    text.push_str(&resp.body_str());
    (resp.status, text)
}

fn http_get(addr: SocketAddr, target: &str) -> (u16, String) {
    http_request(addr, &format!("GET {target} HTTP/1.1\r\nHost: t\r\n\r\n"))
}

fn http_post(addr: SocketAddr, target: &str) -> (u16, String) {
    http_request(
        addr,
        &format!("POST {target} HTTP/1.1\r\nHost: t\r\nContent-Length: 0\r\n\r\n"),
    )
}

fn body_of(response: &str) -> &str {
    response.split("\r\n\r\n").nth(1).unwrap_or("")
}

/// Extracts `"id":"cNNNN"` from a submission body.
fn campaign_id(body: &str) -> String {
    let start = body.find("\"id\":\"").expect("id in body") + "\"id\":\"".len();
    body[start..]
        .chars()
        .take_while(|c| *c != '"')
        .collect()
}

/// Polls status until the campaign reaches `state` (or panics after the
/// deadline). Returns the final status body.
fn wait_for_state(addr: SocketAddr, id: &str, state: &str, deadline: Duration) -> String {
    let until = Instant::now() + deadline;
    loop {
        let (status, text) = http_get(addr, &format!("/v1/campaigns/{id}"));
        assert_eq!(status, 200, "{text}");
        let body = body_of(&text).to_owned();
        if body.contains(&format!("\"state\":\"{state}\"")) {
            return body;
        }
        assert!(
            Instant::now() < until,
            "campaign {id} never reached {state}: {body}"
        );
        std::thread::sleep(Duration::from_millis(50));
    }
}

#[test]
fn campaign_runs_to_completion_and_serves_artifact() {
    let dir = scratch("complete");
    let (handle, _recorder) = boot(|c| {
        c.jobs = 4;
        c.campaign_dir = dir.clone();
    });
    let addr = handle.addr();

    let (status, text) = http_post(
        addr,
        "/v1/campaigns?tenant=acme&chips=i7-45,atom-45&workloads=jess,db",
    );
    assert_eq!(status, 202, "{text}");
    let body = body_of(&text);
    assert!(body.contains("\"state\":\"queued\""), "{body}");
    assert!(body.contains("\"units\":4"), "{body}");
    let id = campaign_id(body);

    // Artifact is 409 until the campaign finishes.
    let (status, text) = http_get(addr, &format!("/v1/campaigns/{id}/artifact"));
    assert!(
        status == 409 || status == 200,
        "artifact before done must be 409 (or 200 if already finished): {text}"
    );

    let done = wait_for_state(addr, &id, "done", Duration::from_secs(120));
    assert!(done.contains("\"done\":4"), "{done}");
    assert!(done.contains("\"failed\":0"), "{done}");

    // Cells view shows per-cell values.
    let (status, text) = http_get(addr, &format!("/v1/campaigns/{id}?cells=1"));
    assert_eq!(status, 200);
    let cells = body_of(&text);
    assert!(cells.contains("\"workload\":\"jess\""), "{cells}");
    assert!(cells.contains("\"status\":\"ok\""), "{cells}");

    // The artifact exists on disk and over HTTP, with matching bytes.
    let (status, text) = http_get(addr, &format!("/v1/campaigns/{id}/artifact"));
    assert_eq!(status, 200, "{text}");
    let served = body_of(&text).to_owned();
    let on_disk =
        fs::read_to_string(dir.join(format!("{id}.result.json"))).expect("artifact file");
    assert_eq!(served, on_disk, "served artifact must match disk bytes");
    assert!(served.contains("\"ok\":4"), "{served}");

    // The campaign list knows it.
    let (status, text) = http_get(addr, "/v1/campaigns");
    assert_eq!(status, 200);
    assert!(body_of(&text).contains(&id), "{text}");

    // /healthz reports scheduler state for the tenant.
    let (status, text) = http_get(addr, "/healthz");
    assert_eq!(status, 200);
    let health = body_of(&text);
    assert!(health.contains("\"campaigns\":"), "{health}");
    assert!(health.contains("\"acme\""), "{health}");
    assert!(health.contains("\"done\":1"), "{health}");
    drop(handle);
}

#[test]
fn campaign_validation_rejects_before_any_work() {
    let dir = scratch("validate");
    let (handle, _recorder) = boot(|c| {
        c.campaign_dir = dir.clone();
    });
    let addr = handle.addr();

    for (target, expect_status, expect_tag) in [
        ("/v1/campaigns", 400, "missing_param"),
        ("/v1/campaigns?chips=z80", 404, "unknown_chip"),
        ("/v1/campaigns?chips=i7-45&workloads=nope", 404, "unknown_workload"),
        ("/v1/campaigns?chips=i7-45&config=banana", 400, "bad_config"),
        ("/v1/campaigns?chips=i7-45&priority=urgent", 400, "bad_priority"),
        ("/v1/campaigns?chips=i7-45&weight=-1", 400, "bad_weight"),
        ("/v1/campaigns?chips=i7-45&quota=0", 400, "bad_quota"),
        ("/v1/campaigns?chips=i7-45&tenant=bad/name", 400, "bad_tenant"),
    ] {
        let (status, text) = http_post(addr, target);
        assert_eq!(status, expect_status, "{target}: {text}");
        assert!(body_of(&text).contains(expect_tag), "{target}: {text}");
    }
    // Nothing was journaled: the directory holds no campaign files.
    let entries = fs::read_dir(&dir).map(Iterator::count).unwrap_or(0);
    assert_eq!(entries, 0, "validation failures must not touch the journal dir");

    // Status/artifact for unknown ids are typed 404s.
    let (status, text) = http_get(addr, "/v1/campaigns/c9999");
    assert_eq!(status, 404, "{text}");
    let (status, _) = http_post(addr, "/v1/campaigns/c9999/preempt");
    assert_eq!(status, 404);
    drop(handle);
}

#[test]
fn preempt_stops_dispatch_and_resume_finishes() {
    let dir = scratch("preempt");
    let (handle, _recorder) = boot(|c| {
        c.jobs = 2;
        c.campaign_inflight = 1;
        c.campaign_dir = dir.clone();
    });
    let addr = handle.addr();

    let (status, text) = http_post(
        addr,
        "/v1/campaigns?tenant=t1&chips=i7-45&workloads=jess,db,mcf",
    );
    assert_eq!(status, 202, "{text}");
    let id = campaign_id(body_of(&text));

    let (status, text) = http_post(addr, &format!("/v1/campaigns/{id}/preempt"));
    assert_eq!(status, 200, "{text}");
    assert!(body_of(&text).contains("\"state\":\"preempted\""), "{text}");

    // Preempting twice is a conflict, as is resuming a running one later.
    let (status, text) = http_post(addr, &format!("/v1/campaigns/{id}/preempt"));
    assert_eq!(status, 409, "{text}");

    // While preempted, no new cells dispatch; give the scheduler a beat
    // and check the campaign is not done.
    std::thread::sleep(Duration::from_millis(200));
    let (_, text) = http_get(addr, &format!("/v1/campaigns/{id}"));
    assert!(
        body_of(&text).contains("\"state\":\"preempted\""),
        "preempt must stick: {text}"
    );

    let (status, text) = http_post(addr, &format!("/v1/campaigns/{id}/resume"));
    assert_eq!(status, 200, "{text}");
    wait_for_state(addr, &id, "done", Duration::from_secs(120));

    // The journal recorded the lifecycle decisions.
    let journal = fs::read_to_string(dir.join(format!("{id}.jsonl"))).expect("journal");
    assert!(journal.contains("\"event\":\"preempted\""), "{journal}");
    assert!(journal.contains("\"event\":\"resumed\""), "{journal}");
    drop(handle);
}

#[test]
fn drained_server_resumes_campaign_to_byte_identical_artifact() {
    let reference_dir = scratch("resume-reference");
    let resumed_dir = scratch("resume-interrupted");

    // Reference: an uninterrupted run of the same grid.
    let spec = "/v1/campaigns?tenant=ref&chips=i7-45,atom-45&workloads=jess,db";
    let (handle, _recorder) = boot(|c| {
        c.jobs = 4;
        c.campaign_dir = reference_dir.clone();
    });
    let addr = handle.addr();
    let (status, text) = http_post(addr, spec);
    assert_eq!(status, 202, "{text}");
    let ref_id = campaign_id(body_of(&text));
    wait_for_state(addr, &ref_id, "done", Duration::from_secs(120));
    let reference =
        fs::read(reference_dir.join(format!("{ref_id}.result.json"))).expect("reference artifact");
    drop(handle);

    // Interrupted: same grid, but the server drains mid-campaign. The
    // single-cell inflight cap and one worker keep the campaign slow
    // enough that the drain lands in the middle.
    let (handle, _recorder) = boot(|c| {
        c.jobs = 1;
        c.campaign_inflight = 1;
        c.campaign_dir = resumed_dir.clone();
    });
    let addr = handle.addr();
    let (status, text) = http_post(addr, spec);
    assert_eq!(status, 202, "{text}");
    let id = campaign_id(body_of(&text));
    assert_eq!(id, ref_id, "fresh dirs must mint the same sequence");
    // Let at least one cell land in the journal, then drain.
    let until = Instant::now() + Duration::from_secs(120);
    loop {
        let (_, text) = http_get(addr, &format!("/v1/campaigns/{id}"));
        if !body_of(&text).contains("\"done\":0") {
            break;
        }
        assert!(Instant::now() < until, "no cell ever finished: {text}");
        std::thread::sleep(Duration::from_millis(25));
    }
    let (status, _) = http_post(addr, "/admin/drain");
    assert_eq!(status, 200);
    handle.wait();

    // Restart over the same directory with resume enabled: the journal
    // brings finished cells back without re-measuring, the scheduler
    // finishes the rest, and the artifact is byte-identical.
    let (handle, recorder) = boot(|c| {
        c.jobs = 4;
        c.campaign_dir = resumed_dir.clone();
        c.resume_campaigns = true;
    });
    let addr = handle.addr();
    wait_for_state(addr, &id, "done", Duration::from_secs(120));
    let resumed = fs::read(resumed_dir.join(format!("{id}.result.json"))).expect("artifact");
    assert_eq!(
        resumed, reference,
        "resumed artifact must be byte-identical to the uninterrupted run"
    );
    // The journal shows the restart, and the preload actually happened.
    let journal = fs::read_to_string(resumed_dir.join(format!("{id}.jsonl"))).expect("journal");
    assert!(journal.contains("\"event\":\"boot-resume\""), "{journal}");
    let snapshot = recorder.snapshot().render();
    assert!(
        snapshot.contains("campaign.preloaded_cells"),
        "resume must preload journaled cells: {snapshot}"
    );
    drop(handle);
}

#[test]
fn campaign_methods_and_unknown_paths_are_typed_errors() {
    let dir = scratch("methods");
    let (handle, _recorder) = boot(|c| {
        c.campaign_dir = dir.clone();
    });
    let addr = handle.addr();

    // GET on the collection lists; POST on a status path is a 405/404.
    let (status, text) = http_get(addr, "/v1/campaigns");
    assert_eq!(status, 200, "{text}");
    assert!(body_of(&text).contains("\"campaigns\":[]"), "{text}");
    let (status, _) = http_post(addr, "/v1/campaigns/c0001/unknown-verb");
    assert_eq!(status, 404);
    let (status, _) = http_get(addr, "/v1/campaignsgarbage");
    assert_eq!(status, 404);
    drop(handle);
}
