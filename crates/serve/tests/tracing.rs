//! Integration tests for distributed tracing across the shard
//! topology: real sockets, real span stores, in-process handles so the
//! tests can read the persisted span tables directly.
//!
//! The guarantees under test:
//!
//! 1. **Hostile headers** -- a malformed/truncated/adversarial
//!    `x-lhr-trace` header is counted and ignored; the request is
//!    served normally, never a 400 or a panic.
//! 2. **Propagation** -- a traced request through the router yields one
//!    stitched multi-process tree: router request + attempt spans,
//!    backend request span, and the simulation spans under it, with
//!    correct parentage, retrievable from `GET /v1/trace/<id>`.
//! 3. **Hedging** -- the two legs of a hedged request share one trace
//!    id but record distinct attempt span ids.
//! 4. **Coalescing** -- a follower's mark links the leader's trace id.

use std::net::SocketAddr;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

use lhr_core::{Harness, Runner, ShardedLruCache};
use lhr_obs::context;
use lhr_serve::shard::RouterConfig;
use lhr_serve::{start_router, HealthState, ServerConfig, ServerHandle, Telemetry};
use lhr_store::SamplingConfig;

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "lhr-tracing-{}-{name}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn quick_harness(telemetry: &Telemetry) -> Harness {
    let runner = Runner::fast()
        .with_cell_cache(Arc::new(ShardedLruCache::new(256, 4)))
        .with_observer(telemetry.obs());
    Harness::new(runner).with_workloads(Harness::quick_set())
}

/// Boots a backend with a span store armed; returns the handle and its
/// telemetry (for reading counters and the span table).
fn boot_backend(store: &str) -> (ServerHandle, Telemetry) {
    let telemetry = Telemetry::default()
        .with_span_store(temp_dir(store), store, SamplingConfig::default())
        .expect("open span store");
    let harness = quick_harness(&telemetry);
    let handle =
        lhr_serve::start(ServerConfig::default(), harness, telemetry.clone()).expect("bind");
    (handle, telemetry)
}

fn http_get(addr: SocketAddr, target: &str) -> (u16, String) {
    let resp = lhr_bench::httpc::get(addr, target, Duration::from_secs(120)).expect("exchange");
    (resp.status, resp.body_str().into_owned())
}

fn traced_get(addr: SocketAddr, target: &str, header: &str) -> (u16, String) {
    let resp = lhr_bench::httpc::get_with_headers(
        addr,
        target,
        &[("x-lhr-trace", header)],
        Duration::from_secs(120),
    )
    .expect("exchange");
    (resp.status, resp.body_str().into_owned())
}

fn wait_until(what: &str, check: impl Fn() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while Instant::now() < deadline {
        if check() {
            return;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    panic!("timed out waiting for {what}");
}

#[test]
fn hostile_trace_headers_are_counted_never_rejected() {
    let (backend, telemetry) = boot_backend("backend-hostile");
    let addr = backend.addr();
    let hostile = [
        "garbage",
        "00-",
        "00-00000000000000000000000000000000-0000000000000008-01", // zero trace
        "00-zzzz0000000000000000000000000007-0000000000000008-01", // non-hex
        "00-00000000000000000000000000000007-0000000000000008",    // truncated
        "01-00000000000000000000000000000007-0000000000000008-01", // bad version
    ];
    for (i, h) in hostile.iter().enumerate() {
        let (status, body) = traced_get(addr, "/healthz", h);
        assert_eq!(status, 200, "hostile header {h:?} must not break serving: {body}");
        let snap = telemetry.memory.snapshot();
        assert_eq!(
            snap.counter("trace.header_invalid"),
            (i + 1) as u64,
            "each hostile header increments the counter exactly once"
        );
    }

    // A valid header joins the trace instead: no counter increment, and
    // the request's spans persist under the caller's trace id.
    let trace = context::next_trace_id();
    let header = context::render_trace_header(trace, 0, 1);
    let (status, _) = traced_get(addr, "/healthz", &header);
    assert_eq!(status, 200);
    let snap = telemetry.memory.snapshot();
    assert_eq!(snap.counter("trace.header_invalid"), hostile.len() as u64);
    let spans = telemetry.spans.as_ref().expect("span store armed");
    wait_until("joined trace persisted", || {
        !spans.table().trace_rows(trace).is_empty()
    });
    let rows = spans.table().trace_rows(trace);
    assert!(
        rows.iter().any(|r| r.name == "serve.request./healthz"),
        "{rows:?}"
    );
    drop(backend);
}

#[test]
fn routed_cell_yields_one_stitched_multi_process_tree() {
    let (b0, _t0) = boot_backend("backend-stitch-0");
    let (b1, _t1) = boot_backend("backend-stitch-1");
    let router_telemetry = Telemetry::default()
        .with_span_store(temp_dir("router-stitch"), "router", SamplingConfig::default())
        .expect("open span store");
    let config = RouterConfig {
        backends: vec![b0.addr(), b1.addr()],
        route_cache: 0,
        probe_interval: Duration::from_millis(50),
        probe_timeout: Duration::from_millis(250),
        connect_timeout: Duration::from_millis(150),
        retry_backoff: Duration::from_millis(5),
        ..RouterConfig::default()
    };
    let router = start_router(config, None, router_telemetry.clone()).expect("bind router");
    wait_until("all backends Up", || {
        router
            .state()
            .backends()
            .iter()
            .all(|b| b.health() == HealthState::Up)
    });
    let addr = router.addr();

    // A cold cell through the router, under a client-minted trace id.
    let trace = context::next_trace_id();
    let header = context::render_trace_header(trace, 0, 1);
    let (status, body) = traced_get(addr, "/v1/cell?chip=i7-45&workload=jess", &header);
    assert_eq!(status, 200, "{body}");

    // The router's fragment lands once the request span closes; the
    // backend's landed before it answered.
    wait_until("router fragment persisted", || {
        router_telemetry
            .spans
            .as_ref()
            .expect("armed")
            .table()
            .trace_rows(trace)
            .iter()
            .any(|r| r.name.starts_with("router.request"))
    });

    // One stitched tree from the router: router spans + the backend's
    // fragment (fetched live), with the simulation spans nested inside.
    let (status, tree) = http_get(addr, &format!("/v1/trace/{trace:032x}"));
    assert_eq!(status, 200, "{tree}");
    for needle in [
        "router.request./v1/cell",
        "router.attempt",
        "serve.request./v1/cell",
        "runner.measure",
    ] {
        assert!(tree.contains(needle), "missing {needle} in {tree}");
    }
    // Correct parentage: exactly one root (the router's request span).
    assert_eq!(
        tree.matches("\"parent\":0,").count(),
        1,
        "one coherent tree, zero orphan fragments: {tree}"
    );

    // The search endpoint surfaces the trace too.
    let (status, list) = http_get(addr, "/v1/traces?name=router.request&limit=10");
    assert_eq!(status, 200, "{list}");
    assert!(list.contains(&format!("{trace:032x}")), "{list}");

    // Unknown and malformed ids are typed errors.
    let (status, _) = http_get(addr, "/v1/trace/00000000000000000000000000000000");
    assert_eq!(status, 404);
    let (status, _) = http_get(addr, "/v1/trace/not-hex");
    assert_eq!(status, 400);

    drop(router);
    drop(b0);
    drop(b1);
}

#[test]
fn hedged_legs_share_the_trace_but_not_the_span_id() {
    let (b0, _t0) = boot_backend("backend-hedge-0");
    let (b1, _t1) = boot_backend("backend-hedge-1");
    let router_telemetry = Telemetry::default()
        .with_span_store(temp_dir("router-hedge"), "router", SamplingConfig::default())
        .expect("open span store");
    // Backends never leave Suspect (up_after unreachable), and the
    // hedge fires immediately: every forwarded request races two legs.
    let config = RouterConfig {
        backends: vec![b0.addr(), b1.addr()],
        route_cache: 0,
        probe_interval: Duration::from_millis(50),
        probe_timeout: Duration::from_millis(250),
        connect_timeout: Duration::from_millis(150),
        hedge_after: Duration::from_millis(0),
        health: lhr_serve::shard::HealthPolicy {
            up_after: u32::MAX,
            ..Default::default()
        },
        ..RouterConfig::default()
    };
    let router = start_router(config, None, router_telemetry.clone()).expect("bind router");
    let addr = router.addr();

    let trace = context::next_trace_id();
    let header = context::render_trace_header(trace, 0, 1);
    let (status, body) = traced_get(addr, "/v1/cell?chip=i7-45&workload=jess", &header);
    assert_eq!(status, 200, "{body}");

    // Both legs eventually close and the fragment flushes. The losing
    // leg can outlive the request span, so poll.
    let spans = router_telemetry.spans.as_ref().expect("armed");
    wait_until("both hedge legs persisted", || {
        spans
            .table()
            .trace_rows(trace)
            .iter()
            .filter(|r| r.name == "router.attempt")
            .count()
            >= 2
    });
    let attempts: Vec<_> = spans
        .table()
        .trace_rows(trace)
        .into_iter()
        .filter(|r| r.name == "router.attempt")
        .collect();
    assert!(attempts.len() >= 2, "{attempts:?}");
    assert!(
        attempts.iter().all(|r| r.trace == trace),
        "one trace id across the race: {attempts:?}"
    );
    let mut ids: Vec<u64> = attempts.iter().map(|r| r.span).collect();
    ids.sort_unstable();
    ids.dedup();
    assert_eq!(
        ids.len(),
        attempts.len(),
        "each leg mints its own span id: {attempts:?}"
    );

    drop(router);
    drop(b0);
    drop(b1);
}
