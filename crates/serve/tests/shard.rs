//! Integration tests for the shard tier: real backends and a real
//! router on real sockets, all in-process so tests can inspect health
//! FSMs and breakers directly.
//!
//! The guarantees under test:
//!
//! 1. **Routing** -- requests proxy through to backends with status,
//!    body, and typed errors intact, and repeated queries are
//!    byte-identical (response cache or not).
//! 2. **Failover** -- killing a backend never surfaces a 5xx: the
//!    ring's fallback candidate answers while probes walk the victim
//!    Up -> Suspect -> Down.
//! 3. **Graceful degradation** -- with every backend unreachable the
//!    router computes answers on its local fallback harness, or sheds
//!    an honest 503 when booted without one.
//! 4. **Topology** -- `POST /admin/backends` swaps the backend set
//!    live; joiners start Suspect and probe their way Up.
//! 5. **Aggregation** -- `/healthz` reports per-backend health,
//!    breaker, and probe latency; campaigns are a typed 501.

use std::net::{SocketAddr, TcpListener};
use std::sync::Arc;
use std::time::{Duration, Instant};

use lhr_core::{Harness, Runner, ShardedLruCache};
use lhr_obs::MemoryRecorder;
use lhr_serve::shard::{RouterConfig, RouterHandle};
use lhr_serve::{start_router, HealthState, ServerConfig, ServerHandle, Telemetry};

fn quick_harness(telemetry: &Telemetry) -> Harness {
    let runner = Runner::fast()
        .with_cell_cache(Arc::new(ShardedLruCache::new(256, 4)))
        .with_observer(telemetry.obs());
    Harness::new(runner).with_workloads(Harness::quick_set())
}

fn boot_backend() -> ServerHandle {
    let telemetry = Telemetry::default();
    let harness = quick_harness(&telemetry);
    lhr_serve::start(ServerConfig::default(), harness, telemetry).expect("bind backend")
}

/// A router tuned for tests: fast probes, tight connect timeout so a
/// dead backend costs milliseconds, not the kernel's default.
fn router_config(backends: Vec<SocketAddr>, route_cache: usize) -> RouterConfig {
    RouterConfig {
        backends,
        route_cache,
        probe_interval: Duration::from_millis(50),
        probe_timeout: Duration::from_millis(250),
        connect_timeout: Duration::from_millis(150),
        retry_backoff: Duration::from_millis(5),
        ..RouterConfig::default()
    }
}

fn boot_router(
    config: RouterConfig,
    with_fallback: bool,
) -> (RouterHandle, Arc<MemoryRecorder>) {
    let telemetry = Telemetry::default();
    let recorder = Arc::clone(&telemetry.memory);
    let fallback = with_fallback.then(|| quick_harness(&telemetry));
    let handle = start_router(config, fallback, telemetry).expect("bind router");
    (handle, recorder)
}

fn http_get(addr: SocketAddr, target: &str) -> (u16, String) {
    let raw = format!("GET {target} HTTP/1.1\r\nHost: t\r\n\r\n");
    let resp = lhr_bench::httpc::exchange(addr, raw.as_bytes(), Duration::from_secs(120))
        .expect("http exchange");
    (resp.status, resp.body_str().into_owned())
}

fn http_post(addr: SocketAddr, target: &str) -> (u16, String) {
    let raw = format!("POST {target} HTTP/1.1\r\nHost: t\r\nContent-Length: 0\r\n\r\n");
    let resp = lhr_bench::httpc::exchange(addr, raw.as_bytes(), Duration::from_secs(120))
        .expect("http exchange");
    (resp.status, resp.body_str().into_owned())
}

/// Polls `check` until it returns true or five seconds pass.
fn wait_until(what: &str, check: impl Fn() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(5);
    while Instant::now() < deadline {
        if check() {
            return;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    panic!("timed out waiting for {what}");
}

fn wait_all_up(router: &RouterHandle) {
    wait_until("all backends Up", || {
        let backends = router.state().backends();
        !backends.is_empty() && backends.iter().all(|b| b.health() == HealthState::Up)
    });
}

/// An address that refuses connections immediately: bind, read the
/// port, drop the listener.
fn dead_addr() -> SocketAddr {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    drop(listener);
    addr
}

#[test]
fn router_proxies_queries_and_typed_errors_byte_identically() {
    let b0 = boot_backend();
    let b1 = boot_backend();
    let (router, recorder) = boot_router(router_config(vec![b0.addr(), b1.addr()], 64), false);
    wait_all_up(&router);
    let addr = router.addr();

    // Probes have converged: the aggregate is ok, every member is up
    // with a closed breaker and a measured probe latency.
    let (status, body) = http_get(addr, "/healthz");
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"status\":\"ok\""), "{body}");
    assert!(body.contains("\"role\":\"router\""), "{body}");
    assert_eq!(body.matches("\"health\":\"up\"").count(), 2, "{body}");
    assert_eq!(body.matches("\"breaker\":\"closed\"").count(), 2, "{body}");
    assert!(!body.contains("\"last_probe_ms\":null"), "{body}");

    // A measured cell proxies through; a repeat is byte-identical
    // (the second hit comes from the router's response cache).
    let target = "/v1/cell?chip=i7-45&workload=jess";
    let (status, first) = http_get(addr, target);
    assert_eq!(status, 200, "{first}");
    assert!(first.contains("\"workload\":\"jess\""));
    let (status, second) = http_get(addr, target);
    assert_eq!(status, 200);
    assert_eq!(first, second, "routed responses must be byte-identical");
    let snap = recorder.snapshot();
    assert!(snap.counter("router.cache_hits") >= 1, "{}", snap.render());

    // Typed validation errors pass through untouched; they settle the
    // request, so they never trip failover.
    let (status, body) = http_get(addr, "/v1/cell?chip=z80&workload=jess");
    assert_eq!(status, 404, "{body}");
    assert!(body.contains("unknown_chip"), "{body}");
    let (status, body) = http_get(addr, "/v1/findings");
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"holds\""), "{body}");

    // Campaigns journal on a single node: the router says so, typed.
    let (status, body) = http_post(addr, "/v1/campaigns?tenant=t&chips=i7-45");
    assert_eq!(status, 501, "{body}");
    assert!(body.contains("campaigns_not_sharded"), "{body}");

    drop(router);
    drop(b0);
    drop(b1);
}

#[test]
fn killing_a_backend_never_surfaces_a_5xx() {
    let b0 = boot_backend();
    let b1 = boot_backend();
    let victim_addr = b0.addr();
    // No response cache: every request must genuinely route.
    let (router, recorder) = boot_router(router_config(vec![b0.addr(), b1.addr()], 0), false);
    wait_all_up(&router);
    let addr = router.addr();

    // Kill one backend mid-service (drop drains it and closes the
    // listener). From the first request after the kill, the ring's
    // other candidate must answer -- health probes take a few rounds
    // to notice, so early requests exercise the io-error retry path.
    drop(b0);
    let workloads = ["jess", "db", "mcf", "hmmer", "gobmk", "avrora"];
    for w in &workloads {
        let (status, body) = http_get(addr, &format!("/v1/cell?chip=i7-45&workload={w}"));
        assert!(status < 500, "workload {w} saw a {status}: {body}");
        assert_eq!(status, 200, "workload {w}: {body}");
    }

    // The probes converge on the truth: victim Down, survivor Up.
    wait_until("victim marked Down", || {
        router
            .state()
            .backends()
            .iter()
            .any(|b| b.addr() == victim_addr && b.health() == HealthState::Down)
    });
    let (status, body) = http_get(addr, "/healthz");
    assert_eq!(status, 200);
    assert!(body.contains("\"status\":\"degraded\""), "{body}");
    assert!(body.contains("\"health\":\"down\""), "{body}");

    // With the victim Down, routing skips it outright and keeps serving.
    let (status, _) = http_get(addr, "/v1/cell?chip=atom-45&workload=jess");
    assert_eq!(status, 200);
    let snap = recorder.snapshot();
    assert!(
        snap.counter("router.backend_io_errors") + snap.counter("router.skip_down") >= 1,
        "the kill must be visible in the counters: {}",
        snap.render()
    );

    drop(router);
    drop(b1);
}

#[test]
fn local_fallback_serves_when_every_backend_is_unreachable() {
    let (router, recorder) = boot_router(router_config(vec![dead_addr(), dead_addr()], 0), true);
    let addr = router.addr();

    let (status, body) = http_get(addr, "/v1/cell?chip=i7-45&workload=jess");
    assert_eq!(status, 200, "local fallback must answer: {body}");
    assert!(body.contains("\"workload\":\"jess\""), "{body}");
    let snap = recorder.snapshot();
    assert!(snap.counter("router.local_fallbacks") >= 1, "{}", snap.render());

    // The aggregate is honest about it: degraded, not ok.
    let (_, body) = http_get(addr, "/healthz");
    assert!(body.contains("\"status\":\"degraded\""), "{body}");
    assert!(body.contains("\"local_fallback\":true"), "{body}");
    drop(router);
}

#[test]
fn without_fallback_an_unreachable_fleet_sheds_an_honest_503() {
    let (router, recorder) = boot_router(router_config(vec![dead_addr()], 0), false);
    let addr = router.addr();

    // Let the probes mark the only backend Down first.
    wait_until("backend Down", || {
        router
            .state()
            .backends()
            .iter()
            .all(|b| b.health() == HealthState::Down)
    });
    let (status, body) = http_get(addr, "/v1/cell?chip=i7-45&workload=jess");
    assert_eq!(status, 503, "{body}");
    assert!(body.contains("overloaded"), "{body}");
    let snap = recorder.snapshot();
    assert!(snap.counter("router.no_backend_503") >= 1, "{}", snap.render());

    let (_, body) = http_get(addr, "/healthz");
    assert!(body.contains("\"status\":\"down\""), "{body}");
    drop(router);
}

#[test]
fn admin_backends_swaps_the_topology_live() {
    let b0 = boot_backend();
    let (router, recorder) = boot_router(router_config(vec![b0.addr()], 0), false);
    wait_all_up(&router);
    let addr = router.addr();

    // A joiner enters Suspect ("parole, not trust") and probes its way
    // Up; the kept member keeps its Up state across the swap.
    let b1 = boot_backend();
    let (status, body) = http_post(
        addr,
        &format!("/admin/backends?set={},{}", b0.addr(), b1.addr()),
    );
    assert_eq!(status, 200, "{body}");
    let kept = router
        .state()
        .backends()
        .iter()
        .find(|b| b.addr() == b0.addr())
        .expect("kept backend")
        .health();
    assert_eq!(kept, HealthState::Up, "a kept backend keeps its health");
    wait_all_up(&router);
    let (_, body) = http_get(addr, "/healthz");
    assert_eq!(body.matches("\"health\":\"up\"").count(), 2, "{body}");

    // Queries keep working through the new topology.
    let (status, _) = http_get(addr, "/v1/cell?chip=i7-45&workload=jess");
    assert_eq!(status, 200);
    let snap = recorder.snapshot();
    assert!(snap.counter("router.topology_changes") >= 1, "{}", snap.render());

    // Validation is typed; the topology is untouched on a bad set.
    let (status, body) = http_post(addr, "/admin/backends");
    assert_eq!(status, 400, "{body}");
    assert!(body.contains("missing_param"), "{body}");
    let (status, body) = http_post(addr, "/admin/backends?set=not-an-addr");
    assert_eq!(status, 400, "{body}");
    assert!(body.contains("bad_backend"), "{body}");
    assert_eq!(router.state().backends().len(), 2);

    // Drain over HTTP, then wait() returns.
    let (status, body) = http_post(addr, "/admin/drain");
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"draining\":true"), "{body}");
    router.wait();
    drop(b0);
    drop(b1);
}
