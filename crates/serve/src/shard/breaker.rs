//! Per-backend circuit breakers.
//!
//! A breaker watches *request* outcomes (the health prober watches
//! probe outcomes -- both feed it): enough consecutive failures open
//! the circuit and the backend stops receiving traffic immediately,
//! without waiting for the next probe round. After a cooldown the
//! breaker goes half-open and admits exactly one trial request; the
//! trial's outcome closes the circuit or re-opens it for another
//! cooldown.
//!
//! ```text
//!        open_after consecutive failures
//!   Closed ────────────────────────────► Open
//!      ▲                                  │ cooldown elapses
//!      │ trial succeeds                   ▼
//!      └──────────────────────────── HalfOpen ──► Open (trial fails)
//! ```

use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Breaker tuning.
#[derive(Debug, Clone, Copy)]
pub struct BreakerPolicy {
    /// Consecutive request failures that open the circuit.
    pub open_after: u32,
    /// How long an open circuit refuses traffic before going half-open.
    pub cooldown: Duration,
}

impl Default for BreakerPolicy {
    fn default() -> Self {
        Self {
            open_after: 3,
            cooldown: Duration::from_millis(500),
        }
    }
}

/// The externally visible breaker state (for `/healthz`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Traffic flows.
    Closed,
    /// Traffic refused until the cooldown elapses.
    Open,
    /// One trial request is in flight; everyone else is refused.
    HalfOpen,
}

impl BreakerState {
    /// The lowercase wire name used in `/healthz`.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half_open",
        }
    }
}

#[derive(Debug)]
enum Inner {
    Closed { consecutive_failures: u32 },
    Open { until: Instant },
    HalfOpen { trial_in_flight: bool },
}

/// A thread-safe circuit breaker for one backend.
#[derive(Debug)]
pub struct CircuitBreaker {
    policy: BreakerPolicy,
    inner: Mutex<Inner>,
}

impl CircuitBreaker {
    /// A closed (healthy) breaker.
    #[must_use]
    pub fn new(policy: BreakerPolicy) -> Self {
        Self {
            policy,
            inner: Mutex::new(Inner::Closed {
                consecutive_failures: 0,
            }),
        }
    }

    /// Whether a request may proceed right now. An open breaker whose
    /// cooldown has elapsed transitions to half-open and admits the
    /// caller as the single trial.
    pub fn allow(&self) -> bool {
        let mut inner = self.inner.lock().expect("breaker lock");
        match &mut *inner {
            Inner::Closed { .. } => true,
            Inner::Open { until } => {
                if Instant::now() >= *until {
                    *inner = Inner::HalfOpen {
                        trial_in_flight: true,
                    };
                    true
                } else {
                    false
                }
            }
            Inner::HalfOpen { trial_in_flight } => {
                if *trial_in_flight {
                    false
                } else {
                    *trial_in_flight = true;
                    true
                }
            }
        }
    }

    /// Reports a successful request (or probe): closes the circuit.
    pub fn record_success(&self) {
        let mut inner = self.inner.lock().expect("breaker lock");
        *inner = Inner::Closed {
            consecutive_failures: 0,
        };
    }

    /// Reports a failed request (or probe): counts toward opening, or
    /// re-opens a half-open circuit for another cooldown.
    pub fn record_failure(&self) {
        let mut inner = self.inner.lock().expect("breaker lock");
        match &mut *inner {
            Inner::Closed {
                consecutive_failures,
            } => {
                *consecutive_failures += 1;
                if *consecutive_failures >= self.policy.open_after {
                    *inner = Inner::Open {
                        until: Instant::now() + self.policy.cooldown,
                    };
                }
            }
            Inner::HalfOpen { .. } => {
                *inner = Inner::Open {
                    until: Instant::now() + self.policy.cooldown,
                };
            }
            Inner::Open { .. } => {}
        }
    }

    /// Current state (an elapsed cooldown reads as half-open).
    #[must_use]
    pub fn state(&self) -> BreakerState {
        let inner = self.inner.lock().expect("breaker lock");
        match &*inner {
            Inner::Closed { .. } => BreakerState::Closed,
            Inner::Open { until } => {
                if Instant::now() >= *until {
                    BreakerState::HalfOpen
                } else {
                    BreakerState::Open
                }
            }
            Inner::HalfOpen { .. } => BreakerState::HalfOpen,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn breaker(cooldown: Duration) -> CircuitBreaker {
        CircuitBreaker::new(BreakerPolicy {
            open_after: 2,
            cooldown,
        })
    }

    #[test]
    fn opens_on_consecutive_failures_only() {
        let b = breaker(Duration::from_secs(60));
        b.record_failure();
        b.record_success(); // streak broken
        b.record_failure();
        assert!(b.allow(), "one failure after a success must not open");
        b.record_failure();
        assert_eq!(b.state(), BreakerState::Open);
        assert!(!b.allow());
    }

    #[test]
    fn half_open_admits_exactly_one_trial() {
        let b = breaker(Duration::from_millis(0));
        b.record_failure();
        b.record_failure();
        // Cooldown of zero: immediately half-open.
        assert!(b.allow(), "the single trial");
        assert!(!b.allow(), "everyone else waits on the trial");
        b.record_success();
        assert_eq!(b.state(), BreakerState::Closed);
        assert!(b.allow());
    }

    #[test]
    fn failed_trial_reopens_for_another_cooldown() {
        let b = breaker(Duration::from_millis(0));
        b.record_failure();
        b.record_failure();
        assert!(b.allow());
        b.record_failure();
        // Re-opened; with a zero cooldown the next allow is a new trial.
        assert!(b.allow());
        assert!(!b.allow());
    }

    #[test]
    fn open_circuit_refuses_until_cooldown() {
        let b = breaker(Duration::from_millis(50));
        b.record_failure();
        b.record_failure();
        assert!(!b.allow());
        std::thread::sleep(Duration::from_millis(60));
        assert!(b.allow(), "cooldown elapsed: half-open trial admitted");
    }
}
