//! The consistent-hash ring that assigns shard keys to backends.
//!
//! Each backend owns [`VNODES`] points on a 64-bit ring; a key routes
//! to the first point clockwise from its hash. Virtual nodes smooth
//! the load (each backend's share concentrates toward 1/N), and the
//! point-ownership construction gives the minimal-movement property:
//! adding or removing one backend only remaps the keys that fall in
//! the arcs that backend owns -- about 1/N of the keyspace -- while
//! every other key keeps its assignment. Both properties are locked in
//! by proptests (`tests/ring_props.rs`).

/// Virtual nodes per backend. 128 keeps the per-backend share within
/// a comfortable bound of fair (see the balance proptest) at a ring
/// size that is still trivially searchable by binary search.
pub const VNODES: usize = 128;

/// A consistent-hash ring over backends `0..n`.
#[derive(Debug, Clone)]
pub struct HashRing {
    /// `(point, backend)` sorted by point.
    points: Vec<(u64, usize)>,
    backends: usize,
}

impl HashRing {
    /// Builds the ring for `backends` members (ids `0..backends`).
    /// An empty ring is legal: [`HashRing::route`] just yields nothing.
    #[must_use]
    pub fn new(backends: usize) -> Self {
        let mut points = Vec::with_capacity(backends * VNODES);
        for backend in 0..backends {
            for vnode in 0..VNODES {
                // The point depends only on (backend, vnode), never on
                // ring membership, so survivors keep their arcs when
                // the member set changes.
                let point = mix64(((backend as u64) << 32) | vnode as u64);
                points.push((point, backend));
            }
        }
        points.sort_unstable();
        Self { points, backends }
    }

    /// Number of backends on the ring.
    #[must_use]
    pub fn backends(&self) -> usize {
        self.backends
    }

    /// The backends responsible for `key_hash`, primary first, then up
    /// to `replicas - 1` *distinct* fallbacks in ring order. Yields
    /// fewer when the ring has fewer members.
    #[must_use]
    pub fn route(&self, key_hash: u64, replicas: usize) -> Vec<usize> {
        let mut owners = Vec::with_capacity(replicas.min(self.backends));
        if self.points.is_empty() || replicas == 0 {
            return owners;
        }
        let start = self
            .points
            .partition_point(|&(p, _)| p < key_hash)
            // partition_point == len means the key wraps to point 0.
            % self.points.len();
        for i in 0..self.points.len() {
            let (_, backend) = self.points[(start + i) % self.points.len()];
            if !owners.contains(&backend) {
                owners.push(backend);
                if owners.len() == replicas.min(self.backends) {
                    break;
                }
            }
        }
        owners
    }

    /// The primary backend for `key_hash` (`None` on an empty ring).
    #[must_use]
    pub fn primary(&self, key_hash: u64) -> Option<usize> {
        self.route(key_hash, 1).first().copied()
    }
}

/// FNV-1a over `bytes`, finished with an avalanche mix: the shard-key
/// hash for strings (endpoint + parameters).
#[must_use]
pub fn hash_key(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    mix64(h)
}

/// SplitMix64's finalizer: a cheap full-avalanche bijection, so nearby
/// inputs (sequential vnode ids, similar fingerprints) land far apart
/// on the ring.
#[must_use]
pub fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_single_rings_behave() {
        let empty = HashRing::new(0);
        assert!(empty.route(42, 2).is_empty());
        assert_eq!(empty.primary(42), None);
        let one = HashRing::new(1);
        assert_eq!(one.route(42, 3), vec![0], "one backend owns everything");
    }

    #[test]
    fn replicas_are_distinct_and_ring_ordered() {
        let ring = HashRing::new(5);
        for key in 0..200u64 {
            let owners = ring.route(mix64(key), 3);
            assert_eq!(owners.len(), 3);
            let mut dedup = owners.clone();
            dedup.sort_unstable();
            dedup.dedup();
            assert_eq!(dedup.len(), 3, "replicas must be distinct backends");
        }
    }

    #[test]
    fn routing_is_deterministic() {
        let a = HashRing::new(4);
        let b = HashRing::new(4);
        for key in 0..500u64 {
            assert_eq!(a.route(hash_key(&key.to_le_bytes()), 2), b.route(hash_key(&key.to_le_bytes()), 2));
        }
    }

    #[test]
    fn survivors_keep_their_keys_when_a_backend_leaves() {
        // The minimal-movement property in its simplest form; the
        // proptests quantify the moved fraction.
        let before = HashRing::new(4);
        let after = HashRing::new(3); // backend 3 left
        for key in 0..2000u64 {
            let h = mix64(key);
            let owner = before.primary(h).unwrap();
            if owner != 3 {
                assert_eq!(after.primary(h), Some(owner), "key {key} moved needlessly");
            }
        }
    }
}
