//! Multi-process shard mode: a front router over N backend servers.
//!
//! The ROADMAP's scale-out story: one `lhr_router` process
//! consistent-hashes structural config/workload fingerprints onto N
//! `lhr-serve` backends over the same std-TCP/HTTP-1.1 substrate the
//! backends already speak. Each backend is an independent failure
//! domain: the router health-probes it with hysteresis ([`health`]),
//! wraps it in a circuit breaker ([`breaker`]), hedges requests to the
//! next ring replica when it looks sick, and -- when a whole shard is
//! gone -- fails over or falls back to local simulation rather than
//! surfacing the crash to a client ([`router`]).
//!
//! The pieces are layered so each is testable alone:
//!
//! * [`ring`] -- the pure consistent-hash ring (balance and minimal
//!   key movement are proptested);
//! * [`health`] -- the pure Up/Suspect/Down hysteresis FSM;
//! * [`breaker`] -- the Closed/Open/HalfOpen circuit breaker;
//! * [`router`] -- the serving loop tying them together, plus the
//!   `/healthz` aggregation and per-backend RED metrics.
//!
//! See DESIGN.md ("Shard topology and failure domains") for the state
//! machines and EXPERIMENTS.md for the rolling-restart drill.

pub mod breaker;
pub mod health;
pub mod ring;
pub mod router;

pub use breaker::{BreakerPolicy, BreakerState, CircuitBreaker};
pub use health::{HealthFsm, HealthPolicy, HealthState};
pub use ring::{hash_key, HashRing, VNODES};
pub use router::{start_router, Backend, RouterConfig, RouterHandle, RouterState};
