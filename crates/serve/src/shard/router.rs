//! The front router: consistent-hashes shard keys onto N backend
//! `lhr-serve` processes and absorbs their failures.
//!
//! ```text
//!                    ┌─ probe /healthz ──► HealthFsm (Up/Suspect/Down)
//!   client ──► router┤
//!                    └─ forward ──► ring candidates, skipping Down and
//!                       open-breaker backends; Suspect primaries get a
//!                       hedged twin on the next replica; exhausted
//!                       candidates fall back to local simulation
//! ```
//!
//! The robustness contract: a backend crash is **never** surfaced to a
//! client as a 5xx. Failures feed the per-backend circuit breaker
//! (fast, per-request) and the health prober (slow, background); the
//! forwarding loop walks the key's replica set, retries with bounded
//! backoff, and -- when every candidate is refused or broken -- either
//! computes the answer locally on the router's own harness or sheds
//! with an honest `503 + Retry-After`. Deliberate backend sheds (503)
//! pass through untouched: admission control is a policy decision, not
//! a failure.
//!
//! Routing keys are *structural*: `/v1/cell` hashes the configuration
//! fingerprint (the same one backends key their cell caches on) mixed
//! with the workload name, so a given cell always lands on the same
//! backend and its cache. The other endpoints hash their canonical
//! parameter strings. Campaign endpoints are deliberately not sharded
//! (a campaign journals on one node); they answer `501`.

use std::collections::HashMap;
use std::collections::VecDeque;
use std::io::{self, BufReader};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use lhr_bench::httpc::{self, HttpResponse};
use lhr_core::cache::config_fingerprint;
use lhr_core::Harness;
use lhr_obs::context::{self, Ctx};
use lhr_obs::{prom, push_json_number, push_json_string, Obs};
use lhr_store::SpanRow;

use crate::campaigns::Orchestrator;
use crate::coalesce::FlightBoard;
use crate::handlers::{self, build_config, chip_by_token, endpoint_tag, ServeState};
use crate::http::{read_request, HttpError, Method, Request, Response};
use crate::queue::{BoundedQueue, PushError, ShedPool};
use crate::shard::breaker::{BreakerPolicy, BreakerState, CircuitBreaker};
use crate::shard::health::{HealthFsm, HealthPolicy, HealthState};
use crate::shard::ring::{hash_key, mix64, HashRing};
use crate::signal;
use crate::telemetry::Telemetry;

/// Tuning knobs for one router instance.
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Bind address; port 0 picks a free port (tests).
    pub addr: String,
    /// Initial backend set (`POST /admin/backends` changes it live).
    pub backends: Vec<SocketAddr>,
    /// Worker threads serving parsed requests.
    pub jobs: usize,
    /// Bounded queue depth between accept and the workers.
    pub queue_depth: usize,
    /// Client-socket read timeout (slow-loris guard).
    pub read_timeout: Duration,
    /// Backend connect timeout: a dead backend costs this, not the
    /// kernel's default.
    pub connect_timeout: Duration,
    /// Backend response timeout; must cover a cold cell.
    pub forward_timeout: Duration,
    /// Delay between health-probe rounds.
    pub probe_interval: Duration,
    /// Per-probe connect+read budget.
    pub probe_timeout: Duration,
    /// How long a Suspect primary gets before its hedged twin launches.
    pub hedge_after: Duration,
    /// Base backoff between candidate attempts (doubles per attempt).
    pub retry_backoff: Duration,
    /// Ring candidates walked per request (primary + fallbacks).
    pub replicas: usize,
    /// Router-side response cache entries for 200s on routable GETs
    /// (0 disables). Cells are deterministic, so a cached body is
    /// byte-identical to a recomputed one by construction.
    pub route_cache: usize,
    /// Health hysteresis thresholds.
    pub health: HealthPolicy,
    /// Circuit-breaker thresholds.
    pub breaker: BreakerPolicy,
    /// Per-request budget when computing a local fallback.
    pub max_cell: Duration,
    /// Directory `/v1/artifacts` serves on local fallback.
    pub artifact_dir: PathBuf,
    /// Writer threads in the 503-shed pool.
    pub shed_writers: usize,
    /// Pending-shed backlog.
    pub shed_depth: usize,
}

impl Default for RouterConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_owned(),
            backends: Vec::new(),
            jobs: 4,
            queue_depth: 64,
            read_timeout: Duration::from_secs(5),
            connect_timeout: Duration::from_millis(250),
            forward_timeout: Duration::from_secs(40),
            probe_interval: Duration::from_millis(200),
            probe_timeout: Duration::from_millis(500),
            hedge_after: Duration::from_millis(25),
            retry_backoff: Duration::from_millis(25),
            replicas: 2,
            route_cache: 512,
            health: HealthPolicy::default(),
            breaker: BreakerPolicy::default(),
            max_cell: Duration::from_secs(30),
            artifact_dir: PathBuf::from("repro_out"),
            shed_writers: 2,
            shed_depth: 32,
        }
    }
}

/// One backend as the router sees it: address, health FSM, breaker,
/// and the latency of the last completed probe.
#[derive(Debug)]
pub struct Backend {
    addr: SocketAddr,
    health: Mutex<HealthFsm>,
    breaker: CircuitBreaker,
    /// Microseconds; u64::MAX until the first probe completes.
    last_probe_micros: AtomicU64,
}

impl Backend {
    fn new(addr: SocketAddr, health: HealthPolicy, breaker: BreakerPolicy) -> Self {
        Self {
            addr,
            health: Mutex::new(HealthFsm::new(health)),
            breaker: CircuitBreaker::new(breaker),
            last_probe_micros: AtomicU64::new(u64::MAX),
        }
    }

    /// The backend's address.
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Current health state.
    #[must_use]
    pub fn health(&self) -> HealthState {
        self.health.lock().expect("health lock").state()
    }

    /// Current breaker state.
    #[must_use]
    pub fn breaker_state(&self) -> BreakerState {
        self.breaker.state()
    }
}

/// An immutable snapshot of the backend set + its ring; topology
/// changes swap the whole Arc so in-flight requests keep a consistent
/// view.
#[derive(Debug)]
struct Topology {
    backends: Vec<Arc<Backend>>,
    ring: HashRing,
}

impl Topology {
    fn build(
        addrs: &[SocketAddr],
        keep: &[Arc<Backend>],
        health: HealthPolicy,
        breaker: BreakerPolicy,
    ) -> Self {
        let backends = addrs
            .iter()
            .map(|&addr| {
                keep.iter()
                    .find(|b| b.addr == addr)
                    .cloned()
                    .unwrap_or_else(|| Arc::new(Backend::new(addr, health, breaker)))
            })
            .collect::<Vec<_>>();
        let ring = HashRing::new(backends.len());
        Self { backends, ring }
    }
}

/// A bounded FIFO cache of rendered 200 bodies for routable GETs.
#[derive(Debug)]
struct RouteCache {
    capacity: usize,
    map: HashMap<String, CachedBody>,
    order: VecDeque<String>,
}

#[derive(Debug, Clone)]
struct CachedBody {
    content_type: &'static str,
    body: Vec<u8>,
}

impl RouteCache {
    fn new(capacity: usize) -> Self {
        Self {
            capacity,
            map: HashMap::new(),
            order: VecDeque::new(),
        }
    }

    fn get(&self, key: &str) -> Option<CachedBody> {
        self.map.get(key).cloned()
    }

    fn put(&mut self, key: String, value: CachedBody) {
        if self.capacity == 0 || self.map.contains_key(&key) {
            return;
        }
        if self.map.len() >= self.capacity {
            if let Some(evicted) = self.order.pop_front() {
                self.map.remove(&evicted);
            }
        }
        self.order.push_back(key.clone());
        self.map.insert(key, value);
    }
}

/// Shared router state.
#[derive(Debug)]
pub struct RouterState {
    config: RouterConfig,
    topology: Mutex<Arc<Topology>>,
    cache: Mutex<RouteCache>,
    /// The router's own simulation state for graceful degradation;
    /// `None` when booted without a fallback harness.
    fallback: Option<Arc<ServeState>>,
    obs: Obs,
    telemetry: Telemetry,
    draining: AtomicBool,
    stopped: AtomicBool,
    started: Instant,
}

impl RouterState {
    /// The current backend snapshot (tests inspect health/breakers).
    #[must_use]
    pub fn backends(&self) -> Vec<Arc<Backend>> {
        self.topology().backends.clone()
    }

    fn topology(&self) -> Arc<Topology> {
        Arc::clone(&self.topology.lock().expect("topology lock"))
    }

    /// Replaces the backend set: kept addresses keep their health and
    /// breaker state, new ones start `Suspect` and must probe their
    /// way to `Up`.
    pub fn set_backends(&self, addrs: &[SocketAddr]) {
        let mut slot = self.topology.lock().expect("topology lock");
        let next = Topology::build(
            addrs,
            &slot.backends,
            self.config.health,
            self.config.breaker,
        );
        *slot = Arc::new(next);
        self.obs.counter("router.topology_changes", 1);
    }
}

/// A running router; dropping it (or [`RouterHandle::wait`] after a
/// drain) shuts it down gracefully.
#[derive(Debug)]
pub struct RouterHandle {
    addr: SocketAddr,
    state: Arc<RouterState>,
    accept: Option<JoinHandle<()>>,
}

impl RouterHandle {
    /// The bound address (resolves port 0).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared state.
    #[must_use]
    pub fn state(&self) -> &Arc<RouterState> {
        &self.state
    }

    /// Requests a drain, same as `POST /admin/drain`.
    pub fn drain(&self) {
        self.state.draining.store(true, Ordering::Relaxed);
    }

    /// Blocks until the router has fully drained.
    pub fn wait(mut self) {
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
    }
}

impl Drop for RouterHandle {
    fn drop(&mut self) {
        self.drain();
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
    }
}

/// Boots a router. `fallback` arms graceful degradation: when every
/// candidate backend for a key is unreachable, the router computes the
/// answer on this harness instead of surfacing a 5xx. The harness's
/// runner should carry a bounded cell cache and an observer from
/// `telemetry.obs()`, exactly like a backend's.
///
/// # Errors
///
/// Propagates the bind failure.
pub fn start_router(
    config: RouterConfig,
    fallback: Option<Harness>,
    telemetry: Telemetry,
) -> io::Result<RouterHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;
    let obs = telemetry.obs();
    let fallback = fallback.map(|harness| {
        Arc::new(ServeState {
            harness,
            board: FlightBoard::new(32),
            obs: obs.clone(),
            telemetry: Telemetry::default(),
            artifact_dir: config.artifact_dir.clone(),
            max_cell: config.max_cell,
            campaigns: Orchestrator::new(
                std::env::temp_dir().join(format!("lhr-router-fallback-{}", std::process::id())),
                1,
            ),
            store: None,
            draining: AtomicBool::new(false),
            started: Instant::now(),
        })
    });
    let topology = Topology::build(&config.backends, &[], config.health, config.breaker);
    let state = Arc::new(RouterState {
        cache: Mutex::new(RouteCache::new(config.route_cache)),
        topology: Mutex::new(Arc::new(topology)),
        fallback,
        obs,
        telemetry,
        draining: AtomicBool::new(false),
        stopped: AtomicBool::new(false),
        started: Instant::now(),
        config,
    });

    // The health prober: one round immediately (a fresh topology is
    // all-Suspect until proven), then every probe_interval.
    let probe_state = Arc::clone(&state);
    let prober = std::thread::Builder::new()
        .name("lhr-router-prober".to_owned())
        .spawn(move || {
            while !probe_state.stopped.load(Ordering::Relaxed) {
                probe_round(&probe_state);
                let until = Instant::now() + probe_state.config.probe_interval;
                while Instant::now() < until && !probe_state.stopped.load(Ordering::Relaxed) {
                    std::thread::sleep(Duration::from_millis(5));
                }
            }
        })
        .expect("spawn prober");

    let queue = Arc::new(BoundedQueue::<TcpStream>::new(state.config.queue_depth));
    let workers: Vec<JoinHandle<()>> = (0..state.config.jobs.max(1))
        .map(|i| {
            let queue = Arc::clone(&queue);
            let state = Arc::clone(&state);
            std::thread::Builder::new()
                .name(format!("lhr-router-worker-{i}"))
                .spawn(move || {
                    while let Some(stream) = queue.pop() {
                        let survived =
                            catch_unwind(AssertUnwindSafe(|| serve_connection(&state, stream)));
                        if survived.is_err() {
                            state.obs.counter("router.worker_panics_contained", 1);
                        }
                    }
                })
                .expect("spawn router worker")
        })
        .collect();

    let accept_state = Arc::clone(&state);
    let accept_queue = Arc::clone(&queue);
    let shed_pool = ShedPool::new(state.config.shed_writers, state.config.shed_depth);
    let accept = std::thread::Builder::new()
        .name("lhr-router-accept".to_owned())
        .spawn(move || {
            accept_loop(&listener, &accept_state, &accept_queue, &shed_pool);
            accept_queue.close();
            for w in workers {
                let _ = w.join();
            }
            shed_pool.shutdown();
            accept_state.stopped.store(true, Ordering::Relaxed);
            let _ = prober.join();
            accept_state.obs.counter("router.drained", 1);
            accept_state.telemetry.timeseries.seal_all();
            accept_state.obs.flush();
        })
        .expect("spawn router accept loop");

    Ok(RouterHandle {
        addr,
        state,
        accept: Some(accept),
    })
}

fn accept_loop(
    listener: &TcpListener,
    state: &Arc<RouterState>,
    queue: &Arc<BoundedQueue<TcpStream>>,
    shed_pool: &ShedPool,
) {
    // Adaptive poll, same scheme as the backend accept loop: yield for
    // a short hot window after each accept so request trains are picked
    // up in microseconds, sleep once the listener goes idle.
    let mut hot_until = Instant::now();
    loop {
        if state.draining.load(Ordering::Relaxed) || signal::drain_requested() {
            return;
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                hot_until = Instant::now() + Duration::from_millis(2);
                let _ = stream.set_nonblocking(false);
                let _ = stream.set_read_timeout(Some(state.config.read_timeout));
                let _ = stream.set_nodelay(true);
                state.obs.counter("router.accepted", 1);
                match queue.try_push(stream) {
                    Ok(()) => {}
                    Err(PushError::Full(stream) | PushError::Closed(stream)) => {
                        state.obs.counter("router.shed_503", 1);
                        let response = if queue.is_closed() {
                            Response::overloaded("router draining", 5)
                        } else {
                            Response::overloaded("router queue full", 1)
                        };
                        if !shed_pool.try_shed(stream, response) {
                            state.obs.counter("router.shed_dropped", 1);
                        }
                    }
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                // Same floor-on-latency argument as the backend accept
                // loop -- and the router sits in front of a second
                // accept loop, so its poll interval compounds.
                if Instant::now() < hot_until {
                    std::thread::yield_now();
                } else {
                    std::thread::sleep(Duration::from_micros(200));
                }
            }
            Err(_) => std::thread::sleep(Duration::from_micros(200)),
        }
    }
}

/// One probe round: `GET /healthz` against every backend, outcomes fed
/// to both the health FSM and the breaker, states exported as gauges.
fn probe_round(state: &Arc<RouterState>) {
    let topo = state.topology();
    for backend in &topo.backends {
        let started = Instant::now();
        let outcome = httpc::exchange_timeouts(
            backend.addr,
            b"GET /healthz HTTP/1.1\r\nHost: lhr-router\r\n\r\n",
            state.config.probe_timeout,
            state.config.probe_timeout,
        );
        let healthy = matches!(&outcome, Ok(resp) if resp.status == 200);
        let mut fsm = backend.health.lock().expect("health lock");
        let new_state = if healthy {
            backend
                .last_probe_micros
                .store(started.elapsed().as_micros() as u64, Ordering::Relaxed);
            backend.breaker.record_success();
            fsm.on_success()
        } else {
            // A failed probe counts toward the breaker too: traffic
            // stops flowing before the FSM reaches Down.
            backend.breaker.record_failure();
            fsm.on_failure()
        };
        drop(fsm);
        state.obs.gauge(
            &format!("router.backend_state.{}", backend.addr),
            match new_state {
                HealthState::Up => 0.0,
                HealthState::Suspect => 1.0,
                HealthState::Down => 2.0,
            },
        );
        if healthy {
            state.obs.histogram(
                &format!("router.probe_latency.{}", backend.addr),
                started.elapsed().as_secs_f64(),
            );
        }
    }
}

/// Serves one client connection: parse, route, record RED, respond.
fn serve_connection(state: &Arc<RouterState>, stream: TcpStream) {
    let started = Instant::now();
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    match read_request(&mut reader) {
        Ok(req) => {
            // Join the caller's distributed trace (`x-lhr-trace`) or
            // mint a fresh one -- the router is the usual trace root.
            // Hostile headers are counted, never rejected. Everything
            // downstream on this thread -- candidate walks, hedged
            // exchanges, the local-fallback harness -- inherits this
            // context, so fallback simulations record the *client's*
            // request id, not a fresh one.
            let ctx = match req.header("x-lhr-trace").map(context::parse_trace_header) {
                Some(Some((trace, parent, _flags))) => Ctx {
                    request: context::next_request_id(),
                    parent,
                    trace,
                },
                header => {
                    if header.is_some() {
                        state.obs.counter("trace.header_invalid", 1);
                    }
                    Ctx {
                        request: context::next_request_id(),
                        parent: 0,
                        trace: context::next_trace_id(),
                    }
                }
            };
            context::with_ctx(ctx, || {
                state.obs.counter("router.requests", 1);
                let tag = router_tag(&req);
                let span_name = format!("router.request.{tag}");
                let mut span = state.obs.span(&span_name);
                let response = catch_unwind(AssertUnwindSafe(|| route(state, &req)))
                    .unwrap_or_else(|_| {
                        Response::error(500, "handler_panic", "router handler panicked")
                    });
                if response.status >= 500 {
                    span.fail();
                }
                span.end();
                if response.status >= 400 {
                    state
                        .obs
                        .counter(&format!("router.http_{}", response.status), 1);
                }
                let _ = response.write_to(&mut writer);
                let latency = started.elapsed().as_secs_f64();
                let is_error = response.status >= 500;
                state.obs.counter(&format!("router.req.{tag}"), 1);
                if is_error {
                    state.obs.counter(&format!("router.err.{tag}"), 1);
                }
                state
                    .obs
                    .histogram(&format!("router.latency.{tag}"), latency);
                state.telemetry.slo.observe(is_error, latency, &state.obs);
            });
        }
        Err(HttpError::BadRequest(detail)) => {
            state.obs.counter("router.http_400", 1);
            let _ = Response::error(400, "bad_request", &detail).write_to(&mut writer);
        }
        Err(HttpError::TimedOut) => {
            state.obs.counter("router.timeout", 1);
            let _ = Response::error(408, "request_timeout", "idle connection timed out")
                .write_to(&mut writer);
        }
        Err(HttpError::Disconnected) => {
            state.obs.counter("router.disconnects", 1);
        }
    }
}

fn router_tag(req: &Request) -> &'static str {
    if req.path == "/admin/backends" {
        "/admin/backends"
    } else {
        endpoint_tag(req)
    }
}

/// Dispatches one parsed request.
fn route(state: &Arc<RouterState>, req: &Request) -> Response {
    match (req.method, req.path.as_str()) {
        (Method::Get, "/healthz") => healthz(state),
        (Method::Get, "/metrics" | "/v1/metrics") => metrics(state, req),
        (Method::Get, "/v1/metrics/timeseries") => {
            let mut body = state.telemetry.timeseries.snapshot().render_json();
            body.push('\n');
            Response::ok_json(body)
        }
        (Method::Post, "/admin/drain") => {
            state.draining.store(true, Ordering::Relaxed);
            state.obs.counter("router.drain_requests", 1);
            Response::ok_json("{\"draining\":true}\n".to_owned())
        }
        (Method::Post, "/admin/backends") => admin_backends(state, req),
        (Method::Get, "/v1/traces") => router_traces(state, req),
        (Method::Get, p) if p.starts_with("/v1/trace/") => {
            router_trace(state, &p["/v1/trace/".len()..], req)
        }
        (_, "/admin/drain" | "/admin/backends") => Response::error(
            405,
            "method_not_allowed",
            "admin endpoints are POST-only",
        ),
        (_, p) if p.starts_with("/v1/campaigns") => Response::error(
            501,
            "campaigns_not_sharded",
            "campaigns journal on a single node; submit to a backend directly",
        ),
        (Method::Get, p)
            if matches!(
                p,
                "/v1/cell" | "/v1/sweep" | "/v1/pareto" | "/v1/findings" | "/v1/query"
            ) || p.starts_with("/v1/artifacts") =>
        {
            forward(state, req)
        }
        (Method::Post, _) => Response::error(
            405,
            "method_not_allowed",
            "only /admin/drain and /admin/backends accept POST",
        ),
        (Method::Get, _) => Response::error(
            404,
            "not_found",
            "unknown endpoint; see /healthz, /metrics, /v1/metrics, /v1/metrics/timeseries, \
             /v1/cell, /v1/sweep, /v1/pareto, /v1/findings, /v1/query, /v1/artifacts, \
             /v1/traces, /v1/trace/<id>, POST /admin/drain, POST /admin/backends",
        ),
    }
}

// ---------------------------------------------------------------------
// Shard keys and forwarding
// ---------------------------------------------------------------------

/// The canonical target string for a request: percent-encoded path plus
/// query in arrival order. Doubles as the forwarded request target and
/// the response-cache key.
fn canonical_target(req: &Request) -> String {
    let mut target = encode_path(&req.path);
    for (i, (k, v)) in req.query.iter().enumerate() {
        target.push(if i == 0 { '?' } else { '&' });
        target.push_str(&encode_component(k));
        target.push('=');
        target.push_str(&encode_component(v));
    }
    target
}

fn encode_path(path: &str) -> String {
    path.split('/')
        .map(encode_component)
        .collect::<Vec<_>>()
        .join("/")
}

fn encode_component(s: impl AsRef<str>) -> String {
    use std::fmt::Write as _;
    let s = s.as_ref();
    let mut out = String::with_capacity(s.len());
    for b in s.bytes() {
        match b {
            b'A'..=b'Z' | b'a'..=b'z' | b'0'..=b'9' | b'-' | b'_' | b'.' | b'~' => {
                out.push(b as char);
            }
            _ => {
                let _ = write!(out, "%{b:02X}");
            }
        }
    }
    out
}

/// The shard key for a routable request. `/v1/cell` keys on the
/// structural configuration fingerprint (identical to the backends'
/// cell-cache keying) mixed with the workload name; everything else
/// keys on its canonical parameters. Unparseable cell parameters fall
/// back to hashing the whole target -- the chosen backend will render
/// the 400/404 itself.
fn shard_key(req: &Request) -> u64 {
    if req.path == "/v1/cell" {
        let structural = req.param("chip").and_then(chip_by_token).and_then(|id| {
            build_config(id, req.param("config").unwrap_or("stock"), req.param("turbo"))
                .ok()
                .map(|config| {
                    let workload = req.param("workload").unwrap_or("");
                    mix64(config_fingerprint(&config) ^ hash_key(workload.as_bytes()))
                })
        });
        if let Some(key) = structural {
            return key;
        }
    }
    hash_key(canonical_target(req).as_bytes())
}

/// Converts a validated backend response into a client response,
/// preserving status, content type, and the `Retry-After` hint.
fn to_response(resp: &HttpResponse) -> Response {
    Response {
        status: resp.status,
        content_type: static_content_type(resp.content_type()),
        body: resp.body.clone(),
        retry_after: resp
            .retry_after_secs()
            .map(|s| u32::try_from(s).unwrap_or(u32::MAX)),
    }
}

/// Maps a backend's `Content-Type` onto the router's `&'static` set.
fn static_content_type(ct: Option<&str>) -> &'static str {
    match ct {
        Some(s) if s == prom::CONTENT_TYPE => prom::CONTENT_TYPE,
        Some(s) if s.starts_with("application/json") => "application/json",
        Some(s) if s.starts_with("text/csv") => "text/csv",
        Some(s) if s.starts_with("text/plain") => "text/plain; charset=utf-8",
        _ => "application/octet-stream",
    }
}

/// Whether a backend response settles the request (anything that is
/// not a backend-side failure). `503` is a deliberate shed -- policy,
/// not failure -- and passes through with its `Retry-After`.
fn settles(resp: &HttpResponse) -> bool {
    resp.status < 500 || resp.status == 503
}

/// One exchange with one backend, with breaker feedback and the
/// per-backend RED series (`router.backend.{req,err}.<addr>` counters,
/// `router.backend.latency.<addr>` histogram) recorded.
///
/// Each exchange is one `router.attempt` span, and the forwarded
/// request carries `x-lhr-trace` with *this attempt's* span id as the
/// parent -- the backend's request span links under the exact attempt
/// that reached it, so a retried or hedged request stitches into one
/// tree with the failed attempts marked. With no recorder armed the
/// span is inert (id 0), no trace is in force, and the forwarded bytes
/// are identical to the untraced build.
fn exchange_recorded(
    state: &RouterState,
    backend: &Backend,
    target: &str,
) -> Result<HttpResponse, httpc::ClientError> {
    let mut span = state.obs.span("router.attempt");
    let trace = context::current_trace();
    let raw = if trace == 0 {
        format!("GET {target} HTTP/1.1\r\nHost: lhr-router\r\n\r\n")
    } else {
        format!(
            "GET {target} HTTP/1.1\r\nHost: lhr-router\r\nx-lhr-trace: {}\r\n\r\n",
            context::render_trace_header(trace, span.id(), 1)
        )
    };
    let started = Instant::now();
    let outcome = httpc::exchange_timeouts(
        backend.addr,
        raw.as_bytes(),
        state.config.connect_timeout,
        state.config.forward_timeout,
    );
    state
        .obs
        .counter(&format!("router.backend.req.{}", backend.addr), 1);
    state.obs.histogram(
        &format!("router.backend.latency.{}", backend.addr),
        started.elapsed().as_secs_f64(),
    );
    match &outcome {
        Ok(resp) if settles(resp) => backend.breaker.record_success(),
        Ok(_) | Err(_) => {
            state
                .obs
                .counter(&format!("router.backend.err.{}", backend.addr), 1);
            backend.breaker.record_failure();
            span.fail();
        }
    }
    span.end();
    outcome
}

/// Forwards a routable request: response cache, then the ring's
/// candidates with skipping/hedging/backoff, then graceful degradation.
fn forward(state: &Arc<RouterState>, req: &Request) -> Response {
    let target = canonical_target(req);
    // Query results aggregate each backend's live store, so unlike cell
    // and artifact bodies they change as cells land: never cache them.
    let cacheable = req.path != "/v1/query";
    if cacheable && state.config.route_cache > 0 {
        if let Some(hit) = state.cache.lock().expect("cache lock").get(&target) {
            state.obs.counter("router.cache_hits", 1);
            return Response {
                status: 200,
                content_type: hit.content_type,
                body: hit.body,
                retry_after: None,
            };
        }
    }
    let key = shard_key(req);
    let topo = state.topology();
    let candidates = topo.ring.route(key, state.config.replicas.max(1));
    let mut attempt = 0u32;
    for (i, &idx) in candidates.iter().enumerate() {
        let backend = &topo.backends[idx];
        let health = backend.health();
        if health == HealthState::Down {
            state.obs.counter("router.skip_down", 1);
            continue;
        }
        if !backend.breaker.allow() {
            state.obs.counter("router.skip_breaker", 1);
            continue;
        }
        if attempt > 0 {
            // Bounded backoff between candidate attempts: base * 2^(n-1),
            // capped so a pathological chain cannot stack seconds.
            let backoff = state
                .config
                .retry_backoff
                .saturating_mul(1 << (attempt - 1).min(3));
            std::thread::sleep(backoff.min(Duration::from_millis(200)));
        }
        attempt += 1;
        // A Suspect primary gets a hedged twin on the next candidate:
        // first settling response wins, and the slow path stops costing
        // tail latency exactly when the backend is most likely sick.
        let hedge_mate = candidates
            .get(i + 1)
            .map(|&j| Arc::clone(&topo.backends[j]))
            .filter(|b| b.health() != HealthState::Down && health == HealthState::Suspect);
        let outcome = match hedge_mate {
            Some(mate) => hedged_exchange(state, Arc::clone(backend), mate, &target),
            None => exchange_recorded(state, backend, &target),
        };
        match outcome {
            Ok(resp) if settles(&resp) => {
                if cacheable && resp.status == 200 && state.config.route_cache > 0 {
                    state.cache.lock().expect("cache lock").put(
                        target.clone(),
                        CachedBody {
                            content_type: static_content_type(resp.content_type()),
                            body: resp.body.clone(),
                        },
                    );
                }
                return to_response(&resp);
            }
            Ok(_) => {
                state.obs.counter("router.backend_5xx", 1);
            }
            Err(_) => {
                state.obs.counter("router.backend_io_errors", 1);
            }
        }
    }
    degrade(state, req)
}

/// Runs `primary` with a hedged twin on `mate`: the twin launches if
/// the primary has not settled within `hedge_after`, and the first
/// settling response wins. Both exchanges record their own breaker and
/// RED feedback (a losing twin still teaches the breaker).
///
/// The request's trace context is re-established on each leg's thread,
/// so both legs carry the *same* trace id but mint *distinct*
/// `router.attempt` span ids -- a stitched tree shows the race, not a
/// merged blur.
fn hedged_exchange(
    state: &Arc<RouterState>,
    primary: Arc<Backend>,
    mate: Arc<Backend>,
    target: &str,
) -> Result<HttpResponse, httpc::ClientError> {
    let (tx, rx) = mpsc::channel();
    let target: Arc<str> = Arc::from(target);
    let ctx = context::capture();
    let spawn = |backend: Arc<Backend>, tx: mpsc::Sender<_>| {
        let state = Arc::clone(state);
        let target = Arc::clone(&target);
        std::thread::spawn(move || {
            let outcome = context::with_ctx(ctx, || exchange_recorded(&state, &backend, &target));
            let _ = tx.send(outcome);
        });
    };
    spawn(primary, tx.clone());
    let first = rx.recv_timeout(state.config.hedge_after);
    match first {
        Ok(Ok(resp)) if settles(&resp) => Ok(resp),
        Ok(first_outcome) => {
            // The primary answered badly; the mate is now a retry, not
            // a hedge -- launch it and take whatever settles.
            state.obs.counter("router.hedges", 1);
            spawn(mate, tx);
            match rx.recv_timeout(state.config.forward_timeout) {
                Ok(second) if second.as_ref().map(settles).unwrap_or(false) => second,
                _ => first_outcome,
            }
        }
        Err(_) => {
            // Primary still pending past hedge_after: race the twin.
            state.obs.counter("router.hedges", 1);
            spawn(mate, tx);
            let deadline = Instant::now() + state.config.forward_timeout;
            let mut last = None;
            for _ in 0..2 {
                let left = deadline.saturating_duration_since(Instant::now());
                match rx.recv_timeout(left) {
                    Ok(outcome) => {
                        if outcome.as_ref().map(settles).unwrap_or(false) {
                            state.obs.counter("router.hedge_wins", 1);
                            return outcome;
                        }
                        last = Some(outcome);
                    }
                    Err(_) => break,
                }
            }
            last.unwrap_or_else(|| {
                Err(httpc::ClientError::Io(io::Error::other(
                    "hedged exchange timed out on both legs",
                )))
            })
        }
    }
}

/// Graceful degradation once every candidate is gone: compute locally
/// when a fallback harness is armed, otherwise shed honestly. Never a
/// crash-derived 5xx.
fn degrade(state: &Arc<RouterState>, req: &Request) -> Response {
    match &state.fallback {
        Some(fb) => {
            state.obs.counter("router.local_fallbacks", 1);
            // The fallback runs on this thread under the client
            // request's context (installed by `serve_connection`), so
            // its simulation spans carry the client's request and trace
            // ids -- not a fresh id -- and nest under this span.
            let mut span = state.obs.span("router.fallback");
            let response = handlers::route(fb, req);
            if response.status >= 500 {
                span.fail();
            }
            span.end();
            response
        }
        None => {
            state.obs.counter("router.no_backend_503", 1);
            Response::overloaded("no healthy backend for shard; retry shortly", 1)
        }
    }
}

// ---------------------------------------------------------------------
// Router-local endpoints
// ---------------------------------------------------------------------

/// `/healthz`: aggregated per-backend state. `status` is `ok` when
/// every backend is Up, `degraded` while any is Suspect/Down but the
/// fleet (or fallback) can still serve, `down` when nothing can.
fn healthz(state: &Arc<RouterState>) -> Response {
    let topo = state.topology();
    let mut up = 0usize;
    let mut suspect = 0usize;
    let mut down = 0usize;
    for b in &topo.backends {
        match b.health() {
            HealthState::Up => up += 1,
            HealthState::Suspect => suspect += 1,
            HealthState::Down => down += 1,
        }
    }
    let routable = up + suspect;
    let status = if !topo.backends.is_empty() && down == 0 && suspect == 0 {
        "ok"
    } else if routable > 0 || state.fallback.is_some() {
        "degraded"
    } else {
        "down"
    };
    let mut body = String::with_capacity(512);
    body.push_str("{\"status\":");
    push_json_string(&mut body, status);
    body.push_str(",\"role\":\"router\",\"uptime_seconds\":");
    push_json_number(&mut body, state.started.elapsed().as_secs_f64());
    body.push_str(",\"draining\":");
    body.push_str(if state.draining.load(Ordering::Relaxed) {
        "true"
    } else {
        "false"
    });
    body.push_str(",\"local_fallback\":");
    body.push_str(if state.fallback.is_some() {
        "true"
    } else {
        "false"
    });
    // Telemetry loss is surfaced here, not buried in /metrics: a
    // router silently dropping trace lines or span batches is exactly
    // the failure an operator debugging via traces cannot see.
    body.push_str(",\"trace_write_errors\":");
    push_json_number(&mut body, state.telemetry.trace_write_errors() as f64);
    body.push_str(",\"span_append_errors\":");
    push_json_number(&mut body, state.telemetry.span_append_errors() as f64);
    body.push_str(",\"up\":");
    push_json_number(&mut body, up as f64);
    body.push_str(",\"suspect\":");
    push_json_number(&mut body, suspect as f64);
    body.push_str(",\"down\":");
    push_json_number(&mut body, down as f64);
    body.push_str(",\"backends\":[");
    for (i, b) in topo.backends.iter().enumerate() {
        if i > 0 {
            body.push(',');
        }
        body.push_str("{\"addr\":");
        push_json_string(&mut body, &b.addr.to_string());
        body.push_str(",\"health\":");
        push_json_string(&mut body, b.health().name());
        body.push_str(",\"breaker\":");
        push_json_string(&mut body, b.breaker_state().name());
        body.push_str(",\"last_probe_ms\":");
        let micros = b.last_probe_micros.load(Ordering::Relaxed);
        if micros == u64::MAX {
            body.push_str("null");
        } else {
            push_json_number(&mut body, micros as f64 / 1000.0);
        }
        body.push('}');
    }
    body.push_str("]}\n");
    Response::ok_json(body)
}

/// `/metrics` and `/v1/metrics` for the router's own telemetry, with
/// the same Prometheus content negotiation as a backend.
fn metrics(state: &Arc<RouterState>, req: &Request) -> Response {
    let snap = state.telemetry.snapshot();
    let wants_prometheus = req.param("format") == Some("prometheus")
        || req
            .header("accept")
            .is_some_and(|accept| accept.contains("text/plain"));
    if wants_prometheus {
        Response {
            status: 200,
            content_type: prom::CONTENT_TYPE,
            body: prom::render_prometheus(&snap).into_bytes(),
            retry_after: None,
        }
    } else {
        Response::ok_text(snap.render())
    }
}

/// `POST /admin/backends?set=host:port,host:port,...` -- replaces the
/// backend set live. Restarted backends come back on fresh ports (the
/// killed listener's port sits in TIME_WAIT), so rolling restarts are
/// an admin update, not a config reload.
fn admin_backends(state: &Arc<RouterState>, req: &Request) -> Response {
    let Some(set) = req.param("set") else {
        return Response::error(400, "missing_param", "set=addr,addr,... is required");
    };
    let mut addrs = Vec::new();
    for part in set.split(',').filter(|p| !p.is_empty()) {
        match part.parse::<SocketAddr>() {
            Ok(addr) => addrs.push(addr),
            Err(e) => {
                return Response::error(400, "bad_backend", &format!("{part:?}: {e}"));
            }
        }
    }
    state.set_backends(&addrs);
    healthz(state)
}

// ---------------------------------------------------------------------
// Distributed-trace endpoints
// ---------------------------------------------------------------------

/// `GET /v1/traces`: searches the *router's* span table. Every client
/// request passes through the router, so router-side summaries cover
/// the whole topology; the per-process detail lives behind
/// `/v1/trace/<id>`, which aggregates the backends.
fn router_traces(state: &Arc<RouterState>, req: &Request) -> Response {
    let Some(spans) = state.telemetry.spans.as_ref() else {
        return Response::error(
            503,
            "span_store_unavailable",
            "this router runs without a span store; boot with --span-store to enable trace search",
        );
    };
    let query = lhr_store::SpanQuery {
        name: req.param("name").unwrap_or("").to_owned(),
        errors_only: req.param("status") == Some("error"),
        min_dur_ns: req
            .param("min_dur_ns")
            .and_then(|v| v.parse().ok())
            .unwrap_or(0),
        limit: req.param("limit").and_then(|v| v.parse().ok()).unwrap_or(50),
    };
    let mut body = lhr_store::summaries_json(&spans.table().search(&query));
    body.push('\n');
    Response::ok_json(body)
}

/// `GET /v1/trace/<32-hex-id>`: the stitched *multi-process* tree. The
/// router merges its own span fragment with every reachable backend's
/// (`GET /v1/trace/<id>?format=fragment` against each), then stitches
/// with clock-skew alignment -- each backend fragment is shifted into
/// the router's timeline using the send/recv bounds of the attempt
/// span that parented it. Down backends are skipped: a trace is served
/// from whatever fragments survive, never blocked on a dead process.
fn router_trace(state: &Arc<RouterState>, id: &str, req: &Request) -> Response {
    let Some(spans) = state.telemetry.spans.as_ref() else {
        return Response::error(
            503,
            "span_store_unavailable",
            "this router runs without a span store; boot with --span-store to enable trace lookup",
        );
    };
    let Ok(trace) = u128::from_str_radix(id.trim(), 16) else {
        return Response::error(400, "bad_trace_id", "trace id must be hex (32 digits)");
    };
    let mut rows = spans.table().trace_rows(trace);
    let topo = state.topology();
    for backend in &topo.backends {
        if backend.health() == HealthState::Down {
            continue;
        }
        let raw = format!(
            "GET /v1/trace/{trace:032x}?format=fragment HTTP/1.1\r\nHost: lhr-router\r\n\r\n"
        );
        match httpc::exchange_timeouts(
            backend.addr,
            raw.as_bytes(),
            state.config.connect_timeout,
            state.config.forward_timeout,
        ) {
            Ok(resp) if resp.status == 200 => {
                if let Ok(body) = std::str::from_utf8(&resp.body) {
                    if let Some(fragment) = lhr_store::parse_fragment(body) {
                        merge_fragment(&mut rows, fragment);
                    }
                }
            }
            // 404/503 mean "no fragment there" -- normal for a trace
            // that never touched this backend or one without a store.
            Ok(_) | Err(_) => {}
        }
    }
    if rows.is_empty() {
        return Response::error(404, "no_such_trace", "no persisted spans for that trace id");
    }
    let mut body = if req.param("format") == Some("fragment") {
        lhr_store::fragment_json(trace, &rows)
    } else {
        lhr_store::tree_json(trace, &lhr_store::stitch(&rows))
    };
    body.push('\n');
    Response::ok_json(body)
}

/// Merges a backend fragment into the accumulated row set, dropping
/// exact duplicates (two backends sharing one span directory would
/// otherwise double every span).
fn merge_fragment(rows: &mut Vec<SpanRow>, fragment: Vec<SpanRow>) {
    for row in fragment {
        let dup = rows
            .iter()
            .any(|r| r.proc == row.proc && r.span == row.span && r.start_ns == row.start_ns);
        if !dup {
            rows.push(row);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn get_req(target: &str) -> Request {
        let raw = format!("GET {target} HTTP/1.1\r\nHost: t\r\n\r\n");
        read_request(&mut BufReader::new(raw.as_bytes())).expect("parse")
    }

    #[test]
    fn canonical_target_round_trips_the_query() {
        let req = get_req("/v1/cell?chip=i7-45&config=4C2T%402.7&workload=jess");
        assert_eq!(
            canonical_target(&req),
            "/v1/cell?chip=i7-45&config=4C2T%402.7&workload=jess"
        );
        // Decoded specials re-encode; the backend decodes them again.
        let req = get_req("/v1/artifacts/table%204.txt");
        assert_eq!(canonical_target(&req), "/v1/artifacts/table%204.txt");
    }

    #[test]
    fn cell_keys_are_structural_not_textual() {
        // Same cell spelled two ways (alias + explicit stock) must key
        // identically, so both land on the same backend cache.
        let a = shard_key(&get_req("/v1/cell?chip=i7-45&workload=jess"));
        let b = shard_key(&get_req("/v1/cell?chip=i7&config=stock&workload=jess"));
        assert_eq!(a, b);
        // Different workloads must not.
        let c = shard_key(&get_req("/v1/cell?chip=i7-45&workload=db"));
        assert_ne!(a, c);
        // Unparseable chips still get a deterministic key.
        let d = shard_key(&get_req("/v1/cell?chip=z80&workload=jess"));
        assert_eq!(d, shard_key(&get_req("/v1/cell?chip=z80&workload=jess")));
    }

    #[test]
    fn route_cache_is_bounded_fifo() {
        let mut cache = RouteCache::new(2);
        let body = |s: &str| CachedBody {
            content_type: "application/json",
            body: s.as_bytes().to_vec(),
        };
        cache.put("a".into(), body("1"));
        cache.put("b".into(), body("2"));
        cache.put("c".into(), body("3"));
        assert!(cache.get("a").is_none(), "oldest evicted");
        assert!(cache.get("b").is_some());
        assert!(cache.get("c").is_some());
        // Zero capacity never stores.
        let mut off = RouteCache::new(0);
        off.put("a".into(), body("1"));
        assert!(off.get("a").is_none());
    }

    #[test]
    fn static_content_types_map_onto_the_known_set() {
        assert_eq!(
            static_content_type(Some("application/json")),
            "application/json"
        );
        assert_eq!(
            static_content_type(Some("text/plain; charset=utf-8")),
            "text/plain; charset=utf-8"
        );
        assert_eq!(static_content_type(Some(prom::CONTENT_TYPE)), prom::CONTENT_TYPE);
        assert_eq!(static_content_type(None), "application/octet-stream");
    }

    #[test]
    fn settles_passes_sheds_and_client_errors_but_not_5xx() {
        let resp = |status| HttpResponse {
            status,
            headers: Vec::new(),
            body: Vec::new(),
            length_checked: true,
        };
        assert!(settles(&resp(200)));
        assert!(settles(&resp(404)));
        assert!(settles(&resp(503)), "a shed is policy, not failure");
        assert!(!settles(&resp(500)));
        assert!(!settles(&resp(504)));
    }
}
