//! Backend health with hysteresis: `Up -> Suspect -> Down` on
//! consecutive probe failures, and back up through `Suspect` on
//! consecutive successes -- a single good probe never yanks a flapping
//! backend straight back to `Up`, and a single bad one never buries a
//! healthy backend.
//!
//! ```text
//!            suspect_after fails        down_after more fails
//!      Up ─────────────────────► Suspect ─────────────────────► Down
//!       ▲                         │    ▲                          │
//!       └── up_after successes ───┘    └────── one success ───────┘
//! ```
//!
//! The FSM is pure (feed it probe outcomes, read the state) so the
//! hysteresis is unit-testable without sockets; the router's prober
//! thread owns the clock and the I/O.

/// The three health states of a backend, in degradation order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum HealthState {
    /// Probes pass; route normally.
    Up,
    /// Recent failures (or a fresh, unproven backend): still routable,
    /// but requests hedge to the next replica.
    Suspect,
    /// Consecutive failures past the threshold: not routable until
    /// probes recover.
    Down,
}

impl HealthState {
    /// The lowercase wire name used in `/healthz` and gauges.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            HealthState::Up => "up",
            HealthState::Suspect => "suspect",
            HealthState::Down => "down",
        }
    }
}

/// Thresholds for the health FSM.
#[derive(Debug, Clone, Copy)]
pub struct HealthPolicy {
    /// Consecutive failures that demote `Up` to `Suspect`.
    pub suspect_after: u32,
    /// Consecutive failures (counted from entering `Suspect`) that
    /// demote `Suspect` to `Down`.
    pub down_after: u32,
    /// Consecutive successes that promote `Suspect` to `Up`.
    pub up_after: u32,
}

impl Default for HealthPolicy {
    fn default() -> Self {
        Self {
            suspect_after: 1,
            down_after: 2,
            up_after: 2,
        }
    }
}

/// The hysteresis state machine for one backend.
#[derive(Debug, Clone)]
pub struct HealthFsm {
    policy: HealthPolicy,
    state: HealthState,
    consecutive_failures: u32,
    consecutive_successes: u32,
}

impl HealthFsm {
    /// A new backend starts `Suspect`: routable (with hedging) but it
    /// must pass `up_after` probes before it counts as proven.
    #[must_use]
    pub fn new(policy: HealthPolicy) -> Self {
        Self {
            policy,
            state: HealthState::Suspect,
            consecutive_failures: 0,
            consecutive_successes: 0,
        }
    }

    /// Current state.
    #[must_use]
    pub fn state(&self) -> HealthState {
        self.state
    }

    /// Feeds one successful probe; returns the (possibly new) state.
    pub fn on_success(&mut self) -> HealthState {
        self.consecutive_failures = 0;
        self.consecutive_successes += 1;
        match self.state {
            HealthState::Up => {}
            HealthState::Suspect => {
                if self.consecutive_successes >= self.policy.up_after {
                    self.state = HealthState::Up;
                }
            }
            HealthState::Down => {
                // One good probe earns parole, not trust: back to
                // Suspect, where up_after more successes are needed.
                self.state = HealthState::Suspect;
                self.consecutive_successes = 1;
            }
        }
        self.state
    }

    /// Feeds one failed probe; returns the (possibly new) state.
    pub fn on_failure(&mut self) -> HealthState {
        self.consecutive_successes = 0;
        self.consecutive_failures += 1;
        match self.state {
            HealthState::Up => {
                if self.consecutive_failures >= self.policy.suspect_after {
                    self.state = HealthState::Suspect;
                    self.consecutive_failures = 0;
                }
            }
            HealthState::Suspect => {
                if self.consecutive_failures >= self.policy.down_after {
                    self.state = HealthState::Down;
                    self.consecutive_failures = 0;
                }
            }
            HealthState::Down => {}
        }
        self.state
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fsm() -> HealthFsm {
        HealthFsm::new(HealthPolicy {
            suspect_after: 2,
            down_after: 3,
            up_after: 2,
        })
    }

    /// Drives the FSM to Up (new backends start Suspect).
    fn up(f: &mut HealthFsm) {
        f.on_success();
        f.on_success();
        assert_eq!(f.state(), HealthState::Up);
    }

    #[test]
    fn descends_with_hysteresis() {
        let mut f = fsm();
        up(&mut f);
        assert_eq!(f.on_failure(), HealthState::Up, "one failure is noise");
        assert_eq!(f.on_failure(), HealthState::Suspect);
        assert_eq!(f.on_failure(), HealthState::Suspect);
        assert_eq!(f.on_failure(), HealthState::Suspect);
        assert_eq!(f.on_failure(), HealthState::Down, "down_after more failures");
        assert_eq!(f.on_failure(), HealthState::Down, "down is sticky on failure");
    }

    #[test]
    fn recovers_through_suspect_never_straight_to_up() {
        let mut f = fsm();
        up(&mut f);
        for _ in 0..5 {
            f.on_failure();
        }
        assert_eq!(f.state(), HealthState::Down);
        assert_eq!(f.on_success(), HealthState::Suspect, "parole, not trust");
        assert_eq!(f.on_success(), HealthState::Up, "up_after successes from Down");
    }

    #[test]
    fn a_blip_resets_the_recovery_count() {
        let mut f = fsm();
        up(&mut f);
        f.on_failure();
        f.on_failure(); // Suspect
        f.on_success();
        assert_eq!(f.state(), HealthState::Suspect, "one success is not enough");
        f.on_failure(); // recovery streak broken
        f.on_success();
        assert_eq!(f.state(), HealthState::Suspect);
        f.on_success();
        assert_eq!(f.state(), HealthState::Up);
    }

    #[test]
    fn fresh_backends_start_suspect_and_must_prove_health() {
        let mut f = HealthFsm::new(HealthPolicy::default());
        assert_eq!(f.state(), HealthState::Suspect);
        f.on_success();
        assert_eq!(f.on_success(), HealthState::Up);
    }
}
