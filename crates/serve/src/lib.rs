//! `lhr-serve`: a measurement-query server over the `lhr` engine.
//!
//! The paper's data was produced by long offline campaigns; this crate
//! turns the same engine into an interactive service -- "measure this
//! cell", "give me the 45nm Pareto frontier" -- over plain TCP with a
//! hand-rolled minimal HTTP/1.1 subset (the workspace is offline, so
//! no web framework; the protocol needs are small enough to own).
//!
//! What the serving layer adds over the raw harness:
//!
//! * **Admission control** -- a fixed worker pool behind a bounded
//!   queue; when the queue is full the accept thread sheds with
//!   `503 + Retry-After` instead of letting latency grow unboundedly
//!   ([`queue`]).
//! * **Single-flight coalescing** -- concurrent requests for the same
//!   cell share one simulation and receive byte-identical bodies
//!   ([`coalesce`]).
//! * **Bounded caching** -- the harness runner's cell cache is the
//!   shared [`lhr_core::ShardedLruCache`], so a long-lived server's
//!   memory stays bounded while repeated queries stay instant.
//! * **Deadlines** -- every expensive request carries a budget; a miss
//!   degrades to a typed `504` while the computation completes and
//!   warms the cache (abandon, never kill).
//! * **Graceful drain** -- `SIGINT`/`SIGTERM` or `POST /admin/drain`
//!   stops admission, serves everything already accepted, flushes the
//!   trace, and exits 0 ([`signal`], [`server`]).
//!
//! * **Campaign orchestration** -- `POST /v1/campaigns` runs whole
//!   sweep campaigns *inside* the server: a fair-share scheduler
//!   (stride scheduling over tenant weights, token-bucket cells/sec
//!   quotas, strict high/normal lanes) feeds campaign cells into the
//!   same worker pool on a background queue lane, so interactive
//!   requests always win; every resolved cell is journaled write-ahead
//!   and a killed or drained server resumes to byte-identical result
//!   artifacts ([`campaigns`]).
//! * **A measurement store** -- boot with a store directory and every
//!   cell the harness resolves (interactive or campaign) is recorded
//!   into an on-disk columnar store (`lhr-store`); `POST /v1/query`
//!   runs the hand-rolled query DSL over it, returning JSON or aligned
//!   text tables with typed `400`s on bad queries.
//! * **Live telemetry** -- every request carries a trace id minted at
//!   accept; per-endpoint RED metrics (rate/errors/duration) feed a
//!   windowed time-series ring and a multi-window SLO burn-rate
//!   tracker with hysteresis alerting ([`telemetry`],
//!   `lhr_obs::slo`); `/v1/metrics` speaks the Prometheus text
//!   exposition on request.
//! * **Shard mode** -- the `lhr_router` binary fronts N backend
//!   servers with a consistent-hash ring over structural cell
//!   fingerprints, health hysteresis (Up/Suspect/Down), per-backend
//!   circuit breakers, bounded retries, hedged requests, and a local
//!   simulation fallback, so a SIGKILLed backend never becomes a
//!   client-visible 5xx ([`shard`]; see `DESIGN.md`, "Shard topology
//!   and failure domains").
//!
//! Everything is instrumented through `lhr-obs`: request spans per
//! endpoint, queue-depth gauge, coalesce/shed/timeout counters, all
//! visible at `GET /metrics`.
//!
//! # Endpoints
//!
//! | Endpoint | Meaning |
//! |---|---|
//! | `GET /healthz` | liveness + uptime, SLO burn rates + alert state, trace health |
//! | `GET /metrics` | rendered [`lhr_obs::MetricsSnapshot`] (legacy text profile) |
//! | `GET /v1/metrics` | same aggregates; Prometheus exposition with `Accept: text/plain` or `?format=prometheus` |
//! | `GET /v1/metrics/timeseries` | windowed per-series interval buckets, JSON |
//! | `GET /v1/cell?chip=i7-45&config=2C1T@2.0&workload=jess` | measure one cell on demand |
//! | `GET /v1/sweep?space=stock\|45nm` | whole-space sweep summary |
//! | `GET /v1/pareto?metric=avg\|<group>&space=...` | Pareto frontier |
//! | `GET /v1/findings` | a few of the paper's findings, checked live |
//! | `GET /v1/artifacts[/name]` | the `repro_out/` artifacts |
//! | `POST /v1/campaigns?tenant=t&chips=i7-45,atom-45&...` | submit a sweep campaign (202) |
//! | `GET /v1/campaigns` | list campaigns |
//! | `GET /v1/campaigns/<id>[?cells=1]` | campaign status / partial results |
//! | `GET /v1/campaigns/<id>/artifact` | the finished result artifact (409 until done) |
//! | `POST /v1/campaigns/<id>/preempt` | checkpoint and stop dispatching |
//! | `POST /v1/campaigns/<id>/resume` | resume a preempted campaign |
//! | `POST /v1/query` | run a measurement-store DSL query (body = query text; `?format=text\|json`, text default) |
//! | `POST /admin/drain` | graceful shutdown |
//!
//! # Quick start
//!
//! ```no_run
//! use std::sync::Arc;
//! use lhr_core::{Harness, Runner, ShardedLruCache};
//! use lhr_serve::Telemetry;
//!
//! let telemetry = Telemetry::default();
//! let runner = Runner::fast()
//!     .with_cell_cache(Arc::new(ShardedLruCache::new(512, 8)))
//!     .with_observer(telemetry.obs());
//! let harness = Harness::new(runner).with_workloads(Harness::quick_set());
//! let handle = lhr_serve::start(lhr_serve::ServerConfig::default(), harness, telemetry)
//!     .expect("bind");
//! println!("listening on http://{}", handle.addr());
//! handle.wait(); // returns after a signal or POST /admin/drain
//! ```

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod campaigns;
pub mod coalesce;
pub mod handlers;
pub mod http;
pub mod queue;
pub mod server;
pub mod shard;
pub mod signal;
pub mod telemetry;

pub use campaigns::{CampaignSpec, CellTask, Lane, Orchestrator, Phase};
pub use coalesce::{Flight, FlightBoard, FlightResult, Join, JoinError};
pub use handlers::{build_config, chip_by_token, endpoint_tag, route, safe_artifact_name, ServeState};
pub use http::{percent_decode, read_request, HttpError, Method, Request, Response};
pub use queue::{BoundedQueue, PushError, ShedPool};
pub use server::{start, ServerConfig, ServerHandle};
pub use shard::{start_router, HashRing, HealthState, RouterConfig, RouterHandle};
pub use telemetry::Telemetry;
