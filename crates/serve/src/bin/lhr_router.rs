//! The `lhr_router` binary: boot the shard front router.
//!
//! ```text
//! lhr_router --backends HOST:PORT,HOST:PORT,... [--addr HOST:PORT]
//!            [--jobs N] [--queue-depth N] [--replicas N]
//!            [--route-cache N] [--probe-interval-ms MS]
//!            [--hedge-after-ms MS] [--no-local-fallback]
//!            [--cache-cells N] [--trace PATH] [--span-store DIR]
//!            [--span-keep-one-in N]
//! ```
//!
//! `--span-store` arms the distributed-trace span store: the router
//! records its request/attempt/fallback spans there, and
//! `GET /v1/trace/<id>` stitches them with each backend's fragment
//! into one multi-process tree. `--span-keep-one-in N` keeps every Nth
//! healthy trace (error/slow traces are always kept; default 1).
//!
//! The router consistent-hashes `/v1/*` queries onto the backend set,
//! health-probes every backend with hysteresis, circuit-breaks the
//! broken ones, hedges requests off Suspect primaries, and -- with
//! local fallback armed (the default) -- computes answers on its own
//! harness when a key's whole replica set is unreachable. Serves until
//! `SIGINT`/`SIGTERM` or `POST /admin/drain`, then drains and exits 0.
//!
//! `POST /admin/backends?set=HOST:PORT,...` replaces the backend set
//! live (rolling restarts re-admit a restarted backend this way).

use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

use lhr_core::{Harness, Runner, ShardedLruCache};
use lhr_obs::{SloConfig, TimeSeriesConfig};
use lhr_serve::{shard::RouterConfig, signal, start_router, Telemetry};

struct Args {
    config: RouterConfig,
    cache_cells: usize,
    local_fallback: bool,
    trace: Option<String>,
    span_store: Option<std::path::PathBuf>,
    span_keep_one_in: u64,
}

fn usage() -> &'static str {
    "usage: lhr_router --backends HOST:PORT,... [--addr HOST:PORT] [--jobs N] \
     [--queue-depth N] [--replicas N] [--route-cache N] [--probe-interval-ms MS] \
     [--hedge-after-ms MS] [--no-local-fallback] [--cache-cells N] [--trace PATH] \
     [--span-store DIR] [--span-keep-one-in N]"
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        config: RouterConfig {
            addr: "127.0.0.1:7010".to_owned(),
            ..RouterConfig::default()
        },
        cache_cells: 1024,
        local_fallback: true,
        trace: None,
        span_store: None,
        span_keep_one_in: 1,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} needs a value"));
        match flag.as_str() {
            "--addr" => args.config.addr = value("--addr")?,
            "--backends" => {
                for part in value("--backends")?.split(',').filter(|p| !p.is_empty()) {
                    args.config.backends.push(
                        part.parse()
                            .map_err(|e| format!("--backends {part:?}: {e}"))?,
                    );
                }
            }
            "--jobs" => {
                args.config.jobs = value("--jobs")?
                    .parse()
                    .map_err(|e| format!("--jobs: {e}"))?;
            }
            "--queue-depth" => {
                args.config.queue_depth = value("--queue-depth")?
                    .parse()
                    .map_err(|e| format!("--queue-depth: {e}"))?;
            }
            "--replicas" => {
                args.config.replicas = value("--replicas")?
                    .parse()
                    .map_err(|e| format!("--replicas: {e}"))?;
            }
            "--route-cache" => {
                args.config.route_cache = value("--route-cache")?
                    .parse()
                    .map_err(|e| format!("--route-cache: {e}"))?;
            }
            "--probe-interval-ms" => {
                let ms: u64 = value("--probe-interval-ms")?
                    .parse()
                    .map_err(|e| format!("--probe-interval-ms: {e}"))?;
                args.config.probe_interval = Duration::from_millis(ms);
            }
            "--hedge-after-ms" => {
                let ms: u64 = value("--hedge-after-ms")?
                    .parse()
                    .map_err(|e| format!("--hedge-after-ms: {e}"))?;
                args.config.hedge_after = Duration::from_millis(ms);
            }
            "--no-local-fallback" => args.local_fallback = false,
            "--cache-cells" => {
                args.cache_cells = value("--cache-cells")?
                    .parse()
                    .map_err(|e| format!("--cache-cells: {e}"))?;
            }
            "--trace" => args.trace = Some(value("--trace")?),
            "--span-store" => {
                args.span_store = Some(std::path::PathBuf::from(value("--span-store")?));
            }
            "--span-keep-one-in" => {
                args.span_keep_one_in = value("--span-keep-one-in")?
                    .parse()
                    .map_err(|e| format!("--span-keep-one-in: {e}"))?;
                if args.span_keep_one_in == 0 {
                    return Err("--span-keep-one-in must be at least 1".to_owned());
                }
            }
            "--help" | "-h" => return Err(usage().to_owned()),
            other => return Err(format!("unknown flag {other:?}\n{}", usage())),
        }
    }
    if args.config.backends.is_empty() && !args.local_fallback {
        return Err(format!(
            "no backends and no local fallback: nothing could ever serve\n{}",
            usage()
        ));
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };

    let base = Telemetry::new(TimeSeriesConfig::serving_default(), SloConfig::default());
    let telemetry = if let Some(path) = &args.trace {
        match base.with_trace_path(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("cannot open trace file {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        base
    };
    let telemetry = if let Some(dir) = &args.span_store {
        let sampling = lhr_store::SamplingConfig {
            keep_one_in: args.span_keep_one_in,
            ..lhr_store::SamplingConfig::default()
        };
        match telemetry.with_span_store(dir, "router", sampling) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("cannot open span store {}: {e}", dir.display());
                return ExitCode::FAILURE;
            }
        }
    } else {
        telemetry
    };

    // The fallback harness mirrors a backend's setup: bounded cell
    // cache, observer into the router's own telemetry. It only ever
    // runs when a key's whole replica set is unreachable.
    let fallback = args.local_fallback.then(|| {
        let runner = Runner::fast()
            .with_cell_cache(Arc::new(ShardedLruCache::new(args.cache_cells, 8)))
            .with_observer(telemetry.obs());
        Harness::new(runner).with_workloads(Harness::quick_set())
    });

    signal::install();
    let handle = match start_router(args.config.clone(), fallback, telemetry.clone()) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("cannot bind {}: {e}", args.config.addr);
            return ExitCode::FAILURE;
        }
    };
    println!("lhr_router listening on http://{}", handle.addr());
    println!(
        "  backends={} jobs={} replicas={} route-cache={} probe-interval={:?} fallback={}",
        args.config
            .backends
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join(","),
        args.config.jobs,
        args.config.replicas,
        args.config.route_cache,
        args.config.probe_interval,
        if args.local_fallback { "local" } else { "off" },
    );
    if let Some(dir) = &args.span_store {
        println!(
            "  span-store={} keep-one-in={} (GET /v1/trace/<id> stitches backends)",
            dir.display(),
            args.span_keep_one_in
        );
    }
    println!("  try: curl 'http://{}/healthz'", handle.addr());

    handle.wait();

    println!("drained; final metrics:");
    println!("{}", telemetry.snapshot().render());
    ExitCode::SUCCESS
}
