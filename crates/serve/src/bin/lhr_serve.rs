//! The `lhr_serve` binary: boot the measurement-query server.
//!
//! ```text
//! lhr_serve [--addr HOST:PORT] [--jobs N] [--queue-depth N]
//!           [--cache-cells N] [--max-cell-seconds S] [--trace PATH]
//! ```
//!
//! Serves until `SIGINT`/`SIGTERM` or `POST /admin/drain`, then drains
//! gracefully (in-flight requests complete, the trace flushes) and
//! exits 0. A final metrics snapshot is printed on the way out.

use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

use lhr_core::{Harness, Runner, ShardedLruCache};
use lhr_obs::{SloConfig, TimeSeriesConfig};
use lhr_serve::{signal, ServerConfig, Telemetry};

struct Args {
    config: ServerConfig,
    cache_cells: usize,
    trace: Option<String>,
}

fn usage() -> &'static str {
    "usage: lhr_serve [--addr HOST:PORT] [--jobs N] [--queue-depth N] \
     [--cache-cells N] [--max-cell-seconds S] [--trace PATH]"
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        config: ServerConfig {
            addr: "127.0.0.1:7011".to_owned(),
            ..ServerConfig::default()
        },
        cache_cells: 1024,
        trace: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--addr" => args.config.addr = value("--addr")?,
            "--jobs" => {
                args.config.jobs = value("--jobs")?
                    .parse()
                    .map_err(|e| format!("--jobs: {e}"))?;
            }
            "--queue-depth" => {
                args.config.queue_depth = value("--queue-depth")?
                    .parse()
                    .map_err(|e| format!("--queue-depth: {e}"))?;
            }
            "--cache-cells" => {
                args.cache_cells = value("--cache-cells")?
                    .parse()
                    .map_err(|e| format!("--cache-cells: {e}"))?;
            }
            "--max-cell-seconds" => {
                let secs: f64 = value("--max-cell-seconds")?
                    .parse()
                    .map_err(|e| format!("--max-cell-seconds: {e}"))?;
                if secs <= 0.0 || !secs.is_finite() {
                    return Err("--max-cell-seconds must be positive".to_owned());
                }
                args.config.max_cell = Duration::from_secs_f64(secs);
            }
            "--trace" => args.trace = Some(value("--trace")?),
            "--help" | "-h" => return Err(usage().to_owned()),
            other => return Err(format!("unknown flag {other:?}\n{}", usage())),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };

    // The telemetry bundle: memory aggregates for /metrics, a windowed
    // time-series ring for /v1/metrics/timeseries, the SLO burn-rate
    // tracker for /healthz, and (with --trace) a JSON-lines stream of
    // every event, all fed from one fanout observer.
    let base = Telemetry::new(TimeSeriesConfig::serving_default(), SloConfig::default());
    let telemetry = if let Some(path) = &args.trace {
        match base.with_trace_path(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("cannot open trace file {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        base
    };
    let obs = telemetry.obs();

    // Serving is open-ended, so the cell cache must be bounded: the
    // sharded LRU keeps hot cells instant and memory flat.
    let runner = Runner::fast()
        .with_cell_cache(Arc::new(ShardedLruCache::new(args.cache_cells, 8)))
        .with_observer(obs);
    let harness = Harness::new(runner).with_workloads(Harness::quick_set());

    signal::install();
    let handle = match lhr_serve::start(args.config.clone(), harness, telemetry.clone()) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("cannot bind {}: {e}", args.config.addr);
            return ExitCode::FAILURE;
        }
    };
    println!("lhr_serve listening on http://{}", handle.addr());
    println!(
        "  jobs={} queue-depth={} cache-cells={} max-cell={:?}{}",
        args.config.jobs,
        args.config.queue_depth,
        args.cache_cells,
        args.config.max_cell,
        args.trace
            .as_deref()
            .map(|p| format!(" trace={p}"))
            .unwrap_or_default(),
    );
    println!("  try: curl 'http://{}/healthz'", handle.addr());

    // Blocks until a signal or POST /admin/drain completes the drain.
    handle.wait();

    println!("drained; final metrics:");
    println!("{}", telemetry.snapshot().render());
    ExitCode::SUCCESS
}
