//! The server itself: accept loop, worker pool, and graceful drain.
//!
//! ```text
//!             accept thread (admission control)
//!   TCP ──► try_push ──► BoundedQueue ──► worker pool (N threads)
//!                │ full                        │
//!                └──► 503 + Retry-After        ├─ parse (400 on garbage)
//!                                              ├─ route (FlightBoard for
//!                                              │         expensive work)
//!                                              └─ write response
//! ```
//!
//! Shutdown is a *drain*, never an abort: on `SIGINT`/`SIGTERM` or
//! `POST /admin/drain` the accept loop stops admitting, the queue
//! closes, every already-admitted connection is served to completion,
//! the workers exit, the observer flushes, and [`ServerHandle::wait`]
//! returns so the process can exit 0.

use std::io::{self, BufReader};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use lhr_core::Harness;
use lhr_obs::context::{self, Ctx};

use crate::campaigns::{self, CellTask, Orchestrator};
use crate::coalesce::FlightBoard;
use crate::handlers::{endpoint_tag, route, ServeState};
use crate::http::{read_request, HttpError, Response};
use crate::queue::{BoundedQueue, PushError, ShedPool};
use crate::signal;
use crate::telemetry::Telemetry;

/// Tuning knobs for one server instance.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 picks a free port (tests).
    pub addr: String,
    /// Worker threads serving parsed requests.
    pub jobs: usize,
    /// Bounded queue depth between accept and the workers; beyond it,
    /// `503 + Retry-After`.
    pub queue_depth: usize,
    /// Concurrent flights allowed on the single-flight board.
    pub max_live_flights: usize,
    /// Per-request budget for expensive endpoints; past it, `504`.
    pub max_cell: Duration,
    /// Socket read timeout: a slow-loris client costs one worker for at
    /// most this long.
    pub read_timeout: Duration,
    /// Directory `/v1/artifacts` serves.
    pub artifact_dir: PathBuf,
    /// Directory campaign journals and result artifacts live in.
    pub campaign_dir: PathBuf,
    /// Scan `campaign_dir` at boot and resume interrupted campaigns.
    pub resume_campaigns: bool,
    /// Campaign cells allowed in flight at once across all campaigns;
    /// keeps background work from saturating the worker pool.
    pub campaign_inflight: usize,
    /// Depth of the background campaign lane in the work queue.
    pub campaign_lane_depth: usize,
    /// Writer threads in the 503-shed pool (bounds shed concurrency).
    pub shed_writers: usize,
    /// Pending-shed backlog; past it, overflow connections are dropped.
    pub shed_depth: usize,
    /// Directory of the measurement store behind `POST /v1/query`.
    /// `None` (the default) serves without a store: cells are not
    /// recorded and the query endpoint answers `503`.
    pub store_dir: Option<PathBuf>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_owned(),
            jobs: 4,
            queue_depth: 64,
            max_live_flights: 32,
            max_cell: Duration::from_secs(30),
            read_timeout: Duration::from_secs(5),
            artifact_dir: PathBuf::from("repro_out"),
            campaign_dir: PathBuf::from("campaigns"),
            resume_campaigns: false,
            campaign_inflight: 2,
            campaign_lane_depth: 32,
            shed_writers: 2,
            shed_depth: 32,
            store_dir: None,
        }
    }
}

/// A running server; dropping it (or calling [`ServerHandle::wait`]
/// after a drain) shuts it down gracefully.
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    state: Arc<ServeState>,
    accept: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (resolves port 0).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared state (tests inspect the flight board and cache).
    #[must_use]
    pub fn state(&self) -> &Arc<ServeState> {
        &self.state
    }

    /// Requests a drain from process context, same as `POST
    /// /admin/drain`.
    pub fn drain(&self) {
        self.state.draining.store(true, Ordering::Relaxed);
    }

    /// Blocks until the server has fully drained: accept loop stopped,
    /// queue emptied, all workers exited, observer flushed.
    pub fn wait(mut self) {
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.drain();
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
    }
}

/// One admitted connection, queued for a worker: the socket plus the
/// trace request id minted for it at accept time, so everything the
/// request causes -- parsing, routing, coalesced computation, engine
/// work -- carries one causal id from the first byte.
#[derive(Debug)]
struct Admitted {
    stream: TcpStream,
    request: u64,
}

/// One unit of work for the pool: an admitted connection (interactive
/// lane) or a campaign cell (background lane). The queue's lane order
/// makes the priority structural -- a worker only measures a campaign
/// cell when no interactive request is waiting.
#[derive(Debug)]
enum Work {
    Conn(Admitted),
    Cell(CellTask),
}

/// Boots a server over `harness`. The harness's runner should carry a
/// bounded [`lhr_core::ShardedLruCache`] (serving is open-ended, unlike
/// a campaign) and an observer armed from `telemetry.obs()`, so engine
/// events and serve events land in the same recorders backing
/// `/metrics`, `/v1/metrics`, and `/v1/metrics/timeseries`.
///
/// # Errors
///
/// Propagates the bind failure; everything after the bind is
/// infallible setup.
pub fn start(
    config: ServerConfig,
    harness: Harness,
    telemetry: Telemetry,
) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;
    // Open (or create) the measurement store before the harness is
    // frozen into the shared state: the store doubles as the harness's
    // cell sink, so every cell any endpoint resolves is recorded.
    let mut harness = harness;
    let store = match &config.store_dir {
        Some(dir) => {
            let store = Arc::new(lhr_store::Store::open(dir)?);
            harness = harness.with_cell_sink(Arc::clone(&store) as _);
            Some(store)
        }
        None => None,
    };
    let obs = harness.runner().observer().clone();
    let state = Arc::new(ServeState {
        harness,
        board: FlightBoard::new(config.max_live_flights),
        obs,
        telemetry,
        artifact_dir: config.artifact_dir.clone(),
        max_cell: config.max_cell,
        campaigns: Orchestrator::new(config.campaign_dir.clone(), config.campaign_inflight),
        store,
        draining: AtomicBool::new(false),
        started: Instant::now(),
    });
    if config.resume_campaigns {
        let resumed = state.campaigns.resume_scan(&state.harness, &state.obs);
        if resumed > 0 {
            state.obs.counter("campaign.boot_resumed", resumed as u64);
        }
    }
    let queue = Arc::new(BoundedQueue::<Work>::with_lanes(
        config.queue_depth,
        config.campaign_lane_depth,
    ));

    let workers: Vec<JoinHandle<()>> = (0..config.jobs.max(1))
        .map(|i| {
            let queue = Arc::clone(&queue);
            let state = Arc::clone(&state);
            std::thread::Builder::new()
                .name(format!("lhr-serve-worker-{i}"))
                .spawn(move || {
                    while let Some(work) = queue.pop() {
                        state.obs.gauge("serve.queue_depth", queue.len() as f64);
                        // A panicking handler must cost one response (or
                        // one cell), never the worker: contain it and
                        // keep serving.
                        let survived = catch_unwind(AssertUnwindSafe(|| match work {
                            Work::Conn(admitted) => context::with_ctx(
                                Ctx {
                                    request: admitted.request,
                                    parent: 0,
                                    // The distributed trace is joined (or
                                    // minted) once the request line and
                                    // its `x-lhr-trace` header are parsed.
                                    trace: 0,
                                },
                                || serve_connection(&state, admitted.stream),
                            ),
                            Work::Cell(task) => campaigns::execute(&state, task),
                        }));
                        if survived.is_err() {
                            state.obs.counter("serve.worker_panics_contained", 1);
                        }
                    }
                })
                .expect("spawn worker")
        })
        .collect();

    // The campaign scheduler feeds the background lane: it picks the
    // next cell under the fair-share policy and enqueues it, backing
    // off when the lane is full (the cell is requeued, not lost).
    let sched_state = Arc::clone(&state);
    let sched_queue = Arc::clone(&queue);
    let scheduler = std::thread::Builder::new()
        .name("lhr-serve-campaigns".to_owned())
        .spawn(move || {
            while !sched_state.campaigns.stopping() {
                while let Some(task) = sched_state.campaigns.next_cell(&sched_state.obs) {
                    match sched_queue.try_push_background(Work::Cell(task)) {
                        Ok(()) => {}
                        Err(PushError::Full(work) | PushError::Closed(work)) => {
                            if let Work::Cell(task) = work {
                                sched_state.campaigns.requeue(task);
                            }
                            break;
                        }
                    }
                }
                sched_state
                    .campaigns
                    .wait_for_work(Duration::from_millis(25));
            }
        })
        .expect("spawn campaign scheduler");

    let accept_state = Arc::clone(&state);
    let accept_queue = Arc::clone(&queue);
    let read_timeout = config.read_timeout;
    let shed_pool = ShedPool::new(config.shed_writers, config.shed_depth);
    let accept = std::thread::Builder::new()
        .name("lhr-serve-accept".to_owned())
        .spawn(move || {
            accept_loop(&listener, &accept_state, &accept_queue, &shed_pool, read_timeout);
            // Drain: no new admissions, stop scheduling new campaign
            // cells (already-queued cells still run and journal, so a
            // restart resumes from exactly where the drain cut), serve
            // what is queued, stop the pool, seal the final time-series
            // bucket, then flush the trace so the shutdown is
            // observable.
            accept_state.campaigns.stop();
            let _ = scheduler.join();
            accept_queue.close();
            for w in workers {
                let _ = w.join();
            }
            shed_pool.shutdown();
            accept_state.obs.counter("serve.drained", 1);
            accept_state.telemetry.timeseries.seal_all();
            accept_state.obs.flush();
        })
        .expect("spawn accept loop");

    Ok(ServerHandle {
        addr,
        state,
        accept: Some(accept),
    })
}

fn accept_loop(
    listener: &TcpListener,
    state: &Arc<ServeState>,
    queue: &Arc<BoundedQueue<Work>>,
    shed_pool: &ShedPool,
    read_timeout: Duration,
) {
    // Adaptive poll: for a short window after any accept the loop
    // yields instead of sleeping, so back-to-back requests (the common
    // shape: a client train, a benchmark, a proxy in front) are picked
    // up in microseconds; once the window expires an idle listener
    // costs one short sleep per poll, not a spinning core.
    let mut hot_until = Instant::now();
    loop {
        if state.draining.load(Ordering::Relaxed) || signal::drain_requested() {
            return;
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                hot_until = Instant::now() + Duration::from_millis(2);
                // The listener is non-blocking so the drain flag is
                // polled; accepted connections must block normally.
                let _ = stream.set_nonblocking(false);
                let _ = stream.set_read_timeout(Some(read_timeout));
                let _ = stream.set_nodelay(true);
                state.obs.counter("serve.accepted", 1);
                // The trace request id is minted here, at admission:
                // even time spent queued is inside the request's story.
                let admitted = Admitted {
                    stream,
                    request: context::next_request_id(),
                };
                match queue.try_push(Work::Conn(admitted)) {
                    Ok(()) => state.obs.gauge("serve.queue_depth", queue.len() as f64),
                    Err(PushError::Full(work) | PushError::Closed(work)) => {
                        // Admission control: shed *now*, from the accept
                        // thread, with a backoff hint -- queueing it
                        // anyway is how latency collapses under load.
                        // The bounded shed pool writes the 503; if even
                        // that backlog is full, the connection is
                        // dropped (counted), never left to block the
                        // accept thread.
                        let Work::Conn(admitted) = work else {
                            unreachable!("accept loop only pushes connections")
                        };
                        state.obs.counter("serve.shed_503", 1);
                        let response = if queue.is_closed() {
                            Response::overloaded("server draining", 5)
                        } else {
                            Response::overloaded("request queue full", 1)
                        };
                        if !shed_pool.try_shed(admitted.stream, response) {
                            state.obs.counter("serve.shed_dropped", 1);
                        }
                    }
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                // The poll interval is a floor on connection latency: a
                // fresh connection waits for the sleep to expire before
                // accept() even sees it, and timer slack stretches short
                // sleeps to several ms on small VMs -- so yield while
                // hot, and poll in microseconds (not milliseconds) when
                // idle.
                if Instant::now() < hot_until {
                    std::thread::yield_now();
                } else {
                    std::thread::sleep(Duration::from_micros(200));
                }
            }
            Err(_) => std::thread::sleep(Duration::from_micros(200)),
        }
    }
}

/// Serves exactly one request on one connection (`Connection: close`
/// protocol: parse, route, respond), recording the endpoint's RED
/// metrics (rate `serve.req.<tag>`, errors `serve.err.<tag>`, duration
/// `serve.latency.<tag>` in seconds) and feeding the request's outcome
/// to the SLO tracker.
fn serve_connection(state: &Arc<ServeState>, stream: TcpStream) {
    let started = Instant::now();
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    match read_request(&mut reader) {
        Ok(req) => {
            // Join the distributed trace the caller propagated over
            // `x-lhr-trace`, or mint a fresh one: every request carries
            // a trace from here on, so spans, RED samples (exemplars),
            // and campaign cells it causes are all linkable. A hostile
            // or truncated header is counted and ignored -- never a 400.
            let ctx = match req.header("x-lhr-trace").map(context::parse_trace_header) {
                Some(Some((trace, parent, _flags))) => Ctx {
                    request: context::current_request(),
                    parent,
                    trace,
                },
                header => {
                    if header.is_some() {
                        state.obs.counter("trace.header_invalid", 1);
                    }
                    Ctx {
                        request: context::current_request(),
                        parent: 0,
                        trace: context::next_trace_id(),
                    }
                }
            };
            context::with_ctx(ctx, || {
                state.obs.counter("serve.requests", 1);
                let tag = endpoint_tag(&req);
                let span_name = format!("serve.request.{tag}");
                let mut span = state.obs.span(&span_name);
                let response = catch_unwind(AssertUnwindSafe(|| route(state, &req)))
                    .unwrap_or_else(|_| {
                        Response::error(500, "handler_panic", "handler panicked; see /metrics")
                    });
                if response.status >= 500 {
                    span.fail();
                }
                span.end();
                if response.status >= 400 {
                    state
                        .obs
                        .counter(&format!("serve.http_{}", response.status), 1);
                }
                let _ = response.write_to(&mut writer);
                let latency = started.elapsed().as_secs_f64();
                let is_error = response.status >= 500;
                state.obs.counter(&format!("serve.req.{tag}"), 1);
                if is_error {
                    state.obs.counter(&format!("serve.err.{tag}"), 1);
                }
                state.obs.histogram(&format!("serve.latency.{tag}"), latency);
                state.telemetry.slo.observe(is_error, latency, &state.obs);
            });
        }
        Err(HttpError::BadRequest(detail)) => {
            state.obs.counter("serve.http_400", 1);
            let _ = Response::error(400, "bad_request", &detail).write_to(&mut writer);
        }
        Err(HttpError::TimedOut) => {
            // Slowloris guard: the socket read timeout fired before a
            // full request arrived. Tell the client (best effort) and
            // free the worker.
            state.obs.counter("serve.timeout", 1);
            let _ = Response::error(408, "request_timeout", "idle connection timed out")
                .write_to(&mut writer);
        }
        Err(HttpError::Disconnected) => {
            state.obs.counter("serve.disconnects", 1);
        }
    }
}
