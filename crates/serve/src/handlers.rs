//! Request routing and endpoint handlers.
//!
//! Cheap endpoints (`/healthz`, `/metrics`, `/v1/artifacts`, admin)
//! answer inline. Expensive endpoints -- anything that runs the
//! measurement engine -- go through the [`FlightBoard`]: requests for
//! the same cell coalesce onto one computation, capacity and deadline
//! policies bound the worst case, and the rendered body is shared so
//! coalesced responses are byte-identical.
//!
//! All request validation (unknown chip, bad configuration descriptor,
//! unknown workload) happens *before* a flight opens, so `400`/`404`
//! never cost a simulation.

use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use lhr_core::cache::{config_fingerprint, workload_fingerprint};
use lhr_core::{experiments::pareto, Harness};
use lhr_obs::{context, prom, push_json_number, push_json_string, AlertState, Obs};
use lhr_uarch::{ChipConfig, ProcessorId};
use lhr_units::Hertz;
use lhr_workloads::Group;

use crate::coalesce::{FlightBoard, Join, JoinError};
use crate::http::{Method, Request, Response};
use crate::telemetry::Telemetry;

/// Shared server state: the measurement engine plus the serving
/// machinery around it.
#[derive(Debug)]
pub struct ServeState {
    /// The evaluation harness (its runner carries the shared cell cache).
    pub harness: Harness,
    /// The single-flight board for expensive endpoints.
    pub board: FlightBoard,
    /// The observability handle (same one the harness's runner reports to).
    pub obs: Obs,
    /// The recorder bundle behind `/metrics`, `/v1/metrics`,
    /// `/v1/metrics/timeseries`, and the `/healthz` SLO report.
    pub telemetry: Telemetry,
    /// Directory `/v1/artifacts` serves (`repro_out/`).
    pub artifact_dir: std::path::PathBuf,
    /// Per-request budget for expensive endpoints; past it, `504`.
    pub max_cell: Duration,
    /// The campaign orchestrator behind `/v1/campaigns`.
    pub campaigns: crate::campaigns::Orchestrator,
    /// The measurement store behind `POST /v1/query`, when the server
    /// was booted with one (`--store-dir`). Every cell the harness
    /// resolves is recorded into it through the [`lhr_core::CellSink`]
    /// hook; `None` means the query endpoint answers `503`.
    pub store: Option<Arc<lhr_store::Store>>,
    /// Set by `POST /admin/drain`; the accept loop polls it.
    pub draining: AtomicBool,
    /// Server start time, for `/healthz` uptime.
    pub started: Instant,
}

/// The stable tag used to name per-endpoint request spans (dynamic
/// paths would explode the metrics cardinality).
#[must_use]
pub fn endpoint_tag(req: &Request) -> &'static str {
    match req.path.as_str() {
        "/healthz" => "/healthz",
        "/metrics" => "/metrics",
        "/v1/metrics" => "/v1/metrics",
        "/v1/metrics/timeseries" => "/v1/metrics/timeseries",
        "/v1/cell" => "/v1/cell",
        "/v1/sweep" => "/v1/sweep",
        "/v1/pareto" => "/v1/pareto",
        "/v1/findings" => "/v1/findings",
        "/v1/query" => "/v1/query",
        "/v1/traces" => "/v1/traces",
        "/admin/drain" => "/admin/drain",
        p if p.starts_with("/v1/trace/") => "/v1/trace",
        p if p.starts_with("/v1/campaigns") => "/v1/campaigns",
        p if p.starts_with("/v1/artifacts") => "/v1/artifacts",
        _ => "other",
    }
}

/// Dispatches one parsed request to its handler.
#[must_use]
pub fn route(state: &Arc<ServeState>, req: &Request) -> Response {
    match (req.method, req.path.as_str()) {
        (Method::Get, "/healthz") => healthz(state),
        // `/metrics` is the legacy text profile; `/v1/metrics` adds
        // content negotiation (Prometheus exposition on request).
        (Method::Get, "/metrics" | "/v1/metrics") => metrics(state, req),
        (Method::Get, "/v1/metrics/timeseries") => {
            let mut body = state.telemetry.timeseries.snapshot().render_json();
            body.push('\n');
            Response::ok_json(body)
        }
        (Method::Get, "/v1/cell") => cell(state, req),
        (Method::Get, "/v1/sweep") => sweep(state, req),
        (Method::Get, "/v1/pareto") => pareto_endpoint(state, req),
        (Method::Get, "/v1/findings") => findings(state),
        (Method::Post | Method::Get, "/v1/query") => query_endpoint(state, req),
        (Method::Get, "/v1/traces") => traces_search(state, req),
        (Method::Get, p) if p.starts_with("/v1/trace/") => {
            trace_by_id(state, &p["/v1/trace/".len()..], req)
        }
        (Method::Get, "/v1/artifacts") => artifact_index(state),
        (Method::Get, p) if p.starts_with("/v1/artifacts/") => {
            artifact(state, &p["/v1/artifacts/".len()..])
        }
        (_, p) if p.starts_with("/v1/campaigns") => crate::campaigns::handle(state, req),
        (Method::Post, "/admin/drain") => drain(state),
        (_, "/admin/drain") => Response::error(405, "method_not_allowed", "drain is POST-only"),
        (Method::Post, _) => Response::error(
            405,
            "method_not_allowed",
            "only /admin/drain, /v1/campaigns, and /v1/query accept POST",
        ),
        (Method::Get, _) => Response::error(
            404,
            "not_found",
            "unknown endpoint; see /healthz, /metrics, /v1/metrics, /v1/metrics/timeseries, \
             /v1/cell, /v1/sweep, /v1/pareto, /v1/findings, /v1/artifacts, /v1/campaigns, \
             /v1/traces, /v1/trace/<id>, POST /v1/query, POST /admin/drain",
        ),
    }
}

fn healthz(state: &Arc<ServeState>) -> Response {
    // Health degrades on any of three signals: the SLO alert is firing
    // (the error budget is burning too fast in both windows), trace
    // lines are being lost, or span-store appends are failing (the
    // record of what happened has holes either way).
    let slo = state.telemetry.slo.status();
    let trace_write_errors = state.telemetry.trace_write_errors();
    let span_append_errors = state.telemetry.span_append_errors();
    let degraded =
        slo.state == AlertState::Firing || trace_write_errors > 0 || span_append_errors > 0;
    let mut body = String::from("{\"status\":");
    push_json_string(&mut body, if degraded { "degraded" } else { "ok" });
    body.push_str(",\"uptime_seconds\":");
    push_json_number(&mut body, state.started.elapsed().as_secs_f64());
    body.push_str(",\"live_flights\":");
    push_json_number(&mut body, state.board.live() as f64);
    body.push_str(",\"cached_cells\":");
    push_json_number(&mut body, state.harness.runner().cell_cache().len() as f64);
    body.push_str(",\"draining\":");
    body.push_str(if state.draining.load(Ordering::Relaxed) {
        "true"
    } else {
        "false"
    });
    body.push_str(",\"trace_write_errors\":");
    push_json_number(&mut body, trace_write_errors as f64);
    body.push_str(",\"span_append_errors\":");
    push_json_number(&mut body, span_append_errors as f64);
    body.push_str(",\"slo\":{\"alert\":");
    push_json_string(
        &mut body,
        match slo.state {
            AlertState::Ok => "ok",
            AlertState::Firing => "firing",
        },
    );
    // The exemplar link: the trace id of the slowest traced request
    // sample, so a firing burn-rate alert points straight at an
    // offending trace (`GET /v1/trace/<id>`).
    if let Some(ex) = state
        .telemetry
        .memory
        .snapshot()
        .exemplars
        .iter()
        .filter(|(name, _)| name.starts_with("serve.latency."))
        .map(|(_, ex)| *ex)
        .max_by(|a, b| a.value.total_cmp(&b.value))
    {
        body.push_str(",\"slow_trace\":");
        push_json_string(&mut body, &ex.trace_hex());
        body.push_str(",\"slow_trace_seconds\":");
        push_json_number(&mut body, ex.value);
    }
    body.push_str(",\"availability_burn\":{\"short\":");
    push_json_number(&mut body, slo.availability.short);
    body.push_str(",\"long\":");
    push_json_number(&mut body, slo.availability.long);
    body.push_str("},\"latency_burn\":{\"short\":");
    push_json_number(&mut body, slo.latency.short);
    body.push_str(",\"long\":");
    push_json_number(&mut body, slo.latency.long);
    body.push_str("},\"requests_long_window\":");
    push_json_number(&mut body, slo.total_long as f64);
    body.push_str("},\"campaigns\":");
    body.push_str(&state.campaigns.healthz_json());
    body.push_str("}\n");
    Response::ok_json(body)
}

/// `/metrics` and `/v1/metrics`: the lifetime aggregates, as the
/// human-readable text profile by default, or as a Prometheus text
/// exposition (format 0.0.4) when the client asks -- via
/// `?format=prometheus` or an `Accept` header naming `text/plain`
/// (what a Prometheus scraper sends).
fn metrics(state: &Arc<ServeState>, req: &Request) -> Response {
    let snap = state.telemetry.snapshot();
    let wants_prometheus = req.param("format") == Some("prometheus")
        || req
            .header("accept")
            .is_some_and(|accept| accept.contains("text/plain"));
    if wants_prometheus {
        Response {
            status: 200,
            content_type: prom::CONTENT_TYPE,
            body: prom::render_prometheus(&snap).into_bytes(),
            retry_after: None,
        }
    } else {
        Response::ok_text(snap.render())
    }
}

fn drain(state: &Arc<ServeState>) -> Response {
    state.draining.store(true, Ordering::Relaxed);
    state.obs.counter("serve.drain_requests", 1);
    Response::ok_json("{\"draining\":true}\n".to_owned())
}

/// Runs `compute` under the single-flight board and waits for the body.
///
/// Exactly one requester per key leads (and spawns the computation on a
/// detached thread); everyone, leader included, waits on the shared
/// flight with the deadline budget. A deadline miss abandons the wait
/// with `504` but never cancels the computation -- it completes, the
/// flight retires, and the measurement cache keeps the value.
fn flight_json<F>(state: &Arc<ServeState>, key: String, compute: F) -> Response
where
    F: FnOnce() -> Result<String, String> + Send + 'static,
{
    let join = match state.board.join(&key) {
        Ok(join) => join,
        Err(JoinError::AtCapacity) => {
            state.obs.counter("serve.shed_flights", 1);
            return Response::overloaded("live-flight cap reached", 2);
        }
    };
    let flight = match join {
        Join::Leader(flight) => {
            state.obs.counter("serve.coalesce_leads", 1);
            // The computation runs on a detached thread, so the leader's
            // trace context is carried across explicitly: everything the
            // engine records during the flight belongs to the request
            // that opened it.
            let ctx = context::capture();
            flight.set_leader_request(ctx.request);
            flight.set_leader_trace(ctx.trace);
            let worker_state = Arc::clone(state);
            std::thread::spawn(move || {
                let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    context::with_ctx(ctx, compute)
                }))
                .unwrap_or_else(|_| Err("computation panicked".to_owned()));
                worker_state.board.complete(&key, result);
            });
            flight
        }
        Join::Follower(flight) => {
            state.obs.counter("serve.coalesce_hits", 1);
            // Record the leader/follower linkage so a trace reader can
            // attribute this request's wait to the flight it rode --
            // both by request id and by distributed trace id, crossing
            // the coalescing boundary in a stitched view.
            if state.obs.enabled() {
                state.obs.mark(
                    "serve.coalesce.follows",
                    &format!(
                        "leader_request={} leader_trace={:032x}",
                        flight.leader_request(),
                        flight.leader_trace()
                    ),
                );
            }
            flight
        }
    };
    state
        .obs
        .gauge("serve.live_flights", state.board.live() as f64);
    match flight.wait(state.max_cell) {
        None => {
            state.obs.counter("serve.timeout_504", 1);
            Response::error(
                504,
                "deadline",
                "no result within the request budget; the computation continues and its \
                 result will be cached",
            )
        }
        Some(Ok(body)) => Response::ok_json(body),
        Some(Err(detail)) => Response::error(500, "compute_failed", &detail),
    }
}

// ---------------------------------------------------------------------
// /v1/cell
// ---------------------------------------------------------------------

/// Maps a chip token (`i7-45`, `atom-45`, a paper short name, ...) to a
/// processor.
#[must_use]
pub fn chip_by_token(token: &str) -> Option<ProcessorId> {
    let t = token.to_ascii_lowercase();
    let by_alias = match t.as_str() {
        "p4-130" | "pentium4-130" | "pentium4" | "p4" => Some(ProcessorId::Pentium4_130),
        "c2d-65" => Some(ProcessorId::Core2DuoE6600),
        "c2q-65" | "c2q" => Some(ProcessorId::Core2QuadQ6600),
        "i7-45" | "i7" => Some(ProcessorId::CoreI7_920),
        "atom-45" | "atom" => Some(ProcessorId::Atom230),
        "c2d-45" => Some(ProcessorId::Core2DuoE7600),
        "atomd-45" | "atomd" => Some(ProcessorId::AtomD510),
        "i5-32" | "i5" => Some(ProcessorId::CoreI5_670),
        _ => None,
    };
    by_alias.or_else(|| {
        ProcessorId::ALL
            .into_iter()
            .find(|id| id.spec().short.eq_ignore_ascii_case(token))
    })
}

/// The canonical chip tokens, for 404 bodies.
fn chip_tokens() -> &'static str {
    "p4-130, c2d-65, c2q-65, i7-45, atom-45, c2d-45, atomd-45, i5-32"
}

/// Builds a configuration from a descriptor like `4C2T@2.0` (cores,
/// threads per core, GHz) or `stock`, plus the optional turbo override.
///
/// # Errors
///
/// Returns a human-readable description of the first malformed piece of
/// the descriptor (topology, clock, or turbo flag).
pub fn build_config(
    id: ProcessorId,
    descriptor: &str,
    turbo: Option<&str>,
) -> Result<ChipConfig, String> {
    let mut config = ChipConfig::stock(id.spec());
    if !descriptor.eq_ignore_ascii_case("stock") {
        let (topology, ghz) = descriptor
            .split_once('@')
            .ok_or_else(|| format!("config {descriptor:?} is not stock or NCMT@GHz"))?;
        let topo = topology.to_ascii_lowercase();
        let (cores, threads) = topo
            .strip_suffix('t')
            .and_then(|s| s.split_once('c'))
            .ok_or_else(|| format!("topology {topology:?} is not like 4C2T"))?;
        let cores: usize = cores
            .parse()
            .map_err(|_| format!("bad core count {cores:?}"))?;
        let threads: usize = threads
            .parse()
            .map_err(|_| format!("bad thread count {threads:?}"))?;
        let ghz: f64 = ghz.parse().map_err(|_| format!("bad clock {ghz:?}"))?;
        config = config
            .with_cores(cores)
            .map_err(|e| e.to_string())?
            .with_smt(threads > 1)
            .map_err(|e| e.to_string())?
            .with_clock(Hertz::from_ghz(ghz))
            .map_err(|e| e.to_string())?;
    }
    match turbo {
        None => {}
        Some("on") => config = config.with_turbo(true).map_err(|e| e.to_string())?,
        Some("off") => config = config.with_turbo(false).map_err(|e| e.to_string())?,
        Some(other) => return Err(format!("turbo must be on or off, got {other:?}")),
    }
    Ok(config)
}

fn cell(state: &Arc<ServeState>, req: &Request) -> Response {
    let Some(chip) = req.param("chip") else {
        return Response::error(400, "missing_param", "chip= is required");
    };
    let Some(id) = chip_by_token(chip) else {
        return Response::error(
            404,
            "unknown_chip",
            &format!("no chip {chip:?}; valid tokens: {}", chip_tokens()),
        );
    };
    let Some(workload_name) = req.param("workload") else {
        return Response::error(400, "missing_param", "workload= is required");
    };
    // Normalization needs the reference times of the harness's own
    // workload set, so the endpoint serves exactly that set.
    let Some(workload) = state
        .harness
        .workloads()
        .iter()
        .copied()
        .find(|w| w.name() == workload_name)
    else {
        let served: Vec<&str> = state.harness.workloads().iter().map(|w| w.name()).collect();
        return Response::error(
            404,
            "unknown_workload",
            &format!("no workload {workload_name:?}; served set: {}", served.join(", ")),
        );
    };
    let config = match build_config(id, req.param("config").unwrap_or("stock"), req.param("turbo"))
    {
        Ok(c) => c,
        Err(detail) => return Response::error(400, "bad_config", &detail),
    };
    // Key on structural fingerprints, not labels: two configurations
    // whose labels round to the same text are still distinct cells.
    let key = format!(
        "cell:{:016x}:{:016x}",
        config_fingerprint(&config),
        workload_fingerprint(workload)
    );
    let compute_state = Arc::clone(state);
    flight_json(state, key, move || {
        compute_state.obs.counter("serve.cells_measured", 1);
        let (eval, health) = compute_state
            .harness
            .try_evaluate_workload(&config, workload)
            .map_err(|e| e.to_string())?;
        let m = &eval.measurement;
        let mut body = String::with_capacity(256);
        body.push_str("{\"chip\":");
        push_json_string(&mut body, config.spec().short);
        body.push_str(",\"config\":");
        push_json_string(&mut body, &config.label());
        body.push_str(",\"workload\":");
        push_json_string(&mut body, m.workload);
        body.push_str(",\"group\":");
        push_json_string(&mut body, &m.group.to_string());
        body.push_str(",\"seconds\":");
        push_json_number(&mut body, m.time.mean());
        body.push_str(",\"watts\":");
        push_json_number(&mut body, m.power.mean());
        body.push_str(",\"joules\":");
        push_json_number(&mut body, m.time.mean() * m.power.mean());
        body.push_str(",\"perf_norm\":");
        push_json_number(&mut body, eval.perf_norm);
        body.push_str(",\"energy_norm\":");
        push_json_number(&mut body, eval.energy_norm);
        body.push_str(",\"health\":{\"retries\":");
        push_json_number(&mut body, health.retries as f64);
        body.push_str(",\"recalibrations\":");
        push_json_number(&mut body, health.recalibrations as f64);
        body.push_str(",\"rejected_outliers\":");
        push_json_number(&mut body, health.rejected_outliers as f64);
        body.push_str("}}\n");
        Ok(body)
    })
}

// ---------------------------------------------------------------------
// /v1/sweep and /v1/pareto
// ---------------------------------------------------------------------

fn space_configs(space: &str) -> Option<(&'static str, Vec<ChipConfig>)> {
    match space {
        "stock" => Some(("stock", lhr_core::configs::stock_configs())),
        "45nm" => Some(("45nm", lhr_core::configs::pareto_45nm_configs())),
        _ => None,
    }
}

fn sweep(state: &Arc<ServeState>, req: &Request) -> Response {
    let space = req.param("space").unwrap_or("stock");
    let Some((space, configs)) = space_configs(space) else {
        return Response::error(404, "unknown_space", "space must be stock or 45nm");
    };
    let compute_state = Arc::clone(state);
    flight_json(state, format!("sweep:{space}"), move || {
        let report = compute_state.harness.sweep(&configs);
        let mut body = String::with_capacity(1024);
        body.push_str("{\"space\":");
        push_json_string(&mut body, space);
        body.push_str(",\"cells\":[");
        for (i, cell) in report.cells.iter().enumerate() {
            if i > 0 {
                body.push(',');
            }
            body.push_str("{\"label\":");
            push_json_string(&mut body, &cell.label);
            match cell.metrics() {
                Some(m) => {
                    body.push_str(",\"perf_w\":");
                    push_json_number(&mut body, m.perf_w);
                    body.push_str(",\"power_w\":");
                    push_json_number(&mut body, m.power_w);
                    body.push_str(",\"energy_w\":");
                    push_json_number(&mut body, m.energy_w);
                }
                None => body.push_str(",\"perf_w\":null,\"power_w\":null,\"energy_w\":null"),
            }
            body.push_str(",\"clean\":");
            body.push_str(if cell.health.is_clean() { "true" } else { "false" });
            body.push('}');
        }
        body.push_str("],\"health\":");
        push_json_string(&mut body, &report.health.render());
        body.push_str("}\n");
        Ok(body)
    })
}

fn group_by_token(token: &str) -> Option<Option<Group>> {
    match token {
        "avg" => Some(None),
        "native-nonscalable" | "nn" => Some(Some(Group::NativeNonScalable)),
        "native-scalable" | "ns" => Some(Some(Group::NativeScalable)),
        "java-nonscalable" | "jn" => Some(Some(Group::JavaNonScalable)),
        "java-scalable" | "js" => Some(Some(Group::JavaScalable)),
        _ => None,
    }
}

fn pareto_endpoint(state: &Arc<ServeState>, req: &Request) -> Response {
    let metric = req.param("metric").unwrap_or("avg").to_owned();
    let Some(group) = group_by_token(&metric) else {
        return Response::error(
            404,
            "unknown_metric",
            "metric must be avg, native-nonscalable, native-scalable, java-nonscalable, \
             or java-scalable",
        );
    };
    let space = req.param("space").unwrap_or("45nm");
    let Some((space, configs)) = space_configs(space) else {
        return Response::error(404, "unknown_space", "space must be stock or 45nm");
    };
    let compute_state = Arc::clone(state);
    flight_json(state, format!("pareto:{space}:{metric}"), move || {
        let analysis = pareto::run_configs(&compute_state.harness, &configs);
        let mut body = String::with_capacity(1024);
        body.push_str("{\"space\":");
        push_json_string(&mut body, space);
        body.push_str(",\"metric\":");
        push_json_string(&mut body, &metric);
        body.push_str(",\"efficient\":[");
        for (i, label) in analysis.efficient_labels(group).iter().enumerate() {
            if i > 0 {
                body.push(',');
            }
            push_json_string(&mut body, label);
        }
        body.push_str("],\"candidates\":[");
        for (i, c) in analysis.candidates.iter().enumerate() {
            if i > 0 {
                body.push(',');
            }
            let (perf, energy) = match group {
                None => (c.metrics.perf_w, c.metrics.energy_w),
                Some(g) => (c.metrics.perf[&g], c.metrics.energy[&g]),
            };
            body.push_str("{\"label\":");
            push_json_string(&mut body, &c.label);
            body.push_str(",\"stock\":");
            body.push_str(if c.stock { "true" } else { "false" });
            body.push_str(",\"perf\":");
            push_json_number(&mut body, perf);
            body.push_str(",\"energy\":");
            push_json_number(&mut body, energy);
            body.push('}');
        }
        body.push_str("]}\n");
        Ok(body)
    })
}

// ---------------------------------------------------------------------
// /v1/findings
// ---------------------------------------------------------------------

fn findings(state: &Arc<ServeState>) -> Response {
    let compute_state = Arc::clone(state);
    flight_json(state, "findings".to_owned(), move || {
        let harness = &compute_state.harness;
        let i7 = harness.try_evaluate_config(&ChipConfig::stock(ProcessorId::CoreI7_920.spec()));
        let atom = harness.try_evaluate_config(&ChipConfig::stock(ProcessorId::Atom230.spec()));
        let (Some(i7m), Some(atomm)) = (i7.metrics(), atom.metrics()) else {
            return Err("stock evaluation produced no successful measurements".to_owned());
        };
        // Power per transistor across the eight chips, from spec data
        // alone (Figure 11's densest outlier).
        let per_transistor = |id: ProcessorId| {
            let s = id.spec();
            s.power.tdp_w / s.transistors_m
        };
        let p4 = per_transistor(ProcessorId::Pentium4_130);
        let worst_other = ProcessorId::ALL
            .into_iter()
            .filter(|&id| id != ProcessorId::Pentium4_130)
            .map(per_transistor)
            .fold(f64::NEG_INFINITY, f64::max);
        let mut body = String::with_capacity(512);
        body.push_str("{\"findings\":[");
        push_finding(
            &mut body,
            true,
            "i7-outperforms-atom",
            i7m.perf_w > atomm.perf_w,
            &format!(
                "i7 (45) weighted perf {:.2} vs Atom (45) {:.2}",
                i7m.perf_w, atomm.perf_w
            ),
        );
        push_finding(
            &mut body,
            false,
            "atom-draws-far-less-power",
            atomm.power_w < i7m.power_w / 4.0,
            &format!(
                "Atom (45) mean power {:.1} W vs i7 (45) {:.1} W",
                atomm.power_w, i7m.power_w
            ),
        );
        push_finding(
            &mut body,
            false,
            "pentium4-power-per-transistor-outlier",
            p4 > worst_other,
            &format!(
                "Pentium4 (130) {:.3} W/Mtransistor vs next highest {:.3}",
                p4, worst_other
            ),
        );
        body.push_str("]}\n");
        Ok(body)
    })
}

fn push_finding(body: &mut String, first: bool, id: &str, holds: bool, detail: &str) {
    if !first {
        body.push(',');
    }
    body.push_str("{\"id\":");
    push_json_string(body, id);
    body.push_str(",\"holds\":");
    body.push_str(if holds { "true" } else { "false" });
    body.push_str(",\"detail\":");
    push_json_string(body, detail);
    body.push('}');
}

// ---------------------------------------------------------------------
// /v1/query
// ---------------------------------------------------------------------

/// `POST /v1/query` (and `GET /v1/query?q=...` for short queries): runs
/// one measurement-store DSL query and returns the result table as an
/// aligned text table (`?format=text`, the default -- byte-identical to
/// what the `lhr_query` CLI prints for the same store) or as JSON
/// (`?format=json`). The query text is the POST body, or the `q=`
/// parameter when the body is empty.
///
/// Queries execute against whatever the store holds *right now* --
/// in-memory, no engine work, no flight board -- so a malformed query
/// costs a typed `400` with a byte position and nothing else.
fn query_endpoint(state: &Arc<ServeState>, req: &Request) -> Response {
    let Some(store) = state.store.as_ref() else {
        return Response::error(
            503,
            "store_unavailable",
            "this server runs without a measurement store; boot with --store-dir to enable \
             /v1/query",
        );
    };
    let text = if req.body.trim().is_empty() {
        req.param("q").unwrap_or("").trim().to_owned()
    } else {
        req.body.trim().to_owned()
    };
    if text.is_empty() {
        return Response::error(
            400,
            "query_missing",
            "send the query text as the POST body (or q= for short queries)",
        );
    }
    let format = req.param("format").unwrap_or("text");
    let table = match store.query(&text) {
        Ok(table) => table,
        Err(lhr_store::QueryError::Parse(e)) => {
            state.obs.counter("serve.query_parse_errors", 1);
            return Response::error(400, "query_parse_error", &e.to_string());
        }
        Err(lhr_store::QueryError::Plan(e)) => {
            state.obs.counter("serve.query_plan_errors", 1);
            return Response::error(400, "query_plan_error", &e.to_string());
        }
    };
    state.obs.counter("serve.queries", 1);
    match format {
        "json" => {
            let mut body = table.render_json();
            body.push('\n');
            Response::ok_json(body)
        }
        "text" => Response::ok_text(table.render_text()),
        other => Response::error(
            400,
            "bad_format",
            &format!("format must be json or text, got {other:?}"),
        ),
    }
}

// ---------------------------------------------------------------------
// /v1/traces and /v1/trace/<id>
// ---------------------------------------------------------------------

fn span_store_unavailable() -> Response {
    Response::error(
        503,
        "span_store_unavailable",
        "this server runs without a span store; boot with --span-store to enable trace search",
    )
}

/// `GET /v1/traces?name=<substr>&status=error&min_dur_ns=N&limit=N`:
/// searches the span table and returns per-trace summaries, newest
/// first. Answers from the in-memory mirror of the table -- no disk
/// reads, no engine work.
fn traces_search(state: &Arc<ServeState>, req: &Request) -> Response {
    let Some(spans) = state.telemetry.spans.as_ref() else {
        return span_store_unavailable();
    };
    let query = lhr_store::SpanQuery {
        name: req.param("name").unwrap_or("").to_owned(),
        errors_only: req.param("status") == Some("error"),
        min_dur_ns: req
            .param("min_dur_ns")
            .and_then(|v| v.parse().ok())
            .unwrap_or(0),
        limit: req.param("limit").and_then(|v| v.parse().ok()).unwrap_or(50),
    };
    let mut body = lhr_store::summaries_json(&spans.table().search(&query));
    body.push('\n');
    Response::ok_json(body)
}

/// `GET /v1/trace/<32-hex-id>`: the stitched span tree of one trace.
/// `?format=fragment` returns this process's raw rows instead -- what
/// the router fetches from each backend before stitching the
/// multi-process view itself.
fn trace_by_id(state: &Arc<ServeState>, id: &str, req: &Request) -> Response {
    let Some(spans) = state.telemetry.spans.as_ref() else {
        return span_store_unavailable();
    };
    let Ok(trace) = u128::from_str_radix(id.trim(), 16) else {
        return Response::error(400, "bad_trace_id", "trace id must be hex (32 digits)");
    };
    let rows = spans.table().trace_rows(trace);
    if rows.is_empty() {
        return Response::error(404, "no_such_trace", "no persisted spans for that trace id");
    }
    let mut body = if req.param("format") == Some("fragment") {
        lhr_store::fragment_json(trace, &rows)
    } else {
        lhr_store::tree_json(trace, &lhr_store::stitch(&rows))
    };
    body.push('\n');
    Response::ok_json(body)
}

// ---------------------------------------------------------------------
// /v1/artifacts
// ---------------------------------------------------------------------

/// Whether a decoded artifact name is safe to serve: a bare file name,
/// no traversal, no absolute paths, no hidden/temp files. Percent
/// escapes were already decoded by the HTTP layer, so `%2e%2e` cannot
/// sneak past this check.
#[must_use]
pub fn safe_artifact_name(name: &str) -> bool {
    !name.is_empty()
        && !name.starts_with('.')
        && !name.contains('/')
        && !name.contains('\\')
        && !name.contains("..")
        && !name.contains('\0')
}

fn artifact_index(state: &Arc<ServeState>) -> Response {
    let entries = match lhr_bench::artifact::list_artifacts(&state.artifact_dir) {
        Ok(entries) => entries,
        Err(_) => return Response::error(404, "no_artifacts", "artifact directory not found"),
    };
    let mut body = String::from("{\"artifacts\":[");
    for (i, e) in entries.iter().enumerate() {
        if i > 0 {
            body.push(',');
        }
        body.push_str("{\"name\":");
        push_json_string(&mut body, &e.name);
        body.push_str(",\"bytes\":");
        push_json_number(&mut body, e.bytes as f64);
        body.push('}');
    }
    body.push_str("]}\n");
    Response::ok_json(body)
}

fn artifact(state: &Arc<ServeState>, name: &str) -> Response {
    if !safe_artifact_name(name) {
        // Traversal attempts get the same 404 as missing files: the
        // response must not reveal whether the path resolved.
        state.obs.counter("serve.artifact_rejects", 1);
        return Response::error(404, "no_such_artifact", "no artifact by that name");
    }
    match std::fs::read(state.artifact_dir.join(name)) {
        Ok(bytes) => Response {
            status: 200,
            content_type: content_type_for(name),
            body: bytes,
            retry_after: None,
        },
        Err(_) => Response::error(404, "no_such_artifact", "no artifact by that name"),
    }
}

fn content_type_for(name: &str) -> &'static str {
    match Path::new(name).extension().and_then(|e| e.to_str()) {
        Some("json" | "jsonl") => "application/json",
        Some("csv") => "text/csv",
        _ => "text/plain; charset=utf-8",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chip_tokens_resolve_to_the_eight_processors() {
        for (token, id) in [
            ("p4-130", ProcessorId::Pentium4_130),
            ("c2d-65", ProcessorId::Core2DuoE6600),
            ("c2q-65", ProcessorId::Core2QuadQ6600),
            ("i7-45", ProcessorId::CoreI7_920),
            ("atom-45", ProcessorId::Atom230),
            ("c2d-45", ProcessorId::Core2DuoE7600),
            ("atomd-45", ProcessorId::AtomD510),
            ("i5-32", ProcessorId::CoreI5_670),
        ] {
            assert_eq!(chip_by_token(token), Some(id), "{token}");
        }
        // The paper's short names work too, and junk does not.
        assert_eq!(chip_by_token("i7 (45)"), Some(ProcessorId::CoreI7_920));
        assert_eq!(chip_by_token("z80"), None);
    }

    #[test]
    fn config_descriptors_build_and_reject() {
        let id = ProcessorId::CoreI7_920;
        let stock = build_config(id, "stock", None).unwrap();
        assert_eq!(stock, ChipConfig::stock(id.spec()));
        let shaped = build_config(id, "2C1T@2.0", None).unwrap();
        assert_eq!(shaped.active_cores(), 2);
        assert!(!shaped.smt_enabled());
        assert!((shaped.clock().as_ghz() - 2.0).abs() < 1e-9);
        assert!(build_config(id, "nonsense", None).is_err());
        assert!(build_config(id, "99C1T@2.0", None).is_err(), "too many cores");
        assert!(build_config(id, "stock", Some("sideways")).is_err());
    }

    #[test]
    fn artifact_names_reject_traversal_and_hidden_files() {
        assert!(safe_artifact_name("table4.txt"));
        assert!(safe_artifact_name("figure7_scaling.txt"));
        for bad in [
            "",
            "..",
            "../secrets",
            "a/../b",
            "/etc/passwd",
            "sub/dir.txt",
            "back\\slash",
            ".hidden",
            ".table4.txt.tmp.1",
            "nul\0byte",
        ] {
            assert!(!safe_artifact_name(bad), "{bad:?} must be rejected");
        }
    }
}
