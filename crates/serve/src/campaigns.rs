//! Multi-tenant campaign orchestration inside the server.
//!
//! The paper's grid -- (chip x configuration x workload) -- was
//! measured by week-long offline campaigns; `lhr-serve` turns the same
//! engine into an interactive service. This module closes the loop:
//! `POST /v1/campaigns` submits a sweep spec that runs *inside* the
//! server, interleaved with interactive traffic on the same worker
//! pool, surviving anything short of disk loss.
//!
//! # Scheduling
//!
//! Campaign cells ride the worker pool's **background lane** (see
//! [`crate::queue`]): a worker only picks one up when no interactive
//! connection is waiting, so campaigns soak up idle capacity without
//! adding queueing latency to `/v1/cell` traffic. Which campaign's cell
//! goes next is decided by a three-level policy, applied in order:
//!
//! 1. **Priority lane** -- `priority=high` campaigns are considered
//!    strictly before `priority=normal` ones (but a token-dry high lane
//!    never blocks the normal lane: the scheduler is work-conserving).
//! 2. **Fair share (stride)** -- among tenants with runnable cells,
//!    the tenant with the lowest *pass* value wins; dispatching a cell
//!    advances the tenant's pass by `1/weight`. Over time each tenant's
//!    cell share converges to `weight / sum(weights)` regardless of how
//!    many campaigns each submits.
//! 3. **Quota (token bucket)** -- each tenant accrues `quota` tokens
//!    per second (burst = one second's worth, minimum 1); a dispatch
//!    spends one token. A token-dry tenant is skipped and the deferral
//!    is counted (`campaign.quota_deferrals`).
//!
//! # Checkpointed preemption
//!
//! Every campaign owns a write-ahead journal
//! (`<campaign-dir>/<id>.jsonl`) in the exact format of the offline
//! campaign driver ([`lhr_bench::campaign`]): header line, one sealed
//! line per resolved cell, artifact checksums, and `{"event":...}`
//! lifecycle markers, each line fsynced before the in-memory state
//! changes. `POST /v1/campaigns/<id>/preempt` stops future dispatch
//! (in-flight cells finish -- abandon, never kill); `/resume` picks the
//! campaign back up. A SIGKILL at any byte is equivalent to a
//! preemption: on reboot with `--resume`, [`Orchestrator::resume_scan`]
//! replays every journal, preloads the measured cells into the runner
//! cache, and re-measures only what is missing. Because measurements
//! are pure functions of (configuration, workload) under fixed seeds
//! and every `f64` round-trips bit-exactly, the resumed campaign's
//! artifact is **byte-identical** to an uninterrupted run's -- the
//! property the chaos harness (`lhr_bench::chaos`) kills processes to
//! prove.
//!
//! # State machine
//!
//! ```text
//!            submit                    all cells resolved
//!   POST ──► Queued ──► Running ────────────────────────► Done
//!               ▲          │ ▲                              ▲
//!               │   preempt│ │resume                        │
//!               │          ▼ │                              │
//!               └──────= Preempted ──(boot --resume)────────┘
//!                          (in-flight cells still complete
//!                           and are journaled)
//! ```

use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use lhr_bench::artifact::{fnv64, write_atomic};
use lhr_bench::campaign::{load_journal, parse_str, JournalWriter};
use lhr_core::{
    Evaluation, Harness, MeasureError, MeasureErrorKind, MeasureHealth, RetryPolicy,
    RunMeasurement, UnitOutcome, UnitReport,
};
use lhr_obs::context::{self, Ctx};
use lhr_obs::{push_json_number, push_json_string, Obs};
use lhr_uarch::ChipConfig;
use lhr_workloads::Workload;

use crate::handlers::{build_config, chip_by_token, ServeState};
use crate::http::{Method, Request, Response};

/// Most campaigns a tenant may have active (queued, running, or
/// preempted) at once; beyond it, `429 Too Many Requests`.
pub const PER_TENANT_ACTIVE_CAP: usize = 16;

/// The scheduler's priority lane.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Lane {
    /// Considered strictly before the normal lane.
    High,
    /// The default lane.
    Normal,
}

impl Lane {
    fn parse(token: &str) -> Result<Self, String> {
        match token {
            "high" => Ok(Lane::High),
            "normal" => Ok(Lane::Normal),
            other => Err(format!("priority must be high or normal, got {other:?}")),
        }
    }

    fn as_str(self) -> &'static str {
        match self {
            Lane::High => "high",
            Lane::Normal => "normal",
        }
    }
}

/// A campaign's lifecycle phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Submitted; no cell dispatched yet.
    Queued,
    /// At least one cell dispatched and not preempted.
    Running,
    /// Dispatch stopped by preempt (or restored from a journal whose
    /// last lifecycle event was `preempted`); in-flight cells from
    /// before the preemption still complete and are journaled.
    Preempted,
    /// Every cell resolved and the artifact written and journaled.
    Done,
}

impl Phase {
    fn as_str(self) -> &'static str {
        match self {
            Phase::Queued => "queued",
            Phase::Running => "running",
            Phase::Preempted => "preempted",
            Phase::Done => "done",
        }
    }
}

/// A validated campaign specification (the parsed POST parameters).
#[derive(Debug, Clone)]
pub struct CampaignSpec {
    /// Owning tenant (fair-share and quota accounting key).
    pub tenant: String,
    /// Priority lane.
    pub lane: Lane,
    /// Fair-share weight (stride scheduling: pass advances by
    /// `1/weight` per dispatched cell).
    pub weight: f64,
    /// Tenant cells/second quota (token bucket refill rate).
    pub quota: f64,
    /// Chip tokens, as submitted (canonical order of the unit grid).
    pub chips: Vec<String>,
    /// Configuration descriptor (`stock` or `NCMT@GHz`).
    pub descriptor: String,
    /// Workload names (subset of the harness's served set).
    pub workloads: Vec<String>,
}

impl CampaignSpec {
    /// Parses and validates a submission request's query parameters.
    /// Bodies are deliberately not used: the whole spec fits in a query
    /// string, and the HTTP layer ignores bodies by design.
    fn from_request(req: &Request) -> Result<Self, Response> {
        let tenant = req.param("tenant").unwrap_or("default").to_owned();
        if tenant.is_empty()
            || tenant.len() > 32
            || !tenant
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '-' || c == '_')
        {
            return Err(Response::error(
                400,
                "bad_tenant",
                "tenant must be 1-32 chars of [a-zA-Z0-9_-]",
            ));
        }
        let lane = match Lane::parse(req.param("priority").unwrap_or("normal")) {
            Ok(l) => l,
            Err(detail) => return Err(Response::error(400, "bad_priority", &detail)),
        };
        let weight = match req.param("weight").unwrap_or("1").parse::<f64>() {
            Ok(w) if w > 0.0 && w <= 100.0 => w,
            _ => {
                return Err(Response::error(
                    400,
                    "bad_weight",
                    "weight must be a number in (0, 100]",
                ))
            }
        };
        let quota = match req.param("quota").unwrap_or("8").parse::<f64>() {
            Ok(q) if q > 0.0 && q <= 1000.0 => q,
            _ => {
                return Err(Response::error(
                    400,
                    "bad_quota",
                    "quota must be cells/sec in (0, 1000]",
                ))
            }
        };
        let Some(chips_csv) = req.param("chips") else {
            return Err(Response::error(
                400,
                "missing_param",
                "chips= is required (comma-separated chip tokens)",
            ));
        };
        let chips: Vec<String> = chips_csv
            .split(',')
            .filter(|t| !t.is_empty())
            .map(str::to_owned)
            .collect();
        if chips.is_empty() {
            return Err(Response::error(400, "missing_param", "chips= is empty"));
        }
        let descriptor = req.param("config").unwrap_or("stock").to_owned();
        let workloads: Vec<String> = req
            .param("workloads")
            .map(|csv| {
                csv.split(',')
                    .filter(|t| !t.is_empty())
                    .map(str::to_owned)
                    .collect()
            })
            .unwrap_or_default();
        Ok(Self {
            tenant,
            lane,
            weight,
            quota,
            chips,
            descriptor,
            workloads,
        })
    }

    /// Resolves the spec against the harness into the unit grid
    /// (chip-major: every workload of chip 0, then chip 1, ...).
    /// Validation happens here, before any state is created.
    fn resolve(&self, harness: &Harness) -> Result<Vec<(ChipConfig, &'static Workload)>, Response> {
        let mut configs = Vec::with_capacity(self.chips.len());
        for token in &self.chips {
            let Some(id) = chip_by_token(token) else {
                return Err(Response::error(
                    404,
                    "unknown_chip",
                    &format!("no chip {token:?}"),
                ));
            };
            let config = build_config(id, &self.descriptor, None)
                .map_err(|detail| Response::error(400, "bad_config", &detail))?;
            configs.push(config);
        }
        let served = harness.workloads();
        let workloads: Vec<&'static Workload> = if self.workloads.is_empty() {
            served.to_vec()
        } else {
            let mut out = Vec::with_capacity(self.workloads.len());
            for name in &self.workloads {
                let Some(w) = served.iter().copied().find(|w| w.name() == name.as_str())
                else {
                    let names: Vec<&str> = served.iter().map(|w| w.name()).collect();
                    return Err(Response::error(
                        404,
                        "unknown_workload",
                        &format!("no workload {name:?}; served set: {}", names.join(", ")),
                    ));
                };
                out.push(w);
            }
            out
        };
        let mut units = Vec::with_capacity(configs.len() * workloads.len());
        for config in &configs {
            for w in &workloads {
                units.push((config.clone(), *w));
            }
        }
        Ok(units)
    }
}

/// One campaign cell handed to a pool worker through the background
/// lane.
#[derive(Debug)]
pub struct CellTask {
    /// Owning campaign id.
    pub campaign: String,
    /// Index into the campaign's unit grid.
    pub unit: usize,
    /// The configuration to measure.
    pub config: ChipConfig,
    /// The workload to measure.
    pub workload: &'static Workload,
    /// The submitting request's trace context: cells run on pool
    /// workers long after the `202` went out, but their spans still
    /// belong to the trace of the request that created the campaign.
    pub ctx: Ctx,
}

/// A unit's scheduling state.
#[derive(Debug)]
enum Slot {
    /// Not yet dispatched; `ready_at` delays a retry (seeded backoff).
    Pending { ready_at: Option<Instant> },
    /// Handed to a worker; exactly one worker will resolve it.
    InFlight,
    /// Measured (possibly preloaded from the journal on resume).
    Ready {
        evaluation: Evaluation,
        health: MeasureHealth,
    },
    /// Permanently failed (retry budget exhausted or non-transient).
    Failed { error: String },
}

#[derive(Debug)]
struct Unit {
    config: ChipConfig,
    workload: &'static Workload,
    /// `config.label()`, cached: it names the cell in the journal.
    label: String,
    slot: Slot,
    attempts: u32,
}

#[derive(Debug)]
struct Campaign {
    id: String,
    spec: CampaignSpec,
    units: Vec<Unit>,
    phase: Phase,
    inflight: usize,
    /// Cells replayed from the journal at boot instead of re-measured.
    preloaded: usize,
    /// Claimed by the resolver that will render the artifact, so two
    /// workers finishing the last two cells cannot both finalize.
    finalizing: bool,
    artifact: Option<String>,
    journal: Arc<JournalWriter>,
    /// The submitting request's trace context, inherited by every cell.
    /// Resumed campaigns get a zeroed context: the original trace ended
    /// with the process that recorded it.
    ctx: Ctx,
}

impl Campaign {
    fn ready_count(&self) -> usize {
        self.units
            .iter()
            .filter(|u| matches!(u.slot, Slot::Ready { .. }))
            .count()
    }

    fn failed_count(&self) -> usize {
        self.units
            .iter()
            .filter(|u| matches!(u.slot, Slot::Failed { .. }))
            .count()
    }

    fn resolved_count(&self) -> usize {
        self.units
            .iter()
            .filter(|u| matches!(u.slot, Slot::Ready { .. } | Slot::Failed { .. }))
            .count()
    }

    /// Index of the first dispatchable unit, if any.
    fn next_pending(&self, now: Instant) -> Option<usize> {
        self.units.iter().position(|u| match u.slot {
            Slot::Pending { ready_at } => ready_at.is_none_or(|t| t <= now),
            _ => false,
        })
    }

    /// Whether the scheduler should consider this campaign at all.
    fn dispatchable(&self) -> bool {
        matches!(self.phase, Phase::Queued | Phase::Running)
    }
}

/// Per-tenant scheduling state (stride pass + token bucket).
#[derive(Debug)]
struct Tenant {
    weight: f64,
    /// Stride pass: lowest pass dispatches next; advances by `1/weight`.
    pass: f64,
    /// Token bucket: refilled at `quota` tokens/sec, capped at one
    /// second's burst; a dispatch spends one token.
    quota: f64,
    tokens: f64,
    last_refill: Instant,
    cells_done: u64,
}

impl Tenant {
    fn burst(&self) -> f64 {
        self.quota.max(1.0)
    }

    fn refill(&mut self, now: Instant) {
        let dt = now.duration_since(self.last_refill).as_secs_f64();
        self.last_refill = now;
        self.tokens = (self.tokens + dt * self.quota).min(self.burst());
    }
}

#[derive(Debug, Default)]
struct Registry {
    campaigns: Vec<Campaign>,
    tenants: std::collections::BTreeMap<String, Tenant>,
    inflight: usize,
    next_seq: u64,
}

impl Registry {
    fn campaign_mut(&mut self, id: &str) -> Option<&mut Campaign> {
        self.campaigns.iter_mut().find(|c| c.id == id)
    }

    fn campaign(&self, id: &str) -> Option<&Campaign> {
        self.campaigns.iter().find(|c| c.id == id)
    }
}

/// The campaign orchestrator: registry, fair-share scheduler state, and
/// journal directory. One per server, owned by
/// [`crate::handlers::ServeState`].
#[derive(Debug)]
pub struct Orchestrator {
    dir: PathBuf,
    inner: Mutex<Registry>,
    wake: Condvar,
    policy: RetryPolicy,
    /// Campaign cells allowed in flight at once across all campaigns
    /// (the slice of the worker pool campaigns may occupy).
    max_inflight: usize,
    stopping: AtomicBool,
}

impl Orchestrator {
    /// An orchestrator journaling into `dir`, dispatching at most
    /// `max_inflight` concurrent campaign cells. Campaign ids continue
    /// after the highest `cNNNN.jsonl` already in `dir`, so a restarted
    /// server never clobbers a prior run's journal.
    #[must_use]
    pub fn new(dir: PathBuf, max_inflight: usize) -> Self {
        let next_seq = scan_max_seq(&dir);
        Self {
            dir,
            inner: Mutex::new(Registry {
                next_seq,
                ..Registry::default()
            }),
            wake: Condvar::new(),
            policy: RetryPolicy::default(),
            max_inflight: max_inflight.max(1),
            stopping: AtomicBool::new(false),
        }
    }

    /// The journal directory.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Stops the scheduler: no further cells dispatch. In-flight cells
    /// resolve and are journaled (the drain path calls this before
    /// closing the queue).
    pub fn stop(&self) {
        self.stopping.store(true, Ordering::Relaxed);
        self.wake.notify_all();
    }

    /// Whether [`Orchestrator::stop`] was called.
    #[must_use]
    pub fn stopping(&self) -> bool {
        self.stopping.load(Ordering::Relaxed)
    }

    /// Parks the scheduler thread until new work may exist or `timeout`
    /// passes (retry backoffs and quota refills need the periodic poll).
    pub fn wait_for_work(&self, timeout: Duration) {
        let guard = self.inner.lock().expect("campaign registry lock");
        let _unused = self
            .wake
            .wait_timeout(guard, timeout)
            .expect("campaign registry lock");
    }

    // -----------------------------------------------------------------
    // Submission
    // -----------------------------------------------------------------

    /// Submits a new campaign: validates the spec, writes the journal
    /// header, registers the campaign as `Queued`, and wakes the
    /// scheduler. Returns the submission-status JSON body.
    ///
    /// # Errors
    ///
    /// A ready-to-send error [`Response`] (400/404 validation, 429 over
    /// the per-tenant cap, 500 on journal I/O failure).
    pub fn submit(&self, req: &Request, state: &ServeState) -> Result<Response, Response> {
        let spec = CampaignSpec::from_request(req)?;
        let grid = spec.resolve(&state.harness)?;
        let id = {
            let mut reg = self.inner.lock().expect("campaign registry lock");
            let active = reg
                .campaigns
                .iter()
                .filter(|c| c.spec.tenant == spec.tenant && c.phase != Phase::Done)
                .count();
            if active >= PER_TENANT_ACTIVE_CAP {
                return Err(Response::error(
                    429,
                    "tenant_over_cap",
                    &format!(
                        "tenant {:?} already has {active} active campaigns (cap {PER_TENANT_ACTIVE_CAP})",
                        spec.tenant
                    ),
                ));
            }
            reg.next_seq += 1;
            format!("c{:04}", reg.next_seq)
        };
        // Journal file I/O happens outside the registry lock; the burned
        // sequence number on failure is harmless.
        let journal = JournalWriter::create(&self.dir.join(format!("{id}.jsonl")))
            .and_then(|j| {
                j.record_raw(header_body(&id, &spec))?;
                Ok(j)
            })
            .map_err(|e| Response::error(500, "journal_io", &format!("cannot start journal: {e}")))?;
        let units = grid
            .into_iter()
            .map(|(config, workload)| Unit {
                label: config.label(),
                config,
                workload,
                slot: Slot::Pending { ready_at: None },
                attempts: 0,
            })
            .collect::<Vec<_>>();
        let total = units.len();
        let mut reg = self.inner.lock().expect("campaign registry lock");
        touch_tenant(&mut reg, &spec);
        reg.campaigns.push(Campaign {
            id: id.clone(),
            spec,
            units,
            phase: Phase::Queued,
            inflight: 0,
            preloaded: 0,
            finalizing: false,
            artifact: None,
            journal: Arc::new(journal),
            ctx: context::capture(),
        });
        let body = status_body(reg.campaign(&id).expect("just pushed"), false);
        drop(reg);
        state.obs.counter("campaign.submitted", 1);
        state.obs.counter("campaign.cells_submitted", total as u64);
        state.obs.mark("campaign.submitted", &id);
        self.publish_gauges(&state.obs);
        self.wake.notify_all();
        Ok(Response {
            status: 202,
            content_type: "application/json",
            body: body.into_bytes(),
            retry_after: None,
        })
    }

    // -----------------------------------------------------------------
    // Scheduling
    // -----------------------------------------------------------------

    /// Picks the next campaign cell to dispatch, or `None` when nothing
    /// is runnable (all token-dry, backoff-delayed, preempted, done, or
    /// the in-flight cap is reached). Marks the picked unit in-flight.
    pub fn next_cell(&self, obs: &Obs) -> Option<CellTask> {
        if self.stopping() {
            return None;
        }
        let now = Instant::now();
        let mut reg = self.inner.lock().expect("campaign registry lock");
        if reg.inflight >= self.max_inflight {
            return None;
        }
        for (_, tenant) in reg.tenants.iter_mut() {
            tenant.refill(now);
        }
        let mut quota_deferred = false;
        for lane in [Lane::High, Lane::Normal] {
            // Tenants with a runnable cell in this lane, by stride pass.
            let mut best: Option<(usize, f64)> = None; // (campaign idx, pass)
            for (idx, c) in reg.campaigns.iter().enumerate() {
                if c.spec.lane != lane || !c.dispatchable() || c.next_pending(now).is_none() {
                    continue;
                }
                let tenant = &reg.tenants[&c.spec.tenant];
                if tenant.tokens < 1.0 {
                    quota_deferred = true;
                    continue;
                }
                // Lowest pass wins; earlier submission breaks ties.
                if best.is_none_or(|(_, p)| tenant.pass < p) {
                    best = Some((idx, tenant.pass));
                }
            }
            if let Some((idx, _)) = best {
                let unit_idx = reg.campaigns[idx]
                    .next_pending(now)
                    .expect("checked above");
                let (tenant_name, task) = {
                    let c = &mut reg.campaigns[idx];
                    let unit = &mut c.units[unit_idx];
                    unit.slot = Slot::InFlight;
                    unit.attempts += 1;
                    c.inflight += 1;
                    if c.phase == Phase::Queued {
                        c.phase = Phase::Running;
                    }
                    (
                        c.spec.tenant.clone(),
                        CellTask {
                            campaign: c.id.clone(),
                            unit: unit_idx,
                            config: unit.config.clone(),
                            workload: unit.workload,
                            ctx: c.ctx,
                        },
                    )
                };
                let weight = reg.campaigns[idx].spec.weight;
                let tenant = reg
                    .tenants
                    .get_mut(&tenant_name)
                    .expect("dispatching tenant exists");
                tenant.tokens -= 1.0;
                tenant.pass += 1.0 / weight;
                reg.inflight += 1;
                let inflight = reg.inflight;
                drop(reg);
                obs.counter("campaign.cells_dispatched", 1);
                obs.gauge("campaign.inflight", inflight as f64);
                return Some(task);
            }
        }
        drop(reg);
        if quota_deferred {
            obs.counter("campaign.quota_deferrals", 1);
        }
        None
    }

    /// Returns a cell the queue refused back to `Pending` (no attempt
    /// charged: the cell never ran).
    pub fn requeue(&self, task: CellTask) {
        let mut reg = self.inner.lock().expect("campaign registry lock");
        reg.inflight = reg.inflight.saturating_sub(1);
        if let Some(c) = reg.campaign_mut(&task.campaign) {
            c.inflight = c.inflight.saturating_sub(1);
            let unit = &mut c.units[task.unit];
            unit.attempts = unit.attempts.saturating_sub(1);
            unit.slot = Slot::Pending { ready_at: None };
        }
    }

    // -----------------------------------------------------------------
    // Resolution
    // -----------------------------------------------------------------

    /// Commits a cell's outcome: journal first (write-ahead), then the
    /// in-memory slot, retrying transient failures under the seeded
    /// backoff policy, and finalizing the campaign when its last cell
    /// resolves.
    pub fn resolved(
        &self,
        task: &CellTask,
        outcome: Result<(Evaluation, MeasureHealth), MeasureError>,
        state: &ServeState,
    ) {
        let obs = &state.obs;
        // Phase 1: retry decision under the lock (retries are not
        // journaled -- only final outcomes are).
        let (journal, attempts) = {
            let mut reg = self.inner.lock().expect("campaign registry lock");
            let Some(c) = reg.campaign_mut(&task.campaign) else {
                reg.inflight = reg.inflight.saturating_sub(1);
                return;
            };
            let attempts = c.units[task.unit].attempts;
            if let Err(e) = &outcome {
                if e.kind.is_transient() && attempts < self.policy.max_attempts {
                    let key = format!("{} / {}", c.units[task.unit].label, task.workload.name());
                    let delay = self.policy.delay_s(&key, attempts);
                    c.units[task.unit].slot = Slot::Pending {
                        ready_at: Some(Instant::now() + Duration::from_secs_f64(delay)),
                    };
                    c.inflight = c.inflight.saturating_sub(1);
                    reg.inflight = reg.inflight.saturating_sub(1);
                    drop(reg);
                    obs.counter("campaign.cell_retries", 1);
                    self.wake.notify_all();
                    return;
                }
            }
            (Arc::clone(&c.journal), attempts)
        };

        // Phase 2: write-ahead journal, outside the registry lock (the
        // fsync must not stall the scheduler or /healthz).
        let report = UnitReport {
            config_label: task.config.label(),
            workload: task.workload.name(),
            attempts,
            deadline_misses: 0,
            outcome: match outcome {
                Ok((evaluation, health)) => UnitOutcome::Completed { evaluation, health },
                Err(error) => UnitOutcome::Failed { error },
            },
        };
        if let Err(e) = journal.record_unit(&report) {
            obs.counter("campaign.journal_errors", 1);
            obs.mark("campaign.journal_error", &e.to_string());
        }
        // The shared measurement store (when the server runs one) gets
        // the completed cell too. The harness's cell sink already
        // covers the normal execution path; this explicit upsert also
        // covers journal-replayed resumes, and duplicates dedup against
        // the fingerprint index at zero write cost.
        if let (Some(store), UnitOutcome::Completed { evaluation, .. }) =
            (state.store.as_ref(), &report.outcome)
        {
            let row = lhr_store::CellRow::from_evaluation(&task.config, evaluation);
            if let Err(e) = store.upsert(std::slice::from_ref(&row)) {
                obs.counter("campaign.store_errors", 1);
                obs.mark("campaign.store_error", &e.to_string());
            }
        }

        // Phase 3: commit the slot and detect completion.
        let finalize = {
            let mut reg = self.inner.lock().expect("campaign registry lock");
            reg.inflight = reg.inflight.saturating_sub(1);
            let Some(c) = reg.campaign_mut(&task.campaign) else {
                return;
            };
            c.inflight = c.inflight.saturating_sub(1);
            c.units[task.unit].slot = match report.outcome {
                UnitOutcome::Completed { evaluation, health } => {
                    obs.counter("campaign.cells_done", 1);
                    Slot::Ready { evaluation, health }
                }
                UnitOutcome::Failed { error } => {
                    obs.counter("campaign.cell_failures", 1);
                    Slot::Failed {
                        error: error.to_string(),
                    }
                }
                UnitOutcome::Skipped => unreachable!("serve campaigns never skip"),
            };
            let tenant_name = c.spec.tenant.clone();
            let complete =
                c.resolved_count() == c.units.len() && !c.finalizing && c.phase != Phase::Done;
            if complete {
                c.finalizing = true;
            }
            if let Some(t) = reg.tenants.get_mut(&tenant_name) {
                t.cells_done += 1;
            }
            complete
        };
        if finalize {
            self.finalize(&task.campaign, obs);
        }
        self.publish_gauges(obs);
        self.wake.notify_all();
    }

    /// Renders and writes the campaign's result artifact, journals its
    /// checksum, and marks the campaign `Done`. The artifact contains
    /// only values that are pure functions of the grid -- no attempt
    /// counts, timestamps, or health counters -- so an interrupted and
    /// resumed campaign produces identical bytes.
    fn finalize(&self, id: &str, obs: &Obs) {
        let (name, bytes, journal) = {
            let reg = self.inner.lock().expect("campaign registry lock");
            let Some(c) = reg.campaign(id) else { return };
            (
                format!("{id}.result.json"),
                artifact_body(c).into_bytes(),
                Arc::clone(&c.journal),
            )
        };
        let path = self.dir.join(&name);
        if let Err(e) = write_atomic(&path, &bytes) {
            obs.counter("campaign.artifact_errors", 1);
            obs.mark("campaign.artifact_error", &e.to_string());
            // Leave the campaign un-finalized; a resume can retry.
            let mut reg = self.inner.lock().expect("campaign registry lock");
            if let Some(c) = reg.campaign_mut(id) {
                c.finalizing = false;
            }
            return;
        }
        if let Err(e) = journal.record_artifact(&name, &bytes) {
            obs.counter("campaign.journal_errors", 1);
            obs.mark("campaign.journal_error", &e.to_string());
        }
        let mut reg = self.inner.lock().expect("campaign registry lock");
        if let Some(c) = reg.campaign_mut(id) {
            c.artifact = Some(name);
            c.phase = Phase::Done;
        }
        drop(reg);
        obs.counter("campaign.completed", 1);
        obs.mark("campaign.completed", id);
    }

    // -----------------------------------------------------------------
    // Preempt / resume
    // -----------------------------------------------------------------

    /// Preempts a campaign: future dispatch stops, in-flight cells
    /// complete and are journaled. The preemption itself is journaled,
    /// so a crash after it restores the campaign as preempted.
    ///
    /// # Errors
    ///
    /// A ready-to-send 404/409 [`Response`].
    pub fn preempt(&self, id: &str, obs: &Obs) -> Result<Response, Response> {
        let journal = {
            let mut reg = self.inner.lock().expect("campaign registry lock");
            let Some(c) = reg.campaign_mut(id) else {
                return Err(Response::error(404, "no_such_campaign", "unknown campaign id"));
            };
            match c.phase {
                Phase::Queued | Phase::Running => {}
                Phase::Preempted => {
                    return Err(Response::error(409, "already_preempted", "campaign is preempted"))
                }
                Phase::Done => {
                    return Err(Response::error(409, "already_done", "campaign already completed"))
                }
            }
            c.phase = Phase::Preempted;
            Arc::clone(&c.journal)
        };
        if let Err(e) = journal.record_raw("{\"event\":\"preempted\"".to_owned()) {
            obs.counter("campaign.journal_errors", 1);
            obs.mark("campaign.journal_error", &e.to_string());
        }
        obs.counter("campaign.preemptions", 1);
        self.publish_gauges(obs);
        let reg = self.inner.lock().expect("campaign registry lock");
        let body = status_body(reg.campaign(id).expect("still present"), false);
        Ok(Response::ok_json(body))
    }

    /// Resumes a preempted campaign: dispatch restarts from the cells
    /// not yet resolved.
    ///
    /// # Errors
    ///
    /// A ready-to-send 404/409 [`Response`].
    pub fn resume(&self, id: &str, obs: &Obs) -> Result<Response, Response> {
        let journal = {
            let mut reg = self.inner.lock().expect("campaign registry lock");
            let Some(c) = reg.campaign_mut(id) else {
                return Err(Response::error(404, "no_such_campaign", "unknown campaign id"));
            };
            if c.phase != Phase::Preempted {
                return Err(Response::error(409, "not_preempted", "campaign is not preempted"));
            }
            c.phase = Phase::Queued;
            Arc::clone(&c.journal)
        };
        if let Err(e) = journal.record_raw("{\"event\":\"resumed\"".to_owned()) {
            obs.counter("campaign.journal_errors", 1);
            obs.mark("campaign.journal_error", &e.to_string());
        }
        obs.counter("campaign.resumes", 1);
        self.publish_gauges(obs);
        self.wake.notify_all();
        let reg = self.inner.lock().expect("campaign registry lock");
        let body = status_body(reg.campaign(id).expect("still present"), false);
        Ok(Response::ok_json(body))
    }

    // -----------------------------------------------------------------
    // Boot-time resume
    // -----------------------------------------------------------------

    /// Replays every `cNNNN.jsonl` journal in the campaign directory:
    /// measured cells preload the runner cache and fill their slots,
    /// failed cells re-run, campaigns whose artifact already matches
    /// its journaled checksum come back `Done`, campaigns whose last
    /// lifecycle event was `preempted` come back `Preempted`, and
    /// everything else re-enters the scheduler as `Queued`. Returns the
    /// number of campaigns restored.
    pub fn resume_scan(&self, harness: &Harness, obs: &Obs) -> usize {
        let mut paths: Vec<PathBuf> = std::fs::read_dir(&self.dir)
            .map(|rd| {
                rd.filter_map(Result::ok)
                    .map(|e| e.path())
                    .filter(|p| is_campaign_journal(p))
                    .collect()
            })
            .unwrap_or_default();
        paths.sort();
        let mut restored = 0;
        for path in paths {
            match self.resume_one(&path, harness, obs) {
                Ok(()) => restored += 1,
                Err(detail) => {
                    obs.counter("campaign.resume_rejects", 1);
                    obs.mark("campaign.resume_reject", &format!("{}: {detail}", path.display()));
                }
            }
        }
        if restored > 0 {
            obs.counter("campaign.resumed_from_journal", restored as u64);
            self.publish_gauges(obs);
            self.wake.notify_all();
        }
        restored
    }

    fn resume_one(&self, path: &Path, harness: &Harness, obs: &Obs) -> Result<(), String> {
        let id = path
            .file_stem()
            .and_then(|s| s.to_str())
            .ok_or("bad file name")?
            .to_owned();
        let text = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
        let header = text
            .lines()
            .next()
            .and_then(lhr_bench::campaign::open_line)
            .ok_or("missing or torn header line")?;
        if parse_str(header, "campaign").as_deref() != Some("lhr-serve") {
            return Err("not a serve campaign journal".to_owned());
        }
        let spec = spec_from_header(header)?;
        let grid = spec
            .resolve(harness)
            .map_err(|_| "spec no longer resolves against this server".to_owned())?;
        let journal = load_journal(path).map_err(|e| e.to_string())?;

        let mut units: Vec<Unit> = grid
            .into_iter()
            .map(|(config, workload)| Unit {
                label: config.label(),
                config,
                workload,
                slot: Slot::Pending { ready_at: None },
                attempts: 0,
            })
            .collect();
        // Replay measured cells: preload the runner cache (so the
        // harness evaluation is a cache hit with the journaled bits),
        // then evaluate to rebuild the normalized slot.
        let mut preloaded = 0usize;
        for cell in &journal.ok_cells {
            let Some(unit) = units
                .iter_mut()
                .find(|u| u.label == cell.config && u.workload.name() == cell.workload)
            else {
                continue; // a cell this spec no longer contains
            };
            if !matches!(unit.slot, Slot::Pending { .. }) {
                continue; // duplicate journal line; first wins
            }
            harness.runner().preload(
                &unit.config,
                unit.workload,
                RunMeasurement {
                    workload: unit.workload.name(),
                    group: unit.workload.group(),
                    config: cell.config.clone(),
                    time: cell.time,
                    power: cell.power,
                },
                cell.health,
            );
            match harness.try_evaluate_workload(&unit.config, unit.workload) {
                Ok((evaluation, health)) => {
                    unit.slot = Slot::Ready { evaluation, health };
                    preloaded += 1;
                }
                Err(_) => {
                    // Evaluation from a preloaded cell failing means the
                    // reference set itself failed; re-measure the cell.
                }
            }
        }
        // `boot-resume` markers from earlier restarts are not lifecycle
        // decisions; only the last preempt/resume pair matters.
        let preempted = journal
            .events
            .iter()
            .rfind(|e| e.as_str() == "preempted" || e.as_str() == "resumed")
            .map(String::as_str)
            == Some("preempted");
        let all_resolved = units
            .iter()
            .all(|u| matches!(u.slot, Slot::Ready { .. } | Slot::Failed { .. }))
            && journal.err_cells == 0;
        let artifact_name = format!("{id}.result.json");
        let artifact_ok = journal.artifacts.get(&artifact_name).is_some_and(|sum| {
            std::fs::read(self.dir.join(&artifact_name))
                .is_ok_and(|bytes| fnv64(&bytes) == *sum)
        });

        let writer = JournalWriter::append(path).map_err(|e| e.to_string())?;
        if let Err(e) = writer.record_raw("{\"event\":\"boot-resume\"".to_owned()) {
            obs.counter("campaign.journal_errors", 1);
            obs.mark("campaign.journal_error", &e.to_string());
        }
        let phase = if all_resolved && artifact_ok {
            Phase::Done
        } else if preempted {
            Phase::Preempted
        } else {
            Phase::Queued
        };
        let needs_finalize = all_resolved && !artifact_ok;
        let mut reg = self.inner.lock().expect("campaign registry lock");
        touch_tenant(&mut reg, &spec);
        if let Some(seq) = id.strip_prefix('c').and_then(|s| s.parse::<u64>().ok()) {
            reg.next_seq = reg.next_seq.max(seq);
        }
        reg.campaigns.push(Campaign {
            id: id.clone(),
            spec,
            units,
            phase,
            inflight: 0,
            preloaded,
            finalizing: needs_finalize,
            artifact: (all_resolved && artifact_ok).then_some(artifact_name),
            journal: Arc::new(writer),
            ctx: Ctx::default(),
        });
        drop(reg);
        if needs_finalize {
            // All cells survived in the journal but the artifact is
            // missing or stale (killed mid-render): regenerate it now,
            // deterministically.
            self.finalize(&id, obs);
        }
        obs.counter("campaign.preloaded_cells", preloaded as u64);
        Ok(())
    }

    // -----------------------------------------------------------------
    // Introspection
    // -----------------------------------------------------------------

    /// The status JSON for one campaign (`cells=1` includes per-cell
    /// partial results), or `None` for an unknown id.
    #[must_use]
    pub fn status_json(&self, id: &str, with_cells: bool) -> Option<String> {
        let reg = self.inner.lock().expect("campaign registry lock");
        reg.campaign(id).map(|c| status_body(c, with_cells))
    }

    /// The campaign list JSON (most recent last).
    #[must_use]
    pub fn list_json(&self) -> String {
        let reg = self.inner.lock().expect("campaign registry lock");
        let mut body = String::from("{\"campaigns\":[");
        for (i, c) in reg.campaigns.iter().enumerate() {
            if i > 0 {
                body.push(',');
            }
            body.push_str(status_body(c, false).trim_end());
        }
        body.push_str("]}\n");
        body
    }

    /// The artifact file for a campaign: `Ok(path)` when done,
    /// `Err(response)` otherwise.
    ///
    /// # Errors
    ///
    /// A ready-to-send 404/409 [`Response`].
    pub fn artifact_path(&self, id: &str) -> Result<PathBuf, Response> {
        let reg = self.inner.lock().expect("campaign registry lock");
        let Some(c) = reg.campaign(id) else {
            return Err(Response::error(404, "no_such_campaign", "unknown campaign id"));
        };
        match &c.artifact {
            Some(name) => Ok(self.dir.join(name)),
            None => Err(Response::error(
                409,
                "not_done",
                &format!("campaign is {}; artifact exists once done", c.phase.as_str()),
            )),
        }
    }

    /// The `/healthz` scheduler block: campaign counts by phase, cells
    /// in flight, and per-tenant queued/running/preempted/done counts
    /// with quota state -- what drain and chaos assertions observe.
    #[must_use]
    pub fn healthz_json(&self) -> String {
        let reg = self.inner.lock().expect("campaign registry lock");
        let count = |phase: Phase| reg.campaigns.iter().filter(|c| c.phase == phase).count();
        let mut body = String::from("{\"queued\":");
        push_json_number(&mut body, count(Phase::Queued) as f64);
        body.push_str(",\"running\":");
        push_json_number(&mut body, count(Phase::Running) as f64);
        body.push_str(",\"preempted\":");
        push_json_number(&mut body, count(Phase::Preempted) as f64);
        body.push_str(",\"done\":");
        push_json_number(&mut body, count(Phase::Done) as f64);
        body.push_str(",\"cells_inflight\":");
        push_json_number(&mut body, reg.inflight as f64);
        body.push_str(",\"tenants\":[");
        for (i, (name, tenant)) in reg.tenants.iter().enumerate() {
            if i > 0 {
                body.push(',');
            }
            body.push_str("{\"tenant\":");
            push_json_string(&mut body, name);
            for phase in [Phase::Queued, Phase::Running, Phase::Preempted, Phase::Done] {
                let n = reg
                    .campaigns
                    .iter()
                    .filter(|c| c.spec.tenant == *name && c.phase == phase)
                    .count();
                let _ = write!(body, ",\"{}\":{n}", phase.as_str());
            }
            body.push_str(",\"cells_done\":");
            push_json_number(&mut body, tenant.cells_done as f64);
            body.push_str(",\"quota_cells_per_sec\":");
            push_json_number(&mut body, tenant.quota);
            body.push_str(",\"weight\":");
            push_json_number(&mut body, tenant.weight);
            body.push('}');
        }
        body.push_str("]}");
        body
    }

    fn publish_gauges(&self, obs: &Obs) {
        let reg = self.inner.lock().expect("campaign registry lock");
        let count = |phase: Phase| reg.campaigns.iter().filter(|c| c.phase == phase).count();
        obs.gauge("campaign.queued", count(Phase::Queued) as f64);
        obs.gauge("campaign.running", count(Phase::Running) as f64);
        obs.gauge("campaign.preempted", count(Phase::Preempted) as f64);
        obs.gauge("campaign.done", count(Phase::Done) as f64);
        obs.gauge("campaign.inflight", reg.inflight as f64);
    }
}

/// Updates (or creates) the tenant's scheduling state from a spec: the
/// latest submission's weight and quota win.
fn touch_tenant(reg: &mut Registry, spec: &CampaignSpec) {
    let now = Instant::now();
    // A new tenant starts at the minimum live pass: it competes fairly
    // from now on, with no retroactive credit for time it was absent
    // (starting at zero would let it monopolize until it caught up).
    let base_pass = reg
        .tenants
        .values()
        .map(|t| t.pass)
        .fold(f64::INFINITY, f64::min);
    let base_pass = if base_pass.is_finite() { base_pass } else { 0.0 };
    let tenant = reg
        .tenants
        .entry(spec.tenant.clone())
        .or_insert_with(|| Tenant {
            weight: spec.weight,
            pass: base_pass,
            quota: spec.quota,
            tokens: spec.quota.max(1.0),
            last_refill: now,
            cells_done: 0,
        });
    tenant.weight = spec.weight;
    tenant.quota = spec.quota;
    tenant.tokens = tenant.tokens.min(tenant.burst());
}

/// Executes one campaign cell on a pool worker and commits its outcome.
/// A panic inside the engine is contained into a `WorkerPanic` failure
/// so the slot always resolves -- a stuck `InFlight` slot would leak a
/// scheduler token forever.
pub fn execute(state: &Arc<ServeState>, task: CellTask) {
    // Re-establish the submitting request's context on this pool
    // worker: the cell's spans join the submitter's distributed trace
    // (the campaign span from the `/v1/campaigns` POST is the parent).
    let outcome = context::with_ctx(task.ctx, || {
        let mut span = state.obs.span("campaign.cell");
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            state
                .harness
                .try_evaluate_workload(&task.config, task.workload)
        }))
        .unwrap_or_else(|_| {
            Err(MeasureError {
                workload: Some(task.workload.name()),
                config: task.config.label(),
                kind: MeasureErrorKind::WorkerPanic("campaign cell panicked".to_owned()),
            })
        });
        if outcome.is_err() {
            span.fail();
        }
        span.end();
        outcome
    });
    state.campaigns.resolved(&task, outcome, state);
}

// ---------------------------------------------------------------------
// Routing
// ---------------------------------------------------------------------

/// Dispatches every `/v1/campaigns*` request.
#[must_use]
pub fn handle(state: &Arc<ServeState>, req: &Request) -> Response {
    let orch = &state.campaigns;
    let rest = req.path.strip_prefix("/v1/campaigns").unwrap_or("");
    match (req.method, rest) {
        (Method::Post, "") => match orch.submit(req, state) {
            Ok(r) | Err(r) => r,
        },
        (Method::Get, "") => Response::ok_json(orch.list_json()),
        (Method::Get | Method::Post, _) => {
            let Some(tail) = rest.strip_prefix('/') else {
                return Response::error(404, "not_found", "unknown campaign endpoint");
            };
            let (id, action) = match tail.split_once('/') {
                Some((id, action)) => (id, Some(action)),
                None => (tail, None),
            };
            match (req.method, action) {
                (Method::Get, None) => {
                    let with_cells = req.param("cells") == Some("1");
                    match orch.status_json(id, with_cells) {
                        Some(body) => Response::ok_json(body),
                        None => Response::error(404, "no_such_campaign", "unknown campaign id"),
                    }
                }
                (Method::Get, Some("artifact")) => match orch.artifact_path(id) {
                    Ok(path) => match std::fs::read(path) {
                        Ok(bytes) => Response {
                            status: 200,
                            content_type: "application/json",
                            body: bytes,
                            retry_after: None,
                        },
                        Err(_) => Response::error(404, "no_artifact", "artifact file missing"),
                    },
                    Err(r) => r,
                },
                (Method::Post, Some("preempt")) => match orch.preempt(id, &state.obs) {
                    Ok(r) | Err(r) => r,
                },
                (Method::Post, Some("resume")) => match orch.resume(id, &state.obs) {
                    Ok(r) | Err(r) => r,
                },
                _ => Response::error(
                    404,
                    "not_found",
                    "campaign endpoints: GET /v1/campaigns[/<id>[/artifact]], \
                     POST /v1/campaigns[/<id>/preempt|/<id>/resume]",
                ),
            }
        }
    }
}

// ---------------------------------------------------------------------
// JSON rendering and parsing helpers
// ---------------------------------------------------------------------

fn header_body(id: &str, spec: &CampaignSpec) -> String {
    let mut body = String::from("{\"campaign\":\"lhr-serve\",\"version\":1,\"id\":");
    push_json_string(&mut body, id);
    body.push_str(",\"tenant\":");
    push_json_string(&mut body, &spec.tenant);
    body.push_str(",\"priority\":");
    push_json_string(&mut body, spec.lane.as_str());
    body.push_str(",\"weight\":");
    push_json_number(&mut body, spec.weight);
    body.push_str(",\"quota\":");
    push_json_number(&mut body, spec.quota);
    body.push_str(",\"chips\":");
    push_json_string(&mut body, &spec.chips.join(","));
    body.push_str(",\"config\":");
    push_json_string(&mut body, &spec.descriptor);
    body.push_str(",\"workloads\":");
    push_json_string(&mut body, &spec.workloads.join(","));
    body
}

fn spec_from_header(header: &str) -> Result<CampaignSpec, String> {
    let csv = |key: &str| -> Vec<String> {
        parse_str(header, key)
            .unwrap_or_default()
            .split(',')
            .filter(|t| !t.is_empty())
            .map(str::to_owned)
            .collect()
    };
    let chips = csv("chips");
    if chips.is_empty() {
        return Err("header names no chips".to_owned());
    }
    Ok(CampaignSpec {
        tenant: parse_str(header, "tenant").ok_or("header missing tenant")?,
        lane: Lane::parse(&parse_str(header, "priority").unwrap_or_else(|| "normal".to_owned()))?,
        weight: lhr_bench::campaign::parse_num(header, "weight").unwrap_or(1.0),
        quota: lhr_bench::campaign::parse_num(header, "quota").unwrap_or(8.0),
        chips,
        descriptor: parse_str(header, "config").unwrap_or_else(|| "stock".to_owned()),
        workloads: csv("workloads"),
    })
}

fn status_body(c: &Campaign, with_cells: bool) -> String {
    let mut body = String::with_capacity(256);
    body.push_str("{\"id\":");
    push_json_string(&mut body, &c.id);
    body.push_str(",\"tenant\":");
    push_json_string(&mut body, &c.spec.tenant);
    body.push_str(",\"priority\":");
    push_json_string(&mut body, c.spec.lane.as_str());
    body.push_str(",\"state\":");
    push_json_string(&mut body, c.phase.as_str());
    body.push_str(",\"weight\":");
    push_json_number(&mut body, c.spec.weight);
    body.push_str(",\"quota_cells_per_sec\":");
    push_json_number(&mut body, c.spec.quota);
    let _ = write!(
        body,
        ",\"units\":{},\"done\":{},\"failed\":{},\"inflight\":{},\"preloaded\":{}",
        c.units.len(),
        c.ready_count(),
        c.failed_count(),
        c.inflight,
        c.preloaded,
    );
    body.push_str(",\"artifact\":");
    match &c.artifact {
        Some(name) => push_json_string(&mut body, name),
        None => body.push_str("null"),
    }
    if with_cells {
        body.push_str(",\"cells\":[");
        for (i, u) in c.units.iter().enumerate() {
            if i > 0 {
                body.push(',');
            }
            body.push_str("{\"config\":");
            push_json_string(&mut body, &u.label);
            body.push_str(",\"workload\":");
            push_json_string(&mut body, u.workload.name());
            body.push_str(",\"status\":");
            match &u.slot {
                Slot::Pending { .. } => body.push_str("\"pending\""),
                Slot::InFlight => body.push_str("\"inflight\""),
                Slot::Ready { evaluation, health } => {
                    let m = &evaluation.measurement;
                    body.push_str("\"ok\",\"seconds\":");
                    push_json_number(&mut body, m.time.mean());
                    body.push_str(",\"watts\":");
                    push_json_number(&mut body, m.power.mean());
                    body.push_str(",\"perf_norm\":");
                    push_json_number(&mut body, evaluation.perf_norm);
                    body.push_str(",\"energy_norm\":");
                    push_json_number(&mut body, evaluation.energy_norm);
                    // Health is status-only detail: it may differ
                    // between a straight run and a resumed one, so it
                    // never reaches the artifact.
                    body.push_str(",\"retries\":");
                    push_json_number(&mut body, health.retries as f64);
                }
                Slot::Failed { error } => {
                    body.push_str("\"err\",\"error\":");
                    push_json_string(&mut body, error);
                }
            }
            body.push('}');
        }
        body.push(']');
    }
    body.push_str("}\n");
    body
}

/// Renders the deterministic result artifact: grid order, values only.
/// Anything that can differ between an uninterrupted run and a
/// crash-resumed one (attempt counts, retry totals, wall-clock) is
/// deliberately absent -- byte-identity is the contract the chaos
/// harness enforces.
fn artifact_body(c: &Campaign) -> String {
    let mut body = String::with_capacity(256 + 160 * c.units.len());
    body.push_str("{\"campaign\":\"lhr-serve\",\"id\":");
    push_json_string(&mut body, &c.id);
    body.push_str(",\"tenant\":");
    push_json_string(&mut body, &c.spec.tenant);
    body.push_str(",\"config\":");
    push_json_string(&mut body, &c.spec.descriptor);
    body.push_str(",\"chips\":");
    push_json_string(&mut body, &c.spec.chips.join(","));
    body.push_str(",\"workloads\":");
    push_json_string(&mut body, &c.spec.workloads.join(","));
    body.push_str(",\"cells\":[");
    for (i, u) in c.units.iter().enumerate() {
        if i > 0 {
            body.push(',');
        }
        body.push_str("{\"config\":");
        push_json_string(&mut body, &u.label);
        body.push_str(",\"workload\":");
        push_json_string(&mut body, u.workload.name());
        match &u.slot {
            Slot::Ready { evaluation, .. } => {
                let m = &evaluation.measurement;
                body.push_str(",\"status\":\"ok\",\"seconds\":");
                push_json_number(&mut body, m.time.mean());
                body.push_str(",\"watts\":");
                push_json_number(&mut body, m.power.mean());
                body.push_str(",\"joules\":");
                push_json_number(&mut body, m.time.mean() * m.power.mean());
                body.push_str(",\"perf_norm\":");
                push_json_number(&mut body, evaluation.perf_norm);
                body.push_str(",\"energy_norm\":");
                push_json_number(&mut body, evaluation.energy_norm);
            }
            Slot::Failed { error } => {
                body.push_str(",\"status\":\"err\",\"error\":");
                push_json_string(&mut body, error);
            }
            // finalize only runs with every slot resolved.
            Slot::Pending { .. } | Slot::InFlight => {
                body.push_str(",\"status\":\"unresolved\"");
            }
        }
        body.push('}');
    }
    let _ = write!(
        body,
        "],\"ok\":{},\"err\":{}}}",
        c.ready_count(),
        c.failed_count()
    );
    body.push('\n');
    body
}

/// Whether a path looks like a serve campaign journal (`cNNNN.jsonl`).
fn is_campaign_journal(path: &Path) -> bool {
    let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
        return false;
    };
    let Some(stem) = name.strip_suffix(".jsonl") else {
        return false;
    };
    stem.strip_prefix('c')
        .is_some_and(|digits| !digits.is_empty() && digits.bytes().all(|b| b.is_ascii_digit()))
}

/// Highest existing campaign sequence number in `dir` (0 when empty or
/// absent), so restarted servers allocate fresh ids.
fn scan_max_seq(dir: &Path) -> u64 {
    std::fs::read_dir(dir)
        .map(|rd| {
            rd.filter_map(Result::ok)
                .map(|e| e.path())
                .filter(|p| is_campaign_journal(p))
                .filter_map(|p| {
                    p.file_stem()?
                        .to_str()?
                        .strip_prefix('c')?
                        .parse::<u64>()
                        .ok()
                })
                .max()
                .unwrap_or(0)
        })
        .unwrap_or(0)
}
