//! Single-flight request coalescing.
//!
//! A measurement cell takes seconds; a request for one takes
//! microseconds to parse. When a stampede of identical requests lands
//! (a dashboard refresh, a retry storm), running the simulation once
//! per request would multiply the cost by the stampede width for
//! byte-identical answers. The flight board collapses them: the first
//! requester for a key becomes the *leader* and computes; everyone else
//! arriving while the flight is live becomes a *follower* and waits on
//! the same [`Flight`]. The flight's value is the fully rendered
//! response body, so every waiter -- leader included -- receives the
//! same bytes by construction.
//!
//! Two policies bound the damage a stampede can do:
//!
//! * **live-flight cap** -- creating a *new* flight beyond the cap is
//!   refused ([`JoinError::AtCapacity`], surfaced as `503`); joining an
//!   existing flight is always free, because it adds no work.
//! * **deadline** -- [`Flight::wait`] gives up after the caller's
//!   budget (surfaced as `504`). The computation itself is *not*
//!   cancelled: the leader's thread finishes and completes the flight,
//!   so the result still lands in the measurement cache and the next
//!   request for the key is instant. This mirrors the campaign
//!   supervisor's watchdog policy: abandon, never kill.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// A flight's outcome: the rendered JSON body, or a rendered error
/// detail. Cloned to every waiter.
pub type FlightResult = Result<String, String>;

/// One in-progress computation that any number of requests may await.
#[derive(Debug)]
pub struct Flight {
    result: Mutex<Option<FlightResult>>,
    done: Condvar,
    /// The trace request id of the leader (0 until set): followers
    /// record it so a trace reader can link a coalesced request to the
    /// request whose computation it rode.
    leader_request: AtomicU64,
    /// The leader's 128-bit distributed trace id, split across two
    /// atomics (0 until set): followers link their own trace to the
    /// leader's so a stitched view can cross the coalescing boundary.
    leader_trace_hi: AtomicU64,
    leader_trace_lo: AtomicU64,
}

impl Flight {
    fn new() -> Self {
        Self {
            result: Mutex::new(None),
            done: Condvar::new(),
            leader_request: AtomicU64::new(0),
            leader_trace_hi: AtomicU64::new(0),
            leader_trace_lo: AtomicU64::new(0),
        }
    }

    /// Records the leader's trace request id (called once, by the
    /// leader, right after winning the join).
    pub fn set_leader_request(&self, request: u64) {
        self.leader_request.store(request, Ordering::Relaxed);
    }

    /// The leader's trace request id (0 if the leader had no trace
    /// context or has not stamped it yet).
    #[must_use]
    pub fn leader_request(&self) -> u64 {
        self.leader_request.load(Ordering::Relaxed)
    }

    /// Records the leader's distributed trace id (called once, by the
    /// leader, alongside [`Flight::set_leader_request`]).
    #[allow(clippy::cast_possible_truncation)]
    pub fn set_leader_trace(&self, trace: u128) {
        self.leader_trace_hi
            .store((trace >> 64) as u64, Ordering::Relaxed);
        self.leader_trace_lo.store(trace as u64, Ordering::Relaxed);
    }

    /// The leader's distributed trace id (0 if unset). The two halves
    /// are written leader-side before any follower can observe the
    /// completed flight, so a torn read only ever sees the initial 0.
    #[must_use]
    pub fn leader_trace(&self) -> u128 {
        (u128::from(self.leader_trace_hi.load(Ordering::Relaxed)) << 64)
            | u128::from(self.leader_trace_lo.load(Ordering::Relaxed))
    }

    fn complete(&self, result: FlightResult) {
        *self.result.lock().expect("flight lock") = Some(result);
        self.done.notify_all();
    }

    /// Waits up to `budget` for the flight to complete. `None` means the
    /// deadline passed first; the computation continues regardless.
    #[must_use]
    pub fn wait(&self, budget: Duration) -> Option<FlightResult> {
        let deadline = Instant::now() + budget;
        let mut guard = self.result.lock().expect("flight lock");
        loop {
            if let Some(result) = guard.as_ref() {
                return Some(result.clone());
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            let (g, _timeout) = self
                .done
                .wait_timeout(guard, deadline - now)
                .expect("flight lock");
            guard = g;
        }
    }

    /// Whether the flight has completed (test and metrics hook).
    #[must_use]
    pub fn is_done(&self) -> bool {
        self.result.lock().expect("flight lock").is_some()
    }
}

/// The caller's role in a flight.
#[derive(Debug)]
pub enum Join {
    /// First requester: compute the value, then call
    /// [`FlightBoard::complete`], then wait like everyone else.
    Leader(Arc<Flight>),
    /// The flight already exists: just wait on it.
    Follower(Arc<Flight>),
}

/// Why a new flight could not be opened.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinError {
    /// The live-flight cap is reached; shed with `503`.
    AtCapacity,
}

/// The registry of live flights, keyed by request identity
/// (configuration fingerprint + workload fingerprint, or a synthetic
/// key for whole-sweep endpoints).
#[derive(Debug)]
pub struct FlightBoard {
    live: Mutex<HashMap<String, Arc<Flight>>>,
    max_live: usize,
}

impl FlightBoard {
    /// A board admitting at most `max_live` concurrent flights.
    ///
    /// # Panics
    ///
    /// Panics if `max_live` is zero.
    #[must_use]
    pub fn new(max_live: usize) -> Self {
        assert!(max_live > 0, "need room for at least one flight");
        Self {
            live: Mutex::new(HashMap::new()),
            max_live,
        }
    }

    /// Joins the flight for `key`, opening it if absent.
    ///
    /// # Errors
    ///
    /// [`JoinError::AtCapacity`] if opening a new flight would exceed
    /// the cap. Joining an existing flight never fails.
    pub fn join(&self, key: &str) -> Result<Join, JoinError> {
        let mut live = self.live.lock().expect("board lock");
        if let Some(flight) = live.get(key) {
            return Ok(Join::Follower(Arc::clone(flight)));
        }
        if live.len() >= self.max_live {
            return Err(JoinError::AtCapacity);
        }
        let flight = Arc::new(Flight::new());
        live.insert(key.to_owned(), Arc::clone(&flight));
        Ok(Join::Leader(flight))
    }

    /// Completes and retires the flight for `key`, waking all waiters.
    /// Waiters hold their own `Arc<Flight>`, so retiring the board entry
    /// is safe while they are still reading the result. Late arrivals
    /// after retirement start a fresh flight -- by then the measurement
    /// cache answers instantly, so no duplicate simulation happens.
    pub fn complete(&self, key: &str, result: FlightResult) {
        let flight = self.live.lock().expect("board lock").remove(key);
        if let Some(flight) = flight {
            flight.complete(result);
        }
    }

    /// Number of currently live flights (the `/metrics` gauge).
    #[must_use]
    pub fn live(&self) -> usize {
        self.live.lock().expect("board lock").len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_leader_many_followers_identical_bytes() {
        let board = Arc::new(FlightBoard::new(4));
        let Join::Leader(leader_flight) = board.join("cell:abc").unwrap() else {
            panic!("first join must lead");
        };
        let followers: Vec<_> = (0..8)
            .map(|_| {
                let Join::Follower(f) = board.join("cell:abc").unwrap() else {
                    panic!("subsequent joins must follow");
                };
                std::thread::spawn(move || f.wait(Duration::from_secs(5)))
            })
            .collect();
        assert_eq!(board.live(), 1, "one key, one flight");
        board.complete("cell:abc", Ok("{\"x\":1}".into()));
        let leader_view = leader_flight.wait(Duration::from_secs(5)).unwrap();
        for f in followers {
            assert_eq!(f.join().unwrap().unwrap(), leader_view);
        }
        assert_eq!(board.live(), 0, "completed flights retire");
    }

    #[test]
    fn followers_can_read_the_leaders_request_id() {
        let board = FlightBoard::new(2);
        let Join::Leader(leader) = board.join("k").unwrap() else {
            panic!("must lead");
        };
        leader.set_leader_request(42);
        leader.set_leader_trace(0xFEED_0000_0000_0000_0000_0000_0000_0001);
        let Join::Follower(follower) = board.join("k").unwrap() else {
            panic!("must follow");
        };
        assert_eq!(follower.leader_request(), 42);
        assert_eq!(
            follower.leader_trace(),
            0xFEED_0000_0000_0000_0000_0000_0000_0001
        );
    }

    #[test]
    fn capacity_bounds_new_flights_but_not_joins() {
        let board = FlightBoard::new(2);
        let _a = board.join("a").unwrap();
        let _b = board.join("b").unwrap();
        assert_eq!(board.join("c").unwrap_err(), JoinError::AtCapacity);
        // Joining a live flight adds no work, so it is always admitted.
        assert!(matches!(board.join("a").unwrap(), Join::Follower(_)));
        board.complete("a", Err("boom".into()));
        assert!(matches!(board.join("c").unwrap(), Join::Leader(_)));
    }

    #[test]
    fn deadline_expires_without_cancelling_the_flight() {
        let board = FlightBoard::new(1);
        let Join::Leader(flight) = board.join("slow").unwrap() else {
            panic!("must lead");
        };
        let start = Instant::now();
        assert_eq!(flight.wait(Duration::from_millis(30)), None);
        assert!(start.elapsed() >= Duration::from_millis(30));
        assert!(!flight.is_done(), "timeout abandons, never kills");
        // The late completion still lands for anyone still holding on.
        board.complete("slow", Ok("late".into()));
        assert_eq!(flight.wait(Duration::from_millis(1)), Some(Ok("late".into())));
    }
}
