//! The bounded admission queue between the accept loop and the worker
//! pool.
//!
//! Admission control happens at the *push* side: [`BoundedQueue::try_push`]
//! never blocks, so the accept loop can turn a full queue into an
//! immediate `503 + Retry-After` instead of letting latency grow without
//! bound. The pop side blocks (workers are cheap to park), and closing
//! the queue wakes every worker so a drain can complete: already-queued
//! connections are still served, new ones are refused.
//!
//! Built on `std::sync::{Mutex, Condvar}` -- the workspace's vendored
//! `parking_lot` shim deliberately omits condition variables, and the
//! queue is exactly the kind of blocking rendezvous they exist for.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// Why a non-blocking push was refused.
#[derive(Debug, PartialEq, Eq)]
pub enum PushError<T> {
    /// The queue is at capacity; shed the item (admission control).
    Full(T),
    /// The queue is draining; no new work is admitted.
    Closed(T),
}

struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A fixed-capacity multi-producer multi-consumer queue with
/// non-blocking admission and blocking, close-aware removal.
pub struct BoundedQueue<T> {
    inner: Mutex<Inner<T>>,
    not_empty: Condvar,
    capacity: usize,
}

impl<T> std::fmt::Debug for BoundedQueue<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BoundedQueue")
            .field("capacity", &self.capacity)
            .field("len", &self.len())
            .finish()
    }
}

impl<T> BoundedQueue<T> {
    /// A queue admitting at most `capacity` items at once.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero -- a zero-depth queue would shed
    /// every request.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "queue needs capacity for at least one item");
        Self {
            inner: Mutex::new(Inner {
                items: VecDeque::with_capacity(capacity),
                closed: false,
            }),
            not_empty: Condvar::new(),
            capacity,
        }
    }

    /// Admits `item` if there is room, without blocking.
    ///
    /// # Errors
    ///
    /// [`PushError::Full`] at capacity, [`PushError::Closed`] once
    /// [`BoundedQueue::close`] was called; both return the item so the
    /// caller can shed it with a response.
    pub fn try_push(&self, item: T) -> Result<(), PushError<T>> {
        let mut inner = self.inner.lock().expect("queue lock");
        if inner.closed {
            return Err(PushError::Closed(item));
        }
        if inner.items.len() >= self.capacity {
            return Err(PushError::Full(item));
        }
        inner.items.push_back(item);
        drop(inner);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Removes the oldest item, blocking while the queue is empty.
    /// Returns `None` only when the queue is closed *and* drained --
    /// the worker-pool exit condition.
    pub fn pop(&self) -> Option<T> {
        let mut inner = self.inner.lock().expect("queue lock");
        loop {
            if let Some(item) = inner.items.pop_front() {
                return Some(item);
            }
            if inner.closed {
                return None;
            }
            inner = self.not_empty.wait(inner).expect("queue lock");
        }
    }

    /// Stops admission and wakes every blocked worker. Items already
    /// queued are still handed out; this is what makes the drain
    /// graceful rather than abrupt.
    pub fn close(&self) {
        self.inner.lock().expect("queue lock").closed = true;
        self.not_empty.notify_all();
    }

    /// Current queue depth.
    #[must_use]
    pub fn len(&self) -> usize {
        self.inner.lock().expect("queue lock").items.len()
    }

    /// Whether the queue is currently empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn sheds_when_full_and_refuses_after_close() {
        let q = BoundedQueue::new(2);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        assert_eq!(q.try_push(3), Err(PushError::Full(3)));
        assert_eq!(q.pop(), Some(1));
        q.try_push(4).unwrap();
        q.close();
        assert_eq!(q.try_push(5), Err(PushError::Closed(5)));
        // Queued work is still served after close, then the pool exits.
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(4));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn close_wakes_blocked_workers() {
        let q = Arc::new(BoundedQueue::<u32>::new(1));
        let waiter = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.pop())
        };
        // Give the worker time to park on the condvar, then close.
        std::thread::sleep(Duration::from_millis(20));
        q.close();
        assert_eq!(waiter.join().unwrap(), None);
    }

    #[test]
    fn items_flow_producer_to_consumer_in_order() {
        let q = Arc::new(BoundedQueue::new(8));
        let consumer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                let mut got = Vec::new();
                while let Some(v) = q.pop() {
                    got.push(v);
                }
                got
            })
        };
        for i in 0..20 {
            loop {
                match q.try_push(i) {
                    Ok(()) => break,
                    Err(PushError::Full(_)) => std::thread::yield_now(),
                    Err(PushError::Closed(_)) => unreachable!("not closed yet"),
                }
            }
        }
        q.close();
        assert_eq!(consumer.join().unwrap(), (0..20).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_is_rejected() {
        let _ = BoundedQueue::<u32>::new(0);
    }
}
