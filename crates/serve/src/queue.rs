//! The bounded admission queue between the accept loop and the worker
//! pool, and the bounded pool that writes shed responses.
//!
//! Admission control happens at the *push* side: [`BoundedQueue::try_push`]
//! never blocks, so the accept loop can turn a full queue into an
//! immediate `503 + Retry-After` instead of letting latency grow without
//! bound. The pop side blocks (workers are cheap to park), and closing
//! the queue wakes every worker so a drain can complete: already-queued
//! connections are still served, new ones are refused.
//!
//! # Two lanes
//!
//! The queue carries two priority lanes over one worker pool:
//!
//! * the **interactive lane** ([`BoundedQueue::try_push`]) holds
//!   admitted connections -- a human or a dashboard is waiting on every
//!   one of them;
//! * the **background lane** ([`BoundedQueue::try_push_background`])
//!   holds campaign cells -- work that tolerates minutes of delay by
//!   design.
//!
//! [`BoundedQueue::pop`] always drains the interactive lane first, so a
//! running campaign can never add queueing latency to an interactive
//! request beyond the cell a worker is already executing. Campaign
//! cells only run on workers the interactive load leaves idle; that is
//! the whole interleaving policy, enforced structurally rather than by
//! timers or priorities that need tuning.
//!
//! Built on `std::sync::{Mutex, Condvar}` -- the workspace's vendored
//! `parking_lot` shim deliberately omits condition variables, and the
//! queue is exactly the kind of blocking rendezvous they exist for.

use std::collections::VecDeque;
use std::io;
use std::net::TcpStream;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use crate::http::Response;

/// Why a non-blocking push was refused.
#[derive(Debug, PartialEq, Eq)]
pub enum PushError<T> {
    /// The queue is at capacity; shed the item (admission control).
    Full(T),
    /// The queue is draining; no new work is admitted.
    Closed(T),
}

struct Inner<T> {
    items: VecDeque<T>,
    background: VecDeque<T>,
    closed: bool,
}

/// A fixed-capacity multi-producer multi-consumer queue with
/// non-blocking admission, blocking close-aware removal, and two
/// priority lanes (see the module docs).
pub struct BoundedQueue<T> {
    inner: Mutex<Inner<T>>,
    not_empty: Condvar,
    capacity: usize,
    background_capacity: usize,
}

impl<T> std::fmt::Debug for BoundedQueue<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BoundedQueue")
            .field("capacity", &self.capacity)
            .field("len", &self.len())
            .field("background_capacity", &self.background_capacity)
            .field("background_len", &self.background_len())
            .finish()
    }
}

impl<T> BoundedQueue<T> {
    /// A queue admitting at most `capacity` items per lane at once.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero -- a zero-depth queue would shed
    /// every request.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        Self::with_lanes(capacity, capacity)
    }

    /// A queue with distinct interactive and background lane depths.
    ///
    /// # Panics
    ///
    /// Panics if either capacity is zero.
    #[must_use]
    pub fn with_lanes(capacity: usize, background_capacity: usize) -> Self {
        assert!(capacity > 0, "queue needs capacity for at least one item");
        assert!(
            background_capacity > 0,
            "background lane needs capacity for at least one item"
        );
        Self {
            inner: Mutex::new(Inner {
                items: VecDeque::with_capacity(capacity),
                background: VecDeque::new(),
                closed: false,
            }),
            not_empty: Condvar::new(),
            capacity,
            background_capacity,
        }
    }

    /// Admits `item` to the interactive lane if there is room, without
    /// blocking.
    ///
    /// # Errors
    ///
    /// [`PushError::Full`] at capacity, [`PushError::Closed`] once
    /// [`BoundedQueue::close`] was called; both return the item so the
    /// caller can shed it with a response.
    pub fn try_push(&self, item: T) -> Result<(), PushError<T>> {
        let mut inner = self.inner.lock().expect("queue lock");
        if inner.closed {
            return Err(PushError::Closed(item));
        }
        if inner.items.len() >= self.capacity {
            return Err(PushError::Full(item));
        }
        inner.items.push_back(item);
        drop(inner);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Admits `item` to the background lane (campaign cells): popped
    /// only when the interactive lane is empty.
    ///
    /// # Errors
    ///
    /// Same contract as [`BoundedQueue::try_push`], against the
    /// background lane's own capacity.
    pub fn try_push_background(&self, item: T) -> Result<(), PushError<T>> {
        let mut inner = self.inner.lock().expect("queue lock");
        if inner.closed {
            return Err(PushError::Closed(item));
        }
        if inner.background.len() >= self.background_capacity {
            return Err(PushError::Full(item));
        }
        inner.background.push_back(item);
        drop(inner);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Removes the oldest item, interactive lane first, blocking while
    /// both lanes are empty. Returns `None` only when the queue is
    /// closed *and* fully drained -- the worker-pool exit condition.
    pub fn pop(&self) -> Option<T> {
        let mut inner = self.inner.lock().expect("queue lock");
        loop {
            if let Some(item) = inner.items.pop_front() {
                return Some(item);
            }
            if let Some(item) = inner.background.pop_front() {
                return Some(item);
            }
            if inner.closed {
                return None;
            }
            inner = self.not_empty.wait(inner).expect("queue lock");
        }
    }

    /// Stops admission and wakes every blocked worker. Items already
    /// queued (both lanes) are still handed out; this is what makes the
    /// drain graceful rather than abrupt.
    pub fn close(&self) {
        self.inner.lock().expect("queue lock").closed = true;
        self.not_empty.notify_all();
    }

    /// Current interactive-lane depth (the admission-control gauge).
    #[must_use]
    pub fn len(&self) -> usize {
        self.inner.lock().expect("queue lock").items.len()
    }

    /// Current background-lane depth.
    #[must_use]
    pub fn background_len(&self) -> usize {
        self.inner.lock().expect("queue lock").background.len()
    }

    /// Whether both lanes are currently empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        let inner = self.inner.lock().expect("queue lock");
        inner.items.is_empty() && inner.background.is_empty()
    }

    /// Whether the queue has been closed (drain in progress).
    #[must_use]
    pub fn is_closed(&self) -> bool {
        self.inner.lock().expect("queue lock").closed
    }
}

// ---------------------------------------------------------------------
// Shed pool
// ---------------------------------------------------------------------

/// A bounded pool that writes `503` shed responses off the accept
/// thread.
///
/// Writing a shed response takes a syscall or two plus (worst case) a
/// short drain of the client's request bytes, so it cannot run on the
/// accept thread -- but spawning a detached thread per shed means a
/// sustained overload (the exact situation that causes sheds) spawns
/// threads without bound. The pool caps both: a fixed set of writer
/// threads behind a small internal queue. When even that queue is full
/// the connection is dropped without a response -- under an overload
/// violent enough to fill it, a TCP reset is the honest signal, and the
/// caller counts the drop (`serve.shed_dropped`).
#[derive(Debug)]
pub struct ShedPool {
    queue: Arc<BoundedQueue<(TcpStream, Response)>>,
    writers: Vec<JoinHandle<()>>,
}

impl ShedPool {
    /// A pool of `writers` threads behind a `depth`-item queue.
    ///
    /// # Panics
    ///
    /// Panics if `writers` or `depth` is zero.
    #[must_use]
    pub fn new(writers: usize, depth: usize) -> Self {
        assert!(writers > 0, "shed pool needs at least one writer");
        let queue = Arc::new(BoundedQueue::new(depth));
        let writers = (0..writers)
            .map(|i| {
                let queue = Arc::clone(&queue);
                std::thread::Builder::new()
                    .name(format!("lhr-serve-shed-{i}"))
                    .spawn(move || {
                        while let Some((stream, response)) = queue.pop() {
                            write_shed(stream, &response);
                        }
                    })
                    .expect("spawn shed writer")
            })
            .collect();
        Self { queue, writers }
    }

    /// Hands a connection to the pool for a shed response. Returns
    /// `false` when the pool's queue is full or closed -- the caller
    /// drops the connection and counts it.
    #[must_use]
    pub fn try_shed(&self, stream: TcpStream, response: Response) -> bool {
        self.queue.try_push((stream, response)).is_ok()
    }

    /// Pending sheds not yet written.
    #[must_use]
    pub fn backlog(&self) -> usize {
        self.queue.len()
    }

    /// Closes the pool: pending sheds are still written, then the
    /// writer threads exit and are joined.
    pub fn shutdown(self) {
        self.queue.close();
        for w in self.writers {
            let _ = w.join();
        }
    }
}

/// Writes one shed response without losing it to a TCP reset: closing a
/// socket that still has unread request bytes discards buffered
/// outgoing data, so the writer shuts down its write side and drains
/// the client's bytes (briefly) before dropping.
fn write_shed(mut stream: TcpStream, response: &Response) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(250)));
    let _ = response.write_to(&mut stream);
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let mut sink = [0u8; 512];
    while matches!(io::Read::read(&mut stream, &mut sink), Ok(n) if n > 0) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn sheds_when_full_and_refuses_after_close() {
        let q = BoundedQueue::new(2);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        assert_eq!(q.try_push(3), Err(PushError::Full(3)));
        assert_eq!(q.pop(), Some(1));
        q.try_push(4).unwrap();
        q.close();
        assert_eq!(q.try_push(5), Err(PushError::Closed(5)));
        // Queued work is still served after close, then the pool exits.
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(4));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn close_wakes_blocked_workers() {
        let q = Arc::new(BoundedQueue::<u32>::new(1));
        let waiter = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.pop())
        };
        // Give the worker time to park on the condvar, then close.
        std::thread::sleep(Duration::from_millis(20));
        q.close();
        assert_eq!(waiter.join().unwrap(), None);
    }

    #[test]
    fn items_flow_producer_to_consumer_in_order() {
        let q = Arc::new(BoundedQueue::new(8));
        let consumer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                let mut got = Vec::new();
                while let Some(v) = q.pop() {
                    got.push(v);
                }
                got
            })
        };
        for i in 0..20 {
            loop {
                match q.try_push(i) {
                    Ok(()) => break,
                    Err(PushError::Full(_)) => std::thread::yield_now(),
                    Err(PushError::Closed(_)) => unreachable!("not closed yet"),
                }
            }
        }
        q.close();
        assert_eq!(consumer.join().unwrap(), (0..20).collect::<Vec<_>>());
    }

    #[test]
    fn interactive_lane_strictly_outranks_background() {
        let q = BoundedQueue::with_lanes(4, 4);
        q.try_push_background("bg-1").unwrap();
        q.try_push_background("bg-2").unwrap();
        q.try_push("fg-1").unwrap();
        q.try_push("fg-2").unwrap();
        // Both foreground items drain before any background item, even
        // though the background items arrived first.
        assert_eq!(q.pop(), Some("fg-1"));
        assert_eq!(q.pop(), Some("fg-2"));
        assert_eq!(q.pop(), Some("bg-1"));
        q.try_push("fg-3").unwrap();
        assert_eq!(q.pop(), Some("fg-3"), "new foreground overtakes queued bg");
        assert_eq!(q.pop(), Some("bg-2"));
        q.close();
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn lanes_have_independent_capacity_and_drain_on_close() {
        let q = BoundedQueue::with_lanes(1, 2);
        q.try_push("fg").unwrap();
        assert_eq!(q.try_push("fg-over"), Err(PushError::Full("fg-over")));
        // The interactive lane being full does not block background admission.
        q.try_push_background("bg-1").unwrap();
        q.try_push_background("bg-2").unwrap();
        assert_eq!(
            q.try_push_background("bg-over"),
            Err(PushError::Full("bg-over"))
        );
        assert_eq!(q.len(), 1);
        assert_eq!(q.background_len(), 2);
        assert!(!q.is_empty());
        q.close();
        assert_eq!(
            q.try_push_background("late"),
            Err(PushError::Closed("late"))
        );
        // Close drains both lanes before ending the pool.
        assert_eq!(q.pop(), Some("fg"));
        assert_eq!(q.pop(), Some("bg-1"));
        assert_eq!(q.pop(), Some("bg-2"));
        assert_eq!(q.pop(), None);
        assert!(q.is_empty());
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_is_rejected() {
        let _ = BoundedQueue::<u32>::new(0);
    }

    #[test]
    fn shed_pool_writes_responses_and_bounds_its_backlog() {
        use std::io::Read as _;

        let pool = ShedPool::new(2, 8);
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            let mut body = String::new();
            let _ = s.read_to_string(&mut body);
            body
        });
        let (server_side, _) = listener.accept().unwrap();
        assert!(pool.try_shed(server_side, Response::overloaded("queue full", 1)));
        let got = client.join().unwrap();
        assert!(got.starts_with("HTTP/1.1 503"), "{got}");
        assert!(got.contains("Retry-After: 1"), "{got}");
        pool.shutdown();
    }

    #[test]
    fn shed_pool_refuses_when_saturated_instead_of_spawning() {
        // A pool whose queue is full reports failure; it never grows.
        let pool = ShedPool::new(1, 1);
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        // Park the single writer on a connection that never reads, then
        // fill the one-slot queue behind it.
        let mut held: Vec<TcpStream> = Vec::new();
        let mut refused = false;
        for _ in 0..16 {
            let c = TcpStream::connect(addr).unwrap();
            let (server_side, _) = listener.accept().unwrap();
            if !pool.try_shed(server_side, Response::overloaded("x", 1)) {
                refused = true;
                break;
            }
            held.push(c);
        }
        assert!(refused, "a 1x1 pool must refuse under a burst");
        drop(held);
        pool.shutdown();
    }
}
