//! The server's telemetry bundle: every recorder a running server arms,
//! assembled once and shared by the handlers.
//!
//! The bundle fans one event stream out to:
//!
//! * a [`MemoryRecorder`] -- lifetime aggregates behind `/metrics` and
//!   `/v1/metrics` (text render or Prometheus exposition);
//! * a [`TimeSeriesRecorder`] -- windowed interval buckets behind
//!   `/v1/metrics/timeseries`, so "the last five minutes" is a cheap
//!   query instead of a log scan;
//! * optionally a [`JsonLinesRecorder`] -- the `--trace` file carrying
//!   every event with its request context, the input `lhr_traceview`
//!   reconstructs span trees from;
//! * optionally a [`SpanRecorder`] -- the `--span-store` directory
//!   persisting completed spans of tail-sampled distributed traces,
//!   queryable via `GET /v1/traces` and `GET /v1/trace/<id>`;
//!
//! plus an [`SloTracker`] fed per-request by the connection worker (it
//! consumes request outcomes, not raw events), whose burn rates and
//! alert state surface in `/healthz`.

use std::io;
use std::path::Path;
use std::sync::Arc;

use lhr_obs::{
    JsonLinesRecorder, MemoryRecorder, MetricsSnapshot, Obs, Recorder, SloConfig, SloTracker,
    TimeSeriesConfig, TimeSeriesRecorder,
};
use lhr_store::{SamplingConfig, SpanRecorder};

/// The recorders and trackers one server instance runs with.
#[derive(Debug, Clone)]
pub struct Telemetry {
    /// Lifetime aggregates (`/metrics`, `/v1/metrics`).
    pub memory: Arc<MemoryRecorder>,
    /// Windowed buckets (`/v1/metrics/timeseries`).
    pub timeseries: Arc<TimeSeriesRecorder>,
    /// The streaming trace file, when `--trace` asked for one.
    pub trace: Option<Arc<JsonLinesRecorder>>,
    /// The span store, when `--span-store` asked for one.
    pub spans: Option<Arc<SpanRecorder>>,
    /// Burn-rate alerting over request outcomes (`/healthz`).
    pub slo: Arc<SloTracker>,
}

impl Telemetry {
    /// A bundle with the given window geometry and objectives, no trace
    /// file.
    #[must_use]
    pub fn new(timeseries: TimeSeriesConfig, slo: SloConfig) -> Self {
        Self {
            memory: Arc::new(MemoryRecorder::default()),
            timeseries: Arc::new(TimeSeriesRecorder::new(timeseries)),
            trace: None,
            spans: None,
            slo: Arc::new(SloTracker::new(slo)),
        }
    }

    /// Adds a JSON-lines trace file at `path` to the fanout.
    ///
    /// # Errors
    ///
    /// Propagates the [`io::Error`] if the file cannot be created.
    pub fn with_trace_path(mut self, path: impl AsRef<Path>) -> io::Result<Self> {
        self.trace = Some(Arc::new(JsonLinesRecorder::create(path)?));
        Ok(self)
    }

    /// Adds a span store at `dir` to the fanout; `proc` labels every
    /// span this process persists (e.g. `"router"`, `"backend:41017"`).
    ///
    /// # Errors
    ///
    /// Propagates the [`io::Error`] if the directory cannot be opened.
    pub fn with_span_store(
        mut self,
        dir: impl AsRef<Path>,
        proc: &str,
        sampling: SamplingConfig,
    ) -> io::Result<Self> {
        self.spans = Some(Arc::new(SpanRecorder::open(dir.as_ref(), proc, sampling)?));
        Ok(self)
    }

    /// The observability handle fanning out to every armed recorder.
    /// Arm this on the harness runner *and* use it for serve-layer
    /// events so one stream carries both.
    #[must_use]
    pub fn obs(&self) -> Obs {
        let mut sinks: Vec<Arc<dyn Recorder>> = vec![
            Arc::clone(&self.memory) as Arc<dyn Recorder>,
            Arc::clone(&self.timeseries) as Arc<dyn Recorder>,
        ];
        if let Some(trace) = &self.trace {
            sinks.push(Arc::clone(trace) as Arc<dyn Recorder>);
        }
        if let Some(spans) = &self.spans {
            sinks.push(Arc::clone(spans) as Arc<dyn Recorder>);
        }
        Obs::fanout(sinks)
    }

    /// Trace lines lost to write errors so far (0 when no trace file).
    #[must_use]
    pub fn trace_write_errors(&self) -> u64 {
        self.trace.as_ref().map_or(0, |t| t.write_errors())
    }

    /// Span-store batches lost to append or journal errors (0 when no
    /// span store is armed).
    #[must_use]
    pub fn span_append_errors(&self) -> u64 {
        self.spans.as_ref().map_or(0, |s| s.append_errors())
    }

    /// The lifetime aggregate snapshot, with
    /// [`MetricsSnapshot::trace_write_errors`] filled in from the trace
    /// recorder -- the one number the memory recorder cannot know by
    /// itself.
    #[must_use]
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut snap = self.memory.snapshot();
        snap.trace_write_errors = self.trace_write_errors();
        snap
    }
}

impl Default for Telemetry {
    fn default() -> Self {
        Self::new(TimeSeriesConfig::serving_default(), SloConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_event_reaches_memory_and_timeseries() {
        let t = Telemetry::default();
        let obs = t.obs();
        obs.counter("serve.req./healthz", 1);
        assert_eq!(t.memory.snapshot().counter("serve.req./healthz"), 1);
        let ts = t.timeseries.snapshot();
        assert_eq!(ts.series.len(), 1);
        assert_eq!(ts.series[0].name, "serve.req./healthz");
    }

    #[test]
    fn snapshot_carries_trace_write_errors() {
        let t = Telemetry::default();
        assert_eq!(t.snapshot().trace_write_errors, 0, "no trace, no errors");
        // A trace file into an unwritable location cannot be created at
        // all; error accounting for a live sink is covered in lhr-obs.
        let dir = std::env::temp_dir().join(format!("lhr-telemetry-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let t = Telemetry::default()
            .with_trace_path(dir.join("trace.jsonl"))
            .unwrap();
        t.obs().counter("c", 1);
        t.obs().flush();
        assert_eq!(t.snapshot().trace_write_errors, 0);
        assert_eq!(t.snapshot().counter("c"), 1);
        std::fs::remove_dir_all(&dir).ok();
    }
}
