//! A hand-rolled minimal HTTP/1.1 subset: enough to parse the request
//! line, headers, and query string of the endpoints the server exposes,
//! and to write well-formed responses. Consistent with the workspace's
//! vendored-shim policy, it takes no dependencies and implements only
//! what the serving layer needs:
//!
//! * `GET`/`POST` request lines, `\r\n` line endings, header block
//!   terminated by an empty line, and a `Content-Length`-delimited body
//!   (capped at [`MAX_BODY_BYTES`] -- `/v1/query` posts DSL text;
//!   chunked transfer encoding is rejected, not silently misread);
//! * percent-decoding of path and query components (decoded *before*
//!   any path-safety check, so `%2e%2e%2f` cannot smuggle a `..`);
//! * `Connection: close` responses with `Content-Length`, so clients
//!   never have to guess where a body ends.
//!
//! Every parse failure is a typed [`HttpError`]; the connection worker
//! maps it to a `400` and keeps serving -- a malformed request must
//! never take a worker down.

use std::io::{self, BufRead, Write};

/// Longest request head (request line + headers) accepted, in bytes.
/// Anything longer is a `400`: the endpoints take short query strings,
/// so an oversized head is garbage or abuse.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;

/// Longest request body accepted, in bytes. Query texts are a few
/// hundred bytes; anything bigger is garbage or abuse.
pub const MAX_BODY_BYTES: usize = 64 * 1024;

/// The request methods the server understands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Method {
    /// Read-only queries.
    Get,
    /// Admin actions (`/admin/drain`).
    Post,
}

/// A parsed request: method, decoded path, decoded query parameters,
/// and headers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// The request method.
    pub method: Method,
    /// The percent-decoded path (no query string).
    pub path: String,
    /// Query parameters in arrival order, percent-decoded.
    pub query: Vec<(String, String)>,
    /// Headers in arrival order, names lowercased, values trimmed.
    /// Only consulted for content negotiation (`Accept` on
    /// `/v1/metrics`); routing never depends on them.
    pub headers: Vec<(String, String)>,
    /// The request body (`Content-Length`-delimited, UTF-8). Empty for
    /// bodyless requests; only `POST /v1/query` consumes one.
    pub body: String,
}

impl Request {
    /// The first value of query parameter `name`, if present.
    #[must_use]
    pub fn param(&self, name: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// The first value of header `name` (case-insensitive), if present.
    #[must_use]
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }
}

/// Why a request could not be parsed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HttpError {
    /// The request was syntactically invalid; the detail is safe to echo.
    BadRequest(String),
    /// The peer closed before a full head arrived.
    Disconnected,
    /// The socket's read timeout fired before a full head arrived: a
    /// slow-loris client (or a stalled network) held the connection
    /// open without sending a request. Distinguished from
    /// [`HttpError::Disconnected`] so the server can count it
    /// (`serve.timeout`) -- a fleet of these is an attack signature,
    /// while disconnects are everyday noise.
    TimedOut,
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::BadRequest(detail) => write!(f, "bad request: {detail}"),
            HttpError::Disconnected => f.write_str("peer disconnected"),
            HttpError::TimedOut => f.write_str("idle read timed out"),
        }
    }
}

/// Reads and parses one request head from `stream`.
///
/// # Errors
///
/// [`HttpError::BadRequest`] for malformed or oversized heads,
/// [`HttpError::Disconnected`] when the peer goes away first,
/// [`HttpError::TimedOut`] when the socket's read timeout expires on an
/// idle connection (the slow-loris guard).
pub fn read_request(stream: &mut impl BufRead) -> Result<Request, HttpError> {
    let request_line = read_line(stream)?;
    let mut total = request_line.len();
    // Drain headers up to the blank line so the parse position is
    // deterministic whatever the client sent; keep them for content
    // negotiation.
    let mut headers = Vec::new();
    loop {
        let line = read_line(stream)?;
        total += line.len();
        if total > MAX_HEAD_BYTES {
            return Err(HttpError::BadRequest("request head too large".into()));
        }
        if line.is_empty() {
            break;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(HttpError::BadRequest("malformed header line".into()));
        };
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_owned()));
    }
    let mut req = parse_request_line(&request_line)?;
    req.headers = headers;
    req.body = read_body(stream, &req)?;
    Ok(req)
}

/// Reads the `Content-Length`-delimited body, if the head announced
/// one. Chunked transfer encoding is refused outright -- pretending to
/// understand it would desynchronize the connection.
fn read_body(stream: &mut impl BufRead, req: &Request) -> Result<String, HttpError> {
    if req
        .header("transfer-encoding")
        .is_some_and(|v| !v.eq_ignore_ascii_case("identity"))
    {
        return Err(HttpError::BadRequest(
            "chunked transfer encoding is not supported; send Content-Length".into(),
        ));
    }
    let Some(raw_len) = req.header("content-length") else {
        return Ok(String::new());
    };
    let len: usize = raw_len
        .parse()
        .map_err(|_| HttpError::BadRequest(format!("bad Content-Length {raw_len:?}")))?;
    if len > MAX_BODY_BYTES {
        return Err(HttpError::BadRequest(format!(
            "body of {len} bytes exceeds the {MAX_BODY_BYTES}-byte limit"
        )));
    }
    let mut body = vec![0u8; len];
    let mut filled = 0;
    while filled < len {
        let available = match stream.fill_buf() {
            Ok(available) => available,
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                return Err(HttpError::TimedOut);
            }
            Err(_) => return Err(HttpError::Disconnected),
        };
        if available.is_empty() {
            return Err(HttpError::Disconnected);
        }
        let take = available.len().min(len - filled);
        body[filled..filled + take].copy_from_slice(&available[..take]);
        stream.consume(take);
        filled += take;
    }
    String::from_utf8(body).map_err(|_| HttpError::BadRequest("body is not UTF-8".into()))
}

/// Reads one `\r\n`-terminated line (tolerating bare `\n`), without the
/// terminator.
fn read_line(stream: &mut impl BufRead) -> Result<String, HttpError> {
    let mut buf = Vec::with_capacity(128);
    loop {
        let mut byte = [0u8; 1];
        let available = match stream.fill_buf() {
            Ok(available) => available,
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                // Both kinds mean "read timeout fired", depending on
                // platform; either way the peer sat idle too long.
                return Err(HttpError::TimedOut);
            }
            Err(_) => return Err(HttpError::Disconnected),
        };
        if available.is_empty() {
            return Err(HttpError::Disconnected);
        }
        byte[0] = available[0];
        stream.consume(1);
        if byte[0] == b'\n' {
            if buf.last() == Some(&b'\r') {
                buf.pop();
            }
            return String::from_utf8(buf)
                .map_err(|_| HttpError::BadRequest("head is not UTF-8".into()));
        }
        buf.push(byte[0]);
        if buf.len() > MAX_HEAD_BYTES {
            return Err(HttpError::BadRequest("request line too long".into()));
        }
    }
}

fn parse_request_line(line: &str) -> Result<Request, HttpError> {
    let mut parts = line.split(' ');
    let method = match parts.next() {
        Some("GET") => Method::Get,
        Some("POST") => Method::Post,
        Some(other) if !other.is_empty() => {
            return Err(HttpError::BadRequest(format!("unsupported method {other:?}")))
        }
        _ => return Err(HttpError::BadRequest("empty request line".into())),
    };
    let target = parts
        .next()
        .ok_or_else(|| HttpError::BadRequest("missing request target".into()))?;
    match parts.next() {
        Some(v) if v.starts_with("HTTP/1.") => {}
        _ => return Err(HttpError::BadRequest("missing HTTP version".into())),
    }
    if !target.starts_with('/') {
        return Err(HttpError::BadRequest("target must be absolute".into()));
    }
    let (raw_path, raw_query) = match target.split_once('?') {
        Some((p, q)) => (p, Some(q)),
        None => (target, None),
    };
    let path = percent_decode(raw_path)
        .ok_or_else(|| HttpError::BadRequest("bad percent-encoding in path".into()))?;
    let mut query = Vec::new();
    if let Some(raw) = raw_query {
        for pair in raw.split('&').filter(|p| !p.is_empty()) {
            let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
            let k = percent_decode(k)
                .ok_or_else(|| HttpError::BadRequest("bad percent-encoding in query".into()))?;
            let v = percent_decode(v)
                .ok_or_else(|| HttpError::BadRequest("bad percent-encoding in query".into()))?;
            query.push((k, v));
        }
    }
    Ok(Request {
        method,
        path,
        query,
        headers: Vec::new(),
        body: String::new(),
    })
}

/// Percent-decodes a URI component (`+` also decodes to space, as
/// browsers send for query strings). `None` on truncated or non-hex
/// escapes or non-UTF-8 results.
#[must_use]
pub fn percent_decode(s: &str) -> Option<String> {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'%' => {
                let hi = hex_val(*bytes.get(i + 1)?)?;
                let lo = hex_val(*bytes.get(i + 2)?)?;
                out.push(hi * 16 + lo);
                i += 3;
            }
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8(out).ok()
}

fn hex_val(b: u8) -> Option<u8> {
    match b {
        b'0'..=b'9' => Some(b - b'0'),
        b'a'..=b'f' => Some(b - b'a' + 10),
        b'A'..=b'F' => Some(b - b'A' + 10),
        _ => None,
    }
}

/// A response ready to serialize: status, content type, body, and the
/// optional backpressure hint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Response body bytes.
    pub body: Vec<u8>,
    /// `Retry-After` seconds, sent with `503` sheds so well-behaved
    /// clients back off instead of hammering.
    pub retry_after: Option<u32>,
}

impl Response {
    /// A `200` JSON response.
    #[must_use]
    pub fn ok_json(body: String) -> Self {
        Self {
            status: 200,
            content_type: "application/json",
            body: body.into_bytes(),
            retry_after: None,
        }
    }

    /// A `200` plain-text response.
    #[must_use]
    pub fn ok_text(body: String) -> Self {
        Self {
            status: 200,
            content_type: "text/plain; charset=utf-8",
            body: body.into_bytes(),
            retry_after: None,
        }
    }

    /// A typed JSON error body: `{"error": <code>, "detail": <detail>}`.
    #[must_use]
    pub fn error(status: u16, code: &str, detail: &str) -> Self {
        let mut body = String::with_capacity(48 + detail.len());
        body.push_str("{\"error\":");
        lhr_obs::push_json_string(&mut body, code);
        body.push_str(",\"detail\":");
        lhr_obs::push_json_string(&mut body, detail);
        body.push_str("}\n");
        Self {
            status,
            content_type: "application/json",
            body: body.into_bytes(),
            retry_after: None,
        }
    }

    /// The `503` admission-control shed, with its `Retry-After` hint.
    #[must_use]
    pub fn overloaded(detail: &str, retry_after: u32) -> Self {
        let mut r = Self::error(503, "overloaded", detail);
        r.retry_after = Some(retry_after);
        r
    }

    /// The standard reason phrase for the status.
    #[must_use]
    pub fn reason(&self) -> &'static str {
        match self.status {
            200 => "OK",
            202 => "Accepted",
            400 => "Bad Request",
            408 => "Request Timeout",
            404 => "Not Found",
            405 => "Method Not Allowed",
            409 => "Conflict",
            429 => "Too Many Requests",
            500 => "Internal Server Error",
            503 => "Service Unavailable",
            504 => "Gateway Timeout",
            _ => "Unknown",
        }
    }

    /// Serializes the response (status line, headers, body) to `w`.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors; the caller counts them and moves on --
    /// a client that hung up mid-response is its own problem.
    pub fn write_to(&self, w: &mut impl Write) -> io::Result<()> {
        let mut head = format!(
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n",
            self.status,
            self.reason(),
            self.content_type,
            self.body.len(),
        );
        if let Some(secs) = self.retry_after {
            head.push_str(&format!("Retry-After: {secs}\r\n"));
        }
        head.push_str("\r\n");
        // One write, one TCP segment: a separate body write behind an
        // unacked head segment parks on Nagle until the peer's delayed
        // ACK fires -- ~10ms of pure protocol latency per response.
        let mut wire = head.into_bytes();
        wire.extend_from_slice(&self.body);
        w.write_all(&wire)?;
        w.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(raw: &str) -> Result<Request, HttpError> {
        read_request(&mut BufReader::new(raw.as_bytes()))
    }

    #[test]
    fn parses_a_get_with_query() {
        let r = parse("GET /v1/cell?chip=i7-45&workload=jess HTTP/1.1\r\nHost: x\r\n\r\n")
            .unwrap();
        assert_eq!(r.method, Method::Get);
        assert_eq!(r.path, "/v1/cell");
        assert_eq!(r.param("chip"), Some("i7-45"));
        assert_eq!(r.param("workload"), Some("jess"));
        assert_eq!(r.param("absent"), None);
    }

    #[test]
    fn headers_are_captured_case_insensitively() {
        let r = parse(
            "GET /v1/metrics HTTP/1.1\r\nHost: x\r\nAccept: text/plain; version=0.0.4\r\n\r\n",
        )
        .unwrap();
        assert_eq!(r.header("accept"), Some("text/plain; version=0.0.4"));
        assert_eq!(r.header("ACCEPT"), Some("text/plain; version=0.0.4"));
        assert_eq!(r.header("host"), Some("x"));
        assert_eq!(r.header("absent"), None);
    }

    #[test]
    fn decodes_percent_escapes_and_plus() {
        let r = parse("GET /v1/cell?config=4C2T%402.7&note=a+b HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(r.param("config"), Some("4C2T@2.7"));
        assert_eq!(r.param("note"), Some("a b"));
        assert_eq!(percent_decode("%2e%2e%2f"), Some("../".to_owned()));
        assert_eq!(percent_decode("%zz"), None);
        assert_eq!(percent_decode("%2"), None);
    }

    #[test]
    fn rejects_malformed_requests_with_typed_errors() {
        assert!(matches!(parse("GARBAGE\r\n\r\n"), Err(HttpError::BadRequest(_))));
        assert!(matches!(
            parse("DELETE /x HTTP/1.1\r\n\r\n"),
            Err(HttpError::BadRequest(_))
        ));
        assert!(matches!(
            parse("GET noslash HTTP/1.1\r\n\r\n"),
            Err(HttpError::BadRequest(_))
        ));
        assert!(matches!(
            parse("GET /x\r\n\r\n"),
            Err(HttpError::BadRequest(_))
        ));
        assert!(matches!(
            parse("GET /x HTTP/1.1\r\nbroken header\r\n\r\n"),
            Err(HttpError::BadRequest(_))
        ));
        assert!(matches!(parse(""), Err(HttpError::Disconnected)));
    }

    #[test]
    fn bodies_follow_content_length() {
        let r = parse(
            "POST /v1/query HTTP/1.1\r\nContent-Length: 17\r\n\r\nfilter chip == \"x\"",
        )
        .unwrap();
        // Exactly 17 bytes are consumed, no more.
        assert_eq!(r.body, "filter chip == \"x");
        let r = parse("GET /healthz HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(r.body, "");
        assert!(matches!(
            parse("POST /x HTTP/1.1\r\nContent-Length: nope\r\n\r\n"),
            Err(HttpError::BadRequest(_))
        ));
        assert!(matches!(
            parse(&format!(
                "POST /x HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
                MAX_BODY_BYTES + 1
            )),
            Err(HttpError::BadRequest(_))
        ));
        assert!(matches!(
            parse("POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"),
            Err(HttpError::BadRequest(_))
        ));
        // A body cut short by a hangup is a disconnect, not a hang.
        assert!(matches!(
            parse("POST /x HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc"),
            Err(HttpError::Disconnected)
        ));
    }

    #[test]
    fn oversized_heads_are_rejected_not_buffered_forever() {
        let huge = format!(
            "GET /x HTTP/1.1\r\nPadding: {}\r\n\r\n",
            "y".repeat(MAX_HEAD_BYTES)
        );
        assert!(matches!(parse(&huge), Err(HttpError::BadRequest(_))));
    }

    #[test]
    fn responses_carry_length_and_retry_after() {
        let mut out = Vec::new();
        Response::overloaded("queue full", 2).write_to(&mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 503 Service Unavailable\r\n"));
        assert!(text.contains("Retry-After: 2\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.contains("\"error\":\"overloaded\""));
        let body_len = text.split("\r\n\r\n").nth(1).unwrap().len();
        assert!(text.contains(&format!("Content-Length: {body_len}\r\n")));
    }
}
